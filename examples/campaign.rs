//! A multi-vantage, multi-set probing campaign — a miniature of the
//! paper's Table 7 grid — driven through the unified
//! [`CampaignRunner`] builder (one runner per target set, all
//! vantages in parallel, streaming trace assembly).
//!
//! ```sh
//! cargo run --release --example campaign
//! ```

use beholder::prelude::*;
use std::sync::Arc;

fn main() {
    let topo = Arc::new(beholder::net::generate::generate(TopologyConfig::tiny(99)));
    let seeds = SeedCatalog::synthesize(&topo, 99);
    let catalog = TargetCatalog::build(&seeds, IidStrategy::FixedIid);

    let set_names = ["caida-z64", "fdns-z64", "cdn-k32-z64", "tum-z64"];
    let sets: Vec<&TargetSet> = set_names.iter().map(|n| catalog.get(n).unwrap()).collect();
    let vantages: Vec<u8> = (0..topo.vantages.len() as u8).collect();

    println!(
        "{:<12} {:<10} {:>8} {:>9} {:>7} {:>8}",
        "set", "vantage", "probes", "intaddrs", "reach%", "pathlen"
    );
    let mut all = std::collections::BTreeSet::new();
    let mut campaigns = 0usize;
    for set in &sets {
        // One builder call replaces the spec-vector + driver-function
        // dance; each vantage's campaign streams into its own trace
        // builder on the work-queue pool.
        let outcome = CampaignRunner::new(&topo)
            .targets(set)
            .vantages(&vantages)
            .parallel(true)
            .run()
            .expect("campaign failed");
        for run in &outcome.runs {
            let reached = run
                .traces
                .iter()
                .filter(|t| t.reached_at().is_some())
                .count();
            let mut lens: Vec<u8> = run.traces.iter().filter_map(|t| t.path_len()).collect();
            lens.sort_unstable();
            let median = lens.get(lens.len() / 2).copied().unwrap_or(0);
            println!(
                "{:<12} {:<10} {:>8} {:>9} {:>6.1}% {:>8}",
                &*set.name,
                &*topo.vantages[run.vantage_idx as usize].name,
                run.stats.probes,
                run.traces.interface_addrs().len(),
                100.0 * reached as f64 / set.len().max(1) as f64,
                median,
            );
            campaigns += 1;
        }
        // The outcome's union is merged deterministically in vantage
        // order — the paper's union-of-vantages yield per set.
        all.extend(outcome.merged.interface_addrs());
    }

    // Union across everything: the paper's ALL row.
    println!(
        "\nTotal unique interfaces across {} campaigns: {}",
        campaigns,
        all.len()
    );
}
