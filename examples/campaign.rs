//! A multi-vantage, multi-set probing campaign — a miniature of the
//! paper's Table 7 grid — with per-campaign metrics.
//!
//! ```sh
//! cargo run --release --example campaign
//! ```

use analysis::metrics::CampaignMetrics;
use beholder::prelude::*;
use std::sync::Arc;
use yarrp6::campaign::{run_campaigns_parallel, CampaignSpec};

fn main() {
    let topo = Arc::new(beholder::net::generate::generate(TopologyConfig::tiny(99)));
    let seeds = SeedCatalog::synthesize(&topo, 99);
    let catalog = TargetCatalog::build(&seeds, IidStrategy::FixedIid);

    let cfg = YarrpConfig::default();
    let set_names = ["caida-z64", "fdns-z64", "cdn-k32-z64", "tum-z64"];
    let sets: Vec<&TargetSet> = set_names.iter().map(|n| catalog.get(n).unwrap()).collect();

    // All (vantage x set) campaigns, in parallel, each on its own engine.
    let mut specs = Vec::new();
    for set in &sets {
        for v in 0..topo.vantages.len() as u8 {
            specs.push(CampaignSpec {
                vantage_idx: v,
                set,
                cfg,
            });
        }
    }
    let results = run_campaigns_parallel(&topo, &specs);

    println!(
        "{:<12} {:<10} {:>8} {:>9} {:>7} {:>9} {:>7}",
        "set", "vantage", "probes", "intaddrs", "reach%", "pathlen", "eui64"
    );
    for res in &results {
        let m = CampaignMetrics::compute(&res.log, &topo.bgp);
        println!(
            "{:<12} {:<10} {:>8} {:>9} {:>6.1}% {:>5} ({}) {:>7}",
            res.log.target_set,
            res.log.vantage,
            res.log.probes_sent,
            m.interface_addrs,
            100.0 * m.reach_frac,
            m.path_len_p95,
            m.path_len_median,
            m.eui64_addrs,
        );
    }

    // Union across everything: the paper's ALL row.
    let mut all = std::collections::BTreeSet::new();
    for res in &results {
        all.extend(res.log.interface_addrs());
    }
    println!(
        "\nTotal unique interfaces across {} campaigns: {}",
        results.len(),
        all.len()
    );
}
