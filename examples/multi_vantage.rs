//! Multi-vantage discovery, end to end: probe the same target set
//! from all three vantages concurrently, merge the per-vantage trace
//! sets into one union with per-trace provenance, report each
//! vantage's contribution and overlap (the paper's vantage tables),
//! then run the adaptive loop with vantage-aware budgeting so probes
//! drift toward the vantages that keep earning.
//!
//! ```sh
//! cargo run --release --example multi_vantage
//! ```

use beholder::prelude::*;
use std::sync::Arc;

fn main() {
    let topo = Arc::new(beholder::net::generate::generate(TopologyConfig::tiled(
        42, 2,
    )));
    let seeds = SeedCatalog::synthesize(&topo, 42);
    let catalog = TargetCatalog::build(&seeds, IidStrategy::FixedIid);
    let set = catalog.get("combined-z64").unwrap();

    // --- One multi-vantage sweep: same set, equal budget per vantage.
    let cfg = YarrpConfig {
        fill_mode: false,
        max_ttl: 12,
        ..YarrpConfig::default()
    };
    let sweep = CampaignRunner::new(&topo)
        .targets(set)
        .vantages(&[0, 1, 2])
        .config(cfg)
        .parallel(true)
        .run()
        .expect("sweep failed");

    let per = || sweep.runs.iter().map(|r| &r.traces);
    let rows = vantage_contributions(per());
    let union = vantage_union_count(per());
    println!(
        "multi-vantage sweep: {} targets x 3 vantages ({} probes total)\n",
        set.len(),
        sweep.stats.probes
    );
    for r in &rows {
        println!(
            "  {:<9}: {:>5} interfaces, {:>4} exclusive, {:>5.1}% of union",
            r.vantage,
            r.interfaces,
            r.exclusive,
            100.0 * r.union_share
        );
    }
    let best = rows.iter().map(|r| r.interfaces).max().unwrap();
    println!(
        "  union {:>5} interfaces = {:.2}x the best single vantage\n",
        union,
        union as f64 / best as f64
    );

    let jac = vantage_jaccard(per());
    for i in 0..rows.len() {
        for j in (i + 1)..rows.len() {
            println!(
                "  jaccard({}, {}) = {:.3}",
                rows[i].vantage, rows[j].vantage, jac[i][j]
            );
        }
    }

    // The merged union knows which vantage earned each trace.
    println!(
        "\nmerged: {} ({} traces, {} sources)",
        sweep.merged.vantage,
        sweep.merged.len(),
        sweep.merged.sources().len()
    );
    if let Some(t) = sweep.merged.iter().next() {
        println!("  first trace {} came from {}", t.target(), t.vantage());
    }

    // --- Adaptive loop with vantage-aware budgeting: allocations
    // follow each vantage's marginal yield across rounds.
    let z64 = targets::zn(&seeds.caida, 64);
    let initial = targets::synthesize::synthesize("adaptive-r0", &z64, IidStrategy::FixedIid);
    let acfg = AdaptiveConfig {
        vantages: vec![0, 1, 2],
        vantage_budgeting: true,
        vantage_floor_share: 0.10,
        probe_budget: 200_000,
        round_targets: 1_500,
        shards: 2,
        max_rounds: 5,
        min_yield_per_kprobes: 0.0,
        ..AdaptiveConfig::default()
    };
    let res = run_adaptive_parallel(&topo, &initial, &acfg);
    println!(
        "\nadaptive multi-vantage: {} rounds, {} probes, {} unique interfaces ({:?})",
        res.rounds.len(),
        res.probes(),
        res.unique_interfaces(),
        res.stop
    );
    for r in &res.rounds {
        let alloc: Vec<String> = r
            .per_vantage
            .iter()
            .map(|p| {
                format!(
                    "v{}: {} tgts, {} new, {:.0}% next",
                    p.vantage,
                    p.targets,
                    p.new_interfaces,
                    100.0 * p.next_share
                )
            })
            .collect();
        println!("  round {}: [{}]", r.round, alloc.join(" | "));
    }
}
