//! The closed feedback loop, end to end: start from a sparse
//! caida-style seed set on a tiled topology, then let each round's
//! discoveries generate the next round's targets — and watch the
//! discovery curve flatten until the marginal-yield stopping rule
//! fires.
//!
//! ```sh
//! cargo run --release --example adaptive_discovery
//! ```

use beholder::prelude::*;
use std::sync::Arc;

fn main() {
    // A tiled discovery topology: tranches of stub ASes with dense
    // sequential LAN plans — structure the initial seeds only graze.
    let topo = Arc::new(beholder::net::generate::generate(TopologyConfig::tiled(
        7, 4,
    )));
    let seeds = SeedCatalog::synthesize(&topo, 7);
    let z64 = targets::zn(&seeds.caida, 64);
    let initial = targets::synthesize::synthesize("adaptive-r0", &z64, IidStrategy::FixedIid);

    let cfg = AdaptiveConfig {
        vantages: vec![0],
        probe_budget: 300_000,
        round_targets: 3_000,
        shards: 4,
        max_rounds: 8,
        // Stop once two consecutive rounds earn fewer than 0.5 new
        // interfaces per 1000 probes.
        min_yield_per_kprobes: 0.5,
        patience: 2,
        path_div: Some(PathDivParams::default()),
        ..AdaptiveConfig::default()
    };

    println!(
        "adaptive discovery: {} initial targets, budget {} probes\n",
        initial.len(),
        cfg.probe_budget
    );
    let res = run_adaptive_parallel(&topo, &initial, &cfg);

    println!(
        "{:>5} {:>8} {:>9} {:>10} {:>9} {:>12} {:>12}",
        "round", "targets", "probes", "new ifaces", "subnets", "yield/kprobe", "rate-limited"
    );
    for r in &res.rounds {
        println!(
            "{:>5} {:>8} {:>9} {:>10} {:>9} {:>12.2} {:>12}",
            r.round,
            r.targets,
            r.probes,
            r.new_interfaces,
            r.new_subnets,
            r.yield_per_kprobe,
            r.rate_limited
        );
    }
    println!(
        "\nstopped: {:?} after {} probes — {} unique interfaces, {} inferred subnets",
        res.stop,
        res.probes(),
        res.unique_interfaces(),
        res.subnets.len()
    );
    let (def, agg) = res.stats.rl_dropped_by_class();
    println!("rate-limit drops: {def} default-class, {agg} aggressive-class");
}
