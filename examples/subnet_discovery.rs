//! Subnet discovery (§6): infer subnet boundaries from path divergence
//! and the IA hack, then check against the simulator's ground truth.
//!
//! ```sh
//! cargo run --release --example subnet_discovery
//! ```

use beholder::prelude::*;
use std::sync::Arc;

fn main() {
    let topo = Arc::new(beholder::net::generate::generate(TopologyConfig::tiny(
        1234,
    )));
    let seeds = SeedCatalog::synthesize(&topo, 1234);
    let catalog = TargetCatalog::build(&seeds, IidStrategy::FixedIid);
    let set = catalog.get("combined-z64").expect("combined-z64");

    // Probe from the second vantage (US-EDU-1).
    let result = run_campaign(&topo, 1, set, &YarrpConfig::default());
    let traces = TraceSet::from_log(&result.log);
    println!(
        "{} traces with responses from {} targets",
        traces.len(),
        set.len()
    );

    // The analysis uses only public knowledge: BGP + registry extras +
    // declared ASN equivalences.
    let resolver = AsnResolver::new(
        topo.bgp.clone(),
        topo.rir_extra.clone(),
        &topo.asn_equivalences,
    );
    let vantage_asn = topo.ases[topo.vantages[1].as_idx as usize].asn;

    let cands = discover_by_path_div(&traces, &resolver, vantage_asn, &PathDivParams::default());
    let ia = ia_hack(&traces);
    println!(
        "path divergence: {} candidate subnets; IA hack: {} exact /64s",
        cands.len(),
        ia.len()
    );

    // Histogram by inferred minimum prefix length.
    let hist = beholder::analyze::subnets::by_prefix_length(&cands);
    println!("\ninferred min-length histogram:");
    for (len, count) in &hist {
        println!(
            "  /{len:<3} {count:>6}  {}",
            "#".repeat((*count as usize).min(60))
        );
    }

    // Ground truth comparison (the simulator knows the real plan).
    let truth: Vec<Ipv6Prefix> = topo
        .ground_truth_distribution_subnets()
        .into_iter()
        .map(|(p, _, _)| p)
        .collect();
    let report = beholder::analyze::validate::validate(&cands, &truth, &set.addrs);
    println!(
        "\nvs ground truth: {} exact, {} truth subnets contain more-specific candidates",
        report.exact, report.truth_with_more_specific
    );
}
