//! Why randomize? A side-by-side of sequential (scamper-style) and
//! Yarrp6 probing at increasing rates, showing ICMPv6 rate limiting
//! destroy the former's near-hop visibility (the paper's Figure 5).
//!
//! ```sh
//! cargo run --release --example rate_limiting
//! ```

use analysis::metrics::hop_responsiveness;
use beholder::prelude::*;
use std::sync::Arc;
use yarrp6::sequential::{self, SequentialConfig};
use yarrp6::yarrp;

fn main() {
    let topo = Arc::new(beholder::net::generate::generate(TopologyConfig::tiny(555)));
    let seeds = SeedCatalog::synthesize(&topo, 555);
    let catalog = TargetCatalog::build(&seeds, IidStrategy::FixedIid);
    let set = catalog.get("caida-z64").expect("caida-z64");
    let max_ttl = 12u8;

    println!(
        "per-hop responsiveness, vantage US-EDU-1, {} targets\n",
        set.len()
    );
    print!("{:>24}", "");
    for h in 1..=max_ttl {
        print!(" hop{h:<2}");
    }
    println!();

    for rate in [20u64, 500, 2_000, 8_000] {
        let mut engine = Engine::new(topo.clone());
        let cfg = SequentialConfig {
            rate_pps: rate,
            max_ttl,
            gap_limit: max_ttl,
            ..Default::default()
        };
        let log = sequential::run(&mut engine, 1, &set.addrs, &cfg);
        print_row(
            &format!("sequential @ {rate}pps"),
            &hop_responsiveness(&log, max_ttl),
        );

        let mut engine = Engine::new(topo.clone());
        let cfg = YarrpConfig {
            rate_pps: rate,
            max_ttl,
            fill_mode: false,
            ..Default::default()
        };
        let log = yarrp::run(&mut engine, 1, &set.addrs, &cfg);
        print_row(
            &format!("yarrp6     @ {rate}pps"),
            &hop_responsiveness(&log, max_ttl),
        );
        println!();
    }
    println!("Sequential probing sends synchronized per-TTL bursts that drain each");
    println!("router's RFC 4443 token bucket; the randomized permutation spreads the");
    println!("same load so thinly that buckets keep pace at every hop.");
}

fn print_row(name: &str, resp: &[f64]) {
    print!("{name:>24}");
    for r in resp {
        print!(" {r:>5.2}");
    }
    println!();
}
