//! A multi-vantage, multi-set sweep on the **streaming** pipeline:
//! every campaign's records flow straight from the prober into an
//! incremental trace builder over a bounded channel, so no campaign
//! ever materializes its `ProbeLog` — the sweep's record memory is
//! bounded by the channel, not by the workload.
//!
//! ```sh
//! cargo run --release --example streaming_campaign
//! ```

use beholder::prelude::*;
use std::sync::Arc;

fn main() {
    let topo = Arc::new(beholder::net::generate::generate(TopologyConfig::tiny(99)));
    let seeds = SeedCatalog::synthesize(&topo, 99);
    let catalog = TargetCatalog::build(&seeds, IidStrategy::FixedIid);

    let set_names = ["caida-z64", "fdns-z64", "cdn-k32-z64", "tum-z64"];
    let sets: Vec<&TargetSet> = set_names.iter().map(|n| catalog.get(n).unwrap()).collect();
    let vantages: Vec<u8> = (0..topo.vantages.len() as u8).collect();

    // One runner per set, all vantages on the work-queue pool; each
    // worker streams its prober into a per-campaign TraceSetBuilder
    // and hands back the finished columnar TraceSet plus the engine's
    // accounting — `run()` always takes the streaming pipeline, so no
    // campaign ever holds its record log.
    let results: Vec<(TraceSet, EngineStats)> = sets
        .iter()
        .flat_map(|set| {
            CampaignRunner::new(&topo)
                .targets(set)
                .vantages(&vantages)
                .parallel(true)
                .run()
                .expect("campaign failed")
                .runs
                .into_iter()
                .map(|r| (r.traces, r.stats))
        })
        .collect();

    println!(
        "{:<12} {:<10} {:>8} {:>8} {:>9} {:>7}",
        "set", "vantage", "probes", "traces", "intaddrs", "medlen"
    );
    for (ts, stats) in &results {
        // Unique router interfaces: distinct interned hop ids.
        let ifaces: std::collections::BTreeSet<u32> = ts
            .iter()
            .flat_map(|t| t.hop_cells().iter().map(|&(_, id)| id))
            .collect();
        let mut lens: Vec<u8> = ts.iter().filter_map(|t| t.path_len()).collect();
        lens.sort_unstable();
        let medlen = lens.get(lens.len() / 2).copied().unwrap_or(0);
        println!(
            "{:<12} {:<10} {:>8} {:>8} {:>9} {:>7}",
            ts.target_set,
            ts.vantage,
            stats.probes,
            ts.len(),
            ifaces.len(),
            medlen,
        );
    }

    // The whole sweep's ground-truth accounting, via the merge helper.
    let total = EngineStats::merged(results.iter().map(|(_, s)| s));
    println!(
        "\n{} campaigns: {} probes, {} responses ({} rate-limited, {} lost)",
        results.len(),
        total.probes,
        total.responses(),
        total.rate_limited,
        total.lost
    );
}
