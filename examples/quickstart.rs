//! Quickstart: build a small synthetic IPv6 Internet, run one Yarrp6
//! campaign, and print what it discovered.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use beholder::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. A synthetic Internet (deterministic under the seed).
    let topo = Arc::new(beholder::net::generate::generate(TopologyConfig::tiny(
        2018,
    )));
    println!(
        "Internet: {} ASes, {} routed prefixes, {} routers, {} hosts, {} vantages",
        topo.ases.len(),
        topo.bgp.prefix_count(),
        topo.routers.len(),
        topo.host_count(),
        topo.vantages.len()
    );

    // 2. Seed lists and target sets, exactly as the paper's pipeline:
    //    seeds -> zn prefix transformation -> fixediid synthesis.
    let seeds = SeedCatalog::synthesize(&topo, 2018);
    let catalog = TargetCatalog::build(&seeds, IidStrategy::FixedIid);
    let set = catalog.get("caida-z64").expect("caida-z64");
    println!(
        "Target set {}: {} unique fixediid targets",
        set.name,
        set.len()
    );

    // 3. One randomized, stateless, rate-limit-evading campaign.
    let cfg = YarrpConfig {
        rate_pps: 1_000,
        max_ttl: 16,
        fill_mode: true,
        ..Default::default()
    };
    let result = run_campaign(&topo, 0, set, &cfg);
    let log = &result.log;
    println!(
        "\nCampaign from {}: {} probes ({} fills), {} responses",
        log.vantage,
        log.probes_sent,
        log.fills,
        log.records.len()
    );
    println!(
        "Discovered {} unique router interface addresses",
        log.interface_addrs().len()
    );
    println!(
        "Engine truth: {} rate-limited, {} lost, {} silent hops",
        result.engine_stats.rate_limited,
        result.engine_stats.lost,
        result.engine_stats.silent_router
    );

    // 4. A few example traces, reconstructed from the stateless records.
    let traces = TraceSet::from_log(log);
    for trace in traces.iter().take(3) {
        println!("\ntrace to {}:", trace.target());
        for (ttl, hop) in trace.hops() {
            println!("  {ttl:>3}  {hop}");
        }
        match trace.reached_at() {
            Some(t) => println!("  destination answered at hop {t}"),
            None => println!(
                "  destination did not answer (path len >= {:?})",
                trace.path_len()
            ),
        }
    }
}
