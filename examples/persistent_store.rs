//! The longitudinal workflow end to end: run a discovery sweep, shard
//! the merged trace store by target prefix, persist it as a versioned
//! on-disk snapshot, read it back, and run a *delta* sweep against it
//! — canaries re-probe a sample of known targets, and budget flows
//! only where the topology changed (here: nowhere, so the delta run
//! stops almost immediately at the same discovered-interface count).
//!
//! ```sh
//! cargo run --release --example persistent_store
//! ```

use beholder::prelude::*;
use std::sync::Arc;

fn main() {
    let topo = Arc::new(beholder::net::generate::generate(TopologyConfig::tiled(
        42, 2,
    )));
    let seeds = SeedCatalog::synthesize(&topo, 42);
    let z64 = targets::zn(&seeds.caida, 64);
    let initial = targets::synthesize::synthesize("store-r0", &z64, IidStrategy::FixedIid);

    let cfg = AdaptiveConfig {
        vantages: vec![0, 2],
        probe_budget: 1_000_000,
        round_targets: 2_048,
        shards: 2,
        max_rounds: 3,
        min_yield_per_kprobes: 0.5,
        patience: 1,
        delta_seeding: Some(DeltaSeedConfig { canary_targets: 64 }),
        ..AdaptiveConfig::default()
    };

    // --- Day 0: a fresh adaptive sweep.
    let fresh = run_adaptive_parallel(&topo, &initial, &cfg);
    println!(
        "fresh sweep: {} rounds, {} probes, {} unique interfaces",
        fresh.rounds.len(),
        fresh.probes(),
        fresh.unique_interfaces()
    );

    // --- Shard the merged store by /64 prefix and persist it.
    let store = ShardedTraceSet::from_set(&fresh.merged_traces(), 8);
    let dir = std::env::temp_dir().join(format!("beholder-store-{}", std::process::id()));
    let manifest = write_sharded_snapshot(&dir, &store).expect("snapshot write");
    let on_disk: u64 = manifest.segments.iter().map(|s| s.len).sum();
    println!(
        "snapshot: {} shards, {} traces, {} bytes at {}",
        manifest.n_shards,
        store.len(),
        on_disk,
        dir.display()
    );
    for (s, shard) in store.shards().iter().enumerate() {
        println!(
            "  shard {s}: {:>5} traces, {:>4} interfaces",
            shard.len(),
            shard.interface_addrs().len()
        );
    }

    // --- Day 1: reload and sweep only the delta.
    let prior = read_sharded_snapshot(&dir).expect("snapshot read");
    assert!(prior == store, "round trip must be exact");
    let delta = run_adaptive_delta(&topo, &initial, &cfg, &prior, true);
    println!(
        "delta sweep against the unchanged snapshot: {} rounds, {} probes, \
         {} unique interfaces ({:?})",
        delta.rounds.len(),
        delta.probes(),
        delta.unique_interfaces(),
        delta.stop
    );
    println!(
        "probe cost: {} fresh vs {} delta ({:.1}% of the fresh sweep)",
        fresh.probes(),
        delta.probes(),
        100.0 * delta.probes() as f64 / fresh.probes() as f64
    );

    let _ = std::fs::remove_dir_all(&dir);
}
