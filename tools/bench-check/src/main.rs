//! `bench-check` — the CI guard for the repo's `BENCH_*.json`
//! trajectory.
//!
//! Every performance PR commits a benchmark JSON (hot-path pps,
//! columnar-analysis speedup, streaming ratio, adaptive yield). This
//! tool keeps those wins from silently rotting:
//!
//! * `bench-check compare <baseline-dir> <fresh.json>...` — for each
//!   fresh file, loads the same-named baseline, extracts the bench's
//!   **headline ratio** (see [`headline_key`]) and fails when the fresh
//!   value regresses more than `BENCH_CHECK_MAX_REGRESSION` (default
//!   0.30, i.e. >30%) below the baseline. A `scenario` mismatch
//!   against an existing baseline is a failure — cross-scale numbers
//!   must never be conflated, and silently skipping them would turn
//!   the gate into a no-op; regenerate the baseline with the current
//!   env instead. A missing baseline is a note, not a failure (new
//!   benches land before their baseline).
//! * `bench-check merge <out.json> <in.json>...` — bundles bench runs
//!   into one trend artifact for the scheduled CI job.
//!
//! The workspace's `serde` is a deliberate no-op shim (offline
//! container), so the benches hand-roll their JSON and this tool
//! hand-rolls the reading: a tiny scanner that extracts `"key": value`
//! pairs, which is all these flat files need.

use std::process::ExitCode;

/// Fraction of the baseline headline the fresh value may lose before
/// the check fails.
const DEFAULT_MAX_REGRESSION: f64 = 0.30;

/// Extracts every numeric value keyed `key` anywhere in `json`.
fn extract_numbers(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\"");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let after = rest.trim_start();
        let Some(after) = after.strip_prefix(':') else {
            continue;
        };
        let val = after.trim_start();
        let end = val
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
            .unwrap_or(val.len());
        if let Ok(n) = val[..end].parse::<f64>() {
            out.push(n);
        }
    }
    out
}

/// Extracts the first string value keyed `key`.
fn extract_string(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let pos = json.find(&needle)?;
    let rest = json[pos + needle.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// The headline metric for a bench name: the single ratio a regression
/// gate should watch. Unknown benches fall back to `speedup`, then
/// `yield_ratio`.
fn headline_key(bench: &str) -> &'static [&'static str] {
    match bench {
        "hotpath_pps" | "trace_analysis_pps" | "stream_campaign_pps" | "shard_snapshot_pps" => {
            &["speedup"]
        }
        "adaptive_yield" | "vantage_yield" | "churn_yield" | "poisoned_yield" => &["yield_ratio"],
        // Both phases report a precision; the gate watches the worse.
        "alias_resolution_pps" => &["precision"],
        _ => &["speedup", "yield_ratio"],
    }
}

/// The headline value of a bench JSON: the *minimum* across the
/// headline key's occurrences (trace_analysis_pps reports two speedups;
/// the gate watches the worse one).
fn headline(json: &str) -> Option<(String, f64)> {
    let bench = extract_string(json, "bench")?;
    for key in headline_key(&bench) {
        let vals = extract_numbers(json, key);
        if let Some(min) = vals.into_iter().reduce(f64::min) {
            return Some((bench, min));
        }
    }
    None
}

fn compare(baseline_dir: &str, fresh_paths: &[String], max_regression: f64) -> ExitCode {
    let mut failed = false;
    let mut checked = 0;
    for path in fresh_paths {
        let name = std::path::Path::new(path)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        let Ok(fresh) = std::fs::read_to_string(path) else {
            eprintln!("FAIL {name}: fresh file unreadable");
            failed = true;
            continue;
        };
        let Some((bench, fresh_val)) = headline(&fresh) else {
            eprintln!("FAIL {name}: no headline metric found in fresh file");
            failed = true;
            continue;
        };
        let base_path = format!("{baseline_dir}/{name}");
        let Ok(base) = std::fs::read_to_string(&base_path) else {
            println!("skip {name}: no baseline at {base_path} (new bench?)");
            continue;
        };
        let Some((base_bench, base_val)) = headline(&base) else {
            eprintln!("FAIL {name}: no headline metric found in baseline");
            failed = true;
            continue;
        };
        if bench != base_bench {
            eprintln!("FAIL {name}: bench mismatch ({bench} vs baseline {base_bench})");
            failed = true;
            continue;
        }
        let (fs, bs) = (
            extract_string(&fresh, "scenario"),
            extract_string(&base, "scenario"),
        );
        if fs != bs {
            // A baseline exists but was produced at a different scale:
            // the CI env and the committed baselines have drifted
            // apart. Skipping here would quietly turn the whole gate
            // into a no-op, so it is a failure — regenerate the
            // baseline with the current env.
            eprintln!(
                "FAIL {name}: scenario mismatch ({} vs baseline {}) — \
                 regenerate the baseline with the current bench env",
                fs.as_deref().unwrap_or("-"),
                bs.as_deref().unwrap_or("-")
            );
            failed = true;
            continue;
        }
        checked += 1;
        let floor = base_val * (1.0 - max_regression);
        if fresh_val < floor {
            eprintln!(
                "FAIL {name} ({bench}): headline {fresh_val:.3} regressed below {floor:.3} \
                 (baseline {base_val:.3}, max regression {:.0}%)",
                max_regression * 100.0
            );
            failed = true;
        } else {
            println!(
                "ok   {name} ({bench}): headline {fresh_val:.3} vs baseline {base_val:.3} \
                 (floor {floor:.3})"
            );
        }
    }
    println!("bench-check: {checked} compared, failed: {failed}");
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn merge(out: &str, inputs: &[String]) -> ExitCode {
    let mut entries = Vec::new();
    for path in inputs {
        match std::fs::read_to_string(path) {
            Ok(s) => entries.push(s.trim().to_string()),
            Err(e) => {
                // A scheduled run should still produce a trend artifact
                // when one bench is missing; note it inline.
                let name = path.replace('"', "'");
                entries.push(format!("{{ \"bench\": \"{name}\", \"error\": \"{e}\" }}"));
            }
        }
    }
    let body = entries
        .iter()
        .map(|e| {
            let indented = e.replace('\n', "\n    ");
            format!("    {indented}")
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!("{{\n  \"bench\": \"trend\",\n  \"entries\": [\n{body}\n  ]\n}}\n");
    if let Err(e) = std::fs::write(out, json) {
        eprintln!("FAIL: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("bench-check: merged {} run(s) into {out}", inputs.len());
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  bench-check compare <baseline-dir> <fresh.json>...\n  bench-check merge <out.json> <in.json>..."
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_regression = std::env::var("BENCH_CHECK_MAX_REGRESSION")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_MAX_REGRESSION);
    match args.split_first() {
        Some((cmd, rest)) if cmd == "compare" && rest.len() >= 2 => {
            compare(&rest[0], &rest[1..], max_regression)
        }
        Some((cmd, rest)) if cmd == "merge" && rest.len() >= 2 => merge(&rest[0], &rest[1..]),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ANALYSIS: &str = r#"{
  "bench": "trace_analysis_pps",
  "scenario": "tiny combined-z64 x16",
  "reconstruction": { "speedup": 3.504 },
  "subnet_inference": { "speedup": 4.091 }
}"#;

    const ADAPTIVE: &str = r#"{
  "bench": "adaptive_yield",
  "scenario": "tiled x2",
  "static": { "interfaces": 538, "elapsed_s": 0.21 },
  "adaptive": { "interfaces": 901, "elapsed_s": 0.16 },
  "yield_ratio": 1.675
}"#;

    #[test]
    fn extracts_numbers_and_strings() {
        assert_eq!(extract_numbers(ANALYSIS, "speedup"), vec![3.504, 4.091]);
        assert_eq!(extract_numbers(ADAPTIVE, "yield_ratio"), vec![1.675]);
        assert_eq!(
            extract_string(ANALYSIS, "bench").as_deref(),
            Some("trace_analysis_pps")
        );
        assert_eq!(
            extract_string(ADAPTIVE, "scenario").as_deref(),
            Some("tiled x2")
        );
        assert!(extract_numbers(ANALYSIS, "missing").is_empty());
        assert!(extract_string(ANALYSIS, "missing").is_none());
    }

    #[test]
    fn headline_takes_worst_occurrence() {
        let (bench, v) = headline(ANALYSIS).unwrap();
        assert_eq!(bench, "trace_analysis_pps");
        assert!((v - 3.504).abs() < 1e-9);
        let (bench, v) = headline(ADAPTIVE).unwrap();
        assert_eq!(bench, "adaptive_yield");
        assert!((v - 1.675).abs() < 1e-9);
        assert!(headline("{\"no\": 1}").is_none());
    }

    #[test]
    fn alias_headline_is_worst_precision() {
        let j = r#"{
  "bench": "alias_resolution_pps",
  "scenario": "tiled x2",
  "standalone": { "pps": 240000, "precision": 1.0000, "recall": 0.98 },
  "adaptive": { "precision": 0.9412, "recall": 0.9000 }
}"#;
        let (bench, v) = headline(j).unwrap();
        assert_eq!(bench, "alias_resolution_pps");
        assert!((v - 0.9412).abs() < 1e-9, "worse precision wins: {v}");
    }

    #[test]
    fn negative_and_scientific_numbers_parse() {
        let j = r#"{"bench":"x","speedup": 1.2e1, "other": -3.5}"#;
        assert_eq!(extract_numbers(j, "speedup"), vec![12.0]);
        assert_eq!(extract_numbers(j, "other"), vec![-3.5]);
    }

    #[test]
    fn compare_logic_end_to_end() {
        let dir = std::env::temp_dir().join(format!("bench-check-test-{}", std::process::id()));
        let base_dir = dir.join("base");
        std::fs::create_dir_all(&base_dir).unwrap();
        let fresh_path = dir.join("BENCH_analysis.json");
        let base_path = base_dir.join("BENCH_analysis.json");
        std::fs::write(&base_path, ANALYSIS).unwrap();

        // Within tolerance (30% of 3.504 → floor 2.45).
        std::fs::write(&fresh_path, ANALYSIS.replace("3.504", "2.6")).unwrap();
        let ok = compare(
            base_dir.to_str().unwrap(),
            &[fresh_path.to_string_lossy().into_owned()],
            DEFAULT_MAX_REGRESSION,
        );
        assert_eq!(ok, ExitCode::SUCCESS);

        // Beyond tolerance.
        std::fs::write(&fresh_path, ANALYSIS.replace("3.504", "2.0")).unwrap();
        let bad = compare(
            base_dir.to_str().unwrap(),
            &[fresh_path.to_string_lossy().into_owned()],
            DEFAULT_MAX_REGRESSION,
        );
        assert_eq!(bad, ExitCode::FAILURE);

        // Scenario mismatch against an existing baseline fails: a
        // drifted CI env must not silently disable the gate.
        std::fs::write(
            &fresh_path,
            ANALYSIS.replace("x16", "x64").replace("3.504", "9.9"),
        )
        .unwrap();
        let drifted = compare(
            base_dir.to_str().unwrap(),
            &[fresh_path.to_string_lossy().into_owned()],
            DEFAULT_MAX_REGRESSION,
        );
        assert_eq!(drifted, ExitCode::FAILURE);

        // Missing baseline skips.
        let lone = dir.join("BENCH_new.json");
        std::fs::write(&lone, ADAPTIVE).unwrap();
        let skipped = compare(
            base_dir.to_str().unwrap(),
            &[lone.to_string_lossy().into_owned()],
            DEFAULT_MAX_REGRESSION,
        );
        assert_eq!(skipped, ExitCode::SUCCESS);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_produces_wrapped_json() {
        let dir = std::env::temp_dir().join(format!("bench-check-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let out = dir.join("trend.json");
        std::fs::write(&a, ADAPTIVE).unwrap();
        let code = merge(
            out.to_str().unwrap(),
            &[
                a.to_string_lossy().into_owned(),
                dir.join("missing.json").to_string_lossy().into_owned(),
            ],
        );
        assert_eq!(code, ExitCode::SUCCESS);
        let trend = std::fs::read_to_string(&out).unwrap();
        assert!(trend.contains("\"bench\": \"trend\""));
        assert!(trend.contains("adaptive_yield"));
        assert!(trend.contains("error"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
