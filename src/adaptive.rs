//! Adaptive multi-round topology discovery: the closed feedback loop
//! the paper argues for — *what you probe determines what you see*, so
//! round *n+1*'s targets are generated from round *n*'s discoveries.
//!
//! Each round streams probe campaigns straight into the incremental
//! [`TraceSetBuilder`](analysis::TraceSetBuilder) (record memory stays
//! bounded by the chunk channel), mines the finished
//! [`TraceSet`]s for newly discovered interfaces
//! ([`TraceSet::discovery_delta`] against one global seen-set) and
//! inferred subnets (the IA hack, optionally path divergence), feeds
//! those through the feedback seed generator
//! ([`seeds::feedback::feedback_list`]: kIP aggregation + 6Gen
//! expansion) and the feedback target synthesizer
//! ([`targets::feedback_targets`]), and repeats under a global probe
//! budget until the marginal yield stays below a floor for
//! [`AdaptiveConfig::patience`] consecutive rounds.
//!
//! ```text
//!        ┌──────────── targets (round n) ────────────┐
//!        │                                           ▼
//!  seeds/feedback ◄── interfaces + subnets ◄── stream_campaign(s)
//!   (kIP + 6Gen)        (discovery_delta,       → TraceSetBuilder
//!        │               IA hack/path-div)            │
//!        └────────── targets (round n+1) ◄────────────┘
//! ```
//!
//! Rounds are **multi-vantage**: every configured vantage probes each
//! round under one global seen-set, and with
//! [`AdaptiveConfig::vantage_budgeting`] the loop tracks each
//! vantage's marginal yield (new interfaces per probe, EWMA-smoothed
//! with an exploration floor) and reallocates the next round's
//! target-probe budget toward the vantages that are still earning —
//! the paper's vantage-diversity observation turned into a feedback
//! controller.
//!
//! Two drivers share one deterministic loop body:
//! [`run_adaptive`] runs each round's campaigns serially,
//! [`run_adaptive_parallel`] runs them on the work-queue pool.
//! Campaigns are engine-isolated and results return in input order, so
//! the two produce bit-identical results — pinned by the `adaptive`
//! test suite, alongside a golden test that a one-round run equals a
//! plain [`analysis::stream_campaign`].
//!
//! ## Fault tolerance
//!
//! Every round runs under the campaign supervisor
//! ([`analysis::stream_campaigns_supervised`]): a campaign that
//! panics, loses its record stream or probes into a scheduled blackout
//! ([`simnet::FaultSchedule`]) is retried with exponential backoff on
//! the loop's **virtual clock** — each round's campaigns start at the
//! accumulated virtual time of all earlier rounds, so retries and
//! later rounds deterministically land later on the fault schedule.
//! A vantage whose campaigns all come back degraded in one round is
//! declared **dead**: the budgeter reallocates its share across the
//! survivors, its [`VantageRound`] entries report
//! [`degraded`](VantageRound::degraded), and the loop continues
//! instead of aborting (stopping with
//! [`StopReason::AllVantagesDown`] only when nobody is left).
//!
//! ## Checkpoint/resume
//!
//! [`run_adaptive_checkpointed`] emits a [`Checkpoint`] at every round
//! boundary — a compact hand-rolled snapshot of the whole loop state
//! (interner-preserving trace sets, budget and EWMA state, the
//! regenerated pool). [`resume_adaptive`] continues from any such
//! checkpoint and produces results bit-identical to the uninterrupted
//! run, pinned by the `checkpoint` test suite.
//!
//! This module lives in the umbrella crate because it is the one place
//! the whole pipeline meets: it orchestrates `yarrp6` (probers),
//! `analysis` (trace mining), `seeds`/`targets` (generation) and
//! `simnet` (the network under test).

use crate::checkpoint::{config_digest, Checkpoint, ResumeError};
use aliasres::{resolve_aliases_supervised, AliasConfig, RouterGraph, RouterGraphBuilder};
use analysis::{
    discover_by_path_div, ia_hack, quarantine_all, stream_campaigns_supervised, AsnResolver,
    PathDivParams, QuarantineConfig, ShardedTraceSet, TraceSet,
};
use seeds::feedback::{feedback_list, FeedbackParams};
// The workspace's shared splitmix64, for per-round generation seeds.
use simnet::flow::mix64 as mix;
use simnet::{EngineStats, Topology};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv6Addr;
use std::sync::Arc;
use targets::{feedback_targets, stride_sample, IidStrategy, TargetSet};
use v6addr::Ipv6Prefix;
use yarrp6::addrset::AddrSet;
use yarrp6::campaign::{CampaignSpec, RetryPolicy};
use yarrp6::{StreamConfig, YarrpConfig};

/// Configuration of the adaptive discovery loop.
#[derive(Clone, Debug)]
pub struct AdaptiveConfig {
    /// Prober configuration used by every round's campaigns.
    pub yarrp: YarrpConfig,
    /// Bounded-channel configuration for the streaming campaigns.
    pub stream: StreamConfig,
    /// Vantage indices probing each round. With uniform budgeting
    /// every vantage probes every round target; with
    /// [`vantage_budgeting`](Self::vantage_budgeting) each vantage
    /// probes its allocated slice.
    pub vantages: Vec<u8>,
    /// Vantage-aware budget allocation: when `true`, the round's
    /// per-vantage target allocations follow each vantage's tracked
    /// marginal yield (new interfaces per probe, EWMA-smoothed), so
    /// probes shift toward productive vantages across rounds. When
    /// `false` (the default) every vantage probes the full round list —
    /// the original uniform behavior, bit-identical to earlier
    /// releases.
    pub vantage_budgeting: bool,
    /// Floor share of the per-round allocation any single vantage
    /// keeps under vantage budgeting (exploration: a vantage that went
    /// quiet can still prove itself again). Clamped to `1/len(vantages)`.
    pub vantage_floor_share: f64,
    /// EWMA smoothing for the per-vantage yield weights: the fraction
    /// of the previous weight retained each round (0 = follow the last
    /// round only, 1 = never move).
    pub vantage_smoothing: f64,
    /// Global probe budget: once the engines' cumulative probe count
    /// reaches it, no further round starts, and each round's target
    /// list is pre-truncated so its nominal cost
    /// (`targets × max_ttl × vantages`) fits the remainder.
    pub probe_budget: u64,
    /// Cap on targets probed per round (before the budget truncation).
    pub round_targets: usize,
    /// Shards per round: each round's target list is split round-robin
    /// into this many independent campaigns per vantage, giving the
    /// parallel driver work units and bounding per-campaign memory.
    pub shards: usize,
    /// Hard round cap.
    pub max_rounds: usize,
    /// Marginal-yield floor: new interfaces per 1000 probes.
    pub min_yield_per_kprobes: f64,
    /// Stop after this many *consecutive* rounds below the floor.
    pub patience: usize,
    /// Feedback seed-generation knobs (kIP k, 6Gen budget).
    pub feedback: FeedbackParams,
    /// How many /64s to expand out of each aggregated/inferred prefix
    /// when synthesizing the next round's targets.
    pub per_prefix_64s: usize,
    /// IID synthesis strategy for generated targets.
    pub iid: IidStrategy,
    /// Master seed for the per-round generation RNG.
    pub rng_seed: u64,
    /// Optionally run path-divergence subnet inference each round (the
    /// IA hack always runs; path divergence needs the public ASN view
    /// and costs more).
    pub path_div: Option<PathDivParams>,
    /// Supervisor retry policy for failed or blacked-out campaigns:
    /// bounded exponential backoff on the loop's virtual clock. The
    /// default retries twice; set
    /// [`RetryPolicy::max_retries`] to 0 to disable retrying (failures
    /// then degrade immediately). Fault-free campaigns are unaffected.
    pub retry: RetryPolicy,
    /// Poisoning-resistant feedback: when `true`, every round's trace
    /// sets pass jointly through the adversarial quarantine
    /// ([`analysis::quarantine_all`]) before anything feeds *forward* —
    /// subnet inference, path-divergence, the kept trace record, and
    /// the feedback generators all see only quarantine-clean cells, so
    /// hostile responders cannot steer later rounds. Discovery
    /// *counting* (the seen-set, per-vantage attribution) stays on the
    /// raw sets: a responder that survived the panic-free decoder is a
    /// real, checksum-validated interface even when the quarantine
    /// condemns the hop structure it reported. When `false` (the
    /// default) the raw sets flow through unchanged — bit-identical to
    /// earlier releases.
    pub quarantine_feedback: bool,
    /// Thresholds for the quarantine stage; read only when
    /// [`quarantine_feedback`](Self::quarantine_feedback) is on.
    pub quarantine: QuarantineConfig,
    /// Router-level resolution: when `true`, every round is followed by
    /// a speedtrap alias-probing stage — candidate interface pairs are
    /// derived from the round's discoveries (shared /64, shared
    /// trace-neighborhood), probed under the supervised campaign rules
    /// on the loop's virtual clock, charged against the same global
    /// probe budget, and merged into an incrementally maintained
    /// [`RouterGraph`] ([`AdaptiveResult::router_level`]). When `false`
    /// (the default) no alias probe is ever sent and the loop is
    /// bit-identical to earlier releases.
    pub alias_resolution: bool,
    /// Knobs for the alias stage; read only when
    /// [`alias_resolution`](Self::alias_resolution) is on.
    pub alias: AliasStageConfig,
    /// Opt-in delta seeding (read by [`run_adaptive_delta`]): resume
    /// discovery from a prior run's persisted sharded store, spending
    /// budget only where the topology changed. `None` (the default)
    /// leaves every other entry point bit-identical to earlier
    /// releases — the field only matters to the delta driver.
    pub delta_seeding: Option<DeltaSeedConfig>,
}

/// Knobs for the per-round alias-resolution stage
/// ([`AdaptiveConfig::alias_resolution`]).
#[derive(Clone, Copy, Debug)]
pub struct AliasStageConfig {
    /// Speedtrap prober parameters (probe size, rate, cluster window,
    /// MBT span).
    pub probe: AliasConfig,
    /// Cap on candidate interfaces offered to the prober per round
    /// (stride-sampled when the derived candidate set overflows, so
    /// the stage spans the whole address range).
    pub max_candidates_per_round: usize,
    /// Per-round cap on alias probes, on top of the loop's remaining
    /// global budget (whichever is smaller wins). A truncated stage
    /// leaves untested interfaces fresh for the next round.
    pub max_probes_per_round: u64,
}

impl Default for AliasStageConfig {
    fn default() -> Self {
        AliasStageConfig {
            probe: AliasConfig::default(),
            max_candidates_per_round: 256,
            max_probes_per_round: 20_000,
        }
    }
}

/// Knobs for [`run_adaptive_delta`]'s snapshot-seeded mode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeltaSeedConfig {
    /// How many already-known targets to re-probe as *canaries*: a
    /// stride-sampled subset of the prior snapshot's targets whose
    /// observations are compared against the stored ones. A canary
    /// whose trace changed reopens its whole target-prefix shard for
    /// re-probing (and resets the yield-floor streak).
    pub canary_targets: usize,
}

impl Default for DeltaSeedConfig {
    fn default() -> Self {
        DeltaSeedConfig { canary_targets: 64 }
    }
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            yarrp: YarrpConfig::default(),
            stream: StreamConfig::default(),
            vantages: vec![0],
            vantage_budgeting: false,
            vantage_floor_share: 0.10,
            vantage_smoothing: 0.5,
            probe_budget: 1_000_000,
            round_targets: 4_096,
            shards: 1,
            max_rounds: 8,
            min_yield_per_kprobes: 1.0,
            patience: 2,
            feedback: FeedbackParams::default(),
            per_prefix_64s: 16,
            iid: IidStrategy::FixedIid,
            rng_seed: 0xada_917e,
            path_div: None,
            retry: RetryPolicy::default(),
            quarantine_feedback: false,
            quarantine: QuarantineConfig::default(),
            alias_resolution: false,
            alias: AliasStageConfig::default(),
            delta_seeding: None,
        }
    }
}

/// Why the loop ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The probe budget cannot fund another target.
    BudgetExhausted,
    /// Marginal yield stayed below the floor for `patience` rounds.
    YieldFloor,
    /// Feedback generation produced no unprobed targets.
    NoTargets,
    /// The round cap was reached.
    MaxRounds,
    /// Every configured vantage degraded (retry-exhausted failures or
    /// permanent blackout); nobody is left to probe.
    AllVantagesDown,
}

/// One vantage's slice of a round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VantageRound {
    /// Vantage index.
    pub vantage: u8,
    /// Targets allocated to this vantage this round.
    pub targets: u64,
    /// Probes this vantage's campaigns injected (all supervised
    /// attempts — retries burn budget too).
    pub probes: u64,
    /// Interfaces this vantage discovered that were unknown at round
    /// start. Two vantages finding the same new interface both get
    /// credit here (this measures vantage productivity, not the
    /// round's deduplicated total — that is
    /// [`RoundReport::new_interfaces`]).
    pub new_interfaces: u64,
    /// The share of the next round's allocation this vantage earned
    /// (post-smoothing, post-floor). Uniform `1/k` when vantage
    /// budgeting is off; 0 for a dead vantage.
    pub next_share: f64,
    /// At least one of this vantage's campaigns ended degraded this
    /// round (exhausted retries or a final-blackout attempt). When
    /// *every* campaign degraded the vantage is declared dead and
    /// excluded from later rounds.
    pub degraded: bool,
    /// Most supervised attempts any of this vantage's campaigns needed
    /// (1 = everything succeeded first try, 0 = the vantage ran no
    /// campaigns this round).
    pub attempts: u32,
    /// Probes eaten by injected faults across this vantage's attempts
    /// ([`EngineStats::fault_dropped_total`]).
    pub fault_dropped: u64,
}

/// One round's accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundReport {
    /// Round index (0-based).
    pub round: usize,
    /// Targets probed this round (per vantage).
    pub targets: u64,
    /// Probes the engines injected this round (all campaigns).
    pub probes: u64,
    /// Interfaces first discovered this round.
    pub new_interfaces: u64,
    /// Subnets first inferred this round.
    pub new_subnets: u64,
    /// Marginal yield: `1000 × new_interfaces / probes`.
    pub yield_per_kprobe: f64,
    /// ICMPv6 errors the routers suppressed this round — high values
    /// mean low yield reflects rate limiting, not an exhausted net.
    pub rate_limited: u64,
    /// Bucket-audited suppression split: default-class limiters.
    pub rl_dropped_default: u64,
    /// Bucket-audited suppression split: aggressive-class limiters.
    pub rl_dropped_aggressive: u64,
    /// Routers in the incremental router-level graph after this round's
    /// alias stage (observed nodes only — alias groups discovery never
    /// saw are excluded). 0 when
    /// [`AdaptiveConfig::alias_resolution`] is off.
    pub routers: u64,
    /// Alias candidate pairs the monotonic-bound test confirmed this
    /// round. 0 when the stage is off.
    pub alias_pairs_confirmed: u64,
    /// Alias candidate pairs the MBT ran on and rejected this round.
    /// 0 when the stage is off.
    pub alias_pairs_rejected: u64,
    /// Probes the alias stage spent this round (supervised attempts
    /// included; part of [`probes`](Self::probes) and charged against
    /// the global budget). 0 when the stage is off.
    pub alias_probes: u64,
    /// Per-vantage accounting, in [`AdaptiveConfig::vantages`] order.
    pub per_vantage: Vec<VantageRound>,
}

impl RoundReport {
    /// The vantages that ended this round degraded (at least one
    /// campaign exhausted its retries or stayed blacked out).
    pub fn degraded_vantages(&self) -> Vec<u8> {
        self.per_vantage
            .iter()
            .filter(|p| p.degraded)
            .map(|p| p.vantage)
            .collect()
    }
}

/// The finished loop: everything the rounds earned, plus the pinned
/// determinism surface (round-by-round target lists).
#[derive(Clone, Debug)]
pub struct AdaptiveResult {
    /// Per-round accounting, in order.
    pub rounds: Vec<RoundReport>,
    /// Each round's exact (sorted, deduplicated) target list — the
    /// seeded-determinism contract of the loop.
    pub round_targets: Vec<Vec<Ipv6Addr>>,
    /// Every campaign's trace set, rounds in order, vantage-major
    /// within a round, shards within a vantage. A campaign that failed
    /// hard (exhausted supervisor retries without one completed
    /// attempt) contributes no set.
    pub traces: Vec<TraceSet>,
    /// Engine accounting accumulated over all campaigns (every
    /// supervised attempt) via [`EngineStats::merge`].
    pub stats: EngineStats,
    /// All discovered interfaces, in discovery order.
    pub interfaces: AddrSet,
    /// All inferred subnet prefixes, in discovery order.
    pub subnets: Vec<Ipv6Prefix>,
    /// The router-level view accumulated by the alias stage; `None`
    /// when [`AdaptiveConfig::alias_resolution`] is off.
    pub router_level: Option<RouterLevelResult>,
    /// Why the loop stopped.
    pub stop: StopReason,
}

/// What the alias stage earned over the whole run
/// ([`AdaptiveResult::router_level`]).
#[derive(Clone, Debug)]
pub struct RouterLevelResult {
    /// The canonical router-level graph: union-find alias classes over
    /// every ingested trace link.
    pub graph: RouterGraph,
    /// Interfaces observed in qualifying hop windows — the denominator
    /// of [`collapse_ratio`](Self::collapse_ratio).
    pub interfaces: u64,
    /// Probes the alias stage spent (all rounds, all supervised
    /// attempts).
    pub alias_probes: u64,
    /// Candidate pairs the monotonic-bound test confirmed.
    pub pairs_confirmed: u64,
    /// Candidate pairs the MBT rejected.
    pub pairs_rejected: u64,
}

impl RouterLevelResult {
    /// Routers resolved: observed nodes of the graph (alias groups
    /// discovery never saw are kept in the graph but not counted here).
    pub fn routers(&self) -> usize {
        self.graph.observed_node_count()
    }

    /// `routers / interfaces` — below 1.0 exactly when alias resolution
    /// collapsed interfaces into multi-interface routers.
    pub fn collapse_ratio(&self) -> f64 {
        if self.interfaces == 0 {
            1.0
        } else {
            self.routers() as f64 / self.interfaces as f64
        }
    }
}

impl AdaptiveResult {
    /// Unique interfaces discovered over the whole run.
    pub fn unique_interfaces(&self) -> usize {
        self.interfaces.len()
    }

    /// Probes consumed over the whole run.
    pub fn probes(&self) -> u64 {
        self.stats.probes
    }

    /// The cross-vantage, cross-round union of every campaign's trace
    /// set ([`TraceSet::merge_all`] in execution order — rounds in
    /// order, vantage-major within a round), with per-trace vantage
    /// provenance. The merged interner is the loop's full discovery
    /// union; the trace columns keep the earliest campaign's trace per
    /// target.
    pub fn merged_traces(&self) -> TraceSet {
        TraceSet::merge_all(&self.traces)
    }
}

/// The loop's complete cross-round state — everything the next round
/// reads. Captured at every round boundary by the checkpoint layer
/// ([`Checkpoint`]); resuming from a snapshot of this state reproduces
/// the uninterrupted run bit-identically.
#[derive(Clone, Debug)]
pub(crate) struct LoopState {
    /// EWMA yield weights, one per configured vantage.
    pub(crate) vweights: Vec<f64>,
    /// Liveness mask, one per configured vantage; a vantage goes (and
    /// stays) dead when every one of its campaigns degrades in a round.
    pub(crate) alive: Vec<bool>,
    /// Interfaces discovered so far, in discovery order.
    pub(crate) seen: AddrSet,
    /// Targets already probed (never re-paid).
    pub(crate) probed: AddrSet,
    /// Subnets inferred so far, in discovery order.
    pub(crate) subnets: Vec<Ipv6Prefix>,
    /// Finished round reports.
    pub(crate) rounds: Vec<RoundReport>,
    /// Each finished round's exact target list.
    pub(crate) round_targets: Vec<Vec<Ipv6Addr>>,
    /// Every completed campaign's trace set.
    pub(crate) traces: Vec<TraceSet>,
    /// Merged engine accounting.
    pub(crate) stats: EngineStats,
    /// Probes charged against the budget.
    pub(crate) consumed: u64,
    /// Consecutive rounds below the yield floor.
    pub(crate) low_streak: usize,
    /// The candidate pool the next round samples its targets from.
    pub(crate) pool: Vec<Ipv6Addr>,
    /// Accumulated virtual time: where the next round's campaigns
    /// start on the fault schedule's clock.
    pub(crate) vclock_us: u64,
    /// Alias-stage state; `Some` exactly when
    /// [`AdaptiveConfig::alias_resolution`] is on (installed at loop
    /// start, carried through checkpoints).
    pub(crate) alias: Option<AliasState>,
}

/// Cross-round state of the alias-resolution stage.
#[derive(Clone, Debug, Default)]
pub(crate) struct AliasState {
    /// The incrementally maintained router-level graph.
    pub(crate) builder: RouterGraphBuilder,
    /// Interfaces the prober has already tested (listed in a prior
    /// stage's groups/singletons/unresponsive). Candidates stay
    /// re-offerable — cross-round pairing needs the old member probed
    /// alongside the new one — but a round with no *fresh* member in a
    /// bucket re-probes nobody.
    pub(crate) probed: AddrSet,
    /// MBT-confirmed pairs over all rounds.
    pub(crate) pairs_confirmed: u64,
    /// MBT-rejected pairs over all rounds.
    pub(crate) pairs_rejected: u64,
    /// Alias probes charged against the budget over all rounds.
    pub(crate) probes: u64,
}

impl LoopState {
    fn fresh(initial: &TargetSet, k: usize) -> Self {
        LoopState {
            vweights: vec![1.0 / k as f64; k],
            alive: vec![true; k],
            seen: AddrSet::new(),
            probed: AddrSet::new(),
            subnets: Vec::new(),
            rounds: Vec::new(),
            round_targets: Vec::new(),
            traces: Vec::new(),
            stats: EngineStats::default(),
            consumed: 0,
            low_streak: 0,
            pool: initial.addrs.clone(),
            vclock_us: 0,
            alias: None,
        }
    }
}

/// Runs the adaptive loop with each round's campaigns executed
/// serially. See the module docs for the loop structure.
pub fn run_adaptive(
    topo: &Arc<Topology>,
    initial: &TargetSet,
    cfg: &AdaptiveConfig,
) -> AdaptiveResult {
    let st = LoopState::fresh(initial, cfg.vantages.len().max(1));
    run_loop(topo, cfg, false, st, None, |_| {})
}

/// Runs the adaptive loop with each round's campaigns executed on the
/// work-queue thread pool. Bit-identical to [`run_adaptive`] (campaigns
/// are engine-isolated and return in input order); the discovery
/// mining between rounds is always on the calling thread.
pub fn run_adaptive_parallel(
    topo: &Arc<Topology>,
    initial: &TargetSet,
    cfg: &AdaptiveConfig,
) -> AdaptiveResult {
    let st = LoopState::fresh(initial, cfg.vantages.len().max(1));
    run_loop(topo, cfg, true, st, None, |_| {})
}

/// Runs the adaptive loop seeded from a prior run's persisted sharded
/// store ([`ShardedTraceSet`], typically loaded with
/// [`analysis::read_sharded_snapshot`]): everything the snapshot
/// already discovered counts as seen, every target it already holds a
/// trace for is pre-marked probed, and budget flows only to *new*
/// targets — plus a stride-sampled set of **canaries**
/// ([`DeltaSeedConfig::canary_targets`]) re-probed to detect topology
/// change. A canary whose observations differ from the stored trace
/// reopens its whole target-prefix shard (every stored target in the
/// canary's [`ShardRoute`](analysis::ShardRoute) shard is re-queued)
/// and resets the yield-floor streak, so changed regions are re-swept
/// at full intensity while unchanged regions cost only their canaries.
///
/// Reads [`AdaptiveConfig::delta_seeding`] (its default when `None`).
/// The result's `traces` include the prior shards (the merged view is
/// the updated store); `stats`/`probes()` count only this run's
/// probing. Delta runs are not checkpointable — the snapshot, not the
/// checkpoint layer, is the durability story here.
pub fn run_adaptive_delta(
    topo: &Arc<Topology>,
    initial: &TargetSet,
    cfg: &AdaptiveConfig,
    prior: &ShardedTraceSet,
    parallel: bool,
) -> AdaptiveResult {
    let dcfg = cfg.delta_seeding.unwrap_or_default();
    let mut st = LoopState::fresh(initial, cfg.vantages.len().max(1));
    // The snapshot's discoveries seed the seen-set (they are not
    // re-counted as yield) and its shards seed the kept trace record,
    // so the result's merged view is the updated store.
    prior.discovery_delta(&mut st.seen);
    st.traces.extend(prior.shards().iter().cloned());
    // Every stored target — the prior run's initial *and* feedback
    // rounds — is pre-marked probed so no budget re-pays it (feedback
    // generation from the seeded seen-set re-derives much of the prior
    // run's target space; without this the delta run would re-sweep
    // it). Canaries are exempted: they stay probeable for change
    // detection. Shard target lists are disjoint, so one sort yields
    // the stride-sampling order.
    let mut known: Vec<Ipv6Addr> = prior
        .shards()
        .iter()
        .flat_map(|s| s.targets().iter().copied())
        .collect();
    known.sort_unstable();
    let canaries = stride_sample(&known, dcfg.canary_targets.max(1));
    for &t in &known {
        if canaries.binary_search(&t).is_err() {
            st.probed.insert(t);
        }
    }
    // The canaries ride the force queue into round 0: most stored
    // targets are feedback-round derivations outside `initial`'s pool,
    // so sampling the pool alone would re-probe almost none of them.
    let delta = DeltaCtx {
        prior,
        force: canaries.clone(),
        canaries,
        reopened: vec![false; prior.n_shards()],
    };
    run_loop(topo, cfg, parallel, st, Some(delta), |_| {})
}

/// [`run_adaptive`] (or its parallel form) with a [`Checkpoint`]
/// handed to `on_round` at **every round boundary** — after the
/// round's mining, budget accounting and pool regeneration, i.e.
/// exactly the state the next round starts from. Persist
/// [`Checkpoint::to_bytes`] wherever durability lives; a process
/// killed between rounds resumes with [`resume_adaptive`]
/// bit-identically.
pub fn run_adaptive_checkpointed(
    topo: &Arc<Topology>,
    initial: &TargetSet,
    cfg: &AdaptiveConfig,
    parallel: bool,
    mut on_round: impl FnMut(&Checkpoint),
) -> AdaptiveResult {
    let digest = config_digest(topo, cfg);
    let st = LoopState::fresh(initial, cfg.vantages.len().max(1));
    run_loop(topo, cfg, parallel, st, None, |s| {
        on_round(&Checkpoint::capture(digest, s))
    })
}

/// Continues an adaptive run from a round-boundary [`Checkpoint`].
/// The final [`AdaptiveResult`] — merged trace set, stats, reports —
/// is bit-identical to the run that was never interrupted, provided
/// `topo` and `cfg` are the ones the checkpoint was taken under
/// (enforced by digest; a mismatch is a [`ResumeError`], not a corrupt
/// result).
pub fn resume_adaptive(
    topo: &Arc<Topology>,
    cfg: &AdaptiveConfig,
    ckpt: &Checkpoint,
    parallel: bool,
) -> Result<AdaptiveResult, ResumeError> {
    resume_adaptive_checkpointed(topo, cfg, ckpt, parallel, |_| {})
}

/// [`resume_adaptive`] that keeps checkpointing: `on_round` fires at
/// every round boundary after the resume point.
pub fn resume_adaptive_checkpointed(
    topo: &Arc<Topology>,
    cfg: &AdaptiveConfig,
    ckpt: &Checkpoint,
    parallel: bool,
    mut on_round: impl FnMut(&Checkpoint),
) -> Result<AdaptiveResult, ResumeError> {
    let digest = config_digest(topo, cfg);
    if digest != ckpt.digest() {
        return Err(ResumeError::ConfigMismatch);
    }
    Ok(run_loop(
        topo,
        cfg,
        parallel,
        ckpt.state().clone(),
        None,
        |s| on_round(&Checkpoint::capture(digest, s)),
    ))
}

/// Cross-round context of a delta-seeded run ([`run_adaptive_delta`]):
/// the prior store the canaries compare against, which shards have
/// already been reopened, and the reopened targets queued for the next
/// round. `None` everywhere else — the plain loop never looks at it.
struct DeltaCtx<'a> {
    prior: &'a ShardedTraceSet,
    /// Stride-sampled known targets re-probed for change detection
    /// (sorted — a subset of the sorted initial list).
    canaries: Vec<Ipv6Addr>,
    /// Reopen-once latch per prior shard.
    reopened: Vec<bool>,
    /// Targets queued for forced re-probing (reopened shards), drained
    /// up to the round cap each round.
    force: Vec<Ipv6Addr>,
}

fn run_loop(
    topo: &Arc<Topology>,
    cfg: &AdaptiveConfig,
    parallel: bool,
    mut st: LoopState,
    mut delta: Option<DeltaCtx<'_>>,
    mut on_round: impl FnMut(&LoopState),
) -> AdaptiveResult {
    assert!(!cfg.vantages.is_empty(), "at least one vantage required");
    // Install the alias stage's cross-round state on a fresh run; a
    // resumed run arrives with it already populated (or absent, when
    // the stage is off — the checkpoint round-trips both).
    if cfg.alias_resolution && st.alias.is_none() {
        st.alias = Some(AliasState::default());
    }
    let shards = cfg.shards.max(1);
    let k = cfg.vantages.len();
    assert_eq!(st.vweights.len(), k, "state/config vantage count mismatch");
    // Per-vantage yield weights: an EWMA-smoothed distribution (sums
    // to 1), updated from marginal yield when vantage budgeting is on;
    // uniform (and untouched) otherwise. The *allocation share* of a
    // vantage is `floor + (1 - k·floor) · weight` — an affine map that
    // keeps every vantage at or above the exploration floor exactly
    // while still summing to 1 (flooring-then-renormalizing would push
    // quiet vantages back below the floor). With dead vantages the
    // surviving weights renormalize and the same affine map runs over
    // the survivor count — a dead vantage's share flows to the living.
    let floor = cfg.vantage_floor_share.clamp(0.0, 1.0 / k as f64);
    let share_of = move |w: f64| floor + (1.0 - k as f64 * floor) * w;
    let share_vec = |vweights: &[f64], alive: &[bool]| -> Vec<f64> {
        let alive_k = alive.iter().filter(|&&a| a).count();
        if alive_k == k {
            // All alive: the original formula, untouched (bit-identical
            // to fault-free releases — no renormalizing division).
            return vweights.iter().map(|&w| share_of(w)).collect();
        }
        if alive_k == 0 {
            return vec![0.0; k];
        }
        let wsum: f64 = vweights
            .iter()
            .zip(alive)
            .filter(|&(_, &a)| a)
            .map(|(&w, _)| w)
            .sum();
        let floor_a = cfg.vantage_floor_share.clamp(0.0, 1.0 / alive_k as f64);
        vweights
            .iter()
            .zip(alive)
            .map(|(&w, &a)| {
                if !a {
                    0.0
                } else {
                    let wn = if wsum > 0.0 {
                        w / wsum
                    } else {
                        1.0 / alive_k as f64
                    };
                    floor_a + (1.0 - alive_k as f64 * floor_a) * wn
                }
            })
            .collect()
    };
    let resolver = cfg.path_div.map(|_| {
        AsnResolver::new(
            topo.bgp.clone(),
            topo.rir_extra.clone(),
            &topo.asn_equivalences,
        )
    });
    // Rebuilt (not checkpointed) membership view of `st.subnets`.
    let mut subnet_set: BTreeSet<Ipv6Prefix> = st.subnets.iter().copied().collect();

    let stop = loop {
        let round = st.rounds.len();
        // Every stop decision happens here at the loop top, from state
        // alone — that is what makes the round-boundary checkpoint a
        // complete resume point. Order matters and mirrors the original
        // control flow: the yield-floor verdict of the previous round
        // precedes the round cap.
        if st.low_streak > 0 && st.low_streak >= cfg.patience {
            break StopReason::YieldFloor;
        }
        if round >= cfg.max_rounds {
            break StopReason::MaxRounds;
        }
        let alive_k = st.alive.iter().filter(|&&a| a).count();
        if alive_k == 0 {
            break StopReason::AllVantagesDown;
        }
        // Nominal per-target probe cost, used only to pre-truncate a
        // round's list; the budget itself is enforced on actual
        // injections. Dead vantages don't probe, so they don't count.
        let per_target = cfg.yarrp.max_ttl as u64 * alive_k as u64;
        let remaining = cfg.probe_budget.saturating_sub(st.consumed);
        let budget_cap = (remaining / per_target) as usize;
        if budget_cap == 0 {
            break StopReason::BudgetExhausted;
        }

        // This round's targets: the unprobed part of the pool, capped
        // by the round size and the remaining budget. When the pool
        // overflows the cap, stride-sample it so the round spans the
        // whole (sorted) pool instead of starving high address space —
        // a lowest-first truncation would spend every round in the
        // same low slabs.
        let unprobed: Vec<Ipv6Addr> = st
            .pool
            .iter()
            .copied()
            .filter(|&a| !st.probed.contains(a))
            .collect();
        let cap = cfg.round_targets.min(budget_cap);
        // Delta seeding: reopened-shard targets jump the queue — they
        // fill the round up to the cap first (leftovers wait for the
        // next round), the regular pool sample takes what remains.
        let forced: Vec<Ipv6Addr> = match delta.as_mut() {
            Some(d) if !d.force.is_empty() => {
                let take = d.force.len().min(cap);
                d.force.drain(..take).collect()
            }
            _ => Vec::new(),
        };
        let targets = if forced.is_empty() {
            stride_sample(&unprobed, cap)
        } else {
            let mut t = forced;
            t.extend(stride_sample(&unprobed, cap - t.len()));
            t.sort_unstable();
            t.dedup();
            t
        };
        if targets.is_empty() {
            break StopReason::NoTargets;
        }
        for &t in &targets {
            // Forced re-probes were already marked in a prior round (or
            // at delta seeding); re-inserting is a harmless no-op.
            st.probed.insert(t);
        }

        // Per-vantage allocation of the round's `alive_k × |targets|`
        // target-probe budget: uniform budgeting gives every living
        // vantage the full list; vantage budgeting splits it by the
        // tracked yield shares (dead vantages hold share 0).
        let alloc: Vec<usize> = if cfg.vantage_budgeting && k > 1 {
            let shares = share_vec(&st.vweights, &st.alive);
            shares
                .iter()
                .zip(&st.alive)
                .map(|(&s, &a)| {
                    if !a {
                        0
                    } else {
                        ((s * (alive_k * targets.len()) as f64).round() as usize)
                            .clamp(1, targets.len())
                    }
                })
                .collect()
        } else {
            st.alive
                .iter()
                .map(|&a| if a { targets.len() } else { 0 })
                .collect()
        };

        // Round-robin sharding keeps each shard spread across the
        // address space (and the permutation within a campaign does the
        // rest of the burst-avoidance). Under vantage budgeting each
        // vantage first stride-samples its allocated slice of the round
        // list, so a shrunken allocation still spans the whole space;
        // with uniform allocations (the default mode, and any round
        // where every share rounds to the full list) all vantages share
        // one set of shard sets instead of building k identical copies.
        let make_shards = |vtargets: &[Ipv6Addr]| -> Vec<TargetSet> {
            (0..shards)
                .map(|s| {
                    let name: Arc<str> = if shards == 1 {
                        format!("adaptive-r{round}").into()
                    } else {
                        format!("adaptive-r{round}-s{s}").into()
                    };
                    TargetSet::new(
                        name,
                        vtargets
                            .iter()
                            .copied()
                            .enumerate()
                            .filter(|(i, _)| i % shards == s)
                            .map(|(_, a)| a),
                    )
                })
                .collect()
        };
        let uniform = alive_k == k && alloc.iter().all(|&n| n >= targets.len());
        let vantage_sets: Vec<Vec<TargetSet>> = if uniform {
            vec![make_shards(&targets)]
        } else {
            alloc
                .iter()
                .map(|&n| {
                    if n == 0 {
                        Vec::new()
                    } else {
                        make_shards(&stride_sample(&targets, n))
                    }
                })
                .collect()
        };
        // Specs plus a campaign → vantage-position map (dead vantages
        // contribute no campaigns, so `i / shards` no longer works).
        let mut specs: Vec<CampaignSpec<'_>> = Vec::new();
        let mut spec_vi: Vec<usize> = Vec::new();
        for (vi, &v) in cfg.vantages.iter().enumerate() {
            for set in &vantage_sets[if uniform { 0 } else { vi }] {
                specs.push(CampaignSpec {
                    vantage_idx: v,
                    set,
                    cfg: cfg.yarrp,
                });
                spec_vi.push(vi);
            }
        }

        // Supervised execution: campaigns start at the loop's virtual
        // clock, failures and blackouts retry with deterministic
        // backoff, exhausted retries come back degraded, never a panic.
        let results = stream_campaigns_supervised(
            topo,
            &specs,
            &cfg.stream,
            &cfg.retry,
            st.vclock_us,
            parallel,
        );
        let round_elapsed = results.iter().map(|sc| sc.elapsed_us).max().unwrap_or(0);

        // Quarantine (opt-in): scrub hostile-responder artifacts from
        // the round's trace sets *jointly* — evidence pools across
        // vantages, so a router lying toward one is condemned toward
        // all — before any cell reaches subnet inference, the kept
        // trace record, or the feedback generators. Discovery
        // *counting* (seen-set, attribution) stays on the raw sets:
        // everything past the decoder is a real, checksum-validated
        // responder. `cleaned` is index-aligned with `results` (None
        // where a campaign failed outright). Default off: the raw
        // path below is untouched.
        let mut cleaned: Vec<Option<TraceSet>> = if cfg.quarantine_feedback {
            let refs: Vec<&TraceSet> = results
                .iter()
                .filter_map(|sc| sc.result.as_ref().map(|run| &run.output))
                .collect();
            let (scrubbed, _report) = quarantine_all(&refs, &cfg.quarantine);
            let mut it = scrubbed.into_iter();
            results
                .iter()
                .map(|sc| {
                    sc.result
                        .as_ref()
                        .map(|_| it.next().expect("scrubbed sets align with results"))
                })
                .collect()
        } else {
            Vec::new()
        };

        // Per-vantage yield attribution, *before* the global seen-set
        // absorbs the round: crediting against the unmutated round-
        // start state means shared finds credit every vantage that
        // made them, without order bias — and without cloning the
        // (ever-growing) seen-set each round.
        let mut per_v: Vec<VantageRound> = cfg
            .vantages
            .iter()
            .zip(&alloc)
            .map(|(&v, &n)| VantageRound {
                vantage: v,
                targets: n as u64,
                probes: 0,
                new_interfaces: 0,
                next_share: 0.0,
                degraded: false,
                attempts: 0,
                fault_dropped: 0,
            })
            .collect();
        let mut vfresh = AddrSet::new();
        let mut cur_vi = usize::MAX;
        // A vantage survives the round if at least one of its campaigns
        // came back non-degraded.
        let mut v_ok = vec![false; k];
        for (i, sc) in results.iter().enumerate() {
            let vi = spec_vi[i];
            if vi != cur_vi {
                vfresh = AddrSet::new();
                cur_vi = vi;
            }
            per_v[vi].probes += sc.stats.probes;
            per_v[vi].attempts = per_v[vi].attempts.max(sc.attempts);
            per_v[vi].fault_dropped += sc.stats.fault_dropped_total();
            if sc.degraded {
                per_v[vi].degraded = true;
            } else {
                v_ok[vi] = true;
            }
            if let Some(run) = &sc.result {
                // Attribution (like the seen-set below) counts every
                // checksum-validated responder, quarantined or not:
                // condemned responders are real interfaces whose
                // *reported structure* is untrustworthy — discovery
                // accounting keeps them, feedback does not.
                for &w in run.output.interner().words() {
                    let a = Ipv6Addr::from(w);
                    if !st.seen.contains(a) && vfresh.insert(a) {
                        per_v[vi].new_interfaces += 1;
                    }
                }
            }
        }

        // Mine the round: discovery deltas against the global seen-set,
        // inferred subnets, merged engine accounting (every supervised
        // attempt's probes count — retries burn real budget).
        let sets_before = st.traces.len();
        let mut round_stats = EngineStats::default();
        let mut new_ifaces = 0u64;
        let mut new_subnets = 0u64;
        for (i, sc) in results.into_iter().enumerate() {
            round_stats.merge(&sc.stats);
            let Some(run) = sc.result else {
                continue; // hard failure: no trace set to mine
            };
            // The seen-set absorbs the *raw* set — every responder
            // that survived the panic-free decoder (checksum-verified,
            // quote-consistent) is a genuinely observed interface and
            // counts toward yield, even when the quarantine condemns
            // its reported hop structure.
            new_ifaces += run.output.discovery_delta(&mut st.seen).len() as u64;
            // Structure mining and the kept trace record use the
            // quarantined set when the stage is on: subnet inference,
            // path-divergence and the result's traces then hold only
            // clean cells.
            let ts = match cleaned.get_mut(i).and_then(|c| c.take()) {
                Some(clean) => clean,
                None => run.output,
            };
            for cand in ia_hack(&ts) {
                if subnet_set.insert(cand.prefix) {
                    st.subnets.push(cand.prefix);
                    new_subnets += 1;
                }
            }
            if let (Some(params), Some(res)) = (&cfg.path_div, &resolver) {
                let v = cfg.vantages[spec_vi[i]];
                let vasn = topo.ases[topo.vantages[v as usize].as_idx as usize].asn;
                for cand in discover_by_path_div(&ts, res, vasn, params) {
                    if subnet_set.insert(cand.prefix) {
                        st.subnets.push(cand.prefix);
                        new_subnets += 1;
                    }
                }
            }
            st.traces.push(ts);
        }

        // Alias-resolution stage (opt-in): extend the incremental
        // router graph with the round's kept sets, derive candidate
        // sibling interfaces from the discoveries, and speedtrap them
        // under the supervised campaign rules — on the loop's virtual
        // clock (after the round's campaigns), charged against the
        // same global probe budget. Default off: no probe is sent and
        // none of the round's accounting moves.
        let mut alias_elapsed = 0u64;
        let (mut alias_probes, mut alias_confirmed, mut alias_rejected) = (0u64, 0u64, 0u64);
        let mut routers = 0u64;
        if let Some(al) = st.alias.as_mut() {
            for ts in &st.traces[sets_before..] {
                al.builder.ingest(ts);
            }
            // Fresh responders: this round's interfaces the prober has
            // not yet tested. A candidate bucket with no fresh member
            // was fully adjudicated in an earlier round.
            let mut fresh = AddrSet::new();
            for ts in &st.traces[sets_before..] {
                for &w in ts.interner().words() {
                    let a = Ipv6Addr::from(w);
                    if !al.probed.contains(a) {
                        fresh.insert(a);
                    }
                }
            }
            let mut cand: BTreeSet<Ipv6Addr> = BTreeSet::new();
            if !fresh.is_empty() {
                // Shared-/64 heuristic over the whole trace record:
                // interfaces numbered out of one /64 are prime
                // same-router candidates. Old members of a bucket with
                // a fresh arrival re-probe, so cross-round pairs can
                // still confirm. Recomputed from checkpointed state —
                // resume derives it bit-identically.
                let mut by64: BTreeMap<u64, BTreeSet<Ipv6Addr>> = BTreeMap::new();
                for ts in &st.traces {
                    for &w in ts.interner().words() {
                        by64.entry((w >> 64) as u64)
                            .or_default()
                            .insert(Ipv6Addr::from(w));
                    }
                }
                for bucket in by64.values() {
                    if bucket.len() >= 2 && bucket.iter().any(|&a| fresh.contains(a)) {
                        cand.extend(bucket.iter().copied());
                    }
                }
                // Shared trace-neighborhood: interfaces answering at
                // one TTL for targets in one /64 occupy the same
                // topological position — sibling candidates even
                // across /64 boundaries.
                let mut byhop: BTreeMap<(u64, u8), BTreeSet<Ipv6Addr>> = BTreeMap::new();
                for ts in &st.traces[sets_before..] {
                    let words = ts.interner().words();
                    for tv in ts.iter() {
                        let t64 = (u128::from(tv.target()) >> 64) as u64;
                        for &(ttl, aid) in tv.hop_cells() {
                            byhop
                                .entry((t64, ttl))
                                .or_default()
                                .insert(Ipv6Addr::from(words[aid as usize]));
                        }
                    }
                }
                for bucket in byhop.values() {
                    if bucket.len() >= 2 && bucket.iter().any(|&a| fresh.contains(a)) {
                        cand.extend(bucket.iter().copied());
                    }
                }
            }
            let cand: Vec<Ipv6Addr> = cand.into_iter().collect();
            let cand = stride_sample(&cand, cfg.alias.max_candidates_per_round);
            let remaining = cfg
                .probe_budget
                .saturating_sub(st.consumed)
                .saturating_sub(round_stats.probes);
            let cap = cfg.alias.max_probes_per_round.min(remaining);
            if !cand.is_empty() && cap > 0 {
                if let Some(vi) = st.alive.iter().position(|&a| a) {
                    let run = resolve_aliases_supervised(
                        topo,
                        cfg.vantages[vi],
                        &cand,
                        &cfg.alias.probe,
                        &cfg.retry,
                        st.vclock_us.saturating_add(round_elapsed),
                        cap,
                    );
                    round_stats.merge(&run.stats);
                    alias_probes = run.stats.probes;
                    alias_elapsed = run.elapsed_us;
                    per_v[vi].probes += run.stats.probes;
                    per_v[vi].fault_dropped += run.stats.fault_dropped_total();
                    per_v[vi].attempts = per_v[vi].attempts.max(run.attempts);
                    if run.degraded {
                        per_v[vi].degraded = true;
                    }
                    if let Some(sets) = run.sets {
                        alias_confirmed = sets.pairs_confirmed;
                        alias_rejected = sets.pairs_rejected;
                        for g in &sets.groups {
                            al.builder.merge_alias_group(g);
                            for &a in g {
                                al.probed.insert(a);
                            }
                        }
                        for &a in sets.singletons.iter().chain(&sets.unresponsive) {
                            al.probed.insert(a);
                        }
                    }
                }
            }
            al.probes += alias_probes;
            al.pairs_confirmed += alias_confirmed;
            al.pairs_rejected += alias_rejected;
            routers = al.builder.snapshot().observed_node_count() as u64;
        }

        st.stats.merge(&round_stats);
        st.consumed += round_stats.probes;
        // All of a round's campaigns run concurrently in virtual time;
        // the round occupies the slowest one's span (including retry
        // backoffs), the alias stage runs after it, and the next round
        // starts after both.
        st.vclock_us = st
            .vclock_us
            .saturating_add(round_elapsed)
            .saturating_add(alias_elapsed);

        // Liveness: a vantage whose every campaign degraded is dead —
        // its weight zeroes and later rounds exclude it. (A vantage
        // with no campaigns this round keeps its state.)
        for vi in 0..k {
            if st.alive[vi] && per_v[vi].degraded && !v_ok[vi] {
                st.alive[vi] = false;
                st.vweights[vi] = 0.0;
            }
        }

        // Budget allocator update: shift the next round's allocation
        // toward the vantages that earned their probes this round. The
        // EWMA blends two distributions, so the weights stay a
        // distribution without renormalizing. (Dead vantages yield 0
        // and decay toward 0; the share map renormalizes survivors.)
        if cfg.vantage_budgeting && k > 1 {
            let yields: Vec<f64> = per_v
                .iter()
                .map(|p| p.new_interfaces as f64 / p.probes.max(1) as f64)
                .collect();
            let total: f64 = yields.iter().sum();
            if total > 0.0 {
                let keep = cfg.vantage_smoothing.clamp(0.0, 1.0);
                for (w, y) in st.vweights.iter_mut().zip(&yields) {
                    *w = keep * *w + (1.0 - keep) * (y / total);
                }
            }
        }
        let next_shares = share_vec(&st.vweights, &st.alive);
        for (p, &s) in per_v.iter_mut().zip(&next_shares) {
            p.next_share = s;
        }

        let yield_per_kprobe = 1000.0 * new_ifaces as f64 / round_stats.probes.max(1) as f64;
        st.rounds.push(RoundReport {
            round,
            targets: targets.len() as u64,
            probes: round_stats.probes,
            new_interfaces: new_ifaces,
            new_subnets,
            yield_per_kprobe,
            rate_limited: round_stats.rate_limited,
            rl_dropped_default: round_stats.rl_dropped_default,
            rl_dropped_aggressive: round_stats.rl_dropped_aggressive,
            routers,
            alias_pairs_confirmed: alias_confirmed,
            alias_pairs_rejected: alias_rejected,
            alias_probes,
            per_vantage: per_v,
        });
        st.round_targets.push(targets);

        // Stopping rule bookkeeping: marginal yield below the floor
        // for `patience` consecutive rounds (the break itself happens
        // at the loop top, off checkpointable state).
        if yield_per_kprobe < cfg.min_yield_per_kprobes {
            st.low_streak += 1;
        } else {
            st.low_streak = 0;
        }

        // Delta seeding: compare every canary probed this round against
        // its stored trace. Changed (or vanished) observations reopen
        // the canary's whole target-prefix shard — its stored targets
        // queue for forced re-probing — and reset the yield streak so
        // the floor can't stop the loop before the re-sweep runs.
        if let Some(d) = delta.as_mut() {
            let round_list = st
                .round_targets
                .last()
                .expect("round list pushed just above");
            let this_round = &st.traces[sets_before..];
            let mut reopened_any = false;
            for &c in &d.canaries {
                if round_list.binary_search(&c).is_err() {
                    continue; // not sampled this round
                }
                let changed = match (d.prior.get(c), this_round.iter().find_map(|ts| ts.get(c))) {
                    (Some(p), Some(f)) => !f.same_observations(&p),
                    (Some(_), None) => true, // trace vanished entirely
                    (None, _) => false,      // canaries are prior targets
                };
                if changed {
                    let s = d.prior.route().shard_of(c);
                    if !d.reopened[s] {
                        d.reopened[s] = true;
                        // Canaries re-probe through their own sampling;
                        // everything else in the shard queues.
                        d.force.extend(
                            d.prior
                                .shard(s)
                                .targets()
                                .iter()
                                .copied()
                                .filter(|t| d.canaries.binary_search(t).is_err()),
                        );
                        reopened_any = true;
                    }
                }
            }
            if reopened_any {
                st.low_streak = 0;
            }
        }

        // Skip pool regeneration when the loop top is certain to stop —
        // don't pay for (and then discard) a generation pass.
        let alive_after = st.alive.iter().filter(|&&a| a).count();
        let next_per_target = cfg.yarrp.max_ttl as u64 * alive_after.max(1) as u64;
        let stopping = (st.low_streak > 0 && st.low_streak >= cfg.patience)
            || st.rounds.len() >= cfg.max_rounds
            || alive_after == 0
            || cfg.probe_budget.saturating_sub(st.consumed) < next_per_target;
        if !stopping {
            // Feedback: regenerate the pool from *all* discoveries so
            // far plus everything already probed — the paper's 6Gen
            // basis ("targets probed plus interfaces discovered");
            // cumulative input gives the generators their cluster mass,
            // and the `probed` filter at the top keeps rounds from
            // re-paying.
            // With the quarantine on, *only clean interfaces feed
            // forward*: the kept trace record holds the scrubbed sets,
            // whose interners are exactly the surviving observations —
            // a condemned responder steers no future targeting. Derived
            // from checkpointed state, so resume recomputes it
            // bit-identically.
            let discovered: Vec<Ipv6Addr> = if cfg.quarantine_feedback {
                let mut clean = AddrSet::new();
                for ts in &st.traces {
                    for &w in ts.interner().words() {
                        clean.insert(Ipv6Addr::from(w));
                    }
                }
                clean.iter().collect()
            } else {
                st.seen.iter().collect()
            };
            let probed_targets: Vec<Ipv6Addr> = st.probed.iter().collect();
            let fb = feedback_list(
                format!("adaptive-fb-r{round}"),
                &discovered,
                &probed_targets,
                &st.subnets,
                &cfg.feedback,
                mix(cfg.rng_seed ^ round as u64),
            );
            st.pool = feedback_targets(
                format!("adaptive-r{}", round + 1),
                &fb,
                cfg.per_prefix_64s,
                cfg.iid,
            )
            .addrs;
        }
        // Round boundary: everything the next loop-top reads is now in
        // `st` — the checkpoint the observer sees is a complete resume
        // point.
        on_round(&st);
    };

    let router_level = st.alias.map(|al| RouterLevelResult {
        graph: al.builder.snapshot(),
        interfaces: al.builder.observed_interface_count() as u64,
        alias_probes: al.probes,
        pairs_confirmed: al.pairs_confirmed,
        pairs_rejected: al.pairs_rejected,
    });
    AdaptiveResult {
        rounds: st.rounds,
        round_targets: st.round_targets,
        traces: st.traces,
        stats: st.stats,
        interfaces: st.seen,
        subnets: st.subnets,
        router_level,
        stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::config::TopologyConfig;
    use simnet::generate::generate;

    fn fixture() -> (Arc<Topology>, TargetSet) {
        let topo = Arc::new(generate(TopologyConfig::tiny(42)));
        let addrs: Vec<Ipv6Addr> = topo.hosts().map(|(a, _)| a).take(60).collect();
        let set = TargetSet::new("adaptive-r0", addrs);
        (topo, set)
    }

    fn small_cfg() -> AdaptiveConfig {
        AdaptiveConfig {
            probe_budget: 60_000,
            round_targets: 200,
            max_rounds: 3,
            min_yield_per_kprobes: 0.0,
            ..AdaptiveConfig::default()
        }
    }

    #[test]
    fn loop_runs_and_accounts() {
        let (topo, set) = fixture();
        let res = run_adaptive(&topo, &set, &small_cfg());
        assert!(!res.rounds.is_empty());
        assert!(res.unique_interfaces() > 0);
        assert_eq!(res.rounds.len(), res.round_targets.len());
        // Stats accumulate across every campaign.
        let per_campaign: u64 = res.rounds.iter().map(|r| r.probes).sum();
        assert_eq!(res.stats.probes, per_campaign);
        // No round re-probes a target.
        let mut all = AddrSet::new();
        for rt in &res.round_targets {
            for &t in rt {
                assert!(all.insert(t), "target {t} probed twice");
            }
        }
        // Fault-free: nothing degraded, everything first-try.
        for r in &res.rounds {
            assert!(r.degraded_vantages().is_empty());
            for pv in &r.per_vantage {
                assert_eq!(pv.attempts, 1);
                assert_eq!(pv.fault_dropped, 0);
            }
        }
    }

    #[test]
    fn budget_is_respected() {
        let (topo, set) = fixture();
        let cfg = AdaptiveConfig {
            probe_budget: 5_000,
            round_targets: 10_000,
            max_rounds: 10,
            min_yield_per_kprobes: 0.0,
            ..AdaptiveConfig::default()
        };
        let res = run_adaptive(&topo, &set, &cfg);
        // Each round is pre-truncated to the nominal remainder, so the
        // overshoot is at most one round's fill-mode surplus.
        let nominal: u64 = res
            .rounds
            .iter()
            .map(|r| r.targets * cfg.yarrp.max_ttl as u64 * cfg.vantages.len() as u64)
            .sum();
        assert!(nominal <= cfg.probe_budget);
        assert!(matches!(
            res.stop,
            StopReason::BudgetExhausted | StopReason::YieldFloor | StopReason::NoTargets
        ));
    }

    #[test]
    fn yield_floor_stops_early() {
        let (topo, set) = fixture();
        let cfg = AdaptiveConfig {
            probe_budget: 10_000_000,
            round_targets: 50,
            max_rounds: 20,
            min_yield_per_kprobes: 1e9, // unreachable floor
            patience: 2,
            ..AdaptiveConfig::default()
        };
        let res = run_adaptive(&topo, &set, &cfg);
        assert_eq!(res.stop, StopReason::YieldFloor);
        assert_eq!(res.rounds.len(), 2);
    }
}
