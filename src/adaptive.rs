//! Adaptive multi-round topology discovery: the closed feedback loop
//! the paper argues for — *what you probe determines what you see*, so
//! round *n+1*'s targets are generated from round *n*'s discoveries.
//!
//! Each round streams probe campaigns straight into the incremental
//! [`TraceSetBuilder`](analysis::TraceSetBuilder) (record memory stays
//! bounded by the chunk channel), mines the finished
//! [`TraceSet`]s for newly discovered interfaces
//! ([`TraceSet::discovery_delta`] against one global seen-set) and
//! inferred subnets (the IA hack, optionally path divergence), feeds
//! those through the feedback seed generator
//! ([`seeds::feedback::feedback_list`]: kIP aggregation + 6Gen
//! expansion) and the feedback target synthesizer
//! ([`targets::feedback_targets`]), and repeats under a global probe
//! budget until the marginal yield stays below a floor for
//! [`AdaptiveConfig::patience`] consecutive rounds.
//!
//! ```text
//!        ┌──────────── targets (round n) ────────────┐
//!        │                                           ▼
//!  seeds/feedback ◄── interfaces + subnets ◄── stream_campaign(s)
//!   (kIP + 6Gen)        (discovery_delta,       → TraceSetBuilder
//!        │               IA hack/path-div)            │
//!        └────────── targets (round n+1) ◄────────────┘
//! ```
//!
//! Rounds are **multi-vantage**: every configured vantage probes each
//! round under one global seen-set, and with
//! [`AdaptiveConfig::vantage_budgeting`] the loop tracks each
//! vantage's marginal yield (new interfaces per probe, EWMA-smoothed
//! with an exploration floor) and reallocates the next round's
//! target-probe budget toward the vantages that are still earning —
//! the paper's vantage-diversity observation turned into a feedback
//! controller.
//!
//! Two drivers share one deterministic loop body:
//! [`run_adaptive`] runs each round's campaigns serially,
//! [`run_adaptive_parallel`] runs them on the work-queue pool
//! ([`analysis::stream_campaigns_parallel`]). Campaigns are
//! engine-isolated and results return in input order, so the two
//! produce bit-identical results — pinned by the `adaptive` test
//! suite, alongside a golden test that a one-round run equals a plain
//! [`analysis::stream_campaign`].
//!
//! This module lives in the umbrella crate because it is the one place
//! the whole pipeline meets: it orchestrates `yarrp6` (probers),
//! `analysis` (trace mining), `seeds`/`targets` (generation) and
//! `simnet` (the network under test).

use analysis::{
    discover_by_path_div, ia_hack, stream_campaigns_parallel, stream_campaigns_serial, AsnResolver,
    PathDivParams, TraceSet,
};
use seeds::feedback::{feedback_list, FeedbackParams};
// The workspace's shared splitmix64, for per-round generation seeds.
use simnet::flow::mix64 as mix;
use simnet::{EngineStats, Topology};
use std::collections::BTreeSet;
use std::net::Ipv6Addr;
use std::sync::Arc;
use targets::{feedback_targets, stride_sample, IidStrategy, TargetSet};
use v6addr::Ipv6Prefix;
use yarrp6::addrset::AddrSet;
use yarrp6::campaign::CampaignSpec;
use yarrp6::{StreamConfig, YarrpConfig};

/// Configuration of the adaptive discovery loop.
#[derive(Clone, Debug)]
pub struct AdaptiveConfig {
    /// Prober configuration used by every round's campaigns.
    pub yarrp: YarrpConfig,
    /// Bounded-channel configuration for the streaming campaigns.
    pub stream: StreamConfig,
    /// Vantage indices probing each round. With uniform budgeting
    /// every vantage probes every round target; with
    /// [`vantage_budgeting`](Self::vantage_budgeting) each vantage
    /// probes its allocated slice.
    pub vantages: Vec<u8>,
    /// Vantage-aware budget allocation: when `true`, the round's
    /// per-vantage target allocations follow each vantage's tracked
    /// marginal yield (new interfaces per probe, EWMA-smoothed), so
    /// probes shift toward productive vantages across rounds. When
    /// `false` (the default) every vantage probes the full round list —
    /// the original uniform behavior, bit-identical to earlier
    /// releases.
    pub vantage_budgeting: bool,
    /// Floor share of the per-round allocation any single vantage
    /// keeps under vantage budgeting (exploration: a vantage that went
    /// quiet can still prove itself again). Clamped to `1/len(vantages)`.
    pub vantage_floor_share: f64,
    /// EWMA smoothing for the per-vantage yield weights: the fraction
    /// of the previous weight retained each round (0 = follow the last
    /// round only, 1 = never move).
    pub vantage_smoothing: f64,
    /// Global probe budget: once the engines' cumulative probe count
    /// reaches it, no further round starts, and each round's target
    /// list is pre-truncated so its nominal cost
    /// (`targets × max_ttl × vantages`) fits the remainder.
    pub probe_budget: u64,
    /// Cap on targets probed per round (before the budget truncation).
    pub round_targets: usize,
    /// Shards per round: each round's target list is split round-robin
    /// into this many independent campaigns per vantage, giving the
    /// parallel driver work units and bounding per-campaign memory.
    pub shards: usize,
    /// Hard round cap.
    pub max_rounds: usize,
    /// Marginal-yield floor: new interfaces per 1000 probes.
    pub min_yield_per_kprobes: f64,
    /// Stop after this many *consecutive* rounds below the floor.
    pub patience: usize,
    /// Feedback seed-generation knobs (kIP k, 6Gen budget).
    pub feedback: FeedbackParams,
    /// How many /64s to expand out of each aggregated/inferred prefix
    /// when synthesizing the next round's targets.
    pub per_prefix_64s: usize,
    /// IID synthesis strategy for generated targets.
    pub iid: IidStrategy,
    /// Master seed for the per-round generation RNG.
    pub rng_seed: u64,
    /// Optionally run path-divergence subnet inference each round (the
    /// IA hack always runs; path divergence needs the public ASN view
    /// and costs more).
    pub path_div: Option<PathDivParams>,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            yarrp: YarrpConfig::default(),
            stream: StreamConfig::default(),
            vantages: vec![0],
            vantage_budgeting: false,
            vantage_floor_share: 0.10,
            vantage_smoothing: 0.5,
            probe_budget: 1_000_000,
            round_targets: 4_096,
            shards: 1,
            max_rounds: 8,
            min_yield_per_kprobes: 1.0,
            patience: 2,
            feedback: FeedbackParams::default(),
            per_prefix_64s: 16,
            iid: IidStrategy::FixedIid,
            rng_seed: 0xada_917e,
            path_div: None,
        }
    }
}

/// Why the loop ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The probe budget cannot fund another target.
    BudgetExhausted,
    /// Marginal yield stayed below the floor for `patience` rounds.
    YieldFloor,
    /// Feedback generation produced no unprobed targets.
    NoTargets,
    /// The round cap was reached.
    MaxRounds,
}

/// One vantage's slice of a round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VantageRound {
    /// Vantage index.
    pub vantage: u8,
    /// Targets allocated to this vantage this round.
    pub targets: u64,
    /// Probes this vantage's campaigns injected.
    pub probes: u64,
    /// Interfaces this vantage discovered that were unknown at round
    /// start. Two vantages finding the same new interface both get
    /// credit here (this measures vantage productivity, not the
    /// round's deduplicated total — that is
    /// [`RoundReport::new_interfaces`]).
    pub new_interfaces: u64,
    /// The share of the next round's allocation this vantage earned
    /// (post-smoothing, post-floor). Uniform `1/k` when vantage
    /// budgeting is off.
    pub next_share: f64,
}

/// One round's accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundReport {
    /// Round index (0-based).
    pub round: usize,
    /// Targets probed this round (per vantage).
    pub targets: u64,
    /// Probes the engines injected this round (all campaigns).
    pub probes: u64,
    /// Interfaces first discovered this round.
    pub new_interfaces: u64,
    /// Subnets first inferred this round.
    pub new_subnets: u64,
    /// Marginal yield: `1000 × new_interfaces / probes`.
    pub yield_per_kprobe: f64,
    /// ICMPv6 errors the routers suppressed this round — high values
    /// mean low yield reflects rate limiting, not an exhausted net.
    pub rate_limited: u64,
    /// Bucket-audited suppression split: default-class limiters.
    pub rl_dropped_default: u64,
    /// Bucket-audited suppression split: aggressive-class limiters.
    pub rl_dropped_aggressive: u64,
    /// Per-vantage accounting, in [`AdaptiveConfig::vantages`] order.
    pub per_vantage: Vec<VantageRound>,
}

/// The finished loop: everything the rounds earned, plus the pinned
/// determinism surface (round-by-round target lists).
#[derive(Clone, Debug)]
pub struct AdaptiveResult {
    /// Per-round accounting, in order.
    pub rounds: Vec<RoundReport>,
    /// Each round's exact (sorted, deduplicated) target list — the
    /// seeded-determinism contract of the loop.
    pub round_targets: Vec<Vec<Ipv6Addr>>,
    /// Every campaign's trace set, rounds in order, vantage-major
    /// within a round, shards within a vantage.
    pub traces: Vec<TraceSet>,
    /// Engine accounting accumulated over all campaigns via
    /// [`EngineStats::merge`].
    pub stats: EngineStats,
    /// All discovered interfaces, in discovery order.
    pub interfaces: AddrSet,
    /// All inferred subnet prefixes, in discovery order.
    pub subnets: Vec<Ipv6Prefix>,
    /// Why the loop stopped.
    pub stop: StopReason,
}

impl AdaptiveResult {
    /// Unique interfaces discovered over the whole run.
    pub fn unique_interfaces(&self) -> usize {
        self.interfaces.len()
    }

    /// Probes consumed over the whole run.
    pub fn probes(&self) -> u64 {
        self.stats.probes
    }

    /// The cross-vantage, cross-round union of every campaign's trace
    /// set ([`TraceSet::merge_all`] in execution order — rounds in
    /// order, vantage-major within a round), with per-trace vantage
    /// provenance. The merged interner is the loop's full discovery
    /// union; the trace columns keep the earliest campaign's trace per
    /// target.
    pub fn merged_traces(&self) -> TraceSet {
        TraceSet::merge_all(&self.traces)
    }
}

/// Runs the adaptive loop with each round's campaigns executed
/// serially. See the module docs for the loop structure.
pub fn run_adaptive(
    topo: &Arc<Topology>,
    initial: &TargetSet,
    cfg: &AdaptiveConfig,
) -> AdaptiveResult {
    run(topo, initial, cfg, false)
}

/// Runs the adaptive loop with each round's campaigns executed on the
/// work-queue thread pool. Bit-identical to [`run_adaptive`] (campaigns
/// are engine-isolated and return in input order); the discovery
/// mining between rounds is always on the calling thread.
pub fn run_adaptive_parallel(
    topo: &Arc<Topology>,
    initial: &TargetSet,
    cfg: &AdaptiveConfig,
) -> AdaptiveResult {
    run(topo, initial, cfg, true)
}

fn run(
    topo: &Arc<Topology>,
    initial: &TargetSet,
    cfg: &AdaptiveConfig,
    parallel: bool,
) -> AdaptiveResult {
    assert!(!cfg.vantages.is_empty(), "at least one vantage required");
    let shards = cfg.shards.max(1);
    let k = cfg.vantages.len();
    // Per-vantage yield weights: an EWMA-smoothed distribution (sums
    // to 1), updated from marginal yield when vantage budgeting is on;
    // uniform (and untouched) otherwise. The *allocation share* of a
    // vantage is `floor + (1 - k·floor) · weight` — an affine map that
    // keeps every vantage at or above the exploration floor exactly
    // while still summing to 1 (flooring-then-renormalizing would push
    // quiet vantages back below the floor).
    let mut vweights = vec![1.0 / k as f64; k];
    let floor = cfg.vantage_floor_share.clamp(0.0, 1.0 / k as f64);
    let share_of = move |w: f64| floor + (1.0 - k as f64 * floor) * w;
    let resolver = cfg.path_div.map(|_| {
        AsnResolver::new(
            topo.bgp.clone(),
            topo.rir_extra.clone(),
            &topo.asn_equivalences,
        )
    });

    // Global cross-round state.
    let mut seen = AddrSet::new(); // discovered interfaces
    let mut probed = AddrSet::new(); // targets already paid for
    let mut subnet_set: BTreeSet<Ipv6Prefix> = BTreeSet::new();
    let mut subnets: Vec<Ipv6Prefix> = Vec::new();

    let mut rounds = Vec::new();
    let mut round_targets_log = Vec::new();
    let mut traces = Vec::new();
    let mut stats = EngineStats::default();
    let mut consumed = 0u64;
    let mut low_streak = 0usize;

    // Nominal per-target probe cost, used only to pre-truncate a
    // round's list; the budget itself is enforced on actual injections.
    let per_target = cfg.yarrp.max_ttl as u64 * cfg.vantages.len() as u64;
    let mut pool: Vec<Ipv6Addr> = initial.addrs.clone();

    let stop = loop {
        let round = rounds.len();
        if round >= cfg.max_rounds {
            break StopReason::MaxRounds;
        }
        let remaining = cfg.probe_budget.saturating_sub(consumed);
        let budget_cap = (remaining / per_target) as usize;
        if budget_cap == 0 {
            break StopReason::BudgetExhausted;
        }

        // This round's targets: the unprobed part of the pool, capped
        // by the round size and the remaining budget. When the pool
        // overflows the cap, stride-sample it so the round spans the
        // whole (sorted) pool instead of starving high address space —
        // a lowest-first truncation would spend every round in the
        // same low slabs.
        let unprobed: Vec<Ipv6Addr> = pool
            .iter()
            .copied()
            .filter(|&a| !probed.contains(a))
            .collect();
        let cap = cfg.round_targets.min(budget_cap);
        let targets = stride_sample(&unprobed, cap);
        if targets.is_empty() {
            break StopReason::NoTargets;
        }
        for &t in &targets {
            probed.insert(t);
        }

        // Per-vantage allocation of the round's `k × |targets|`
        // target-probe budget: uniform budgeting gives every vantage
        // the full list; vantage budgeting splits it by the tracked
        // yield weights (total held constant, so the two modes spend
        // comparably per round).
        let alloc: Vec<usize> = if cfg.vantage_budgeting && k > 1 {
            vweights
                .iter()
                .map(|&w| {
                    ((share_of(w) * (k * targets.len()) as f64).round() as usize)
                        .clamp(1, targets.len())
                })
                .collect()
        } else {
            vec![targets.len(); k]
        };

        // Round-robin sharding keeps each shard spread across the
        // address space (and the permutation within a campaign does the
        // rest of the burst-avoidance). Under vantage budgeting each
        // vantage first stride-samples its allocated slice of the round
        // list, so a shrunken allocation still spans the whole space;
        // with uniform allocations (the default mode, and any round
        // where every share rounds to the full list) all vantages share
        // one set of shard sets instead of building k identical copies.
        let make_shards = |vtargets: &[Ipv6Addr]| -> Vec<TargetSet> {
            (0..shards)
                .map(|s| {
                    let name: Arc<str> = if shards == 1 {
                        format!("adaptive-r{round}").into()
                    } else {
                        format!("adaptive-r{round}-s{s}").into()
                    };
                    TargetSet::new(
                        name,
                        vtargets
                            .iter()
                            .copied()
                            .enumerate()
                            .filter(|(i, _)| i % shards == s)
                            .map(|(_, a)| a),
                    )
                })
                .collect()
        };
        let uniform = alloc.iter().all(|&n| n >= targets.len());
        let vantage_sets: Vec<Vec<TargetSet>> = if uniform {
            vec![make_shards(&targets)]
        } else {
            alloc
                .iter()
                .map(|&n| make_shards(&stride_sample(&targets, n)))
                .collect()
        };
        let specs: Vec<CampaignSpec<'_>> = cfg
            .vantages
            .iter()
            .enumerate()
            .flat_map(|(vi, &v)| {
                vantage_sets[if uniform { 0 } else { vi }]
                    .iter()
                    .map(move |set| CampaignSpec {
                        vantage_idx: v,
                        set,
                        cfg: cfg.yarrp,
                    })
            })
            .collect();

        let results = if parallel {
            stream_campaigns_parallel(topo, &specs, &cfg.stream)
        } else {
            stream_campaigns_serial(topo, &specs, &cfg.stream)
        };

        // Per-vantage yield attribution, *before* the global seen-set
        // absorbs the round: crediting against the unmutated round-
        // start state means shared finds credit every vantage that
        // made them, without order bias — and without cloning the
        // (ever-growing) seen-set each round.
        let mut per_v: Vec<VantageRound> = cfg
            .vantages
            .iter()
            .zip(&alloc)
            .map(|(&v, &n)| VantageRound {
                vantage: v,
                targets: n as u64,
                probes: 0,
                new_interfaces: 0,
                next_share: 0.0,
            })
            .collect();
        let mut vfresh = AddrSet::new();
        for (i, (ts, es)) in results.iter().enumerate() {
            let vi = i / shards;
            if i % shards == 0 {
                vfresh = AddrSet::new();
            }
            for &w in ts.interner().words() {
                let a = Ipv6Addr::from(w);
                if !seen.contains(a) && vfresh.insert(a) {
                    per_v[vi].new_interfaces += 1;
                }
            }
            per_v[vi].probes += es.probes;
        }

        // Mine the round: discovery deltas against the global seen-set,
        // inferred subnets, merged engine accounting.
        let mut round_stats = EngineStats::default();
        let mut new_ifaces = 0u64;
        let mut new_subnets = 0u64;
        for (i, (ts, es)) in results.into_iter().enumerate() {
            new_ifaces += ts.discovery_delta(&mut seen).len() as u64;
            for cand in ia_hack(&ts) {
                if subnet_set.insert(cand.prefix) {
                    subnets.push(cand.prefix);
                    new_subnets += 1;
                }
            }
            if let (Some(params), Some(res)) = (&cfg.path_div, &resolver) {
                let v = cfg.vantages[i / shards];
                let vasn = topo.ases[topo.vantages[v as usize].as_idx as usize].asn;
                for cand in discover_by_path_div(&ts, res, vasn, params) {
                    if subnet_set.insert(cand.prefix) {
                        subnets.push(cand.prefix);
                        new_subnets += 1;
                    }
                }
            }
            round_stats.merge(&es);
            traces.push(ts);
        }
        stats.merge(&round_stats);
        consumed += round_stats.probes;

        // Budget allocator update: shift the next round's allocation
        // toward the vantages that earned their probes this round. The
        // EWMA blends two distributions, so the weights stay a
        // distribution without renormalizing.
        if cfg.vantage_budgeting && k > 1 {
            let yields: Vec<f64> = per_v
                .iter()
                .map(|p| p.new_interfaces as f64 / p.probes.max(1) as f64)
                .collect();
            let total: f64 = yields.iter().sum();
            if total > 0.0 {
                let keep = cfg.vantage_smoothing.clamp(0.0, 1.0);
                for (w, y) in vweights.iter_mut().zip(&yields) {
                    *w = keep * *w + (1.0 - keep) * (y / total);
                }
            }
        }
        for (p, &w) in per_v.iter_mut().zip(&vweights) {
            p.next_share = share_of(w);
        }

        let yield_per_kprobe = 1000.0 * new_ifaces as f64 / round_stats.probes.max(1) as f64;
        rounds.push(RoundReport {
            round,
            targets: targets.len() as u64,
            probes: round_stats.probes,
            new_interfaces: new_ifaces,
            new_subnets,
            yield_per_kprobe,
            rate_limited: round_stats.rate_limited,
            rl_dropped_default: round_stats.rl_dropped_default,
            rl_dropped_aggressive: round_stats.rl_dropped_aggressive,
            per_vantage: per_v,
        });
        round_targets_log.push(targets);

        // Stopping rule: marginal yield below the floor for `patience`
        // consecutive rounds.
        if yield_per_kprobe < cfg.min_yield_per_kprobes {
            low_streak += 1;
            if low_streak >= cfg.patience {
                break StopReason::YieldFloor;
            }
        } else {
            low_streak = 0;
        }

        // The next iteration stops before probing when the round cap
        // or the budget is already spent — don't pay for (and then
        // discard) another generation pass; the loop top breaks with
        // the right reason.
        if rounds.len() >= cfg.max_rounds || cfg.probe_budget.saturating_sub(consumed) < per_target
        {
            continue;
        }

        // Feedback: regenerate the pool from *all* discoveries so far
        // plus everything already probed — the paper's 6Gen basis
        // ("targets probed plus interfaces discovered"); cumulative
        // input gives the generators their cluster mass, and the
        // `probed` filter at the top keeps rounds from re-paying.
        let discovered: Vec<Ipv6Addr> = seen.iter().collect();
        let probed_targets: Vec<Ipv6Addr> = probed.iter().collect();
        let fb = feedback_list(
            format!("adaptive-fb-r{round}"),
            &discovered,
            &probed_targets,
            &subnets,
            &cfg.feedback,
            mix(cfg.rng_seed ^ round as u64),
        );
        pool = feedback_targets(
            format!("adaptive-r{}", round + 1),
            &fb,
            cfg.per_prefix_64s,
            cfg.iid,
        )
        .addrs;
    };

    AdaptiveResult {
        rounds,
        round_targets: round_targets_log,
        traces,
        stats,
        interfaces: seen,
        subnets,
        stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::config::TopologyConfig;
    use simnet::generate::generate;

    fn fixture() -> (Arc<Topology>, TargetSet) {
        let topo = Arc::new(generate(TopologyConfig::tiny(42)));
        let addrs: Vec<Ipv6Addr> = topo.hosts().map(|(a, _)| a).take(60).collect();
        let set = TargetSet::new("adaptive-r0", addrs);
        (topo, set)
    }

    fn small_cfg() -> AdaptiveConfig {
        AdaptiveConfig {
            probe_budget: 60_000,
            round_targets: 200,
            max_rounds: 3,
            min_yield_per_kprobes: 0.0,
            ..AdaptiveConfig::default()
        }
    }

    #[test]
    fn loop_runs_and_accounts() {
        let (topo, set) = fixture();
        let res = run_adaptive(&topo, &set, &small_cfg());
        assert!(!res.rounds.is_empty());
        assert!(res.unique_interfaces() > 0);
        assert_eq!(res.rounds.len(), res.round_targets.len());
        // Stats accumulate across every campaign.
        let per_campaign: u64 = res.rounds.iter().map(|r| r.probes).sum();
        assert_eq!(res.stats.probes, per_campaign);
        // No round re-probes a target.
        let mut all = AddrSet::new();
        for rt in &res.round_targets {
            for &t in rt {
                assert!(all.insert(t), "target {t} probed twice");
            }
        }
    }

    #[test]
    fn budget_is_respected() {
        let (topo, set) = fixture();
        let cfg = AdaptiveConfig {
            probe_budget: 5_000,
            round_targets: 10_000,
            max_rounds: 10,
            min_yield_per_kprobes: 0.0,
            ..AdaptiveConfig::default()
        };
        let res = run_adaptive(&topo, &set, &cfg);
        // Each round is pre-truncated to the nominal remainder, so the
        // overshoot is at most one round's fill-mode surplus.
        let nominal: u64 = res
            .rounds
            .iter()
            .map(|r| r.targets * cfg.yarrp.max_ttl as u64 * cfg.vantages.len() as u64)
            .sum();
        assert!(nominal <= cfg.probe_budget);
        assert!(matches!(
            res.stop,
            StopReason::BudgetExhausted | StopReason::YieldFloor | StopReason::NoTargets
        ));
    }

    #[test]
    fn yield_floor_stops_early() {
        let (topo, set) = fixture();
        let cfg = AdaptiveConfig {
            probe_budget: 10_000_000,
            round_targets: 50,
            max_rounds: 20,
            min_yield_per_kprobes: 1e9, // unreachable floor
            patience: 2,
            ..AdaptiveConfig::default()
        };
        let res = run_adaptive(&topo, &set, &cfg);
        assert_eq!(res.stop, StopReason::YieldFloor);
        assert_eq!(res.rounds.len(), 2);
    }
}
