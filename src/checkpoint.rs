//! Round-boundary checkpoints for the adaptive loop: a compact,
//! hand-rolled binary snapshot of the loop's complete cross-round
//! state — the interner-preserving trace sets, the discovery and
//! probed sets, the budgeter's EWMA weights and liveness mask, the
//! regenerated target pool and the virtual clock.
//!
//! The format rides on [`analysis::snapshot`]'s fixed-width
//! little-endian primitives: byte-deterministic (the same state always
//! encodes to the same bytes) and versioned by a magic/version header.
//! A checkpoint is only meaningful under the exact topology and
//! configuration it was captured under, so it carries an FNV-1a digest
//! of both; [`crate::adaptive::resume_adaptive`] refuses a mismatch
//! with [`ResumeError::ConfigMismatch`] instead of producing a
//! silently-divergent run.

use crate::adaptive::{AdaptiveConfig, AliasState, LoopState, RoundReport, VantageRound};
use aliasres::{RouterGraphBuilder, RouterGraphParts};
use analysis::snapshot::{decode_segment, encode_segment, fnv1a};
use analysis::{
    read_trace_set, write_trace_set, SnapReader, SnapWriter, SnapshotError, StoreError,
};
use simnet::{EngineStats, Topology};
use std::net::Ipv6Addr;
use std::path::Path;
use v6addr::Ipv6Prefix;
use yarrp6::addrset::AddrSet;

/// `"BHCK"` — beholder checkpoint.
const MAGIC: u32 = 0x4248_434B;
/// Version 3: [`RoundReport`] gained the router-level counters and the
/// loop state carries the alias stage's cross-round state (incremental
/// router-graph builder, tested-interface set, pair verdict totals).
/// Older checkpoints are refused — the alias stage's absence from them
/// is indistinguishable from "stage off", and resuming a stage-on run
/// without its graph would silently diverge.
const VERSION: u32 = 3;
/// The directory format ([`Checkpoint::save_dir`]): instead of
/// inlining every trace set, `checkpoint.bin` holds the loop scalars
/// plus a segment table (length + FNV-1a per trace set), and each
/// trace set lives in its own `trace-NNNN.seg` file alongside — the
/// same per-segment encoding the persistent sharded store uses, so a
/// later round appends new segment files without rewriting the old
/// ones.
const DIR_VERSION: u32 = 4;
/// The scalar/table file of the directory format.
const DIR_FILE: &str = "checkpoint.bin";

/// Segment file name of the `i`-th trace set in the directory format.
fn trace_file(i: usize) -> String {
    format!("trace-{i:04}.seg")
}

/// Why a resume was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResumeError {
    /// The checkpoint was captured under a different topology or
    /// adaptive configuration than the one offered for the resume.
    ConfigMismatch,
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::ConfigMismatch => {
                write!(
                    f,
                    "checkpoint was captured under a different topology/config"
                )
            }
        }
    }
}

impl std::error::Error for ResumeError {}

/// A round-boundary snapshot of the adaptive loop, captured by
/// [`crate::adaptive::run_adaptive_checkpointed`] after every finished
/// round. Serialize with [`to_bytes`](Checkpoint::to_bytes), persist
/// wherever durability lives, and continue a killed run with
/// [`crate::adaptive::resume_adaptive`] — the resumed run's final
/// result is bit-identical to the run that was never interrupted.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    digest: u64,
    state: LoopState,
}

impl Checkpoint {
    pub(crate) fn capture(digest: u64, state: &LoopState) -> Self {
        Checkpoint {
            digest,
            state: state.clone(),
        }
    }

    pub(crate) fn state(&self) -> &LoopState {
        &self.state
    }

    /// FNV-1a digest of the topology configuration and the adaptive
    /// configuration this checkpoint was captured under.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Rounds completed at capture time (the next round to run).
    pub fn round(&self) -> usize {
        self.state.rounds.len()
    }

    /// Probes charged against the budget so far.
    pub fn consumed_probes(&self) -> u64 {
        self.state.consumed
    }

    /// Interfaces discovered so far.
    pub fn interfaces(&self) -> usize {
        self.state.seen.len()
    }

    /// Serializes the checkpoint. Byte-deterministic: the same state
    /// always produces the same bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.u32(MAGIC);
        w.u32(VERSION);
        w.u64(self.digest);
        let st = &self.state;
        write_pre_traces(&mut w, st);
        w.u32(st.traces.len() as u32);
        for ts in &st.traces {
            write_trace_set(&mut w, ts);
        }
        write_post_traces(&mut w, st);
        w.into_bytes()
    }

    /// Deserializes a checkpoint produced by
    /// [`to_bytes`](Checkpoint::to_bytes). Truncated, corrupt or
    /// foreign input is a [`SnapshotError`], never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, SnapshotError> {
        let mut r = SnapReader::new(bytes);
        if r.u32()? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if r.u32()? != VERSION {
            return Err(SnapshotError::BadValue("unsupported checkpoint version"));
        }
        let digest = r.u64()?;
        let pre = read_pre_traces(&mut r)?;
        let n = r.u32()? as usize;
        let mut traces = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            traces.push(read_trace_set(&mut r)?);
        }
        let post = read_post_traces(&mut r)?;
        if r.remaining() != 0 {
            return Err(SnapshotError::BadValue("trailing bytes after checkpoint"));
        }
        Ok(Checkpoint {
            digest,
            state: assemble_state(pre, traces, post),
        })
    }

    /// Persists the checkpoint as a **directory**: `checkpoint.bin`
    /// holds the loop scalars plus a segment table, and each trace set
    /// is its own `trace-NNNN.seg` file (the persistent store's
    /// segment encoding). Since the trace record only ever grows by
    /// appending campaign sets, successive round-boundary saves rewrite
    /// the small scalar file and *add* segment files — earlier rounds'
    /// segments are byte-identical and need no rewrite (an rsync-style
    /// sink transfers only the delta).
    pub fn save_dir(&self, dir: &Path) -> Result<(), StoreError> {
        std::fs::create_dir_all(dir)?;
        let st = &self.state;
        let mut w = SnapWriter::new();
        w.u32(MAGIC);
        w.u32(DIR_VERSION);
        w.u64(self.digest);
        write_pre_traces(&mut w, st);
        w.u32(st.traces.len() as u32);
        for (i, ts) in st.traces.iter().enumerate() {
            let seg = encode_segment(ts);
            w.u64(seg.len() as u64);
            w.u64(fnv1a(&seg));
            std::fs::write(dir.join(trace_file(i)), &seg)?;
        }
        write_post_traces(&mut w, st);
        std::fs::write(dir.join(DIR_FILE), w.into_bytes())?;
        Ok(())
    }

    /// Loads a checkpoint saved by [`save_dir`](Self::save_dir),
    /// verifying every segment's recorded length and FNV-1a before
    /// decoding — a truncated or bit-flipped segment file is
    /// [`StoreError::Mismatch`] / [`StoreError::Corrupt`], never a
    /// panic or a silently wrong resume.
    pub fn load_dir(dir: &Path) -> Result<Checkpoint, StoreError> {
        let bytes = std::fs::read(dir.join(DIR_FILE))?;
        let mut r = SnapReader::new(&bytes);
        if r.u32()? != MAGIC {
            return Err(StoreError::Decode(SnapshotError::BadMagic));
        }
        if r.u32()? != DIR_VERSION {
            return Err(StoreError::Decode(SnapshotError::BadValue(
                "unsupported checkpoint directory version",
            )));
        }
        let digest = r.u64()?;
        let pre = read_pre_traces(&mut r)?;
        let n = r.u32()? as usize;
        let mut traces = Vec::with_capacity(n.min(1 << 16));
        for i in 0..n {
            let len = r.u64()?;
            let fnv = r.u64()?;
            let seg = std::fs::read(dir.join(trace_file(i)))?;
            if seg.len() as u64 != len {
                return Err(StoreError::Mismatch("trace segment length"));
            }
            if fnv1a(&seg) != fnv {
                return Err(StoreError::Corrupt { segment: i as u32 });
            }
            traces.push(decode_segment(&seg)?);
        }
        let post = read_post_traces(&mut r)?;
        if r.remaining() != 0 {
            return Err(StoreError::Decode(SnapshotError::BadValue(
                "trailing bytes after checkpoint",
            )));
        }
        Ok(Checkpoint {
            digest,
            state: assemble_state(pre, traces, post),
        })
    }
}

/// The checkpointed loop fields serialized *before* the trace record,
/// in encoding order.
struct PreTraces {
    vweights: Vec<f64>,
    alive: Vec<bool>,
    seen: AddrSet,
    probed: AddrSet,
    subnets: Vec<Ipv6Prefix>,
    rounds: Vec<RoundReport>,
    round_targets: Vec<Vec<Ipv6Addr>>,
}

/// The checkpointed loop fields serialized *after* the trace record.
struct PostTraces {
    stats: EngineStats,
    consumed: u64,
    low_streak: usize,
    pool: Vec<Ipv6Addr>,
    vclock_us: u64,
    alias: Option<AliasState>,
}

fn write_pre_traces(w: &mut SnapWriter, st: &LoopState) {
    w.u32(st.vweights.len() as u32);
    for &v in &st.vweights {
        w.f64(v);
    }
    w.u32(st.alive.len() as u32);
    for &a in &st.alive {
        w.bool(a);
    }
    write_addr_set(w, &st.seen);
    write_addr_set(w, &st.probed);
    w.u32(st.subnets.len() as u32);
    for p in &st.subnets {
        w.u128(p.base_word());
        w.u8(p.len());
    }
    w.u32(st.rounds.len() as u32);
    for r in &st.rounds {
        write_round(w, r);
    }
    w.u32(st.round_targets.len() as u32);
    for rt in &st.round_targets {
        write_addrs(w, rt);
    }
}

fn read_pre_traces(r: &mut SnapReader<'_>) -> Result<PreTraces, SnapshotError> {
    let n = r.u32()? as usize;
    let mut vweights = Vec::with_capacity(n);
    for _ in 0..n {
        vweights.push(r.f64()?);
    }
    let n = r.u32()? as usize;
    let mut alive = Vec::with_capacity(n);
    for _ in 0..n {
        alive.push(r.bool()?);
    }
    if alive.len() != vweights.len() {
        return Err(SnapshotError::BadValue("alive/weight length mismatch"));
    }
    let seen = read_addr_set(r)?;
    let probed = read_addr_set(r)?;
    let n = r.u32()? as usize;
    let mut subnets = Vec::with_capacity(n);
    for _ in 0..n {
        let word = r.u128()?;
        let len = r.u8()?;
        if len > 128 {
            return Err(SnapshotError::BadValue("prefix length over 128"));
        }
        subnets.push(Ipv6Prefix::from_word(word, len));
    }
    let n = r.u32()? as usize;
    let mut rounds = Vec::with_capacity(n);
    for _ in 0..n {
        rounds.push(read_round(r)?);
    }
    let n = r.u32()? as usize;
    let mut round_targets = Vec::with_capacity(n);
    for _ in 0..n {
        round_targets.push(read_addrs(r)?);
    }
    Ok(PreTraces {
        vweights,
        alive,
        seen,
        probed,
        subnets,
        rounds,
        round_targets,
    })
}

fn write_post_traces(w: &mut SnapWriter, st: &LoopState) {
    write_stats(w, &st.stats);
    w.u64(st.consumed);
    w.u64(st.low_streak as u64);
    write_addrs(w, &st.pool);
    w.u64(st.vclock_us);
    w.bool(st.alias.is_some());
    if let Some(al) = &st.alias {
        write_alias_state(w, al);
    }
}

fn read_post_traces(r: &mut SnapReader<'_>) -> Result<PostTraces, SnapshotError> {
    let stats = read_stats(r)?;
    let consumed = r.u64()?;
    let low_streak = r.u64()? as usize;
    let pool = read_addrs(r)?;
    let vclock_us = r.u64()?;
    let alias = if r.bool()? {
        Some(read_alias_state(r)?)
    } else {
        None
    };
    Ok(PostTraces {
        stats,
        consumed,
        low_streak,
        pool,
        vclock_us,
        alias,
    })
}

/// The alias stage's cross-round state: the incremental router-graph
/// builder's raw parts (interner words in id order, union-find arrays,
/// flags, id-pair links — exact restoration keeps later merges
/// evolving identically), the tested-interface set, and the verdict
/// totals.
fn write_alias_state(w: &mut SnapWriter, al: &AliasState) {
    let parts = al.builder.to_parts();
    w.u32(parts.words.len() as u32);
    for &word in &parts.words {
        w.u128(word);
    }
    for &p in &parts.parent {
        w.u32(p);
    }
    for &rk in &parts.rank {
        w.u8(rk);
    }
    for &o in &parts.observed {
        w.bool(o);
    }
    for &m in &parts.alias_member {
        w.bool(m);
    }
    w.u32(parts.links.len() as u32);
    for &(a, b) in &parts.links {
        w.u32(a);
        w.u32(b);
    }
    write_addr_set(w, &al.probed);
    w.u64(al.pairs_confirmed);
    w.u64(al.pairs_rejected);
    w.u64(al.probes);
}

fn read_alias_state(r: &mut SnapReader<'_>) -> Result<AliasState, SnapshotError> {
    let n = r.u32()? as usize;
    let mut parts = RouterGraphParts::default();
    for _ in 0..n {
        parts.words.push(r.u128()?);
    }
    for _ in 0..n {
        parts.parent.push(r.u32()?);
    }
    for _ in 0..n {
        parts.rank.push(r.u8()?);
    }
    for _ in 0..n {
        parts.observed.push(r.bool()?);
    }
    for _ in 0..n {
        parts.alias_member.push(r.bool()?);
    }
    let nl = r.u32()? as usize;
    for _ in 0..nl {
        let a = r.u32()?;
        let b = r.u32()?;
        parts.links.push((a, b));
    }
    let builder = RouterGraphBuilder::from_parts(&parts)
        .ok_or(SnapshotError::BadValue("inconsistent router-graph state"))?;
    let probed = read_addr_set(r)?;
    let pairs_confirmed = r.u64()?;
    let pairs_rejected = r.u64()?;
    let probes = r.u64()?;
    Ok(AliasState {
        builder,
        probed,
        pairs_confirmed,
        pairs_rejected,
        probes,
    })
}

fn assemble_state(pre: PreTraces, traces: Vec<analysis::TraceSet>, post: PostTraces) -> LoopState {
    LoopState {
        vweights: pre.vweights,
        alive: pre.alive,
        seen: pre.seen,
        probed: pre.probed,
        subnets: pre.subnets,
        rounds: pre.rounds,
        round_targets: pre.round_targets,
        traces,
        stats: post.stats,
        consumed: post.consumed,
        low_streak: post.low_streak,
        pool: post.pool,
        vclock_us: post.vclock_us,
        alias: post.alias,
    }
}

/// FNV-1a over the debug renderings of the topology configuration and
/// the adaptive configuration — the resume compatibility key. Debug
/// formatting is deterministic for these plain-data structs, and any
/// semantic change to either (budget, vantages, fault schedule, retry
/// policy, …) changes the digest.
pub(crate) fn config_digest(topo: &Topology, cfg: &AdaptiveConfig) -> u64 {
    let s = format!("{:?}|{:?}", topo.config, cfg);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn write_addrs(w: &mut SnapWriter, addrs: &[Ipv6Addr]) {
    w.u32(addrs.len() as u32);
    for &a in addrs {
        w.u128(u128::from(a));
    }
}

fn read_addrs(r: &mut SnapReader<'_>) -> Result<Vec<Ipv6Addr>, SnapshotError> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(Ipv6Addr::from(r.u128()?));
    }
    Ok(out)
}

/// Serialized in insertion order; rebuilding by re-inserting in that
/// order reproduces the identical set (iteration order is the
/// contract [`analysis::TraceSet::discovery_delta`] credit depends
/// on).
fn write_addr_set(w: &mut SnapWriter, set: &AddrSet) {
    w.u32(set.len() as u32);
    for a in set.iter() {
        w.u128(u128::from(a));
    }
}

fn read_addr_set(r: &mut SnapReader<'_>) -> Result<AddrSet, SnapshotError> {
    let n = r.u32()? as usize;
    let mut set = AddrSet::new();
    for _ in 0..n {
        if !set.insert(Ipv6Addr::from(r.u128()?)) {
            return Err(SnapshotError::BadValue("duplicate address in set"));
        }
    }
    Ok(set)
}

fn write_round(w: &mut SnapWriter, r: &RoundReport) {
    w.u64(r.round as u64);
    w.u64(r.targets);
    w.u64(r.probes);
    w.u64(r.new_interfaces);
    w.u64(r.new_subnets);
    w.f64(r.yield_per_kprobe);
    w.u64(r.rate_limited);
    w.u64(r.rl_dropped_default);
    w.u64(r.rl_dropped_aggressive);
    w.u64(r.routers);
    w.u64(r.alias_pairs_confirmed);
    w.u64(r.alias_pairs_rejected);
    w.u64(r.alias_probes);
    w.u32(r.per_vantage.len() as u32);
    for p in &r.per_vantage {
        w.u8(p.vantage);
        w.u64(p.targets);
        w.u64(p.probes);
        w.u64(p.new_interfaces);
        w.f64(p.next_share);
        w.bool(p.degraded);
        w.u32(p.attempts);
        w.u64(p.fault_dropped);
    }
}

fn read_round(r: &mut SnapReader<'_>) -> Result<RoundReport, SnapshotError> {
    let round = r.u64()? as usize;
    let targets = r.u64()?;
    let probes = r.u64()?;
    let new_interfaces = r.u64()?;
    let new_subnets = r.u64()?;
    let yield_per_kprobe = r.f64()?;
    let rate_limited = r.u64()?;
    let rl_dropped_default = r.u64()?;
    let rl_dropped_aggressive = r.u64()?;
    let routers = r.u64()?;
    let alias_pairs_confirmed = r.u64()?;
    let alias_pairs_rejected = r.u64()?;
    let alias_probes = r.u64()?;
    let n = r.u32()? as usize;
    let mut per_vantage = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        per_vantage.push(VantageRound {
            vantage: r.u8()?,
            targets: r.u64()?,
            probes: r.u64()?,
            new_interfaces: r.u64()?,
            next_share: r.f64()?,
            degraded: r.bool()?,
            attempts: r.u32()?,
            fault_dropped: r.u64()?,
        });
    }
    Ok(RoundReport {
        round,
        targets,
        probes,
        new_interfaces,
        new_subnets,
        yield_per_kprobe,
        rate_limited,
        rl_dropped_default,
        rl_dropped_aggressive,
        routers,
        alias_pairs_confirmed,
        alias_pairs_rejected,
        alias_probes,
        per_vantage,
    })
}

/// Exhaustive destructure: adding a field to [`EngineStats`] without
/// versioning this encoding becomes a compile error, not silent data
/// loss.
fn write_stats(w: &mut SnapWriter, s: &EngineStats) {
    let EngineStats {
        probes,
        malformed,
        lost,
        rate_limited,
        rl_dropped_default,
        rl_dropped_aggressive,
        silent_router,
        fw_dropped,
        time_exceeded,
        echo_replies,
        tcp_responses,
        du_no_route,
        du_admin,
        du_addr,
        du_port,
        du_reject,
        dest_silent,
        frag_echo_replies,
        rewritten_quotes,
        fault_vantage_outage,
        fault_link_blackhole,
        fault_link_flap,
        fault_responder_down,
        adv_lying_ttl,
        adv_spoofed_source,
        adv_zombie_echo,
        adv_duplicate_storm,
        adv_garbage,
    } = *s;
    for v in [
        probes,
        malformed,
        lost,
        rate_limited,
        rl_dropped_default,
        rl_dropped_aggressive,
        silent_router,
        fw_dropped,
        time_exceeded,
        echo_replies,
        tcp_responses,
        du_no_route,
        du_admin,
        du_addr,
        du_port,
        du_reject,
        dest_silent,
        frag_echo_replies,
        rewritten_quotes,
        fault_vantage_outage,
        fault_link_blackhole,
        fault_link_flap,
        fault_responder_down,
        adv_lying_ttl,
        adv_spoofed_source,
        adv_zombie_echo,
        adv_duplicate_storm,
        adv_garbage,
    ] {
        w.u64(v);
    }
}

fn read_stats(r: &mut SnapReader<'_>) -> Result<EngineStats, SnapshotError> {
    Ok(EngineStats {
        probes: r.u64()?,
        malformed: r.u64()?,
        lost: r.u64()?,
        rate_limited: r.u64()?,
        rl_dropped_default: r.u64()?,
        rl_dropped_aggressive: r.u64()?,
        silent_router: r.u64()?,
        fw_dropped: r.u64()?,
        time_exceeded: r.u64()?,
        echo_replies: r.u64()?,
        tcp_responses: r.u64()?,
        du_no_route: r.u64()?,
        du_admin: r.u64()?,
        du_addr: r.u64()?,
        du_port: r.u64()?,
        du_reject: r.u64()?,
        dest_silent: r.u64()?,
        frag_echo_replies: r.u64()?,
        rewritten_quotes: r.u64()?,
        fault_vantage_outage: r.u64()?,
        fault_link_blackhole: r.u64()?,
        fault_link_flap: r.u64()?,
        fault_responder_down: r.u64()?,
        adv_lying_ttl: r.u64()?,
        adv_spoofed_source: r.u64()?,
        adv_zombie_echo: r.u64()?,
        adv_duplicate_storm: r.u64()?,
        adv_garbage: r.u64()?,
    })
}
