//! # beholder — *In the IP of the Beholder*, as a Rust workspace
//!
//! A full reproduction of Beverly, Durairajan, Plonka & Rohrer,
//! ["In the IP of the Beholder: Strategies for Active IPv6 Topology
//! Discovery"](https://doi.org/10.1145/3278532.3278559) (IMC 2018):
//! the Yarrp6 stateless randomized prober, the seed/target generation
//! pipeline, the comparison probers (scamper-style sequential,
//! Doubletree), subnet inference, and — since this environment has no
//! IPv6 connectivity — a deterministic packet-level simulator of an IPv6
//! Internet with mandated ICMPv6 rate limiting standing in for the real
//! one.
//!
//! This crate re-exports the workspace members under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`addr`] | `v6addr` | prefixes, tries, DPL, IID classification |
//! | [`packet`] | `v6packet` | wire formats, Yarrp6 probe codec |
//! | [`net`] | `simnet` | the synthetic IPv6 Internet |
//! | [`seed`] | `seeds` | seed-list synthesis, kIP, 6Gen |
//! | [`target`] | `targets` | zn transformation, IID synthesis, set characterization |
//! | [`probe`] | `yarrp6` | Yarrp6 + sequential + Doubletree probers |
//! | [`analyze`] | `analysis` | traces, metrics, subnet discovery |
//! | [`alias`] | `aliasres` | speedtrap alias resolution, router-level graphs |
//!
//! On top of the re-exports, [`adaptive`] (native to this crate — it
//! is where the whole pipeline meets) closes the loop: multi-round
//! discovery whose next targets are generated from the previous
//! round's own findings, under a global probe budget with a
//! marginal-yield stopping rule. The loop is fault-tolerant: every
//! round runs under the campaign supervisor (panics, lost streams and
//! scheduled blackouts retry with deterministic virtual-time backoff;
//! a vantage whose campaigns all degrade is declared dead and its
//! budget share flows to the survivors), and [`checkpoint`] snapshots
//! the complete loop state at every round boundary so a killed run
//! resumes bit-identically ([`adaptive::resume_adaptive`]).
//!
//! With [`adaptive::AdaptiveConfig::alias_resolution`] on (default
//! off, bit-identical without it), each round additionally feeds its
//! discoveries through speedtrap alias resolution under the same
//! probe budget and accumulates an incremental router-level graph
//! ([`adaptive::RouterLevelResult`]) — the paper's router-level view
//! of the topology, checkpointed along with everything else.
//!
//! ## Quickstart
//!
//! ```
//! use beholder::prelude::*;
//!
//! // A tiny synthetic Internet, a seed catalog, and one campaign.
//! let topo = std::sync::Arc::new(beholder::net::generate::generate(
//!     TopologyConfig::tiny(7),
//! ));
//! let seeds = SeedCatalog::synthesize(&topo, 7);
//! let catalog = TargetCatalog::build(&seeds, IidStrategy::FixedIid);
//! let set = catalog.get("caida-z64").unwrap();
//! let result = run_campaign(&topo, 0, set, &YarrpConfig::default());
//! assert!(!result.log.interface_addrs().is_empty());
//! ```

pub mod adaptive;
pub mod checkpoint;

pub use aliasres as alias;
pub use analysis as analyze;
pub use seeds as seed;
pub use simnet as net;
pub use targets as target;
pub use v6addr as addr;
pub use v6packet as packet;
pub use yarrp6 as probe;

/// The commonly-used types, one `use` away.
pub mod prelude {
    pub use crate::adaptive::{
        resume_adaptive, resume_adaptive_checkpointed, run_adaptive, run_adaptive_checkpointed,
        run_adaptive_delta, run_adaptive_parallel, AdaptiveConfig, AdaptiveResult,
        AliasStageConfig, DeltaSeedConfig, RoundReport, RouterLevelResult, StopReason,
        VantageRound,
    };
    pub use crate::checkpoint::{Checkpoint, ResumeError};
    pub use aliasres::{
        resolve_aliases, resolve_aliases_budgeted, resolve_aliases_supervised, AliasConfig,
        AliasSets, RouterGraph, RouterGraphBuilder, SupervisedAliasRun,
    };
    pub use analysis::{
        discover_by_path_div, ia_hack, quarantine, quarantine_all, read_sharded_snapshot,
        stream_campaign, stream_campaigns_parallel, stream_campaigns_serial,
        stream_campaigns_supervised, stream_multi_vantage, stream_multi_vantage_parallel,
        vantage_contributions, vantage_jaccard, vantage_union_count, write_sharded_snapshot,
        AsnResolver, CampaignOutcome, CampaignRun, CampaignRunner, CandidateSubnet,
        MultiVantageCampaign, PathDivParams, QuarantineConfig, QuarantineReport, ShardRoute,
        ShardedTraceSet, ShardedTraceSetBuilder, SnapshotError, SnapshotManifest, StoreError,
        TraceSet, TraceSetBuilder, TraceView, VantageContribution,
    };
    pub use seeds::sources::SeedCatalog;
    pub use seeds::{SeedEntry, SeedList};
    pub use simnet::config::TopologyConfig;
    pub use simnet::{
        AdversarialClass, AdversarialSchedule, Engine, EngineStats, FaultSchedule, Scale, Topology,
    };
    pub use targets::{IidStrategy, TargetCatalog, TargetSet};
    pub use v6addr::{Asn, BgpTable, IidClass, Ipv6Prefix, PrefixTrie};
    pub use v6packet::probe::Protocol;
    pub use yarrp6::campaign::{run_campaign, CampaignError, RetryPolicy, SupervisedCampaign};
    pub use yarrp6::{
        ProbeLog, RecordSink, ResponseKind, ResponseRecord, SinkDisconnected, StreamConfig,
        YarrpConfig,
    };
}
