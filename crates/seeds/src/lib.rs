//! Synthesis of the paper's IPv6 seed lists (§3.2, Table 1).
//!
//! The real seed datasets are proprietary (Farsight DNSDB, CDN client
//! prefixes), privacy-restricted (kIP aggregates) or large external
//! collections (rDNS walks, Rapid7 FDNS, TUM). This crate substitutes
//! synthesizers that sample the *simulated ground truth* with the same
//! collection bias each real source has:
//!
//! | list    | real provenance                | bias reproduced here |
//! |---------|--------------------------------|----------------------|
//! | caida   | ::1 + random per BGP prefix    | pure breadth, no depth |
//! | fiebig  | ip6.arpa (rDNS) zone walking   | dense per-org enumeration (high DPL), much unrouted staleness |
//! | fdns    | forward DNS ANY answers        | servers across many ASes, low-byte heavy, 6to4 |
//! | dnsdb   | passive DNS (AAAA answers)     | broad ASN coverage, moderate size |
//! | cdn     | WWW client /64s via kIP (k=32/256) | client space as anonymized aggregates |
//! | 6gen    | 6Gen generative tool           | locality-driven expansion near dense ranges |
//! | tum     | union of public collections    | fdns ∪ infrastructure names ∪ residential dyndns |
//! | random  | uniform in routed space        | unguided control |
//!
//! Each synthesizer is deterministic given `(topology, seed)`.
//!
//! [`feedback`] is the closed-loop entry point: instead of a static
//! source it regenerates seeds from a probing round's own discoveries
//! (kIP aggregation + 6Gen expansion over discovered interfaces), which
//! is what the adaptive multi-round orchestrator feeds between rounds.

pub mod feedback;
pub mod kip;
pub mod sixgen;
pub mod sources;

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::net::Ipv6Addr;
use v6addr::iid::IidCensus;
use v6addr::Ipv6Prefix;

/// One seed entry: either a concrete address or an (anonymized) prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SeedEntry {
    /// An IPv6 address (implicit /128).
    Addr(Ipv6Addr),
    /// A prefix (e.g. a kIP aggregate).
    Prefix(Ipv6Prefix),
}

impl SeedEntry {
    /// The entry as a prefix (addresses become /128s).
    pub fn as_prefix(&self) -> Ipv6Prefix {
        match self {
            SeedEntry::Addr(a) => Ipv6Prefix::truncating(*a, 128),
            SeedEntry::Prefix(p) => *p,
        }
    }
}

/// A named seed list.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SeedList {
    /// Source name (lowercase, as used in the paper's tables).
    pub name: String,
    /// Deduplicated entries.
    pub entries: Vec<SeedEntry>,
}

impl SeedList {
    /// Builds a list from entries, deduplicating and sorting.
    pub fn new(name: impl Into<String>, entries: impl IntoIterator<Item = SeedEntry>) -> Self {
        let set: BTreeSet<SeedEntry> = entries.into_iter().collect();
        SeedList {
            name: name.into(),
            entries: set.into_iter().collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates concrete addresses (skipping prefix entries).
    pub fn addrs(&self) -> impl Iterator<Item = Ipv6Addr> + '_ {
        self.entries.iter().filter_map(|e| match e {
            SeedEntry::Addr(a) => Some(*a),
            SeedEntry::Prefix(_) => None,
        })
    }

    /// Iterates all entries as prefixes.
    pub fn prefixes(&self) -> impl Iterator<Item = Ipv6Prefix> + '_ {
        self.entries.iter().map(|e| e.as_prefix())
    }

    /// addr6-style IID census over the address entries (Table 1 columns).
    /// Prefix-only lists (the CDN aggregates) yield an empty census.
    pub fn iid_census(&self) -> IidCensus {
        IidCensus::of(self.addrs())
    }

    /// Union of several lists (the paper's "Combined" row).
    pub fn union(name: impl Into<String>, lists: &[&SeedList]) -> SeedList {
        SeedList::new(name, lists.iter().flat_map(|l| l.entries.iter().copied()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> SeedEntry {
        SeedEntry::Addr(s.parse().unwrap())
    }

    #[test]
    fn dedup_and_sort() {
        let l = SeedList::new(
            "t",
            vec![a("2001:db8::2"), a("2001:db8::1"), a("2001:db8::2")],
        );
        assert_eq!(l.len(), 2);
        let v: Vec<_> = l.addrs().collect();
        assert!(v[0] < v[1]);
    }

    #[test]
    fn union_merges() {
        let l1 = SeedList::new("a", vec![a("::1")]);
        let l2 = SeedList::new("b", vec![a("::1"), a("::2")]);
        let u = SeedList::union("u", &[&l1, &l2]);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn prefix_entries_skip_addr_iter() {
        let p = SeedEntry::Prefix("2001:db8::/48".parse().unwrap());
        let l = SeedList::new("t", vec![p, a("::1")]);
        assert_eq!(l.addrs().count(), 1);
        assert_eq!(l.prefixes().count(), 2);
        assert_eq!(l.iid_census().total, 1);
    }
}
