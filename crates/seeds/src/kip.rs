//! kIP aggregation-based address anonymization (Plonka & Berger \[49\]).
//!
//! The CDN cannot share client addresses; instead it shares *aggregates*:
//! prefixes that each cover at least `k` simultaneously-active client
//! /64s. Larger `k` means coarser prefixes (stronger anonymity); the
//! paper uses k=32 and k=256 (Table 1), and §6 observes that the
//! aggregation itself limits subnet-discovery fidelity in sparsely-active
//! networks.
//!
//! Implementation: a top-down partition of the (implicit) binary trie of
//! active /64s. A node is split when every non-empty child still holds at
//! least `k` actives; otherwise the node itself is emitted. The result is
//! a set of **disjoint** prefixes that covers every active /64 exactly
//! once, each as deep (specific) as k-anonymity allows.

use v6addr::{bits, Ipv6Prefix};

/// Aggregates active client /64s into k-anonymous prefixes.
///
/// Returns a sorted partition: disjoint prefixes covering every input /64
/// exactly once. Every aggregate covers ≥ `min(k, population-in-region)`
/// actives; when the whole population is smaller than `k` a single
/// covering prefix is emitted.
pub fn kip_aggregate(client_64s: &[Ipv6Prefix], k: usize) -> Vec<Ipv6Prefix> {
    assert!(k >= 1, "k must be positive");
    let mut words: Vec<u128> = client_64s
        .iter()
        .map(|p| {
            debug_assert!(p.len() <= 64, "client prefixes must be /64 or shorter");
            p.base_word() & bits::mask(64)
        })
        .collect();
    words.sort_unstable();
    words.dedup();
    if words.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    partition(&words, 0, k, &mut out);
    out
}

/// Recursive top-down split of a sorted slice of /64 base words that all
/// share their first `len` bits.
fn partition(words: &[u128], len: u8, k: usize, out: &mut Vec<Ipv6Prefix>) {
    if len == 64 {
        out.push(Ipv6Prefix::from_word(words[0], 64));
        return;
    }
    // Split on bit `len`.
    let split = words.partition_point(|&w| !bits::bit(w, len));
    let (left, right) = words.split_at(split);
    let splittable = (left.is_empty() || left.len() >= k)
        && (right.is_empty() || right.len() >= k)
        && !(left.is_empty() && right.is_empty());
    if splittable {
        if !left.is_empty() {
            partition(left, len + 1, k, out);
        }
        if !right.is_empty() {
            partition(right, len + 1, k, out);
        }
    } else {
        out.push(Ipv6Prefix::from_word(words[0], len));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv6Addr;

    fn p64(s: &str) -> Ipv6Prefix {
        Ipv6Prefix::truncating(s.parse::<Ipv6Addr>().unwrap(), 64)
    }

    #[test]
    fn k1_returns_the_64s() {
        let clients = vec![p64("2001:db8:0:1::"), p64("2001:db8:0:2::")];
        let agg = kip_aggregate(&clients, 1);
        assert_eq!(agg, clients);
    }

    #[test]
    fn k2_merges_dense_neighbors() {
        let clients = vec![p64("2001:db8:0:0::"), p64("2001:db8:0:1::")];
        let agg = kip_aggregate(&clients, 2);
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0], "2001:db8::/63".parse().unwrap());
    }

    #[test]
    fn larger_k_coarser_output() {
        // 64 dense /64s under one /58.
        let base: Ipv6Addr = "2001:db8::".parse().unwrap();
        let blk = Ipv6Prefix::truncating(base, 58);
        let clients: Vec<Ipv6Prefix> = (0..64u128).map(|i| blk.subnet(64, i)).collect();
        let a8 = kip_aggregate(&clients, 8);
        let a64 = kip_aggregate(&clients, 64);
        assert!(a8.len() > a64.len());
        assert_eq!(a64.len(), 1);
        assert_eq!(a64[0].len(), 58);
        for agg in &a8 {
            let covered = clients.iter().filter(|c| agg.contains_prefix(c)).count();
            assert!(covered >= 8, "{agg} covers only {covered}");
        }
    }

    #[test]
    fn partition_covers_each_client_exactly_once() {
        let clients = vec![
            p64("2001:db8:0:0::"),
            p64("2001:db8:0:1::"),
            p64("2001:db8:ff:3::"),
            p64("2620:1:2:3::"),
        ];
        for k in [1usize, 2, 3, 4, 10] {
            let agg = kip_aggregate(&clients, k);
            for c in &clients {
                let covering = agg.iter().filter(|a| a.contains_prefix(c)).count();
                assert_eq!(covering, 1, "k={k}: {c} covered {covering} times");
            }
            // Disjointness: no aggregate contains another.
            for (i, a) in agg.iter().enumerate() {
                for (j, b) in agg.iter().enumerate() {
                    if i != j {
                        assert!(!a.contains_prefix(b), "k={k}: {a} contains {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn empty_input() {
        assert!(kip_aggregate(&[], 32).is_empty());
    }

    #[test]
    fn under_populated_region_emits_single_cover() {
        let clients = vec![p64("2001:db8::")];
        let agg = kip_aggregate(&clients, 256);
        assert_eq!(agg.len(), 1);
        assert!(agg[0].contains_prefix(&clients[0]));
        assert!(agg[0].len() < 64);
    }
}
