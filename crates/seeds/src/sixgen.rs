//! A reimplementation of 6Gen-style target generation (Murdock et al.
//! \[46\]), loose-clustering mode.
//!
//! 6Gen exploits *address locality*: observed addresses cluster, and new
//! live addresses are likelier near dense observed ranges. Seeds are
//! grouped into clusters; per nybble position the observed value range is
//! recorded; loose mode then generates fresh addresses by drawing each
//! nybble uniformly within its cluster range (a wildcard when the range
//! spans), weighting generation toward denser clusters.
//!
//! Deduplication is sort-based (draw, sort, dedup) with a **bounded
//! rejection loop**: when duplicate draws leave the output short of the
//! budget, up to `REFILL_ROUNDS` extra proportional rounds redraw only
//! the deficit. Per-draw work is constant — tight mode precomputes each
//! cluster's per-position choice lists once instead of rebuilding a
//! `Vec` of observed values on every nybble of every draw.
//!
//! The paper feeds 6Gen with CAIDA probing results (targets probed plus
//! interfaces discovered) and observes a characteristic discovery curve:
//! strong initial yield near dense ranges, then flattening — "the shape
//! of the 6gen curve closely mirrors random, but with a fixed positive
//! offset" (§5.2).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv6Addr;

/// Number of leading bits two addresses must share to sit in one cluster.
const CLUSTER_BITS: u8 = 32;

/// Extra proportional redraw rounds allowed to make up for duplicate
/// draws. Bounded so saturated clusters (fewer distinct addresses than
/// budget share) cannot spin.
const REFILL_ROUNDS: usize = 4;

/// Sorts/dedups the seed words once, up front.
fn seed_words(seeds: &[Ipv6Addr]) -> Vec<u128> {
    let mut words: Vec<u128> = seeds.iter().map(|&a| u128::from(a)).collect();
    words.sort_unstable();
    words.dedup();
    words
}

/// Cluster boundaries over sorted seed words: `(start, end)` index
/// ranges of members sharing a `CLUSTER_BITS` prefix.
fn cluster_bounds(words: &[u128]) -> Vec<(usize, usize)> {
    let mut bounds = Vec::new();
    let mut start = 0usize;
    for i in 1..=words.len() {
        let boundary = i == words.len()
            || v6addr::bits::common_prefix_len(words[i - 1], words[i]) < CLUSTER_BITS;
        if boundary {
            bounds.push((start, i));
            start = i;
        }
    }
    bounds
}

/// Draws `deficit` fresh words proportionally to cluster weights,
/// merges them into `out`, and sort-dedups once per round.
fn refill<C>(
    out: &mut Vec<u128>,
    budget: usize,
    clusters: &[C],
    weight: impl Fn(&C) -> usize,
    total_weight: usize,
    draw: impl Fn(&C, &mut SmallRng) -> u128,
    rng: &mut SmallRng,
) {
    let mut rounds = 0;
    while out.len() < budget && rounds < REFILL_ROUNDS {
        rounds += 1;
        let deficit = budget - out.len();
        let before = out.len();
        for c in clusters {
            let share = ((weight(c) as f64 / total_weight as f64) * deficit as f64).ceil() as usize;
            for _ in 0..share {
                if out.len() - before >= deficit {
                    break;
                }
                out.push(draw(c, rng));
            }
        }
        out.sort_unstable();
        out.dedup();
        if out.len() == before {
            // The clusters cannot produce anything new; stop early.
            break;
        }
    }
}

/// A cluster of observed addresses and its per-nybble value ranges.
#[derive(Clone, Debug)]
struct Cluster {
    /// Inclusive (low, high) observed nybble values, most significant
    /// first.
    ranges: [(u8, u8); 32],
    /// Number of seed members.
    members: usize,
}

impl Cluster {
    fn from_members(words: &[u128]) -> Self {
        let mut ranges = [(0xfu8, 0x0u8); 32];
        for &w in words {
            for (i, r) in ranges.iter_mut().enumerate() {
                let nyb = ((w >> (124 - 4 * i)) & 0xf) as u8;
                r.0 = r.0.min(nyb);
                r.1 = r.1.max(nyb);
            }
        }
        Cluster {
            ranges,
            members: words.len(),
        }
    }

    /// Draws one address from the cluster's loose ranges.
    fn draw(&self, rng: &mut SmallRng) -> u128 {
        let mut w = 0u128;
        for (i, &(lo, hi)) in self.ranges.iter().enumerate() {
            let nyb = if lo >= hi { lo } else { rng.gen_range(lo..=hi) } as u128;
            w |= nyb << (124 - 4 * i);
        }
        w
    }
}

/// A tight-mode cluster: per-position *observed value* choice lists,
/// built once so every draw is table lookups (the old per-draw
/// `Vec<u32>` rebuild made large budgets quadratic-ish).
#[derive(Clone, Debug)]
struct TightCluster {
    /// choices[pos] = sorted observed nybble values at that position.
    choices: Vec<Vec<u8>>,
    members: usize,
}

impl TightCluster {
    fn from_members(words: &[u128]) -> Self {
        let mut observed = [0u16; 32];
        for &w in words {
            for (pos, o) in observed.iter_mut().enumerate() {
                *o |= 1 << ((w >> (124 - 4 * pos)) & 0xf);
            }
        }
        let choices = observed
            .iter()
            .map(|&mask| (0..16u8).filter(|v| mask & (1 << v) != 0).collect())
            .collect();
        TightCluster {
            choices,
            members: words.len(),
        }
    }

    fn draw(&self, rng: &mut SmallRng) -> u128 {
        let mut w = 0u128;
        for (pos, choices) in self.choices.iter().enumerate() {
            let nyb = choices[rng.gen_range(0..choices.len())] as u128;
            w |= nyb << (124 - 4 * pos);
        }
        w
    }
}

/// Generates up to `budget` addresses from `seeds` in *tight*-clustering
/// mode: each nybble position draws only from the **observed values** at
/// that position (the paper's `2::[1-4]:0` style ranges), instead of the
/// full min..max span loose mode wildcards over. Tight mode generates
/// fewer, higher-confidence candidates.
pub fn generate_tight(seeds: &[Ipv6Addr], budget: usize, rng_seed: u64) -> Vec<Ipv6Addr> {
    let words = seed_words(seeds);
    if words.is_empty() || budget == 0 {
        return Vec::new();
    }
    // Same clustering as loose mode; clusters need >= 2 members.
    let clusters: Vec<TightCluster> = cluster_bounds(&words)
        .into_iter()
        .filter(|&(s, e)| e - s >= 2)
        .map(|(s, e)| TightCluster::from_members(&words[s..e]))
        .collect();
    if clusters.is_empty() {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(rng_seed);
    let mut out: Vec<u128> = Vec::with_capacity(budget);
    for c in &clusters {
        let share = (budget * c.members / words.len()).max(1);
        for _ in 0..share {
            if out.len() >= budget {
                break;
            }
            out.push(c.draw(&mut rng));
        }
    }
    out.sort_unstable();
    out.dedup();
    let total: usize = clusters.iter().map(|c| c.members).sum();
    refill(
        &mut out,
        budget,
        &clusters,
        |c| c.members,
        total,
        |c, rng| c.draw(rng),
        &mut rng,
    );
    out.into_iter().map(Ipv6Addr::from).collect()
}

/// Generates up to `budget` addresses from `seeds` in loose-clustering
/// mode. Deterministic for a given `(seeds, budget, rng_seed)`.
pub fn generate_loose(seeds: &[Ipv6Addr], budget: usize, rng_seed: u64) -> Vec<Ipv6Addr> {
    let words = seed_words(seeds);
    if words.is_empty() || budget == 0 {
        return Vec::new();
    }

    // Cluster by shared CLUSTER_BITS prefix over the sorted words.
    let clusters: Vec<Cluster> = cluster_bounds(&words)
        .into_iter()
        .map(|(s, e)| Cluster::from_members(&words[s..e]))
        .collect();

    // Weight clusters by member count (denser ranges yield more targets).
    let total_members: usize = clusters.iter().map(|c| c.members).sum();
    let mut rng = SmallRng::seed_from_u64(rng_seed);
    let mut out: Vec<u128> = Vec::with_capacity(budget);
    for c in &clusters {
        let share = ((c.members as f64 / total_members as f64) * budget as f64).ceil() as usize;
        for _ in 0..share {
            if out.len() >= budget {
                break;
            }
            out.push(c.draw(&mut rng));
        }
    }
    out.sort_unstable();
    out.dedup();
    refill(
        &mut out,
        budget,
        &clusters,
        |c| c.members,
        total_members,
        |c, rng| c.draw(rng),
        &mut rng,
    );
    out.into_iter().map(Ipv6Addr::from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn generated_stay_within_cluster_ranges() {
        let seeds = vec![
            a("2001:db8::1"),
            a("2001:db8::9"),
            a("2001:db8::100"),
            a("2620:0:1::5"),
        ];
        let out = generate_loose(&seeds, 500, 7);
        assert!(!out.is_empty());
        for addr in &out {
            let w = u128::from(*addr);
            // Every generated address shares a /32 with some seed.
            let covered = seeds
                .iter()
                .any(|s| v6addr::bits::common_prefix_len(w, u128::from(*s)) >= 32);
            assert!(covered, "{addr} outside all seed clusters");
        }
    }

    #[test]
    fn deterministic() {
        let seeds = vec![a("2001:db8::1"), a("2001:db8::ff")];
        let x = generate_loose(&seeds, 100, 1);
        let y = generate_loose(&seeds, 100, 1);
        assert_eq!(x, y);
        let z = generate_loose(&seeds, 100, 2);
        assert_ne!(x, z);
    }

    #[test]
    fn denser_clusters_get_more_targets() {
        // 20 seeds in cluster A, 2 in cluster B.
        let mut seeds = Vec::new();
        for i in 0..20u32 {
            seeds.push(Ipv6Addr::from(
                u128::from(a("2001:db8::")) | (i as u128) << 8 | 1,
            ));
        }
        seeds.push(a("2620:0:1::1"));
        seeds.push(a("2620:0:1::2"));
        let out = generate_loose(&seeds, 1_000, 3);
        let in_a = out
            .iter()
            .filter(|x| u128::from(**x) >> 96 == u128::from(a("2001:db8::")) >> 96)
            .count();
        let in_b = out.len() - in_a;
        assert!(in_a > in_b, "dense {in_a} vs sparse {in_b}");
    }

    #[test]
    fn empty_and_zero_budget() {
        assert!(generate_loose(&[], 100, 1).is_empty());
        assert!(generate_loose(&[a("::1")], 0, 1).is_empty());
    }

    #[test]
    fn rejection_rounds_fill_toward_budget() {
        // A wide cluster: the address space is ~16^3 at the varying
        // positions, plenty for the budget; duplicate draws alone should
        // not leave the output badly short.
        let seeds = vec![a("2001:db8::"), a("2001:db8::fff")];
        let out = generate_loose(&seeds, 1_000, 9);
        assert!(out.len() <= 1_000);
        assert!(
            out.len() >= 900,
            "refill left output at {} of 1000",
            out.len()
        );
        // Saturated cluster: only 16 distinct addresses exist; the
        // bounded loop must terminate without spinning.
        let narrow = vec![a("2001:db8::10"), a("2001:db8::1f")];
        let small = generate_loose(&narrow, 1_000, 9);
        assert!(small.len() <= 16);
        assert!(!small.is_empty());
    }

    #[test]
    fn tight_mode_only_emits_observed_nybbles() {
        let seeds = vec![a("2001:db8::1001"), a("2001:db8::4001")];
        let out = generate_tight(&seeds, 300, 5);
        assert!(!out.is_empty());
        for addr in &out {
            let w = u128::from(*addr);
            // Nybble 28 (0-indexed from the top) observed values: 1, 4.
            let nyb = (w >> 12) & 0xf;
            assert!(nyb == 1 || nyb == 4, "unobserved nybble {nyb:x} in {addr}");
        }
        // Loose mode would also generate 2 and 3 there.
        let loose = generate_loose(&seeds, 300, 5);
        let loose_nybbles: std::collections::HashSet<u128> =
            loose.iter().map(|&x| (u128::from(x) >> 12) & 0xf).collect();
        assert!(loose_nybbles.len() > 2, "loose mode should span the range");
    }

    #[test]
    fn tight_mode_deterministic_and_bounded() {
        let seeds = vec![a("2001:db8::1"), a("2001:db8::2"), a("2001:db8::9")];
        let x = generate_tight(&seeds, 50, 1);
        let y = generate_tight(&seeds, 50, 1);
        assert_eq!(x, y);
        assert!(x.len() <= 50);
        assert!(generate_tight(&[], 50, 1).is_empty());
    }

    #[test]
    fn wildcard_positions_vary() {
        // Seeds spanning a nybble range must produce variety there.
        let seeds = vec![a("2001:db8::1000"), a("2001:db8::9000")];
        let out = generate_loose(&seeds, 200, 11);
        let distinct: std::collections::HashSet<u128> =
            out.iter().map(|&x| u128::from(x) >> 12 & 0xf).collect();
        assert!(distinct.len() > 2, "wildcard nybble shows no variety");
    }
}
