//! A reimplementation of 6Gen-style target generation (Murdock et al.
//! [46]), loose-clustering mode.
//!
//! 6Gen exploits *address locality*: observed addresses cluster, and new
//! live addresses are likelier near dense observed ranges. Seeds are
//! grouped into clusters; per nybble position the observed value range is
//! recorded; loose mode then generates fresh addresses by drawing each
//! nybble uniformly within its cluster range (a wildcard when the range
//! spans), weighting generation toward denser clusters.
//!
//! The paper feeds 6Gen with CAIDA probing results (targets probed plus
//! interfaces discovered) and observes a characteristic discovery curve:
//! strong initial yield near dense ranges, then flattening — "the shape
//! of the 6gen curve closely mirrors random, but with a fixed positive
//! offset" (§5.2).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv6Addr;

/// Number of leading bits two addresses must share to sit in one cluster.
const CLUSTER_BITS: u8 = 32;

/// A cluster of observed addresses and its per-nybble value ranges.
#[derive(Clone, Debug)]
struct Cluster {
    /// Inclusive (low, high) observed nybble values, most significant
    /// first.
    ranges: [(u8, u8); 32],
    /// Number of seed members.
    members: usize,
}

impl Cluster {
    fn from_members(words: &[u128]) -> Self {
        let mut ranges = [(0xfu8, 0x0u8); 32];
        for &w in words {
            for (i, r) in ranges.iter_mut().enumerate() {
                let nyb = ((w >> (124 - 4 * i)) & 0xf) as u8;
                r.0 = r.0.min(nyb);
                r.1 = r.1.max(nyb);
            }
        }
        Cluster {
            ranges,
            members: words.len(),
        }
    }

    /// Draws one address from the cluster's loose ranges.
    fn draw(&self, rng: &mut SmallRng) -> u128 {
        let mut w = 0u128;
        for (i, &(lo, hi)) in self.ranges.iter().enumerate() {
            let nyb = if lo >= hi { lo } else { rng.gen_range(lo..=hi) } as u128;
            w |= nyb << (124 - 4 * i);
        }
        w
    }
}

/// Generates up to `budget` addresses from `seeds` in *tight*-clustering
/// mode: each nybble position draws only from the **observed values** at
/// that position (the paper's `2::[1-4]:0` style ranges), instead of the
/// full min..max span loose mode wildcards over. Tight mode generates
/// fewer, higher-confidence candidates.
pub fn generate_tight(seeds: &[Ipv6Addr], budget: usize, rng_seed: u64) -> Vec<Ipv6Addr> {
    let mut words: Vec<u128> = seeds.iter().map(|&a| u128::from(a)).collect();
    words.sort_unstable();
    words.dedup();
    if words.is_empty() || budget == 0 {
        return Vec::new();
    }
    // Same clustering as loose mode, but record observed value *sets*.
    let mut out: Vec<u128> = Vec::with_capacity(budget);
    let mut rng = SmallRng::seed_from_u64(rng_seed);
    let mut start = 0usize;
    for i in 1..=words.len() {
        let boundary = i == words.len()
            || v6addr::bits::common_prefix_len(words[i - 1], words[i]) < CLUSTER_BITS;
        if !boundary {
            continue;
        }
        let members = &words[start..i];
        start = i;
        if members.len() < 2 {
            continue;
        }
        // Observed nybble values per position.
        let mut observed: [u16; 32] = [0; 32]; // bitmask of seen values
        for &w in members {
            for (pos, o) in observed.iter_mut().enumerate() {
                *o |= 1 << ((w >> (124 - 4 * pos)) & 0xf);
            }
        }
        let share = (budget * members.len() / words.len()).max(1);
        for _ in 0..share {
            if out.len() >= budget {
                break;
            }
            let mut w = 0u128;
            for (pos, &mask) in observed.iter().enumerate() {
                let choices: Vec<u32> = (0..16).filter(|v| mask & (1 << v) != 0).collect();
                let nyb = choices[rng.gen_range(0..choices.len())] as u128;
                w |= nyb << (124 - 4 * pos);
            }
            out.push(w);
        }
    }
    out.sort_unstable();
    out.dedup();
    out.into_iter().map(Ipv6Addr::from).collect()
}

/// Generates up to `budget` addresses from `seeds` in loose-clustering
/// mode. Deterministic for a given `(seeds, budget, rng_seed)`.
pub fn generate_loose(seeds: &[Ipv6Addr], budget: usize, rng_seed: u64) -> Vec<Ipv6Addr> {
    let mut words: Vec<u128> = seeds.iter().map(|&a| u128::from(a)).collect();
    words.sort_unstable();
    words.dedup();
    if words.is_empty() || budget == 0 {
        return Vec::new();
    }

    // Cluster by shared CLUSTER_BITS prefix over the sorted words.
    let mut clusters: Vec<Cluster> = Vec::new();
    let mut start = 0usize;
    for i in 1..=words.len() {
        let boundary = i == words.len()
            || v6addr::bits::common_prefix_len(words[i - 1], words[i]) < CLUSTER_BITS;
        if boundary {
            clusters.push(Cluster::from_members(&words[start..i]));
            start = i;
        }
    }

    // Weight clusters by member count (denser ranges yield more targets).
    let total_members: usize = clusters.iter().map(|c| c.members).sum();
    let mut rng = SmallRng::seed_from_u64(rng_seed);
    let mut out: Vec<u128> = Vec::with_capacity(budget);
    for c in &clusters {
        let share = ((c.members as f64 / total_members as f64) * budget as f64).ceil() as usize;
        for _ in 0..share {
            if out.len() >= budget {
                break;
            }
            out.push(c.draw(&mut rng));
        }
    }
    out.sort_unstable();
    out.dedup();
    out.into_iter().map(Ipv6Addr::from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn generated_stay_within_cluster_ranges() {
        let seeds = vec![
            a("2001:db8::1"),
            a("2001:db8::9"),
            a("2001:db8::100"),
            a("2620:0:1::5"),
        ];
        let out = generate_loose(&seeds, 500, 7);
        assert!(!out.is_empty());
        for addr in &out {
            let w = u128::from(*addr);
            // Every generated address shares a /32 with some seed.
            let covered = seeds
                .iter()
                .any(|s| v6addr::bits::common_prefix_len(w, u128::from(*s)) >= 32);
            assert!(covered, "{addr} outside all seed clusters");
        }
    }

    #[test]
    fn deterministic() {
        let seeds = vec![a("2001:db8::1"), a("2001:db8::ff")];
        let x = generate_loose(&seeds, 100, 1);
        let y = generate_loose(&seeds, 100, 1);
        assert_eq!(x, y);
        let z = generate_loose(&seeds, 100, 2);
        assert_ne!(x, z);
    }

    #[test]
    fn denser_clusters_get_more_targets() {
        // 20 seeds in cluster A, 2 in cluster B.
        let mut seeds = Vec::new();
        for i in 0..20u32 {
            seeds.push(Ipv6Addr::from(
                u128::from(a("2001:db8::")) | (i as u128) << 8 | 1,
            ));
        }
        seeds.push(a("2620:0:1::1"));
        seeds.push(a("2620:0:1::2"));
        let out = generate_loose(&seeds, 1_000, 3);
        let in_a = out
            .iter()
            .filter(|x| u128::from(**x) >> 96 == u128::from(a("2001:db8::")) >> 96)
            .count();
        let in_b = out.len() - in_a;
        assert!(in_a > in_b, "dense {in_a} vs sparse {in_b}");
    }

    #[test]
    fn empty_and_zero_budget() {
        assert!(generate_loose(&[], 100, 1).is_empty());
        assert!(generate_loose(&[a("::1")], 0, 1).is_empty());
    }

    #[test]
    fn tight_mode_only_emits_observed_nybbles() {
        let seeds = vec![a("2001:db8::1001"), a("2001:db8::4001")];
        let out = generate_tight(&seeds, 300, 5);
        assert!(!out.is_empty());
        for addr in &out {
            let w = u128::from(*addr);
            // Nybble 28 (0-indexed from the top) observed values: 1, 4.
            let nyb = (w >> 12) & 0xf;
            assert!(nyb == 1 || nyb == 4, "unobserved nybble {nyb:x} in {addr}");
        }
        // Loose mode would also generate 2 and 3 there.
        let loose = generate_loose(&seeds, 300, 5);
        let loose_nybbles: std::collections::HashSet<u128> =
            loose.iter().map(|&x| (u128::from(x) >> 12) & 0xf).collect();
        assert!(loose_nybbles.len() > 2, "loose mode should span the range");
    }

    #[test]
    fn tight_mode_deterministic_and_bounded() {
        let seeds = vec![a("2001:db8::1"), a("2001:db8::2"), a("2001:db8::9")];
        let x = generate_tight(&seeds, 50, 1);
        let y = generate_tight(&seeds, 50, 1);
        assert_eq!(x, y);
        assert!(x.len() <= 50);
        assert!(generate_tight(&[], 50, 1).is_empty());
    }

    #[test]
    fn wildcard_positions_vary() {
        // Seeds spanning a nybble range must produce variety there.
        let seeds = vec![a("2001:db8::1000"), a("2001:db8::9000")];
        let out = generate_loose(&seeds, 200, 11);
        let distinct: std::collections::HashSet<u128> =
            out.iter().map(|&x| u128::from(x) >> 12 & 0xf).collect();
        assert!(distinct.len() > 2, "wildcard nybble shows no variety");
    }
}
