//! Feedback-driven seed generation: the closed-loop counterpart of the
//! static sources in [`crate::sources`].
//!
//! The paper's central observation is that *what you probe determines
//! what you see* — the productive seeds for round *n+1* are round *n*'s
//! discoveries, not another static file. This module turns a round's
//! discoveries (interface addresses earned from the traces, plus any
//! inferred subnet prefixes) into a fresh [`SeedList`] by running the
//! same generator machinery the static pipeline uses, but over live
//! measurement output:
//!
//! * **kIP aggregation** ([`crate::kip`]) over the discovered
//!   interfaces' /64s: dense discovery regions merge into covering
//!   prefixes whose *unprobed gaps* are the next round's best guesses —
//!   the aggregation the CDN uses for anonymity doubles as a locality
//!   summary;
//! * **6Gen-style expansion** ([`crate::sixgen`], loose mode) over the
//!   probed targets plus the raw interface addresses (the paper's own
//!   6Gen input: "targets probed plus interfaces discovered"): fresh
//!   candidate addresses drawn near the dense observed ranges;
//! * **inferred subnets** (e.g. the IA hack's exact /64s, path-
//!   divergence lower bounds) passed through as prefix entries.
//!
//! Everything is deterministic for a given `(inputs, params, rng_seed)`
//! — the adaptive loop's serial and parallel drivers rely on that.

use crate::{kip, sixgen, SeedEntry, SeedList};
use std::net::Ipv6Addr;
use v6addr::Ipv6Prefix;

/// Knobs for one feedback-generation step.
#[derive(Clone, Copy, Debug)]
pub struct FeedbackParams {
    /// kIP aggregation threshold over discovered-interface /64s: a
    /// region splits only while every side still holds `kip_k`
    /// discoveries, so larger values yield coarser (more speculative)
    /// covering prefixes. 2 keeps aggregates tight around what was
    /// actually seen.
    pub kip_k: usize,
    /// Addresses to draw from the 6Gen loose-mode generator per step.
    pub sixgen_budget: usize,
}

impl Default for FeedbackParams {
    fn default() -> Self {
        FeedbackParams {
            kip_k: 2,
            sixgen_budget: 2_048,
        }
    }
}

/// Builds the next round's seed list from this round's discoveries.
///
/// `discovered` are interface addresses earned so far (cumulative input
/// gives the generators more cluster mass); `probed` are the targets
/// already spent on — the paper feeds 6Gen with "the targets CAIDA
/// probed plus the interfaces that probing discovered", and the union
/// is exactly what makes the feedback basis a strict superset of any
/// open-loop expansion of the original seeds; `inferred` are subnet
/// prefixes from the analysis passes. The output list contains the
/// kIP aggregates (over *discoveries* only — locality that was earned,
/// not guessed) and inferred prefixes as [`SeedEntry::Prefix`] entries
/// and the 6Gen draws as [`SeedEntry::Addr`] entries, deduplicated and
/// sorted like every other seed list.
pub fn feedback_list(
    name: impl Into<String>,
    discovered: &[Ipv6Addr],
    probed: &[Ipv6Addr],
    inferred: &[Ipv6Prefix],
    params: &FeedbackParams,
    rng_seed: u64,
) -> SeedList {
    let mut entries: Vec<SeedEntry> = Vec::new();

    // Locality summary: aggregate the discovered interfaces' /64s.
    let iface_64s: Vec<Ipv6Prefix> = discovered
        .iter()
        .map(|&a| Ipv6Prefix::truncating(a, 64))
        .collect();
    entries.extend(
        kip::kip_aggregate(&iface_64s, params.kip_k.max(1))
            .into_iter()
            .map(SeedEntry::Prefix),
    );

    // Analysis-inferred subnets ride along verbatim.
    entries.extend(inferred.iter().copied().map(SeedEntry::Prefix));

    // Generative expansion near the dense observed ranges, seeded by
    // probed targets and discoveries together (6Gen dedups internally).
    let basis: Vec<Ipv6Addr> = probed.iter().chain(discovered.iter()).copied().collect();
    entries.extend(
        sixgen::generate_loose(&basis, params.sixgen_budget, rng_seed)
            .into_iter()
            .map(SeedEntry::Addr),
    );

    SeedList::new(name, entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn deterministic_for_fixed_inputs() {
        // A wide cluster (draw space far larger than the budget), so
        // different rng seeds must produce different draws.
        let disc = vec![
            a("2001:db8::1"),
            a("2001:db8::9"),
            a("2001:db8:1234:5678:9abc::1"),
            a("2001:db8:0:2::1"),
        ];
        let inf: Vec<Ipv6Prefix> = vec!["2001:db8:0:7::/64".parse().unwrap()];
        let p = FeedbackParams::default();
        let x = feedback_list("fb", &disc, &[], &inf, &p, 42);
        let y = feedback_list("fb", &disc, &[], &inf, &p, 42);
        assert_eq!(x.entries, y.entries);
        let z = feedback_list("fb", &disc, &[], &inf, &p, 43);
        assert_ne!(x.entries, z.entries, "rng seed must matter");
    }

    #[test]
    fn carries_inferred_prefixes_and_aggregates() {
        let disc = vec![
            a("2001:db8:0:1::1"),
            a("2001:db8:0:2::1"),
            a("2001:db8:0:3::1"),
        ];
        let inferred: Vec<Ipv6Prefix> = vec!["2620:1:2:3::/64".parse().unwrap()];
        let fb = feedback_list("fb", &disc, &[], &inferred, &FeedbackParams::default(), 1);
        // The inferred prefix is present verbatim.
        assert!(fb
            .prefixes()
            .any(|p| p == "2620:1:2:3::/64".parse().unwrap()));
        // Some aggregate covers each discovered interface's /64.
        for d in &disc {
            assert!(
                fb.prefixes().any(|p| p.len() <= 64 && p.contains_addr(*d)),
                "{d} not covered by any aggregate"
            );
        }
        // 6Gen drew concrete addresses near the cluster.
        assert!(fb.addrs().count() > 0);
    }

    #[test]
    fn probed_basis_widens_generation() {
        // With a probed basis in a second region, draws appear there
        // even though nothing was discovered in it.
        let disc = vec![a("2001:db8::1"), a("2001:db8::ff")];
        let probed = vec![a("2620:77::1"), a("2620:77::9000")];
        let fb = feedback_list("fb", &disc, &probed, &[], &FeedbackParams::default(), 3);
        let second_region = fb
            .addrs()
            .filter(|x| u128::from(*x) >> 96 == u128::from(a("2620:77::")) >> 96)
            .count();
        assert!(second_region > 0, "probed basis must seed generation");
    }

    #[test]
    fn empty_discoveries_yield_only_inferred() {
        let inferred: Vec<Ipv6Prefix> = vec!["2001:db8::/64".parse().unwrap()];
        let fb = feedback_list("fb", &[], &[], &inferred, &FeedbackParams::default(), 7);
        assert_eq!(fb.len(), 1);
        assert!(feedback_list("fb", &[], &[], &[], &FeedbackParams::default(), 7).is_empty());
    }
}
