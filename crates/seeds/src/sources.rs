//! The eight seed-source synthesizers (§3.2), sampling simulated ground
//! truth with each real source's collection bias.

use crate::{kip, sixgen, SeedEntry, SeedList};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simnet::topology::{AsTier, HostKind, RouterRole, Topology};
use std::net::Ipv6Addr;
use v6addr::{bits, Ipv6Prefix};

/// All seed lists, synthesized together so they share one ground truth.
#[derive(Clone, Debug)]
pub struct SeedCatalog {
    /// CAIDA-style: ::1 plus one random address per routed prefix ≤ /48.
    pub caida: SeedList,
    /// rDNS zone-walking: dense per-org enumeration plus stale entries.
    pub fiebig: SeedList,
    /// Forward DNS ANY: servers across many ASes, 6to4 included.
    pub fdns: SeedList,
    /// Passive DNS: broad, moderate-rate sampling of named hosts.
    pub dnsdb: SeedList,
    /// CDN WWW-client aggregates, kIP k=32 (finer).
    pub cdn_k32: SeedList,
    /// CDN WWW-client aggregates, kIP k=256 (coarser).
    pub cdn_k256: SeedList,
    /// 6Gen loose-mode generation from CAIDA-derived observations.
    pub sixgen: SeedList,
    /// TUM collection: fdns ∪ infrastructure names ∪ residential dyndns.
    pub tum: SeedList,
    /// Random control: uniform prefix, then uniform address within.
    pub random: SeedList,
    /// Union of the six independent lists (Table 1's "Combined").
    pub combined: SeedList,
}

impl SeedCatalog {
    /// Synthesizes every list from `topo`, deterministically under `seed`.
    pub fn synthesize(topo: &Topology, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_ca7a_1006);
        let caida = caida(topo, &mut rng);
        let fiebig = fiebig(topo, &mut rng);
        let fdns = fdns(topo, &mut rng);
        let dnsdb = dnsdb(topo, &mut rng);
        let clients = topo.active_client_64s();
        // kIP anonymity is relative to population density: the paper's
        // k=32 over >100M active client /64s yields 3.4M aggregates
        // (~30 clients per aggregate). At simulation scale we preserve
        // that *ratio* — k_fine ≈ population/10k (min 2) and the paper's
        // 8x fine/coarse split — while keeping the paper's row labels.
        let k_fine = (clients.len() / 100_000).max(2);
        let k_coarse = 8 * k_fine;
        let cdn_k32 = SeedList::new(
            "cdn-k32",
            kip::kip_aggregate(&clients, k_fine)
                .into_iter()
                .map(SeedEntry::Prefix),
        );
        let cdn_k256 = SeedList::new(
            "cdn-k256",
            kip::kip_aggregate(&clients, k_coarse)
                .into_iter()
                .map(SeedEntry::Prefix),
        );
        let sixgen = sixgen_list(topo, &caida, &mut rng);
        let tum = tum(topo, &fdns, &mut rng);
        let random = random_control(topo, &mut rng);
        let combined = SeedList::union(
            "combined",
            &[&caida, &dnsdb, &fiebig, &fdns, &cdn_k32, &cdn_k256, &sixgen],
        );
        SeedCatalog {
            caida,
            fiebig,
            fdns,
            dnsdb,
            cdn_k32,
            cdn_k256,
            sixgen,
            tum,
            random,
            combined,
        }
    }

    /// The six-plus-two individually-probed lists, by table order.
    pub fn named(&self) -> Vec<(&str, &SeedList)> {
        vec![
            ("caida", &self.caida),
            ("dnsdb", &self.dnsdb),
            ("fiebig", &self.fiebig),
            ("fdns", &self.fdns),
            ("cdn-k256", &self.cdn_k256),
            ("cdn-k32", &self.cdn_k32),
            ("6gen", &self.sixgen),
            ("tum", &self.tum),
            ("random", &self.random),
        ]
    }
}

/// Groups host addresses by origin AS index.
fn hosts_by_as(topo: &Topology) -> Vec<Vec<(Ipv6Addr, HostKind)>> {
    let mut by_as: Vec<Vec<(Ipv6Addr, HostKind)>> = vec![Vec::new(); topo.ases.len()];
    for (addr, kind) in topo.hosts() {
        if let Some(asn) = topo.bgp.origin(addr) {
            if let Some(i) = topo.as_by_asn(asn) {
                by_as[i as usize].push((addr, kind));
            }
        }
    }
    by_as
}

/// CAIDA: for every routed prefix of length ≤ 48, the ::1 address plus
/// one uniformly random address (Ark's per-prefix pair).
pub fn caida(topo: &Topology, rng: &mut SmallRng) -> SeedList {
    let mut entries = Vec::new();
    for (prefix, _) in topo.bgp.prefixes_up_to(48) {
        entries.push(SeedEntry::Addr(prefix.addr(1)));
        let span = 128 - prefix.len();
        let off: u128 = rng.gen::<u128>() & ((1u128 << span.min(127)) - 1);
        entries.push(SeedEntry::Addr(prefix.addr(off)));
    }
    SeedList::new("caida", entries)
}

/// Fiebig rDNS: a third of stub ASes maintain ip6.arpa; walking them
/// yields *every* named host, the LAN gateways, dense sequential
/// enumeration inside each /64 — and stale zones pointing at unrouted
/// space (Table 5 shows barely half of Fiebig targets are routed).
pub fn fiebig(topo: &Topology, rng: &mut SmallRng) -> SeedList {
    let by_as = hosts_by_as(topo);
    let mut entries = Vec::new();
    for (i, info) in topo.ases.iter().enumerate() {
        if !matches!(info.tier, AsTier::Stub) || !rng.gen_bool(0.33) {
            continue;
        }
        let stale = rng.gen_bool(0.35);
        for &(addr, _) in &by_as[i] {
            entries.push(SeedEntry::Addr(addr));
            // Dense enumeration: rDNS zones typically hold runs of
            // sequential names next to each live address.
            let w = u128::from(addr);
            let net = bits::net_bits(w);
            for d in 1..=3u64 {
                entries.push(SeedEntry::Addr(bits::from_u128(bits::join(
                    net,
                    (bits::iid_bits(w)).wrapping_add(d),
                ))));
            }
            if stale {
                // The org renumbered; the old zone survives, pointing
                // into space that is no longer announced.
                let stale_w = w ^ (0x1fffu128 << 112);
                entries.push(SeedEntry::Addr(bits::from_u128(stale_w)));
            }
        }
    }
    // Gateways of walked ASes appear too (router PTR names).
    for r in &topo.routers {
        if r.role == RouterRole::LanGateway && rng.gen_bool(0.15) {
            entries.push(SeedEntry::Addr(r.addr));
        }
    }
    SeedList::new("fiebig", entries)
}

/// Rapid7 forward-DNS ANY: server names dominate, across nearly all ASes;
/// 6to4 hosts surface here (Table 5's 6to4 column).
pub fn fdns(topo: &Topology, rng: &mut SmallRng) -> SeedList {
    let mut entries = Vec::new();
    for (addr, kind) in topo.hosts() {
        let p = match kind {
            HostKind::Server => 0.75,
            HostKind::Slaac => 0.10,
            HostKind::Privacy => 0.02,
            HostKind::Client => 0.0,
        };
        if p > 0.0 && rng.gen_bool(p) {
            entries.push(SeedEntry::Addr(addr));
        }
    }
    // Some infrastructure names leak into forward DNS.
    for r in &topo.routers {
        if matches!(r.role, RouterRole::LanGateway | RouterRole::Border) && rng.gen_bool(0.05) {
            entries.push(SeedEntry::Addr(r.addr));
        }
    }
    SeedList::new("fdns", entries)
}

/// Farsight passive DNS: what resolvers actually asked for — broad ASN
/// coverage at a lower per-AS rate than fdns.
pub fn dnsdb(topo: &Topology, rng: &mut SmallRng) -> SeedList {
    let mut entries = Vec::new();
    for (addr, kind) in topo.hosts() {
        let p = match kind {
            HostKind::Server => 0.45,
            HostKind::Slaac => 0.20,
            HostKind::Privacy => 0.05,
            HostKind::Client => 0.01,
        };
        if p > 0.0 && rng.gen_bool(p) {
            entries.push(SeedEntry::Addr(addr));
        }
    }
    SeedList::new("dnsdb", entries)
}

/// 6Gen: loose-mode generation seeded by CAIDA observations — the
/// targets CAIDA probed plus the interfaces that probing discovered
/// (approximated here by a thin sample of true router addresses, as the
/// paper used CAIDA's actual measurement output).
pub fn sixgen_list(topo: &Topology, caida: &SeedList, rng: &mut SmallRng) -> SeedList {
    let mut input: Vec<Ipv6Addr> = caida.addrs().collect();
    for r in &topo.routers {
        if rng.gen_bool(0.05) {
            input.push(r.addr);
        }
    }
    let budget = input.len() * 20;
    let generated = sixgen::generate_loose(&input, budget, rng.gen());
    SeedList::new("6gen", generated.into_iter().map(SeedEntry::Addr))
}

/// The TUM collection's subsets (Table 2 analogue): each packaged
/// separately, unioned by [`tum`].
pub fn tum_parts(topo: &Topology, fdns: &SeedList, rng: &mut SmallRng) -> Vec<SeedList> {
    // rapid7-dnsany analogue: the fdns list itself.
    let rapid7 = SeedList::new("rapid7-dnsany", fdns.entries.iter().copied());
    // caida-dnsnames / traceroute / openipmap analogues: infrastructure
    // addresses observed in public measurement data.
    let mut infra = Vec::new();
    for r in &topo.routers {
        if rng.gen_bool(0.04) {
            infra.push(SeedEntry::Addr(r.addr));
        }
    }
    let traceroute = SeedList::new("traceroute-v6", infra);
    // ct / alexa analogue: residential dyndns and certificate-transparency
    // names reaching into CPE client space.
    let mut resi = Vec::new();
    for (addr, kind) in topo.hosts() {
        if kind == HostKind::Client && rng.gen_bool(0.08) {
            resi.push(SeedEntry::Addr(addr));
        }
    }
    let ct = SeedList::new("ct", resi);
    vec![rapid7, traceroute, ct]
}

/// TUM collection: a union of public sets — fdns, infrastructure names
/// (caida-dnsnames / traceroute / openipmap analogues: true router
/// addresses), and residential dyndns/CT names reaching into CPE space.
pub fn tum(topo: &Topology, fdns: &SeedList, rng: &mut SmallRng) -> SeedList {
    let parts = tum_parts(topo, fdns, rng);
    let refs: Vec<&SeedList> = parts.iter().collect();
    let mut u = SeedList::union("tum", &refs);
    u.name = "tum".into();
    u
}

/// The random control: a uniformly chosen routed prefix, then a uniform
/// address inside it. Sized like the combined host population.
pub fn random_control(topo: &Topology, rng: &mut SmallRng) -> SeedList {
    let prefixes: Vec<Ipv6Prefix> = topo.bgp.iter().map(|(p, _)| p).collect();
    let n = (topo.host_count() * 2).max(1_000);
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let p = prefixes[rng.gen_range(0..prefixes.len())];
        let span = 128 - p.len();
        let off: u128 = rng.gen::<u128>() & ((1u128 << span.min(127)) - 1);
        entries.push(SeedEntry::Addr(p.addr(off)));
    }
    SeedList::new("random", entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::config::TopologyConfig;
    use simnet::generate::generate;
    use v6addr::IidClass;

    fn catalog() -> (Topology, SeedCatalog) {
        let topo = generate(TopologyConfig::tiny(42));
        let cat = SeedCatalog::synthesize(&topo, 99);
        (topo, cat)
    }

    #[test]
    fn caida_is_two_per_routed_prefix() {
        let (topo, cat) = catalog();
        let routed48 = topo.bgp.prefixes_up_to(48).len();
        // ::1 + random per prefix, minus any collisions.
        assert!(cat.caida.len() <= 2 * routed48);
        assert!(cat.caida.len() > routed48);
    }

    #[test]
    fn deterministic_catalog() {
        let topo = generate(TopologyConfig::tiny(42));
        let a = SeedCatalog::synthesize(&topo, 5);
        let b = SeedCatalog::synthesize(&topo, 5);
        assert_eq!(a.fdns.entries, b.fdns.entries);
        assert_eq!(a.random.entries, b.random.entries);
        let c = SeedCatalog::synthesize(&topo, 6);
        assert_ne!(a.random.entries, c.random.entries);
    }

    #[test]
    fn cdn_lists_are_prefixes_k32_finer() {
        let (_, cat) = catalog();
        assert_eq!(cat.cdn_k32.addrs().count(), 0);
        assert_eq!(cat.cdn_k256.addrs().count(), 0);
        assert!(
            cat.cdn_k32.len() >= cat.cdn_k256.len(),
            "k32 {} < k256 {}",
            cat.cdn_k32.len(),
            cat.cdn_k256.len()
        );
        // Aggregates never more specific than /64.
        for p in cat.cdn_k32.prefixes() {
            assert!(p.len() <= 64);
        }
    }

    #[test]
    fn fiebig_contains_unrouted_staleness() {
        let (topo, cat) = catalog();
        let unrouted = cat
            .fiebig
            .addrs()
            .filter(|a| !topo.bgp.is_routed(*a))
            .count();
        assert!(unrouted > 0, "fiebig must contain stale/unrouted entries");
    }

    #[test]
    fn fiebig_denser_than_fdns() {
        // Fig 3: fiebig's DPL distribution is far right of caida's.
        let (_, cat) = catalog();
        let fiebig_addrs: Vec<Ipv6Addr> = cat.fiebig.addrs().collect();
        let caida_addrs: Vec<Ipv6Addr> = cat.caida.addrs().collect();
        let f = v6addr::dpl::DplCdf::from_addrs(&fiebig_addrs);
        let c = v6addr::dpl::DplCdf::from_addrs(&caida_addrs);
        assert!(
            f.median().unwrap() > c.median().unwrap(),
            "fiebig median {:?} <= caida {:?}",
            f.median(),
            c.median()
        );
    }

    #[test]
    fn fdns_is_lowbyte_heavy_6gen_random_heavy() {
        let (_, cat) = catalog();
        let fdns = cat.fdns.iid_census();
        assert!(fdns.fraction(IidClass::LowByte) > 0.3);
        let sg = cat.sixgen.iid_census();
        assert!(
            sg.fraction(IidClass::Random) > 0.5,
            "6gen random fraction {}",
            sg.fraction(IidClass::Random)
        );
    }

    #[test]
    fn tum_supersets_fdns_mostly() {
        let (_, cat) = catalog();
        let fdns_set: std::collections::BTreeSet<_> = cat.fdns.entries.iter().collect();
        let tum_set: std::collections::BTreeSet<_> = cat.tum.entries.iter().collect();
        let contained = fdns_set.iter().filter(|e| tum_set.contains(**e)).count();
        assert_eq!(contained, fdns_set.len(), "tum must contain all of fdns");
        assert!(cat.tum.len() > cat.fdns.len());
    }

    #[test]
    fn random_targets_all_routed() {
        let (topo, cat) = catalog();
        for a in cat.random.addrs().take(200) {
            assert!(topo.bgp.is_routed(a));
        }
    }

    #[test]
    fn sixtofour_present_in_fdns() {
        let (_, cat) = catalog();
        let n = cat
            .fdns
            .addrs()
            .filter(|a| v6addr::is_sixtofour(*a))
            .count();
        assert!(n > 0, "fdns must include 6to4 hosts");
    }
}
