//! Interface-identifier (IID) classification, after the `addr6` tool from
//! the SI6 IPv6 toolkit (paper §3.2, Table 1).
//!
//! The classifier examines the low 64 bits of an address and buckets it:
//!
//! * **EUI-64** — a MAC-derived IID with the `ff:fe` marker in bytes 3–4;
//!   exposes the embedded OUI (manufacturer) used by the Table 7 analysis;
//! * **LowByte** — a run of zeroes followed by a small value (e.g. `::1`),
//!   typical of manually numbered routers and servers;
//! * **EmbeddedIpv4** — the IID carries an IPv4 address in its low 32 bits;
//! * **PatternBytes** — a repeated byte pattern (e.g. `dead:dead:dead:dead`);
//! * **Random** — no recognized structure (SLAAC privacy addresses land
//!   here, as does anything the heuristics cannot name).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv6Addr;

/// The classification buckets, mirroring the Table 1 columns (plus the
/// minor classes addr6 distinguishes that the paper folds into "other").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IidClass {
    /// MAC-derived modified EUI-64 (`xx:xx:xx:ff:fe:xx:xx:xx`).
    Eui64,
    /// Zero run followed by a low value (at most the low 16 bits set).
    LowByte,
    /// IPv4 address embedded in the low 32 bits.
    EmbeddedIpv4,
    /// A repeated 16-bit pattern across all four IID groups.
    PatternBytes,
    /// No recognized structure.
    Random,
}

impl fmt::Display for IidClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IidClass::Eui64 => "eui64",
            IidClass::LowByte => "lowbyte",
            IidClass::EmbeddedIpv4 => "embedded-ipv4",
            IidClass::PatternBytes => "pattern-bytes",
            IidClass::Random => "random",
        };
        f.write_str(s)
    }
}

/// Classifies the IID of `addr`.
pub fn classify(addr: Ipv6Addr) -> IidClass {
    classify_iid(u128::from(addr) as u64)
}

/// Classifies a raw 64-bit IID.
pub fn classify_iid(iid: u64) -> IidClass {
    // EUI-64: bytes 3 and 4 of the IID are 0xff 0xfe.
    if (iid >> 24) & 0xffff == 0xfffe {
        return IidClass::Eui64;
    }
    // LowByte: only the low 16 bits may be set (covers ::1, ::25, ::1000).
    if iid & 0xffff_ffff_ffff_0000 == 0 {
        return IidClass::LowByte;
    }
    // Embedded IPv4: high 32 bits zero, low 32 bits a plausible unicast
    // IPv4 address (first octet in 1..=223, not loopback).
    if iid >> 32 == 0 {
        let v4 = iid as u32;
        let first = (v4 >> 24) as u8;
        if (1..=223).contains(&first) && first != 127 {
            return IidClass::EmbeddedIpv4;
        }
        // High-zero but implausible as IPv4 and too large for LowByte:
        // fall through to pattern/random.
    }
    // PatternBytes: all four 16-bit groups identical (and nonzero).
    let g0 = iid & 0xffff;
    if g0 != 0
        && (iid >> 16) & 0xffff == g0
        && (iid >> 32) & 0xffff == g0
        && (iid >> 48) & 0xffff == g0
    {
        return IidClass::PatternBytes;
    }
    IidClass::Random
}

/// Extracts the OUI (IEEE manufacturer identifier, 24 bits) from an EUI-64
/// IID, un-flipping the universal/local bit. Returns `None` for non-EUI-64
/// IIDs.
pub fn eui64_oui(iid: u64) -> Option<u32> {
    if classify_iid(iid) != IidClass::Eui64 {
        return None;
    }
    let b0 = ((iid >> 56) as u8) ^ 0x02; // undo u/l bit flip
    let b1 = (iid >> 48) as u8;
    let b2 = (iid >> 40) as u8;
    Some(((b0 as u32) << 16) | ((b1 as u32) << 8) | b2 as u32)
}

/// Builds a modified-EUI-64 IID from a MAC address (used by the simulator's
/// CPE address plans).
pub fn eui64_from_mac(mac: [u8; 6]) -> u64 {
    let b0 = mac[0] ^ 0x02;
    ((b0 as u64) << 56)
        | ((mac[1] as u64) << 48)
        | ((mac[2] as u64) << 40)
        | (0xffu64 << 32)
        | (0xfeu64 << 24)
        | ((mac[3] as u64) << 16)
        | ((mac[4] as u64) << 8)
        | mac[5] as u64
}

/// Aggregate classification counts over an address set (one Table 1 row).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IidCensus {
    pub total: u64,
    pub eui64: u64,
    pub lowbyte: u64,
    pub embedded_ipv4: u64,
    pub pattern: u64,
    pub random: u64,
}

impl IidCensus {
    /// Classifies every address and tallies the buckets.
    pub fn of(addrs: impl IntoIterator<Item = Ipv6Addr>) -> Self {
        let mut c = IidCensus::default();
        for a in addrs {
            c.total += 1;
            match classify(a) {
                IidClass::Eui64 => c.eui64 += 1,
                IidClass::LowByte => c.lowbyte += 1,
                IidClass::EmbeddedIpv4 => c.embedded_ipv4 += 1,
                IidClass::PatternBytes => c.pattern += 1,
                IidClass::Random => c.random += 1,
            }
        }
        c
    }

    /// Fraction of a bucket (0.0 when the census is empty).
    pub fn fraction(&self, class: IidClass) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = match class {
            IidClass::Eui64 => self.eui64,
            IidClass::LowByte => self.lowbyte,
            IidClass::EmbeddedIpv4 => self.embedded_ipv4,
            IidClass::PatternBytes => self.pattern,
            IidClass::Random => self.random,
        };
        n as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> IidClass {
        classify(s.parse().unwrap())
    }

    #[test]
    fn lowbyte() {
        assert_eq!(c("2001:db8::1"), IidClass::LowByte);
        assert_eq!(c("2001:db8::25"), IidClass::LowByte);
        assert_eq!(c("2001:db8::ffff"), IidClass::LowByte);
        assert_eq!(c("2001:db8::"), IidClass::LowByte); // all-zero IID
    }

    #[test]
    fn eui64() {
        assert_eq!(c("2001:db8::0211:22ff:fe33:4455"), IidClass::Eui64);
    }

    #[test]
    fn fixediid_is_random() {
        // The paper's fixed IID 1234:5678:1234:5678 repeats with period 32
        // bits, not 16, so it is not PatternBytes and classifies random.
        assert_eq!(c("2001:db8::1234:5678:1234:5678"), IidClass::Random);
    }

    #[test]
    fn embedded_v4() {
        // ::c000:0201 embeds 192.0.2.1.
        assert_eq!(c("2001:db8::c000:201"), IidClass::EmbeddedIpv4);
        // ::e900:0001 has first octet 233 (multicast-range) -> not IPv4-like.
        assert_eq!(c("2001:db8::e900:1"), IidClass::Random);
    }

    #[test]
    fn pattern_bytes() {
        assert_eq!(c("2001:db8::dead:dead:dead:dead"), IidClass::PatternBytes);
    }

    #[test]
    fn random_class() {
        assert_eq!(c("2001:db8::8a2e:370:7334:9f1b"), IidClass::Random);
    }

    #[test]
    fn mac_roundtrip() {
        let mac = [0x00, 0x11, 0x22, 0x33, 0x44, 0x55];
        let iid = eui64_from_mac(mac);
        assert_eq!(classify_iid(iid), IidClass::Eui64);
        assert_eq!(eui64_oui(iid), Some(0x001122));
        assert_eq!(eui64_oui(0x1), None);
    }

    #[test]
    fn census() {
        let addrs: Vec<Ipv6Addr> = vec![
            "2001:db8::1".parse().unwrap(),
            "2001:db8::0211:22ff:fe33:4455".parse().unwrap(),
            "2001:db8::8a2e:370:7334:9f1b".parse().unwrap(),
        ];
        let census = IidCensus::of(addrs);
        assert_eq!(census.total, 3);
        assert_eq!(census.lowbyte, 1);
        assert_eq!(census.eui64, 1);
        assert_eq!(census.random, 1);
        assert!((census.fraction(IidClass::Eui64) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(IidCensus::default().fraction(IidClass::Random), 0.0);
    }
}
