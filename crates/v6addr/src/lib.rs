//! IPv6 address primitives for active topology discovery.
//!
//! This crate provides the address-level machinery shared by every other
//! crate in the workspace:
//!
//! * [`Ipv6Prefix`] — a validated `(base address, length)` pair with
//!   containment, aggregation and canonical textual form;
//! * [`PrefixTrie`] — a binary (radix-1) trie keyed by prefixes supporting
//!   exact lookup and longest-prefix match, used for BGP tables and
//!   ground-truth subnet plans;
//! * [`BgpTable`] — a routed-prefix table mapping prefixes to origin
//!   [`Asn`]s, with the "equivalent ASN" augmentation from §6 of the paper;
//! * [`dpl`] — *Discriminating Prefix Length* computations (§3.4.1);
//! * [`iid`] — the `addr6`-style interface-identifier classifier used for
//!   Table 1 and Table 7 (EUI-64 / low-byte / embedded-IPv4 / random);
//! * [`entropy`] — Entropy/IP-style per-nybble entropy profiling and
//!   segmentation, for reasoning about address-set structure.
//!
//! All address math is done on `u128` in network bit order (bit 0 is the
//! most significant bit of the address).

pub mod bgp;
pub mod bits;
pub mod dpl;
pub mod entropy;
pub mod iid;
pub mod prefix;
pub mod trie;

pub use bgp::{Asn, BgpTable};
pub use iid::IidClass;
pub use prefix::Ipv6Prefix;
pub use trie::PrefixTrie;

use std::net::Ipv6Addr;

/// The well-known 6to4 relay prefix `2002::/16` (RFC 3056).
///
/// Table 5 counts how many targets in each set fall inside 6to4 space; the
/// constant lives here so both `targets` and the bench binaries agree.
pub fn sixtofour_prefix() -> Ipv6Prefix {
    Ipv6Prefix::new(Ipv6Addr::new(0x2002, 0, 0, 0, 0, 0, 0, 0), 16).unwrap()
}

/// Returns true if `addr` lies in 6to4 (`2002::/16`) space.
pub fn is_sixtofour(addr: Ipv6Addr) -> bool {
    sixtofour_prefix().contains_addr(addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixtofour_detection() {
        assert!(is_sixtofour("2002:db8::1".parse().unwrap()));
        assert!(!is_sixtofour("2001:db8::1".parse().unwrap()));
    }
}
