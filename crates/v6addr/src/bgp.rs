//! A BGP-style routed-prefix table.
//!
//! Maps advertised prefixes to their origin [`Asn`] and answers the
//! questions the paper's target characterization (Table 5) and subnet
//! discovery (§6) ask of a RIB snapshot: is an address routed, which
//! prefix covers it, and which AS originates it.
//!
//! §6 of the paper augments the BGP view in two ways that we mirror:
//!
//! * **equivalent ASNs** — sibling ASNs run by the same operator (e.g.
//!   post-acquisition) are treated as equal when matching a hop's ASN to a
//!   target's ASN;
//! * **registry prefixes** — prefixes present in an RIR but not globally
//!   advertised (router infrastructure space) can be added so hops inside
//!   them still resolve to an origin AS.

use crate::prefix::Ipv6Prefix;
use crate::trie::PrefixTrie;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv6Addr;

/// An autonomous system number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// A routed-prefix table: prefix → origin ASN, with longest-prefix match.
#[derive(Clone, Debug, Default)]
pub struct BgpTable {
    rib: PrefixTrie<Asn>,
    /// Union-find-free equivalence map: ASN → canonical representative.
    equivalents: HashMap<Asn, Asn>,
}

impl BgpTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Announces `prefix` with origin `asn`. Re-announcing replaces the
    /// origin (returns the previous one).
    pub fn announce(&mut self, prefix: Ipv6Prefix, asn: Asn) -> Option<Asn> {
        self.rib.insert(prefix, asn)
    }

    /// Number of announced prefixes.
    pub fn prefix_count(&self) -> usize {
        self.rib.len()
    }

    /// Declares `a` and `b` to be operated by the same organization
    /// (paper §6: "equivalent ASNs"). Equivalence is transitive.
    pub fn declare_equivalent(&mut self, a: Asn, b: Asn) {
        let ra = self.representative(a);
        let rb = self.representative(b);
        if ra != rb {
            // Map the larger representative onto the smaller for stability.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.equivalents.insert(hi, lo);
        }
    }

    /// The canonical representative of `asn`'s equivalence class.
    pub fn representative(&self, asn: Asn) -> Asn {
        let mut cur = asn;
        while let Some(&next) = self.equivalents.get(&cur) {
            cur = next;
        }
        cur
    }

    /// Are two ASNs the same organization (equal or declared equivalent)?
    pub fn same_org(&self, a: Asn, b: Asn) -> bool {
        a == b || self.representative(a) == self.representative(b)
    }

    /// Longest-prefix match: the most specific announced prefix covering
    /// `addr` and its origin.
    pub fn lookup(&self, addr: Ipv6Addr) -> Option<(Ipv6Prefix, Asn)> {
        self.rib.longest_match(addr).map(|(p, &a)| (p, a))
    }

    /// Is `addr` covered by any announced prefix?
    pub fn is_routed(&self, addr: Ipv6Addr) -> bool {
        self.rib.covers(addr)
    }

    /// Origin ASN for `addr`, if routed.
    pub fn origin(&self, addr: Ipv6Addr) -> Option<Asn> {
        self.lookup(addr).map(|(_, a)| a)
    }

    /// Iterates over all `(prefix, origin)` announcements.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv6Prefix, Asn)> + '_ {
        self.rib.iter().map(|(p, &a)| (p, a))
    }

    /// All announced prefixes with length at most `max_len` — the
    /// "prefixes of size /48 or larger" selection CAIDA's target list uses
    /// (paper §3.2).
    pub fn prefixes_up_to(&self, max_len: u8) -> Vec<(Ipv6Prefix, Asn)> {
        self.iter().filter(|(p, _)| p.len() <= max_len).collect()
    }

    /// The number of distinct origin ASNs present in the table.
    pub fn asn_count(&self) -> usize {
        let mut asns: Vec<u32> = self.iter().map(|(_, a)| a.0).collect();
        asns.sort_unstable();
        asns.dedup();
        asns.len()
    }
}

impl FromIterator<(Ipv6Prefix, Asn)> for BgpTable {
    fn from_iter<I: IntoIterator<Item = (Ipv6Prefix, Asn)>>(iter: I) -> Self {
        let mut t = BgpTable::new();
        for (p, a) in iter {
            t.announce(p, a);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn announce_and_lookup() {
        let mut t = BgpTable::new();
        t.announce(p("2001:db8::/32"), Asn(64496));
        t.announce(p("2001:db8:aa::/48"), Asn(64497));
        assert_eq!(t.prefix_count(), 2);
        assert_eq!(
            t.lookup("2001:db8:aa::1".parse().unwrap()),
            Some((p("2001:db8:aa::/48"), Asn(64497)))
        );
        assert_eq!(
            t.origin("2001:db8:bb::1".parse().unwrap()),
            Some(Asn(64496))
        );
        assert!(!t.is_routed("3fff::1".parse().unwrap()));
    }

    #[test]
    fn reannounce_replaces() {
        let mut t = BgpTable::new();
        assert_eq!(t.announce(p("2001:db8::/32"), Asn(1)), None);
        assert_eq!(t.announce(p("2001:db8::/32"), Asn(2)), Some(Asn(1)));
        assert_eq!(t.prefix_count(), 1);
    }

    #[test]
    fn equivalence_transitive() {
        let mut t = BgpTable::new();
        t.declare_equivalent(Asn(10), Asn(20));
        t.declare_equivalent(Asn(20), Asn(30));
        assert!(t.same_org(Asn(10), Asn(30)));
        assert!(t.same_org(Asn(30), Asn(10)));
        assert!(!t.same_org(Asn(10), Asn(40)));
        assert!(t.same_org(Asn(40), Asn(40)));
    }

    #[test]
    fn prefixes_up_to_caida_selection() {
        let mut t = BgpTable::new();
        t.announce(p("2001:db8::/32"), Asn(1));
        t.announce(p("2001:db8:aa::/48"), Asn(1));
        t.announce(p("2001:db8:aa:bb::/64"), Asn(1));
        let sel = t.prefixes_up_to(48);
        assert_eq!(sel.len(), 2);
        assert!(sel.iter().all(|(pf, _)| pf.len() <= 48));
    }

    #[test]
    fn asn_count_dedups() {
        let mut t = BgpTable::new();
        t.announce(p("2001:db8::/32"), Asn(1));
        t.announce(p("3fff::/20"), Asn(1));
        t.announce(p("2002::/16"), Asn(2));
        assert_eq!(t.asn_count(), 2);
    }
}
