//! Discriminating Prefix Length (DPL) computations (paper §3.4.1).
//!
//! An address' DPL within a set is the first (leftmost, 1-indexed) bit at
//! which it differs from its *nearest* companion in the sorted set — i.e.
//! `max` shared-prefix length with either sorted neighbor, plus one. High
//! DPLs mean densely packed addresses; when two addresses are in different
//! subnets their DPL lower-bounds the subnets' prefix lengths.

use crate::bits;
use std::net::Ipv6Addr;

/// Computes the DPL of every address in `addrs` (1..=128).
///
/// The input need not be sorted or deduplicated; output order corresponds
/// to the *sorted, deduplicated* set returned alongside. Sets with fewer
/// than two addresses have no defined DPL and yield an empty vector.
pub fn dpl_of_set(addrs: &[Ipv6Addr]) -> (Vec<Ipv6Addr>, Vec<u8>) {
    let mut words: Vec<u128> = addrs.iter().map(|&a| bits::to_u128(a)).collect();
    words.sort_unstable();
    words.dedup();
    let dpls = dpl_of_sorted_words(&words);
    (words.into_iter().map(bits::from_u128).collect(), dpls)
}

/// DPL per element of an already-sorted, deduplicated word slice.
pub fn dpl_of_sorted_words(words: &[u128]) -> Vec<u8> {
    if words.len() < 2 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(words.len());
    for i in 0..words.len() {
        let left = if i > 0 {
            bits::common_prefix_len(words[i - 1], words[i])
        } else {
            0
        };
        let right = if i + 1 < words.len() {
            bits::common_prefix_len(words[i], words[i + 1])
        } else {
            0
        };
        // Distinct addresses share at most 127 leading bits, so +1 <= 128.
        out.push(left.max(right) + 1);
    }
    out
}

/// The DPL of a *pair* of distinct addresses: the 1-indexed position of
/// their first differing bit. Used by path-divergence subnet inference to
/// lower-bound subnet prefix lengths.
pub fn dpl_of_pair(a: Ipv6Addr, b: Ipv6Addr) -> Option<u8> {
    let (wa, wb) = (bits::to_u128(a), bits::to_u128(b));
    if wa == wb {
        None
    } else {
        Some(bits::common_prefix_len(wa, wb) + 1)
    }
}

/// An empirical CDF over DPL values, evaluated at each bit position.
///
/// `fraction_at(l)` is the fraction of addresses whose DPL is ≤ `l` —
/// exactly the curves of Figure 3.
#[derive(Clone, Debug)]
pub struct DplCdf {
    counts: [u64; 129],
    total: u64,
}

impl DplCdf {
    /// Builds the CDF from per-address DPL values.
    pub fn from_dpls(dpls: &[u8]) -> Self {
        let mut counts = [0u64; 129];
        for &d in dpls {
            counts[d as usize] += 1;
        }
        DplCdf {
            counts,
            total: dpls.len() as u64,
        }
    }

    /// Builds the CDF directly from an address set.
    pub fn from_addrs(addrs: &[Ipv6Addr]) -> Self {
        let (_, dpls) = dpl_of_set(addrs);
        Self::from_dpls(&dpls)
    }

    /// Fraction of addresses with DPL ≤ `len` (0.0..=1.0).
    pub fn fraction_at(&self, len: u8) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let cum: u64 = self.counts[..=(len as usize)].iter().sum();
        cum as f64 / self.total as f64
    }

    /// The number of addresses the CDF covers.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Median DPL (smallest `l` with CDF ≥ 0.5), or `None` when empty.
    pub fn median(&self) -> Option<u8> {
        if self.total == 0 {
            return None;
        }
        let mut cum = 0u64;
        for l in 0..=128usize {
            cum += self.counts[l];
            if cum * 2 >= self.total {
                return Some(l as u8);
            }
        }
        None
    }

    /// Mean DPL, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(l, &c)| l as u64 * c)
            .sum();
        Some(sum as f64 / self.total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn pair_dpl() {
        assert_eq!(dpl_of_pair(a("::"), a("::1")), Some(128));
        assert_eq!(dpl_of_pair(a("::"), a("8000::")), Some(1));
        assert_eq!(dpl_of_pair(a("2001:db8::"), a("2001:db8::")), None);
        // 2001:db8:: vs 2001:db9:: differ within the second group:
        // db8 = 1101 1011 1000, db9 = 1101 1011 1001 -> bit index 31 (0-based), DPL 32.
        assert_eq!(dpl_of_pair(a("2001:db8::"), a("2001:db9::")), Some(32));
    }

    #[test]
    fn set_dpl_neighbors() {
        // Three addresses: the middle one is near the last.
        let set = [a("2001:db8::1"), a("3fff::1"), a("3fff::2")];
        let (sorted, dpls) = dpl_of_set(&set);
        assert_eq!(sorted.len(), 3);
        // 3fff::1 and 3fff::2 share 126 bits -> DPL 127 for both.
        assert_eq!(dpls[1], 127);
        assert_eq!(dpls[2], 127);
        // 2001:db8::1's nearest is 3fff::1: 0010... vs 0011... -> DPL 4.
        assert_eq!(dpls[0], 4);
    }

    #[test]
    fn set_dpl_dedups() {
        let set = [a("::1"), a("::1"), a("::2")];
        let (sorted, dpls) = dpl_of_set(&set);
        assert_eq!(sorted.len(), 2);
        assert_eq!(dpls, vec![127, 127]);
    }

    #[test]
    fn degenerate_sets() {
        assert!(dpl_of_set(&[]).1.is_empty());
        assert!(dpl_of_set(&[a("::1")]).1.is_empty());
    }

    #[test]
    fn cdf_fractions() {
        let dpls = vec![32, 32, 64, 128];
        let cdf = DplCdf::from_dpls(&dpls);
        assert_eq!(cdf.fraction_at(31), 0.0);
        assert_eq!(cdf.fraction_at(32), 0.5);
        assert_eq!(cdf.fraction_at(64), 0.75);
        assert_eq!(cdf.fraction_at(128), 1.0);
        assert_eq!(cdf.median(), Some(32));
        assert_eq!(cdf.mean(), Some((32.0 + 32.0 + 64.0 + 128.0) / 4.0));
    }

    #[test]
    fn cdf_empty() {
        let cdf = DplCdf::from_dpls(&[]);
        assert_eq!(cdf.fraction_at(128), 0.0);
        assert_eq!(cdf.median(), None);
        assert_eq!(cdf.mean(), None);
    }

    #[test]
    fn combination_shifts_right() {
        // Paper §3.4.1 / Fig 3b: interleaving another set's addresses can
        // only raise (or keep) each address's DPL.
        let base = [a("2001:db8::1"), a("2001:db8:ffff::1")];
        let (_, alone) = dpl_of_set(&base);
        let mut combined = base.to_vec();
        combined.push(a("2001:db8:8000::1"));
        let (sorted, comb) = dpl_of_set(&combined);
        for (i, addr) in sorted.iter().enumerate() {
            if let Some(j) = base.iter().position(|x| x == addr) {
                assert!(comb[i] >= alone[j]);
            }
        }
    }
}
