//! A binary prefix trie over IPv6 prefixes.
//!
//! Each node corresponds to a prefix; values may be stored at any node.
//! Supports exact lookup, longest-prefix match (LPM), covered-prefix
//! iteration, and value mutation. This is the workhorse behind the BGP
//! table, ground-truth subnet plans, and kIP aggregation.
//!
//! The trie is path-compressed-free (one bit per level) for simplicity;
//! IPv6 topology prefixes are short (≤ /64 in practice) and node counts in
//! this workload are in the low millions at most, so the simple layout is
//! fast enough and easy to verify. Nodes live in a flat arena (`Vec`)
//! addressed by `u32` indices to keep the structure cache-friendly and
//! allocation-light.

use crate::bits;
use crate::prefix::Ipv6Prefix;
use std::net::Ipv6Addr;

const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node<T> {
    child: [u32; 2],
    value: Option<T>,
}

impl<T> Node<T> {
    fn new() -> Self {
        Node {
            child: [NIL, NIL],
            value: None,
        }
    }
}

/// Binary trie keyed by [`Ipv6Prefix`], storing one `T` per prefix.
#[derive(Clone, Debug)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node::new()],
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` at `prefix`, returning the previous value if the
    /// prefix was already present.
    pub fn insert(&mut self, prefix: Ipv6Prefix, value: T) -> Option<T> {
        let mut node = 0u32;
        let word = prefix.base_word();
        for depth in 0..prefix.len() {
            let b = bits::bit(word, depth) as usize;
            let next = self.nodes[node as usize].child[b];
            let next = if next == NIL {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node::new());
                self.nodes[node as usize].child[b] = idx;
                idx
            } else {
                next
            };
            node = next;
        }
        let slot = &mut self.nodes[node as usize].value;
        let old = slot.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn find_node(&self, prefix: &Ipv6Prefix) -> Option<u32> {
        let mut node = 0u32;
        let word = prefix.base_word();
        for depth in 0..prefix.len() {
            let b = bits::bit(word, depth) as usize;
            let next = self.nodes[node as usize].child[b];
            if next == NIL {
                return None;
            }
            node = next;
        }
        Some(node)
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &Ipv6Prefix) -> Option<&T> {
        self.find_node(prefix)
            .and_then(|n| self.nodes[n as usize].value.as_ref())
    }

    /// Exact-match mutable lookup.
    pub fn get_mut(&mut self, prefix: &Ipv6Prefix) -> Option<&mut T> {
        self.find_node(prefix)
            .and_then(|n| self.nodes[n as usize].value.as_mut())
    }

    /// Removes the value at `prefix`, if present. Interior nodes are left
    /// in place (tombstone-free removal is not needed by this workload).
    pub fn remove(&mut self, prefix: &Ipv6Prefix) -> Option<T> {
        let n = self.find_node(prefix)?;
        let old = self.nodes[n as usize].value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Longest-prefix match for an address: the most specific stored prefix
    /// covering `addr`, together with its value.
    pub fn longest_match(&self, addr: Ipv6Addr) -> Option<(Ipv6Prefix, &T)> {
        self.longest_match_word(bits::to_u128(addr))
    }

    /// Longest-prefix match on a raw address word.
    pub fn longest_match_word(&self, word: u128) -> Option<(Ipv6Prefix, &T)> {
        let mut node = 0u32;
        let mut best: Option<(u8, &T)> = self.nodes[0].value.as_ref().map(|v| (0, v));
        for depth in 0..128u8 {
            let b = bits::bit(word, depth) as usize;
            let next = self.nodes[node as usize].child[b];
            if next == NIL {
                break;
            }
            node = next;
            if let Some(v) = self.nodes[node as usize].value.as_ref() {
                best = Some((depth + 1, v));
            }
        }
        best.map(|(len, v)| (Ipv6Prefix::from_word(word, len), v))
    }

    /// True if any stored prefix covers `addr`.
    pub fn covers(&self, addr: Ipv6Addr) -> bool {
        self.longest_match(addr).is_some()
    }

    /// Iterates over all `(prefix, value)` pairs in lexicographic
    /// (base address, then length) trie order.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            trie: self,
            stack: vec![(0u32, 0u128, 0u8)],
        }
    }

    /// Visits every stored prefix covered by `root` (including `root`
    /// itself if stored).
    pub fn iter_within<'a>(&'a self, root: &Ipv6Prefix) -> Iter<'a, T> {
        let stack = match self.find_node(root) {
            Some(n) => vec![(n, root.base_word(), root.len())],
            None => Vec::new(),
        };
        Iter { trie: self, stack }
    }
}

/// Depth-first iterator over `(prefix, value)` pairs.
pub struct Iter<'a, T> {
    trie: &'a PrefixTrie<T>,
    stack: Vec<(u32, u128, u8)>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (Ipv6Prefix, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, word, depth)) = self.stack.pop() {
            let n = &self.trie.nodes[node as usize];
            // Push right then left so left (0-bit) is visited first.
            if depth < 128 {
                if n.child[1] != NIL {
                    let w = bits::with_bit(word, depth, true);
                    self.stack.push((n.child[1], w, depth + 1));
                }
                if n.child[0] != NIL {
                    self.stack.push((n.child[0], word, depth + 1));
                }
            }
            if let Some(v) = n.value.as_ref() {
                return Some((Ipv6Prefix::from_word(word, depth), v));
            }
        }
        None
    }
}

impl<T> FromIterator<(Ipv6Prefix, T)> for PrefixTrie<T> {
    fn from_iter<I: IntoIterator<Item = (Ipv6Prefix, T)>>(iter: I) -> Self {
        let mut trie = PrefixTrie::new();
        for (p, v) in iter {
            trie.insert(p, v);
        }
        trie
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("2001:db8::/32"), 1), None);
        assert_eq!(t.insert(p("2001:db8::/32"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p("2001:db8::/32")), Some(&2));
        assert_eq!(t.get(&p("2001:db8::/33")), None);
        assert_eq!(t.remove(&p("2001:db8::/32")), Some(2));
        assert!(t.is_empty());
        assert_eq!(t.remove(&p("2001:db8::/32")), None);
    }

    #[test]
    fn longest_match_prefers_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("2001:db8::/32"), "coarse");
        t.insert(p("2001:db8:aa::/48"), "fine");
        let (pf, v) = t.longest_match(a("2001:db8:aa::1")).unwrap();
        assert_eq!((pf, *v), (p("2001:db8:aa::/48"), "fine"));
        let (pf, v) = t.longest_match(a("2001:db8:bb::1")).unwrap();
        assert_eq!((pf, *v), (p("2001:db8::/32"), "coarse"));
        assert!(t.longest_match(a("2001:db9::1")).is_none());
    }

    #[test]
    fn default_route() {
        let mut t = PrefixTrie::new();
        t.insert(p("::/0"), "default");
        t.insert(p("2001:db8::/32"), "specific");
        let (pf, v) = t.longest_match(a("abcd::1")).unwrap();
        assert_eq!((pf, *v), (p("::/0"), "default"));
        let (pf, _) = t.longest_match(a("2001:db8::1")).unwrap();
        assert_eq!(pf, p("2001:db8::/32"));
    }

    #[test]
    fn slash_128_entries() {
        let mut t = PrefixTrie::new();
        t.insert(p("2001:db8::1/128"), ());
        assert!(t.covers(a("2001:db8::1")));
        assert!(!t.covers(a("2001:db8::2")));
    }

    #[test]
    fn iteration_order_and_within() {
        let mut t = PrefixTrie::new();
        for s in [
            "2001:db8::/32",
            "2001:db8::/48",
            "2001:db8:1::/48",
            "3fff::/20",
        ] {
            t.insert(p(s), s.to_string());
        }
        let all: Vec<_> = t.iter().map(|(pf, _)| pf).collect();
        assert_eq!(
            all,
            vec![
                p("2001:db8::/32"),
                p("2001:db8::/48"),
                p("2001:db8:1::/48"),
                p("3fff::/20"),
            ]
        );
        let within: Vec<_> = t
            .iter_within(&p("2001:db8::/32"))
            .map(|(pf, _)| pf)
            .collect();
        assert_eq!(
            within,
            vec![p("2001:db8::/32"), p("2001:db8::/48"), p("2001:db8:1::/48")]
        );
        assert_eq!(t.iter_within(&p("4000::/8")).count(), 0);
    }

    #[test]
    fn from_iterator() {
        let t: PrefixTrie<u32> = [(p("2001::/16"), 1), (p("2002::/16"), 2)]
            .into_iter()
            .collect();
        assert_eq!(t.len(), 2);
        assert_eq!(t.longest_match(a("2002::1")).unwrap().1, &2);
    }
}
