//! Bit-level helpers over `u128` address words.
//!
//! Addresses are treated as 128-bit words in *network bit order*: bit 0 is
//! the most significant bit (the first bit on the wire), bit 127 the least
//! significant. A prefix of length `l` covers bits `[0, l)`.

use std::net::Ipv6Addr;

/// Converts an [`Ipv6Addr`] to its `u128` word (network bit order).
#[inline]
pub fn to_u128(addr: Ipv6Addr) -> u128 {
    u128::from(addr)
}

/// Converts a `u128` word back to an [`Ipv6Addr`].
#[inline]
pub fn from_u128(word: u128) -> Ipv6Addr {
    Ipv6Addr::from(word)
}

/// The network mask for a prefix of length `len` (0..=128): the top `len`
/// bits set.
///
/// `mask(0) == 0`, `mask(128) == u128::MAX`.
#[inline]
pub fn mask(len: u8) -> u128 {
    debug_assert!(len <= 128);
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - len as u32)
    }
}

/// Number of leading bits in which `a` and `b` agree (0..=128).
#[inline]
pub fn common_prefix_len(a: u128, b: u128) -> u8 {
    (a ^ b).leading_zeros() as u8
}

/// The value of bit `idx` (0 = most significant) of `word`.
#[inline]
pub fn bit(word: u128, idx: u8) -> bool {
    debug_assert!(idx < 128);
    word & (1u128 << (127 - idx as u32)) != 0
}

/// Returns `word` with bit `idx` (0 = most significant) set to `value`.
#[inline]
pub fn with_bit(word: u128, idx: u8, value: bool) -> u128 {
    debug_assert!(idx < 128);
    let m = 1u128 << (127 - idx as u32);
    if value {
        word | m
    } else {
        word & !m
    }
}

/// Extracts the low 64 bits — the interface identifier (IID) — of an
/// address word.
#[inline]
pub fn iid_bits(word: u128) -> u64 {
    word as u64
}

/// Extracts the high 64 bits — the subnet (network) identifier.
#[inline]
pub fn net_bits(word: u128) -> u64 {
    (word >> 64) as u64
}

/// Builds an address word from a 64-bit network identifier and 64-bit IID.
#[inline]
pub fn join(net: u64, iid: u64) -> u128 {
    ((net as u128) << 64) | iid as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_edges() {
        assert_eq!(mask(0), 0);
        assert_eq!(mask(128), u128::MAX);
        assert_eq!(mask(1), 1u128 << 127);
        assert_eq!(mask(64), 0xffff_ffff_ffff_ffff_0000_0000_0000_0000);
    }

    #[test]
    fn common_prefix() {
        assert_eq!(common_prefix_len(0, 0), 128);
        assert_eq!(common_prefix_len(0, 1), 127);
        assert_eq!(common_prefix_len(0, 1u128 << 127), 0);
        let a = to_u128("2001:db8::1".parse().unwrap());
        let b = to_u128("2001:db8::2".parse().unwrap());
        assert_eq!(common_prefix_len(a, b), 126);
    }

    #[test]
    fn bit_roundtrip() {
        let w = to_u128("2001:db8::1".parse().unwrap());
        assert!(bit(w, 2)); // 0x2001... -> 0010 0000 0000 0001
        assert!(!bit(w, 0));
        assert!(bit(w, 127));
        assert_eq!(with_bit(w, 127, false), w - 1);
        assert_eq!(with_bit(w, 0, true), w | (1u128 << 127));
    }

    #[test]
    fn net_iid_split() {
        let w = join(0x2001_0db8_0000_0001, 0x0000_0000_0000_00aa);
        assert_eq!(net_bits(w), 0x2001_0db8_0000_0001);
        assert_eq!(iid_bits(w), 0xaa);
        assert_eq!(
            from_u128(w),
            "2001:db8:0:1::aa".parse::<Ipv6Addr>().unwrap()
        );
    }
}
