//! IPv6 prefixes: a base address plus a length, always kept canonical
//! (host bits zero).

use crate::bits;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv6Addr;
use std::str::FromStr;

/// A canonical IPv6 prefix.
///
/// Invariants: `len <= 128`, and all bits of `base` below the prefix length
/// are zero. Construction through [`Ipv6Prefix::new`] enforces canonical
/// form (rejecting set host bits), while [`Ipv6Prefix::truncating`] masks
/// them away — the common case when deriving a covering prefix from an
/// address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv6Prefix {
    base: u128,
    len: u8,
}

/// Error produced by [`Ipv6Prefix::new`] and [`FromStr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// Length exceeded 128 bits.
    LengthOutOfRange(u16),
    /// Base address had bits set beyond the prefix length.
    HostBitsSet,
    /// Textual form did not parse.
    Malformed(String),
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::LengthOutOfRange(l) => write!(f, "prefix length {l} out of range"),
            PrefixError::HostBitsSet => write!(f, "base address has host bits set"),
            PrefixError::Malformed(s) => write!(f, "malformed prefix {s:?}"),
        }
    }
}

impl std::error::Error for PrefixError {}

impl Ipv6Prefix {
    /// Creates a prefix, rejecting non-canonical bases.
    pub fn new(base: Ipv6Addr, len: u8) -> Result<Self, PrefixError> {
        if len > 128 {
            return Err(PrefixError::LengthOutOfRange(len as u16));
        }
        let word = bits::to_u128(base);
        if word & !bits::mask(len) != 0 {
            return Err(PrefixError::HostBitsSet);
        }
        Ok(Self { base: word, len })
    }

    /// Creates the prefix of length `len` covering `addr`, discarding host
    /// bits.
    pub fn truncating(addr: Ipv6Addr, len: u8) -> Self {
        assert!(len <= 128, "prefix length {len} out of range");
        Self {
            base: bits::to_u128(addr) & bits::mask(len),
            len,
        }
    }

    /// Creates a prefix directly from a `u128` word, masking host bits.
    pub fn from_word(word: u128, len: u8) -> Self {
        assert!(len <= 128, "prefix length {len} out of range");
        Self {
            base: word & bits::mask(len),
            len,
        }
    }

    /// The base address (host bits zero).
    pub fn base(&self) -> Ipv6Addr {
        bits::from_u128(self.base)
    }

    /// The base address as a `u128` word.
    pub fn base_word(&self) -> u128 {
        self.base
    }

    /// The prefix length in bits. (`is_empty` would be meaningless — a
    /// /0 is the default route, not an empty prefix — see
    /// [`Self::is_default`].)
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the zero-length (default route) prefix.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Does this prefix cover `addr`?
    pub fn contains_addr(&self, addr: Ipv6Addr) -> bool {
        self.contains_word(bits::to_u128(addr))
    }

    /// Does this prefix cover the address word `word`?
    #[inline]
    pub fn contains_word(&self, word: u128) -> bool {
        (word ^ self.base) & bits::mask(self.len) == 0
    }

    /// Does this prefix cover (or equal) `other`?
    pub fn contains_prefix(&self, other: &Ipv6Prefix) -> bool {
        other.len >= self.len && self.contains_word(other.base)
    }

    /// The immediate parent (one bit shorter), or `None` at the root.
    pub fn parent(&self) -> Option<Ipv6Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Ipv6Prefix::from_word(self.base, self.len - 1))
        }
    }

    /// The two children one bit longer, or `None` at /128.
    pub fn children(&self) -> Option<(Ipv6Prefix, Ipv6Prefix)> {
        if self.len == 128 {
            return None;
        }
        let left = Ipv6Prefix {
            base: self.base,
            len: self.len + 1,
        };
        let right = Ipv6Prefix {
            base: self.base | (1u128 << (127 - self.len as u32)),
            len: self.len + 1,
        };
        Some((left, right))
    }

    /// The `idx`-th subnet of this prefix at length `sub_len`
    /// (`sub_len >= len`). Panics if `idx` does not fit in the available
    /// `sub_len - len` bits.
    pub fn subnet(&self, sub_len: u8, idx: u128) -> Ipv6Prefix {
        assert!(sub_len >= self.len && sub_len <= 128);
        let width = sub_len - self.len;
        assert!(
            width == 128 || idx < (1u128 << width),
            "subnet index {idx} out of range for /{sub_len} inside /{}",
            self.len
        );
        let base = self.base | (idx << (128 - sub_len as u32));
        Ipv6Prefix { base, len: sub_len }
    }

    /// The `idx`-th address within the prefix (offset from the base).
    pub fn addr(&self, idx: u128) -> Ipv6Addr {
        bits::from_u128(self.base | idx)
    }

    /// The number of /64 prefixes covered (saturating; a /64 covers one).
    pub fn count_64s(&self) -> u128 {
        if self.len >= 64 {
            1
        } else {
            1u128 << (64 - self.len as u32)
        }
    }
}

impl fmt::Display for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base(), self.len)
    }
}

impl fmt::Debug for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base(), self.len)
    }
}

impl FromStr for Ipv6Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixError::Malformed(s.to_string()))?;
        let addr: Ipv6Addr = addr
            .parse()
            .map_err(|_| PrefixError::Malformed(s.to_string()))?;
        let len: u8 = len
            .parse()
            .map_err(|_| PrefixError::Malformed(s.to_string()))?;
        Ipv6Prefix::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["2001:db8::/32", "::/0", "2001:db8::1/128", "2002::/16"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn rejects_host_bits() {
        assert_eq!(
            "2001:db8::1/32".parse::<Ipv6Prefix>(),
            Err(PrefixError::HostBitsSet)
        );
        assert!("2001:db8::/129".parse::<Ipv6Prefix>().is_err());
        assert!("junk".parse::<Ipv6Prefix>().is_err());
    }

    #[test]
    fn truncating_masks() {
        let pf = Ipv6Prefix::truncating("2001:db8:1:2::abcd".parse().unwrap(), 48);
        assert_eq!(pf, p("2001:db8:1::/48"));
    }

    #[test]
    fn containment() {
        let p32 = p("2001:db8::/32");
        assert!(p32.contains_addr("2001:db8:ffff::1".parse().unwrap()));
        assert!(!p32.contains_addr("2001:db9::1".parse().unwrap()));
        assert!(p32.contains_prefix(&p("2001:db8:aa::/48")));
        assert!(!p32.contains_prefix(&p("2001::/16")));
        assert!(p("::/0").contains_prefix(&p32));
    }

    #[test]
    fn parent_children() {
        let pf = p("2001:db8::/32");
        let (l, r) = pf.children().unwrap();
        assert_eq!(l, p("2001:db8::/33"));
        assert_eq!(r, p("2001:db8:8000::/33"));
        assert_eq!(l.parent().unwrap(), pf);
        assert_eq!(r.parent().unwrap(), pf);
        assert!(p("::/0").parent().is_none());
        assert!(p("2001:db8::1/128").children().is_none());
    }

    #[test]
    fn subnet_indexing() {
        let pf = p("2001:db8::/32");
        assert_eq!(pf.subnet(48, 0), p("2001:db8::/48"));
        assert_eq!(pf.subnet(48, 1), p("2001:db8:1::/48"));
        assert_eq!(pf.subnet(48, 0xffff), p("2001:db8:ffff::/48"));
    }

    #[test]
    #[should_panic]
    fn subnet_index_overflow_panics() {
        p("2001:db8::/32").subnet(48, 0x1_0000);
    }

    #[test]
    fn count_64s() {
        assert_eq!(p("2001:db8::/64").count_64s(), 1);
        assert_eq!(p("2001:db8::1/128").count_64s(), 1);
        assert_eq!(p("2001:db8::/63").count_64s(), 2);
        assert_eq!(p("2001:db8::/32").count_64s(), 1u128 << 32);
    }

    #[test]
    fn addr_offsets() {
        let pf = p("2001:db8::/64");
        assert_eq!(pf.addr(1), "2001:db8::1".parse::<Ipv6Addr>().unwrap());
    }
}
