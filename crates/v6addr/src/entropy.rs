//! Entropy/IP-style address-structure analysis (Foremski, Plonka &
//! Berger \[24\]).
//!
//! Entropy/IP "uncovers structure in IPv6 addresses" by computing the
//! Shannon entropy of each address nybble across a set and segmenting
//! the address into runs of similar entropy: constant network prefixes
//! (entropy ≈ 0), counted/dense allocation fields (low entropy), and
//! SLAAC-privacy randomness (entropy ≈ 4 bits/nybble). The paper uses
//! this family of techniques to reason about seed-set structure; here it
//! doubles as a diagnostic for the synthesized seed lists — e.g. the
//! fiebig list shows a low-entropy enumeration field where the random
//! control does not.

use serde::{Deserialize, Serialize};
use std::net::Ipv6Addr;

/// Number of nybbles in an IPv6 address.
pub const NYBBLES: usize = 32;

/// Per-nybble entropy profile of an address set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EntropyProfile {
    /// Shannon entropy in bits (0..=4) for each of the 32 nybbles, most
    /// significant first.
    pub bits: [f64; NYBBLES],
    /// Number of addresses profiled.
    pub count: usize,
}

/// A contiguous run of nybbles with similar entropy.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// First nybble index (inclusive).
    pub start: usize,
    /// Last nybble index (exclusive).
    pub end: usize,
    /// Mean entropy of the run (bits/nybble).
    pub mean_bits: f64,
    /// Classification of the run.
    pub class: SegmentClass,
}

/// Entropy-based segment classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentClass {
    /// Entropy ≈ 0: constant across the set (shared prefix, zero pad).
    Constant,
    /// Low entropy: structured values (subnet counters, low-byte IIDs).
    Structured,
    /// Entropy approaching 4 bits: effectively random (privacy IIDs).
    Random,
}

impl EntropyProfile {
    /// Profiles an address set. Returns `None` for empty input.
    pub fn of(addrs: &[Ipv6Addr]) -> Option<EntropyProfile> {
        if addrs.is_empty() {
            return None;
        }
        let mut bits = [0.0f64; NYBBLES];
        let n = addrs.len() as f64;
        for (pos, b) in bits.iter_mut().enumerate() {
            let mut counts = [0u64; 16];
            for a in addrs {
                let w = u128::from(*a);
                let nyb = ((w >> (124 - 4 * pos)) & 0xf) as usize;
                counts[nyb] += 1;
            }
            let mut h = 0.0;
            for &c in &counts {
                if c > 0 {
                    let p = c as f64 / n;
                    h -= p * p.log2();
                }
            }
            *b = h;
        }
        Some(EntropyProfile {
            bits,
            count: addrs.len(),
        })
    }

    /// Segments the profile into runs of similar entropy class.
    pub fn segments(&self) -> Vec<Segment> {
        let class_of = |h: f64| {
            if h < 0.1 {
                SegmentClass::Constant
            } else if h < 3.0 {
                SegmentClass::Structured
            } else {
                SegmentClass::Random
            }
        };
        let mut out: Vec<Segment> = Vec::new();
        let mut start = 0usize;
        let mut cur = class_of(self.bits[0]);
        for i in 1..=NYBBLES {
            let boundary = i == NYBBLES || class_of(self.bits[i]) != cur;
            if boundary {
                let slice = &self.bits[start..i];
                out.push(Segment {
                    start,
                    end: i,
                    mean_bits: slice.iter().sum::<f64>() / slice.len() as f64,
                    class: cur,
                });
                if i < NYBBLES {
                    start = i;
                    cur = class_of(self.bits[i]);
                }
            }
        }
        out
    }

    /// Total entropy of the set (sum over nybbles) — an upper bound on
    /// the log2 of the effectively-used address space.
    pub fn total_bits(&self) -> f64 {
        self.bits.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(addrs: &[&str]) -> EntropyProfile {
        let v: Vec<Ipv6Addr> = addrs.iter().map(|s| s.parse().unwrap()).collect();
        EntropyProfile::of(&v).unwrap()
    }

    #[test]
    fn empty_is_none() {
        assert!(EntropyProfile::of(&[]).is_none());
    }

    #[test]
    fn constant_set_has_zero_entropy() {
        let p = profile(&["2001:db8::1", "2001:db8::1"]);
        assert!(p.total_bits() < 1e-9);
        let segs = p.segments();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].class, SegmentClass::Constant);
        assert_eq!((segs[0].start, segs[0].end), (0, NYBBLES));
    }

    #[test]
    fn counter_field_is_structured() {
        // ::1 .. ::4 — the last nybble carries 2 bits of entropy, the
        // rest is constant.
        let p = profile(&["2001:db8::1", "2001:db8::2", "2001:db8::3", "2001:db8::4"]);
        assert!(p.bits[NYBBLES - 1] > 1.9 && p.bits[NYBBLES - 1] <= 2.0);
        assert!(p.bits[NYBBLES - 2] < 1e-9);
        let segs = p.segments();
        assert_eq!(segs.last().unwrap().class, SegmentClass::Structured);
    }

    #[test]
    fn random_iids_classified_random() {
        // Deterministic "random" IIDs via splitmix-ish mixing.
        let mut addrs = Vec::new();
        let mut x = 0x12345u64;
        for _ in 0..512 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (0x2001_0db8u128) << 96 | (x as u128);
            addrs.push(Ipv6Addr::from(a));
        }
        let p = EntropyProfile::of(&addrs).unwrap();
        let segs = p.segments();
        // The IID tail must classify Random, the prefix Constant.
        assert_eq!(segs.first().unwrap().class, SegmentClass::Constant);
        assert_eq!(segs.last().unwrap().class, SegmentClass::Random);
        assert!(segs.last().unwrap().mean_bits > 3.2);
    }

    #[test]
    fn segments_partition_the_address() {
        let p = profile(&["2001:db8::1", "2001:db8:0:1::9f3a", "2001:db8::77"]);
        let segs = p.segments();
        assert_eq!(segs.first().unwrap().start, 0);
        assert_eq!(segs.last().unwrap().end, NYBBLES);
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start);
            assert_ne!(w[0].class, w[1].class);
        }
    }
}
