//! Property-based tests for the address primitives.

use proptest::prelude::*;
use std::net::Ipv6Addr;
use v6addr::{bits, dpl, prefix::Ipv6Prefix, trie::PrefixTrie};

proptest! {
    /// mask(len) has exactly `len` leading ones.
    #[test]
    fn mask_popcount(len in 0u8..=128) {
        prop_assert_eq!(bits::mask(len).count_ones(), len as u32);
        if len > 0 {
            prop_assert!(bits::bit(bits::mask(len), len - 1));
        }
        if len < 128 {
            prop_assert!(!bits::bit(bits::mask(len), len));
        }
    }

    /// common_prefix_len is symmetric and consistent with equality.
    #[test]
    fn common_prefix_symmetric(a: u128, b: u128) {
        prop_assert_eq!(bits::common_prefix_len(a, b), bits::common_prefix_len(b, a));
        if a == b {
            prop_assert_eq!(bits::common_prefix_len(a, b), 128);
        } else {
            let l = bits::common_prefix_len(a, b);
            prop_assert!(l < 128);
            // They agree on the first l bits and differ at bit l.
            prop_assert_eq!(a & bits::mask(l), b & bits::mask(l));
            prop_assert_ne!(bits::bit(a, l), bits::bit(b, l));
        }
    }

    /// truncating() produces a prefix that contains the original address.
    #[test]
    fn truncating_contains(word: u128, len in 0u8..=128) {
        let addr = Ipv6Addr::from(word);
        let p = Ipv6Prefix::truncating(addr, len);
        prop_assert!(p.contains_addr(addr));
        prop_assert_eq!(p.len(), len);
        // Canonical: re-truncating the base is a fixed point.
        prop_assert_eq!(Ipv6Prefix::truncating(p.base(), len), p);
    }

    /// parent/child relationships are mutually consistent.
    #[test]
    fn parent_child_consistent(word: u128, len in 1u8..=127) {
        let p = Ipv6Prefix::from_word(word, len);
        let parent = p.parent().unwrap();
        prop_assert!(parent.contains_prefix(&p));
        let (l, r) = p.children().unwrap();
        prop_assert_eq!(l.parent().unwrap(), p);
        prop_assert_eq!(r.parent().unwrap(), p);
        prop_assert!(p.contains_prefix(&l) && p.contains_prefix(&r));
        prop_assert_ne!(l, r);
    }

    /// Trie longest-match agrees with a brute-force linear scan.
    #[test]
    fn trie_lpm_matches_linear(
        entries in prop::collection::vec((any::<u128>(), 0u8..=64), 1..40),
        probe: u128,
    ) {
        let mut trie = PrefixTrie::new();
        let mut linear: Vec<Ipv6Prefix> = Vec::new();
        for (w, l) in entries {
            let p = Ipv6Prefix::from_word(w, l);
            trie.insert(p, p.len());
            if !linear.contains(&p) {
                linear.push(p);
            }
        }
        let want = linear
            .iter()
            .filter(|p| p.contains_word(probe))
            .max_by_key(|p| p.len());
        let got = trie.longest_match_word(probe);
        match (want, got) {
            (None, None) => {}
            (Some(wp), Some((gp, &glen))) => {
                prop_assert_eq!(wp.len(), gp.len());
                prop_assert_eq!(wp.len(), glen);
                prop_assert_eq!(*wp, gp);
            }
            (w, g) => prop_assert!(false, "mismatch: want {:?} got {:?}", w, g.map(|x| x.0)),
        }
    }

    /// Every inserted prefix is found by exact lookup and iteration.
    #[test]
    fn trie_iter_complete(entries in prop::collection::vec((any::<u128>(), 0u8..=64), 1..40)) {
        let mut trie = PrefixTrie::new();
        let mut set = std::collections::BTreeSet::new();
        for (w, l) in entries {
            let p = Ipv6Prefix::from_word(w, l);
            trie.insert(p, ());
            set.insert(p);
        }
        prop_assert_eq!(trie.len(), set.len());
        let mut seen: Vec<Ipv6Prefix> = trie.iter().map(|(p, _)| p).collect();
        prop_assert_eq!(seen.len(), set.len());
        seen.sort();
        let want: Vec<Ipv6Prefix> = set.into_iter().collect();
        prop_assert_eq!(seen, want);
    }

    /// DPL values are consistent with pairwise DPL lower bounds: the DPL of
    /// an address is the max pair-DPL against any other member.
    #[test]
    fn dpl_matches_bruteforce(words in prop::collection::btree_set(any::<u128>(), 2..24) ) {
        let addrs: Vec<Ipv6Addr> = words.iter().map(|&w| Ipv6Addr::from(w)).collect();
        let (sorted, dpls) = dpl::dpl_of_set(&addrs);
        for (i, &a) in sorted.iter().enumerate() {
            let best = sorted
                .iter()
                .filter(|&&b| b != a)
                .filter_map(|&b| dpl::dpl_of_pair(a, b))
                .max()
                .unwrap();
            prop_assert_eq!(dpls[i], best, "address {} in {:?}", a, sorted);
        }
    }
}
