//! Analysis of probing campaigns: trace reconstruction, discovery
//! metrics (Tables 3/4/6/7, Figures 5/6/7) and subnet inference (§6,
//! Figure 8).
//!
//! Everything here consumes only the prober's [`yarrp6::ProbeLog`] plus
//! *public* routing metadata (BGP table, registry prefixes, ASN
//! equivalences) — never the simulator's ground truth, which appears
//! only in [`validate`] where the paper, too, compares against operator
//! truth data.
//!
//! The pipeline is **columnar**: [`traces::TraceSet`] stores all hops
//! of a campaign in one flat, target-sorted arena with responder
//! addresses interned to `u32` ids ([`intern`]), and the analysis
//! passes ([`subnets`], [`metrics`], [`validate`]) are sorted-merge
//! walks over those columns. The original map-based implementation is
//! preserved in [`mod@reference`] and pinned bit-identical by golden tests;
//! `trace_analysis_pps` tracks the speedup between the two.
//!
//! It is also **streaming**: [`builder::TraceSetBuilder`] ingests
//! record chunks as a campaign produces them and assembles the
//! identical columnar set without the log ever existing, and
//! [`builder::stream_campaign`] / [`builder::stream_campaigns_parallel`]
//! wire that builder to the probers' bounded-channel drivers (those
//! drivers return the engine's [`simnet::EngineStats`] alongside, like
//! `yarrp6::campaign::run_campaign` does — the analysis passes
//! themselves still consume only prober-visible data).

pub mod builder;
pub mod export;
pub mod intern;
pub mod metrics;
pub mod quarantine;
pub mod reference;
pub mod runner;
pub mod shard;
pub mod snapshot;
pub mod subnets;
pub mod traces;
pub mod validate;

pub use builder::{
    stream_campaign, stream_campaigns_parallel, stream_campaigns_serial,
    stream_campaigns_supervised, stream_multi_vantage, stream_multi_vantage_parallel,
    MultiVantageCampaign, TraceSetBuilder,
};
pub use intern::AddrInterner;
pub use metrics::{
    discovery_curve, hop_responsiveness, vantage_contributions, vantage_jaccard,
    vantage_union_count, CampaignMetrics, VantageContribution,
};
pub use quarantine::{quarantine, quarantine_all, QuarantineConfig, QuarantineReport};
pub use runner::{CampaignOutcome, CampaignRun, CampaignRunner};
pub use shard::{ShardRoute, ShardedTraceSet, ShardedTraceSetBuilder};
pub use snapshot::{
    read_sharded_snapshot, read_trace_set, write_sharded_snapshot, write_trace_set, SnapReader,
    SnapWriter, SnapshotError, SnapshotManifest, StoreError,
};
pub use subnets::{discover_by_path_div, ia_hack, CandidateSubnet, PathDivParams};
pub use traces::{AsnResolver, TraceSet, TraceView};
