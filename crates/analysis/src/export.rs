//! Dataset export/import — the release artifacts the paper ships
//! (targets, discovered topology, subnet inferences) \[7\].
//!
//! Formats are deliberately plain: line-oriented text with `#` comments
//! for address lists, and header-bearing CSV for response records, so
//! the files interoperate with the usual measurement tooling (yarrp's
//! own output, scamper's warts-to-text, ITDK dumps). No external
//! parsing crates are needed; the writers emit nothing that requires
//! quoting.

use crate::subnets::CandidateSubnet;
use crate::traces::TraceSet;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::Ipv6Addr;
use std::path::Path;
use std::str::FromStr;
use v6addr::Ipv6Prefix;
use v6packet::icmp6::DestUnreachCode;
use yarrp6::{ProbeLog, ResponseKind, ResponseRecord};

/// Writes an address list (targets or seeds), one per line.
pub fn write_addrs(path: &Path, name: &str, addrs: &[Ipv6Addr]) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "# beholder address list: {name}")?;
    writeln!(w, "# count: {}", addrs.len())?;
    for a in addrs {
        writeln!(w, "{a}")?;
    }
    w.flush()
}

/// Reads an address list written by [`write_addrs`] (or any file with
/// one address per line; `#` comments and blank lines are skipped).
pub fn read_addrs(path: &Path) -> io::Result<Vec<Ipv6Addr>> {
    let r = BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let a = Ipv6Addr::from_str(t).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
        out.push(a);
    }
    Ok(out)
}

fn kind_to_str(kind: ResponseKind) -> (&'static str, u8) {
    match kind {
        ResponseKind::TimeExceeded => ("te", 0),
        ResponseKind::DestUnreachable(c) => ("du", c.code()),
        ResponseKind::EchoReply => ("echo", 0),
        ResponseKind::Tcp => ("tcp", 0),
    }
}

fn kind_from_str(s: &str, code: u8) -> Option<ResponseKind> {
    Some(match s {
        "te" => ResponseKind::TimeExceeded,
        "du" => ResponseKind::DestUnreachable(DestUnreachCode::from_code(code)?),
        "echo" => ResponseKind::EchoReply,
        "tcp" => ResponseKind::Tcp,
        _ => return None,
    })
}

/// Writes a probe log as CSV (header + one row per response).
pub fn write_log_csv(path: &Path, log: &ProbeLog) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        w,
        "# vantage={} set={} prober={}",
        log.vantage, log.target_set, log.prober
    )?;
    writeln!(
        w,
        "# probes={} fills={} traces={} duration_us={}",
        log.probes_sent, log.fills, log.traces, log.duration_us
    )?;
    writeln!(
        w,
        "target,responder,kind,code,probe_ttl,rtt_us,recv_us,cksum_ok"
    )?;
    for r in &log.records {
        let (k, c) = kind_to_str(r.kind);
        writeln!(
            w,
            "{},{},{},{},{},{},{},{}",
            r.target,
            r.responder,
            k,
            c,
            r.probe_ttl.map(|t| t.to_string()).unwrap_or_default(),
            r.rtt_us.map(|t| t.to_string()).unwrap_or_default(),
            r.recv_us,
            u8::from(r.target_cksum_ok),
        )?;
    }
    w.flush()
}

/// Reads the records of a CSV probe log back (metadata comments are
/// ignored; counters are not reconstructed).
pub fn read_log_csv(path: &Path) -> io::Result<Vec<ResponseRecord>> {
    let r = BufReader::new(std::fs::File::open(path)?);
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with("target,") {
            continue;
        }
        let f: Vec<&str> = t.split(',').collect();
        if f.len() != 8 {
            return Err(bad(format!("line {}: {} fields", lineno + 1, f.len())));
        }
        let parse_addr =
            |s: &str| Ipv6Addr::from_str(s).map_err(|e| bad(format!("line {}: {e}", lineno + 1)));
        let kind = kind_from_str(f[2], f[3].parse().unwrap_or(255))
            .ok_or_else(|| bad(format!("line {}: bad kind {}", lineno + 1, f[2])))?;
        out.push(ResponseRecord {
            target: parse_addr(f[0])?,
            responder: parse_addr(f[1])?,
            kind,
            probe_ttl: if f[4].is_empty() {
                None
            } else {
                Some(
                    f[4].parse()
                        .map_err(|e| bad(format!("line {}: {e}", lineno + 1)))?,
                )
            },
            rtt_us: if f[5].is_empty() {
                None
            } else {
                Some(
                    f[5].parse()
                        .map_err(|e| bad(format!("line {}: {e}", lineno + 1)))?,
                )
            },
            recv_us: f[6]
                .parse()
                .map_err(|e| bad(format!("line {}: {e}", lineno + 1)))?,
            target_cksum_ok: f[7] == "1",
        });
    }
    Ok(out)
}

/// Writes reconstructed traces as CSV: one `target,ttl,hop` row per
/// responding hop, traces in target order. A single walk over the
/// columnar store — rows come out grouped and sorted without building
/// any intermediate map.
pub fn write_traces_csv(path: &Path, ts: &TraceSet) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "# vantage={} set={}", ts.vantage, ts.target_set)?;
    writeln!(
        w,
        "# traces={} rewritten_dropped={}",
        ts.len(),
        ts.rewritten_dropped
    )?;
    writeln!(w, "target,ttl,hop,reached_at")?;
    for t in ts.iter() {
        let reached = t.reached_at().map(|r| r.to_string()).unwrap_or_default();
        for (ttl, hop) in t.hops() {
            writeln!(w, "{},{},{},{}", t.target(), ttl, hop, reached)?;
        }
    }
    w.flush()
}

/// Writes the distinct responder addresses of a trace set (router
/// interfaces plus Destination Unreachable sources), straight out of
/// the shared interner — no fresh per-export `HashSet` — sorted.
pub fn write_responders(path: &Path, ts: &TraceSet) -> io::Result<()> {
    let mut addrs: Vec<Ipv6Addr> = ts.interner().addrs();
    addrs.sort_unstable();
    write_addrs(path, "responders", &addrs)
}

/// Writes inferred subnets, one `prefix,exact` per line.
pub fn write_subnets(path: &Path, cands: &[CandidateSubnet]) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        w,
        "# beholder candidate subnets (prefix length = inferred minimum)"
    )?;
    writeln!(w, "prefix,exact")?;
    for c in cands {
        writeln!(w, "{},{}", c.prefix, u8::from(c.exact))?;
    }
    w.flush()
}

/// Reads a subnet list written by [`write_subnets`].
pub fn read_subnets(path: &Path) -> io::Result<Vec<CandidateSubnet>> {
    let r = BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with("prefix,") {
            continue;
        }
        let (p, e) = t.split_once(',').ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}", lineno + 1))
        })?;
        let prefix = Ipv6Prefix::from_str(p).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
        out.push(CandidateSubnet {
            prefix,
            exact: e == "1",
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("beholder-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn addrs_roundtrip() {
        let path = tmp("addrs");
        let addrs: Vec<Ipv6Addr> = vec!["2001:db8::1".parse().unwrap(), "::1".parse().unwrap()];
        write_addrs(&path, "test", &addrs).unwrap();
        assert_eq!(read_addrs(&path).unwrap(), addrs);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn addrs_rejects_garbage() {
        let path = tmp("bad-addrs");
        std::fs::write(&path, "2001:db8::1\nnot-an-address\n").unwrap();
        assert!(read_addrs(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn log_roundtrip() {
        let path = tmp("log");
        let mut log = ProbeLog {
            vantage: "EU-NET".into(),
            target_set: "caida-z64".into(),
            prober: "yarrp6".into(),
            probes_sent: 2,
            ..Default::default()
        };
        log.records.push(ResponseRecord {
            target: "2001:db8::1".parse().unwrap(),
            responder: "2001:db8:f::1".parse().unwrap(),
            kind: ResponseKind::TimeExceeded,
            probe_ttl: Some(3),
            rtt_us: Some(12_000),
            recv_us: 99,
            target_cksum_ok: true,
        });
        log.records.push(ResponseRecord {
            target: "2001:db8::2".parse().unwrap(),
            responder: "2001:db8::2".parse().unwrap(),
            kind: ResponseKind::DestUnreachable(DestUnreachCode::PortUnreachable),
            probe_ttl: None,
            rtt_us: None,
            recv_us: 150,
            target_cksum_ok: false,
        });
        write_log_csv(&path, &log).unwrap();
        let back = read_log_csv(&path).unwrap();
        assert_eq!(back, log.records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn subnets_roundtrip() {
        let path = tmp("subnets");
        let cands = vec![
            CandidateSubnet {
                prefix: "2001:db8::/48".parse().unwrap(),
                exact: false,
            },
            CandidateSubnet {
                prefix: "2001:db8:1:2::/64".parse().unwrap(),
                exact: true,
            },
        ];
        write_subnets(&path, &cands).unwrap();
        assert_eq!(read_subnets(&path).unwrap(), cands);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn traces_and_responders_export() {
        let mut log = ProbeLog {
            vantage: "V".into(),
            target_set: "S".into(),
            ..Default::default()
        };
        log.records.push(ResponseRecord {
            target: "2001:db8::1".parse().unwrap(),
            responder: "2001:db8:f::2".parse().unwrap(),
            kind: ResponseKind::TimeExceeded,
            probe_ttl: Some(2),
            rtt_us: Some(5),
            recv_us: 10,
            target_cksum_ok: true,
        });
        log.records.push(ResponseRecord {
            target: "2001:db8::1".parse().unwrap(),
            responder: "2001:db8:f::1".parse().unwrap(),
            kind: ResponseKind::TimeExceeded,
            probe_ttl: Some(1),
            rtt_us: Some(5),
            recv_us: 11,
            target_cksum_ok: true,
        });
        let ts = TraceSet::from_log(&log);
        let tpath = tmp("traces");
        write_traces_csv(&tpath, &ts).unwrap();
        let text = std::fs::read_to_string(&tpath).unwrap();
        assert!(text.contains("2001:db8::1,1,2001:db8:f::1,"));
        assert!(text.contains("2001:db8::1,2,2001:db8:f::2,"));
        std::fs::remove_file(&tpath).unwrap();
        let rpath = tmp("responders");
        write_responders(&rpath, &ts).unwrap();
        let back = read_addrs(&rpath).unwrap();
        assert_eq!(
            back,
            vec![
                "2001:db8:f::1".parse::<Ipv6Addr>().unwrap(),
                "2001:db8:f::2".parse::<Ipv6Addr>().unwrap(),
            ]
        );
        std::fs::remove_file(&rpath).unwrap();
    }

    #[test]
    fn end_to_end_campaign_export() {
        use simnet::config::TopologyConfig;
        let topo = std::sync::Arc::new(simnet::generate::generate(TopologyConfig::tiny(5)));
        let addrs: Vec<Ipv6Addr> = topo.hosts().map(|(a, _)| a).take(20).collect();
        let set = targets::TargetSet::new("t", addrs);
        let res = yarrp6::campaign::run_campaign(&topo, 0, &set, &yarrp6::YarrpConfig::default());
        let path = tmp("campaign");
        write_log_csv(&path, &res.log).unwrap();
        let back = read_log_csv(&path).unwrap();
        assert_eq!(back, res.log.records);
        std::fs::remove_file(&path).unwrap();
    }
}
