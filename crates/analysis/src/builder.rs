//! Incremental trace reconstruction: the streaming half of the
//! columnar pipeline.
//!
//! [`TraceSetBuilder`] ingests response records in fixed-size chunks
//! *as a campaign produces them* and assembles the same columnar
//! [`TraceSet`] the batch path builds from a full
//! [`yarrp6::ProbeLog`] — so a
//! campaign-scale sweep never materializes its log. Per record the
//! builder keeps at most one 24-byte classified row (targets and
//! responders are interned to dense ids on ingestion); destination
//! responses and checksum-failed records fold into counters
//! immediately and keep no row at all.
//!
//! **Equivalence contract** (pinned by golden + property tests in
//! `tests/stream_golden.rs`): feeding the builder a campaign's records
//! in any chunking of their emission order and calling
//! [`finish`](TraceSetBuilder::finish) yields a `TraceSet`
//! bit-identical — interner ids included — to
//! [`TraceSet::from_log`] on the receive-sorted `ProbeLog` the batch
//! prober would have returned. The builder buffers `(recv_us, row)`
//! pairs and applies one stable sort at finish, which commutes with
//! the batch path's [`yarrp6::ProbeLog::sort_by_recv`]; everything after that
//! seam is literally the same `assemble` code the batch path runs.
//!
//! [`stream_campaign`] / [`stream_campaigns_parallel`] wire the
//! builder to the bounded-channel campaign drivers in
//! `yarrp6::campaign`, returning finished `(TraceSet, EngineStats)`
//! pairs directly.

use crate::intern::AddrInterner;
use crate::runner::CampaignRunner;
use crate::traces::{assemble, ClassifiedRows, TraceSet, NOT_REACHED};
use simnet::{EngineStats, Topology};
use std::sync::Arc;
use targets::TargetSet;
use v6packet::icmp6::DestUnreachCode;
use yarrp6::campaign::{
    run_campaigns_supervised_parallel, run_campaigns_supervised_serial,
    try_run_campaigns_parallel_streaming, try_run_campaigns_serial_streaming, CampaignSpec,
    RetryPolicy, SupervisedCampaign,
};
use yarrp6::sink::{RecordStream, StreamConfig};
use yarrp6::{ResponseKind, ResponseRecord, YarrpConfig};

/// One classified, interned record awaiting assembly: 24 bytes instead
/// of a 64-byte [`ResponseRecord`], and only for the record classes
/// that reach the hop/unreachable columns.
#[derive(Clone, Copy)]
struct PendingRow {
    /// Receive time — the finish-sort key that reproduces the batch
    /// path's receive-ordered analysis.
    recv_us: u64,
    /// Dense probed-target id.
    tid: u32,
    /// Responder id in the builder's ingestion-order scratch interner.
    rid: u32,
    /// Originating probe hop limit.
    ttl: u8,
    /// Destination Unreachable row (else Time Exceeded).
    unreach: bool,
}

/// Builds a [`TraceSet`] incrementally from streamed response records.
#[derive(Default)]
pub struct TraceSetBuilder {
    vantage: Arc<str>,
    target_set: Arc<str>,
    /// Responders in ingestion order; finish re-interns in receive
    /// order so the final ids match the batch pipeline's exactly.
    scratch: AddrInterner,
    /// Probed targets → dense tids.
    tgt_ids: AddrInterner,
    /// Min destination-response TTL per tid (`NOT_REACHED` = none).
    reached: Vec<u16>,
    rows: Vec<PendingRow>,
    rewritten_dropped: u64,
    records_seen: u64,
}

impl TraceSetBuilder {
    /// Bytes per buffered classified row — what the streaming bench's
    /// peak-memory proxy charges per Time-Exceeded/unreachable record.
    pub const ROW_BYTES: usize = std::mem::size_of::<PendingRow>();

    /// An empty builder with blank campaign identity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stamps the campaign identity carried into the finished set
    /// (what [`TraceSet::from_log`] copies from the log's fields).
    pub fn with_identity(mut self, vantage: Arc<str>, target_set: Arc<str>) -> Self {
        self.vantage = vantage;
        self.target_set = target_set;
        self
    }

    /// Ingests one record. Chunk ingestion
    /// ([`push_chunk`](Self::push_chunk)) is preferred on the hot
    /// path — it overlaps interner probes via prefetch.
    #[inline]
    pub fn push(&mut self, r: &ResponseRecord) {
        self.records_seen += 1;
        if !r.target_cksum_ok {
            self.rewritten_dropped += 1;
            return;
        }
        let tid = self.tgt_ids.intern(r.target);
        if tid as usize == self.reached.len() {
            self.reached.push(NOT_REACHED);
        }
        match r.kind {
            ResponseKind::TimeExceeded => {
                if let Some(ttl) = r.probe_ttl {
                    self.rows.push(PendingRow {
                        recv_us: r.recv_us,
                        tid,
                        rid: self.scratch.intern(r.responder),
                        ttl,
                        unreach: false,
                    });
                }
            }
            ResponseKind::DestUnreachable(c) if c != DestUnreachCode::PortUnreachable => {
                if let Some(ttl) = r.probe_ttl {
                    self.rows.push(PendingRow {
                        recv_us: r.recv_us,
                        tid,
                        rid: self.scratch.intern(r.responder),
                        ttl,
                        unreach: true,
                    });
                }
            }
            _ => {
                // Destination responded (echo reply, TCP, port
                // unreachable from the host).
                let at = r.probe_ttl.unwrap_or(u8::MAX) as u16;
                self.reached[tid as usize] = self.reached[tid as usize].min(at);
            }
        }
    }

    /// Ingests a chunk, prefetching the target-interner slot a window
    /// ahead (the same overlap trick as the batch classify pass).
    pub fn push_chunk(&mut self, chunk: &[ResponseRecord]) {
        const PREFETCH: usize = 8;
        for (i, r) in chunk.iter().enumerate() {
            if let Some(ahead) = chunk.get(i + PREFETCH) {
                self.tgt_ids.prefetch(ahead.target);
            }
            self.push(r);
        }
    }

    /// Records ingested so far (including dropped/destination ones).
    pub fn records_seen(&self) -> u64 {
        self.records_seen
    }

    /// Classified rows currently buffered — the builder's whole
    /// per-record memory; everything else is per-unique-address.
    pub fn pending_rows(&self) -> usize {
        self.rows.len()
    }

    /// Bytes held by the buffered rows (the peak-memory proxy the
    /// streaming bench reports against the batch path's full log).
    pub fn buffered_bytes(&self) -> usize {
        self.rows.len() * Self::ROW_BYTES
    }

    /// Assembles the final columnar set.
    ///
    /// One stable sort puts the buffered rows in receive order (ties
    /// keep ingestion order — exactly the stable
    /// [`yarrp6::ProbeLog::sort_by_recv`] the batch prober applies), then a
    /// single pass re-interns responders in that order so final ids
    /// match [`TraceSet::from_log`]'s, and the shared scatter/emit
    /// core does the rest.
    pub fn finish(mut self) -> TraceSet {
        self.rows.sort_by_key(|r| r.recv_us);
        let mut interner = AddrInterner::with_capacity(self.scratch.len());
        let mut hop_rows: Vec<(u32, u32, u8)> = Vec::new();
        let mut unreach_rows: Vec<(u32, u32, u8)> = Vec::new();
        for row in &self.rows {
            let rid = interner.intern(self.scratch.resolve(row.rid));
            if row.unreach {
                unreach_rows.push((row.tid, rid, row.ttl));
            } else {
                hop_rows.push((row.tid, rid, row.ttl));
            }
        }
        assemble(
            ClassifiedRows {
                interner,
                tgt_ids: self.tgt_ids,
                reached: self.reached,
                hop_rows,
                unreach_rows,
                rewritten_dropped: self.rewritten_dropped,
            },
            self.vantage,
            self.target_set,
        )
    }
}

/// Runs one streaming Yarrp6 campaign: the prober feeds a
/// [`TraceSetBuilder`] through the bounded chunk channel, so the
/// campaign's record log never exists in memory. The result is
/// bit-identical to `TraceSet::from_log(&run_campaign(..).log)`.
pub fn stream_campaign(
    topo: &Arc<Topology>,
    vantage_idx: u8,
    set: &TargetSet,
    cfg: &YarrpConfig,
    stream: &StreamConfig,
) -> (TraceSet, EngineStats) {
    let outcome = CampaignRunner::new(topo)
        .targets(set)
        .vantage(vantage_idx)
        .config(*cfg)
        .streaming(*stream)
        .run()
        .unwrap_or_else(|e| panic!("{e}"));
    let run = outcome
        .runs
        .into_iter()
        .next()
        .expect("single-vantage campaign produced no run");
    (run.traces, run.stats)
}

/// The per-campaign consumer both multi-campaign drivers install: a
/// fresh identity-stamped [`TraceSetBuilder`] fed chunk by chunk. One
/// shared factory, so the serial/parallel bit-identical contract can't
/// drift when the builder setup changes.
pub(crate) fn builder_consumer(
    topo: &Arc<Topology>,
) -> impl Fn(usize, &CampaignSpec<'_>) -> Box<dyn FnOnce(RecordStream) -> TraceSet> + '_ {
    move |_, spec| {
        let vantage = topo.vantages[spec.vantage_idx as usize].name.clone();
        let set_name = spec.set.name.clone();
        Box::new(move |records: RecordStream| {
            let mut builder = TraceSetBuilder::new().with_identity(vantage, set_name);
            records.for_each_chunk(|c| builder.push_chunk(c));
            builder.finish()
        })
    }
}

/// Runs many streaming campaigns on the parallel work-queue driver;
/// each worker feeds a per-campaign [`TraceSetBuilder`] and returns
/// the finished `(TraceSet, EngineStats)` directly — a campaign-scale
/// sweep holds columnar stores, never record logs.
pub fn stream_campaigns_parallel(
    topo: &Arc<Topology>,
    specs: &[CampaignSpec<'_>],
    stream: &StreamConfig,
) -> Vec<(TraceSet, EngineStats)> {
    try_run_campaigns_parallel_streaming(topo, specs, stream, builder_consumer(topo))
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .map(|r| (r.output, r.engine_stats))
        .collect()
}

/// Runs many streaming campaigns one after another on the calling
/// thread (each campaign still overlaps its prober thread with the
/// builder) — the serial counterpart of [`stream_campaigns_parallel`],
/// bit-identical per campaign since engines are campaign-isolated (the
/// two share one consumer factory). The adaptive discovery loop uses
/// the pair as its serial/parallel round drivers.
pub fn stream_campaigns_serial(
    topo: &Arc<Topology>,
    specs: &[CampaignSpec<'_>],
    stream: &StreamConfig,
) -> Vec<(TraceSet, EngineStats)> {
    try_run_campaigns_serial_streaming(topo, specs, stream, builder_consumer(topo))
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .map(|r| (r.output, r.engine_stats))
        .collect()
}

/// Runs many streaming campaigns under the campaign supervisor
/// (`yarrp6::campaign::run_campaign_supervised`): each campaign feeds
/// a fresh per-attempt [`TraceSetBuilder`], failed or blacked-out
/// attempts are retried with deterministic virtual-time backoff
/// starting at `start_us`, and exhausted retries come back as a
/// degraded [`SupervisedCampaign`] instead of a panic — so a
/// multi-round orchestrator keeps every surviving vantage's trace set
/// when one vantage dies. `parallel` picks the work-queue pool over
/// the serial driver; the two are bit-identical (supervision clocks
/// are virtual, campaigns engine-isolated).
pub fn stream_campaigns_supervised(
    topo: &Arc<Topology>,
    specs: &[CampaignSpec<'_>],
    stream: &StreamConfig,
    policy: &RetryPolicy,
    start_us: u64,
    parallel: bool,
) -> Vec<SupervisedCampaign<TraceSet>> {
    if parallel {
        run_campaigns_supervised_parallel(
            topo,
            specs,
            stream,
            policy,
            start_us,
            builder_consumer(topo),
        )
    } else {
        run_campaigns_supervised_serial(
            topo,
            specs,
            stream,
            policy,
            start_us,
            builder_consumer(topo),
        )
    }
}

/// A finished multi-vantage streaming campaign: the per-vantage
/// columnar sets *and* their deterministic cross-vantage union.
///
/// `merged` is `TraceSet::merge_all` over the per-vantage sets in
/// vantage order: its interner is the full union of every vantage's
/// discovered responders (the paper's union-of-vantages yield), its
/// trace columns keep the first vantage's trace per shared target, and
/// every trace carries its source vantage ([`TraceView::vantage`]).
/// The per-vantage sets are kept alongside because contribution and
/// overlap statistics ([`crate::metrics::vantage_contributions`],
/// [`crate::metrics::vantage_jaccard`]) need each vantage's view, not
/// just the union.
///
/// [`TraceView::vantage`]: crate::traces::TraceView::vantage
#[derive(Clone, Debug)]
pub struct MultiVantageCampaign {
    /// The cross-vantage union, merged in vantage order.
    pub merged: TraceSet,
    /// Each vantage's own `(TraceSet, EngineStats)`, in input order.
    pub per_vantage: Vec<(TraceSet, EngineStats)>,
    /// Engine accounting merged over all vantages.
    pub stats: EngineStats,
}

/// Translates a finished [`CampaignRunner`] outcome into the
/// multi-vantage shape these wrappers have always returned. The
/// runner's `merged` is `TraceSet::merge_all` in vantage order — the
/// same fold the pre-runner drivers applied — so the delegation is
/// bit-identical.
fn multi_vantage_via_runner(
    topo: &Arc<Topology>,
    vantages: &[u8],
    set: &TargetSet,
    cfg: &YarrpConfig,
    stream: &StreamConfig,
    parallel: bool,
) -> MultiVantageCampaign {
    let outcome = CampaignRunner::new(topo)
        .targets(set)
        .vantages(vantages)
        .config(*cfg)
        .streaming(*stream)
        .parallel(parallel)
        .run()
        .unwrap_or_else(|e| panic!("{e}"));
    MultiVantageCampaign {
        merged: outcome.merged,
        per_vantage: outcome
            .runs
            .into_iter()
            .map(|r| (r.traces, r.stats))
            .collect(),
        stats: outcome.stats,
    }
}

/// Runs one streaming campaign per vantage over the same target set
/// (vantages one after another) and merges the finished sets
/// deterministically in vantage order. Each per-vantage set is
/// bit-identical to that vantage's [`stream_campaign`] /
/// `from_log(run_campaign(..))`.
pub fn stream_multi_vantage(
    topo: &Arc<Topology>,
    vantages: &[u8],
    set: &TargetSet,
    cfg: &YarrpConfig,
    stream: &StreamConfig,
) -> MultiVantageCampaign {
    multi_vantage_via_runner(topo, vantages, set, cfg, stream, false)
}

/// The concurrent variant of [`stream_multi_vantage`]: one
/// prober+builder pair per vantage on the work-queue pool. Campaigns
/// are engine-isolated and merged in input order, so the result is
/// bit-identical to the serial driver's.
pub fn stream_multi_vantage_parallel(
    topo: &Arc<Topology>,
    vantages: &[u8],
    set: &TargetSet,
    cfg: &YarrpConfig,
    stream: &StreamConfig,
) -> MultiVantageCampaign {
    multi_vantage_via_runner(topo, vantages, set, cfg, stream, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv6Addr;
    use yarrp6::ProbeLog;

    fn rec(
        target: &str,
        responder: &str,
        kind: ResponseKind,
        ttl: Option<u8>,
        recv_us: u64,
    ) -> ResponseRecord {
        ResponseRecord {
            target: target.parse().unwrap(),
            responder: responder.parse().unwrap(),
            kind,
            probe_ttl: ttl,
            rtt_us: Some(1),
            recv_us,
            target_cksum_ok: true,
        }
    }

    /// The batch comparator: what the prober's receive-sorted log
    /// analyzes to.
    fn batch(records: &[ResponseRecord]) -> TraceSet {
        let mut log = ProbeLog {
            records: records.to_vec(),
            ..Default::default()
        };
        log.sort_by_recv();
        TraceSet::from_log(&log)
    }

    #[test]
    fn chunked_ingestion_matches_batch() {
        let records = vec![
            rec(
                "2001:db8::1",
                "::a",
                ResponseKind::TimeExceeded,
                Some(1),
                50,
            ),
            rec(
                "2001:db8::1",
                "::b",
                ResponseKind::TimeExceeded,
                Some(3),
                20,
            ),
            rec(
                "2001:db8::2",
                "::a",
                ResponseKind::TimeExceeded,
                Some(2),
                90,
            ),
            rec(
                "2001:db8::1",
                "2001:db8::1",
                ResponseKind::EchoReply,
                Some(4),
                70,
            ),
            rec(
                "2001:db8::2",
                "::c",
                ResponseKind::DestUnreachable(DestUnreachCode::NoRoute),
                Some(5),
                10,
            ),
        ];
        for chunk_size in [1, 2, 5] {
            let mut b = TraceSetBuilder::new();
            for chunk in records.chunks(chunk_size) {
                b.push_chunk(chunk);
            }
            assert_eq!(b.records_seen(), 5);
            assert_eq!(b.finish(), batch(&records), "chunk size {chunk_size}");
        }
    }

    #[test]
    fn out_of_emission_order_duplicates_resolve_by_recv_time() {
        // Two TE records for the same (target, ttl): the batch path
        // sorts by recv and keeps the first — the builder must agree
        // even though the later-received record was emitted first.
        let records = vec![
            rec(
                "2001:db8::1",
                "::b",
                ResponseKind::TimeExceeded,
                Some(2),
                80,
            ),
            rec(
                "2001:db8::1",
                "::a",
                ResponseKind::TimeExceeded,
                Some(2),
                30,
            ),
        ];
        let mut b = TraceSetBuilder::new();
        b.push_chunk(&records);
        let ts = b.finish();
        assert_eq!(ts, batch(&records));
        let t = ts.get("2001:db8::1".parse().unwrap()).unwrap();
        assert_eq!(
            t.hops().collect::<Vec<_>>(),
            vec![(2u8, "::a".parse::<Ipv6Addr>().unwrap())]
        );
    }

    #[test]
    fn rewritten_records_counted_not_traced() {
        let mut bad = rec("2001:db8::9", "::a", ResponseKind::TimeExceeded, Some(1), 5);
        bad.target_cksum_ok = false;
        let mut b = TraceSetBuilder::new();
        b.push(&bad);
        assert_eq!(b.pending_rows(), 0);
        let ts = b.finish();
        assert_eq!(ts.rewritten_dropped, 1);
        assert!(ts.is_empty());
    }

    #[test]
    fn identity_is_carried() {
        let b = TraceSetBuilder::new().with_identity("EU-NET".into(), "fdns-z64".into());
        let ts = b.finish();
        assert_eq!(&*ts.vantage, "EU-NET");
        assert_eq!(&*ts.target_set, "fdns-z64");
    }
}
