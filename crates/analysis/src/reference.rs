//! The original map-based analysis pipeline, kept as the golden
//! reference for the columnar one.
//!
//! [`Trace`]/[`TraceSet`] here are the `HashMap<Ipv6Addr, Trace>` +
//! per-trace `BTreeMap<u8, Ipv6Addr>` structures the analysis layer
//! started with, together with the original [`discover_by_path_div`] /
//! [`ia_hack`] implementations that re-sort and allocate per call. The
//! production pipeline ([`crate::traces::TraceSet`]) is pinned
//! bit-identical to this module by the golden equivalence tests
//! (`tests/columnar_golden.rs`); it exists for verification and the
//! `trace_analysis_pps` benchmark baseline, not for production use.

use crate::subnets::{CandidateSubnet, PathDivParams};
use crate::traces::AsnResolver;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv6Addr;
use v6addr::{bits, dpl, Asn, Ipv6Prefix};
use yarrp6::{ProbeLog, ResponseKind};

/// One reconstructed trace (map-based reference layout).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Trace {
    /// The probed destination.
    pub target: Ipv6Addr,
    /// TTL → responding router interface (Time Exceeded sources only).
    pub hops: BTreeMap<u8, Ipv6Addr>,
    /// Smallest TTL at which the destination itself answered, if any.
    pub reached_at: Option<u8>,
    /// Destination Unreachable responses seen: (ttl, responder).
    pub unreachable: Vec<(u8, Ipv6Addr)>,
}

impl Trace {
    /// An empty trace toward `target`.
    pub fn new(target: Ipv6Addr) -> Self {
        Trace {
            target,
            hops: BTreeMap::new(),
            reached_at: None,
            unreachable: Vec::new(),
        }
    }

    /// Estimated path length in router hops: the TTL of the destination
    /// response when reached, else the deepest responding hop (a lower
    /// bound).
    pub fn path_len(&self) -> Option<u8> {
        self.reached_at
            .or_else(|| self.hops.keys().next_back().copied())
    }

    /// The deepest responding hop address (the "last hop" of §6).
    pub fn last_hop(&self) -> Option<(u8, Ipv6Addr)> {
        self.hops.iter().next_back().map(|(&t, &a)| (t, a))
    }

    /// The hop sequence `ttl=1..=k` with gaps as `None`, up to the
    /// deepest response.
    pub fn hop_vec(&self) -> Vec<Option<Ipv6Addr>> {
        let Some((&max, _)) = self.hops.iter().next_back() else {
            return Vec::new();
        };
        (1..=max).map(|t| self.hops.get(&t).copied()).collect()
    }
}

/// All traces of one campaign, indexed by target (reference layout).
#[derive(Clone, Debug, Default)]
pub struct TraceSet {
    /// target → trace.
    pub traces: HashMap<Ipv6Addr, Trace>,
    /// Campaign identity, carried through for reporting.
    pub vantage: String,
    /// Target-set name.
    pub target_set: String,
    /// Records dropped because the quoted destination failed the target
    /// checksum (middlebox rewriting detected).
    pub rewritten_dropped: u64,
}

impl TraceSet {
    /// Builds traces from a probe log (original per-record map updates).
    pub fn from_log(log: &ProbeLog) -> Self {
        let mut traces: HashMap<Ipv6Addr, Trace> = HashMap::new();
        let mut rewritten_dropped = 0u64;
        for r in &log.records {
            if !r.target_cksum_ok {
                rewritten_dropped += 1;
                continue;
            }
            let t = traces
                .entry(r.target)
                .or_insert_with(|| Trace::new(r.target));
            match r.kind {
                ResponseKind::TimeExceeded => {
                    if let Some(ttl) = r.probe_ttl {
                        // First responder wins; duplicates (fill + main
                        // probes) are consistent by path determinism.
                        t.hops.entry(ttl).or_insert(r.responder);
                    }
                }
                ResponseKind::DestUnreachable(c)
                    if c != v6packet::icmp6::DestUnreachCode::PortUnreachable =>
                {
                    if let Some(ttl) = r.probe_ttl {
                        t.unreachable.push((ttl, r.responder));
                    }
                }
                _ => {
                    // Destination responded (echo reply, TCP, port
                    // unreachable from the host).
                    let at = r.probe_ttl.unwrap_or(u8::MAX);
                    t.reached_at = Some(t.reached_at.map_or(at, |x| x.min(at)));
                }
            }
        }
        TraceSet {
            traces,
            vantage: log.vantage.to_string(),
            target_set: log.target_set.to_string(),
            rewritten_dropped,
        }
    }

    /// Number of traces with at least one response.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when no responses were recorded.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Iterates traces in target order (re-sorts on every call — the
    /// cost the columnar layout eliminates).
    pub fn iter_sorted(&self) -> Vec<&Trace> {
        let mut v: Vec<&Trace> = self.traces.values().collect();
        v.sort_by_key(|t| u128::from(t.target));
        v
    }
}

/// Original path-divergence discovery over the map-based trace set.
pub fn discover_by_path_div(
    ts: &TraceSet,
    resolver: &AsnResolver,
    vantage_asn: Asn,
    params: &PathDivParams,
) -> Vec<CandidateSubnet> {
    let traces = ts.iter_sorted();
    // Per-target best (max) DPL bound.
    let mut best: HashMap<Ipv6Addr, u8> = HashMap::new();
    for pair in traces.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if let Some(n) = divergence_bound(a, b, resolver, vantage_asn, params) {
            for t in [a.target, b.target] {
                let e = best.entry(t).or_insert(0);
                *e = (*e).max(n);
            }
        }
    }
    let mut out: Vec<CandidateSubnet> = best
        .into_iter()
        .map(|(t, n)| CandidateSubnet {
            prefix: Ipv6Prefix::truncating(t, n),
            exact: false,
        })
        .collect();
    out.sort_by_key(|c| (c.prefix.base_word(), c.prefix.len()));
    out.dedup();
    out
}

/// Tests one target pair for significant divergence; returns the DPL
/// bound when the gates pass (original allocating implementation).
fn divergence_bound(
    a: &Trace,
    b: &Trace,
    resolver: &AsnResolver,
    vantage_asn: Asn,
    params: &PathDivParams,
) -> Option<u8> {
    // T: both targets in the same organization.
    let asn_a = resolver.origin(a.target)?;
    let asn_b = resolver.origin(b.target)?;
    if params.targets_same_asn && !resolver.same_org(asn_a, asn_b) {
        return None;
    }

    let ha = a.hop_vec();
    let hb = b.hop_vec();

    // LCS: common prefix of the hop sequences. A position where both
    // responded with the same address extends it; differing responses
    // mark the divergence point; a missing response either terminates
    // the LCS (strict mode) or is skipped without being counted.
    let mut lcs_hops: Vec<Ipv6Addr> = Vec::new();
    let mut i = 0usize;
    let mut diverged_at = None;
    while i < ha.len().min(hb.len()) {
        match (ha[i], hb[i]) {
            (Some(x), Some(y)) if x == y => {
                lcs_hops.push(x);
                i += 1;
            }
            (Some(_), Some(_)) => {
                diverged_at = Some(i);
                break;
            }
            _ => {
                if !params.allow_gaps {
                    break;
                }
                i += 1;
            }
        }
    }
    let div = diverged_at?;
    if lcs_hops.len() < params.min_lcs {
        return None;
    }
    // A: divergence must happen outside the vantage AS.
    if params.last_lcs_outside_vantage_as {
        let last_asn = resolver.origin(*lcs_hops.last()?)?;
        if resolver.same_org(last_asn, vantage_asn) {
            return None;
        }
    }
    // C: enough LCS hops inside the target's organization.
    let lcs_matches = lcs_hops
        .iter()
        .filter(|&&h| {
            resolver
                .origin(h)
                .map(|x| resolver.same_org(x, asn_a))
                .unwrap_or(false)
        })
        .count();
    if lcs_matches < params.lcs_asn_matches {
        return None;
    }
    // DS: both suffixes non-empty (z = 0) and long enough, counting only
    // responding hops from the divergence point on.
    let ds_a: Vec<Ipv6Addr> = ha[div..].iter().flatten().copied().collect();
    let ds_b: Vec<Ipv6Addr> = hb[div..].iter().flatten().copied().collect();
    if ds_a.len() < params.min_ds || ds_b.len() < params.min_ds {
        return None;
    }
    // S: enough DS hops inside the target's organization, on each side.
    let count_in_org = |ds: &[Ipv6Addr], asn: Asn| {
        ds.iter()
            .filter(|&&h| {
                resolver
                    .origin(h)
                    .map(|x| resolver.same_org(x, asn))
                    .unwrap_or(false)
            })
            .count()
    };
    if count_in_org(&ds_a, asn_a) < params.ds_asn_matches
        || count_in_org(&ds_b, asn_b) < params.ds_asn_matches
    {
        return None;
    }

    dpl::dpl_of_pair(a.target, b.target)
}

/// Original IA-hack discovery over the map-based trace set.
pub fn ia_hack(ts: &TraceSet) -> Vec<CandidateSubnet> {
    let mut out = Vec::new();
    for t in ts.iter_sorted() {
        let Some((_, last)) = t.last_hop() else {
            continue;
        };
        let lw = u128::from(last);
        let tw = u128::from(t.target);
        let same_64 = bits::net_bits(lw) == bits::net_bits(tw);
        let is_one = bits::iid_bits(lw) == 1;
        if same_64 && is_one {
            out.push(CandidateSubnet {
                prefix: Ipv6Prefix::from_word(tw, 64),
                exact: true,
            });
        }
    }
    out.sort_by_key(|c| c.prefix.base_word());
    out.dedup();
    out
}
