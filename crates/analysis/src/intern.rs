//! Interface-address interning: a `u32`-keyed table shared by every
//! analysis stage.
//!
//! A campaign's records repeat the same few thousand responder addresses
//! millions of times. The map-based pipeline paid for that repetition on
//! every pass — each stage re-hashed full 128-bit addresses into its own
//! `HashSet`/`HashMap` node soup. The columnar pipeline instead interns
//! every responder address **once** into an [`AddrInterner`] and carries
//! dense `u32` ids everywhere else: trace hops store ids, equality checks
//! are integer compares, and any per-address derived quantity (origin
//! ASN, IID class) is computed once per *unique* address via
//! [`AddrInterner::map_ids`] and then looked up by index.
//!
//! The table is purpose-built open addressing in the style of
//! `simnet::pathcache`: one `Vec<u32>` of slots over a `Vec<Ipv6Addr>`
//! arena, a splitmix-mixed fold of the 128-bit address as the bucket
//! hash, linear probing, no per-entry allocation. Ids are assigned in
//! first-insertion order and are **stable**: re-interning an address
//! always returns the id of its first insertion, and ids of earlier
//! inserts never move when the table grows.

use std::net::Ipv6Addr;

const EMPTY: u32 = u32::MAX;

#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Bucket hash for an address word: fold the halves, one splitmix round.
#[inline]
fn hash_word(w: u128) -> u64 {
    splitmix((w >> 64) as u64 ^ w as u64)
}

/// One slot: the address word inline with its id, so a probe touches a
/// single cache line instead of chasing `slot → arena` per comparison.
#[derive(Clone, Copy, Debug)]
struct Slot {
    word: u128,
    id: u32,
}

const FREE: Slot = Slot { word: 0, id: EMPTY };

/// Open-addressed `Ipv6Addr → u32` interner over a dense address arena.
#[derive(Clone, Debug)]
pub struct AddrInterner {
    /// Arena: `words[id]` is the interned address word (insertion order).
    words: Vec<u128>,
    /// Slot table; `id == EMPTY` marks a free slot.
    slots: Vec<Slot>,
    mask: usize,
}

impl Default for AddrInterner {
    fn default() -> Self {
        Self::new()
    }
}

impl AddrInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty interner pre-sized for about `n` distinct addresses.
    pub fn with_capacity(n: usize) -> Self {
        let cap = (n * 2).next_power_of_two().max(64);
        AddrInterner {
            words: Vec::with_capacity(n),
            slots: vec![FREE; cap],
            mask: cap - 1,
        }
    }

    /// Number of distinct addresses interned.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Interns `addr`, returning its stable dense id.
    #[inline]
    pub fn intern(&mut self, addr: Ipv6Addr) -> u32 {
        let w = u128::from(addr);
        let mut i = hash_word(w) as usize & self.mask;
        loop {
            let s = self.slots[i];
            if s.id == EMPTY {
                let new_id = self.words.len() as u32;
                self.slots[i] = Slot {
                    word: w,
                    id: new_id,
                };
                self.words.push(w);
                if self.words.len() * 4 >= self.slots.len() * 3 {
                    self.grow();
                }
                return new_id;
            }
            if s.word == w {
                return s.id;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Hints the CPU to pull `addr`'s home slot into cache. The classify
    /// pass batches a window of prefetches ahead of its probes, so slot
    /// misses overlap instead of serializing — the main reason the
    /// columnar ingest outruns a per-record `HashMap` probe, whose
    /// bucket address is unknowable outside the map.
    #[inline]
    pub fn prefetch(&self, addr: Ipv6Addr) {
        let i = hash_word(u128::from(addr)) as usize & self.mask;
        #[cfg(target_arch = "x86_64")]
        unsafe {
            core::arch::x86_64::_mm_prefetch(
                self.slots.as_ptr().add(i) as *const i8,
                core::arch::x86_64::_MM_HINT_T0,
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = i;
        }
    }

    /// The id of `addr` if already interned.
    #[inline]
    pub fn lookup(&self, addr: Ipv6Addr) -> Option<u32> {
        let w = u128::from(addr);
        let mut i = hash_word(w) as usize & self.mask;
        loop {
            let s = self.slots[i];
            if s.id == EMPTY {
                return None;
            }
            if s.word == w {
                return Some(s.id);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// The address behind `id` (panics on an id never returned by
    /// [`intern`](Self::intern)).
    #[inline]
    pub fn resolve(&self, id: u32) -> Ipv6Addr {
        Ipv6Addr::from(self.words[id as usize])
    }

    /// The `u128` word behind `id`.
    #[inline]
    pub fn resolve_word(&self, id: u32) -> u128 {
        self.words[id as usize]
    }

    /// All interned address words, indexed by id (insertion order).
    pub fn words(&self) -> &[u128] {
        &self.words
    }

    /// All interned addresses in id order (insertion order).
    pub fn addrs(&self) -> Vec<Ipv6Addr> {
        self.words.iter().map(|&w| Ipv6Addr::from(w)).collect()
    }

    /// Computes `f` once per unique address; `out[id]` is `f(addr(id))`.
    /// The per-id cache every analysis stage uses instead of re-deriving
    /// per occurrence (origin ASN, IID class, ...).
    pub fn map_ids<T>(&self, mut f: impl FnMut(Ipv6Addr) -> T) -> Vec<T> {
        self.words.iter().map(|&w| f(Ipv6Addr::from(w))).collect()
    }

    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        self.mask = cap - 1;
        self.slots.clear();
        self.slots.resize(cap, FREE);
        for (id, &w) in self.words.iter().enumerate() {
            let mut i = hash_word(w) as usize & self.mask;
            while self.slots[i].id != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = Slot {
                word: w,
                id: id as u32,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let mut it = AddrInterner::new();
        let x = it.intern(a("2001:db8::1"));
        let y = it.intern(a("2001:db8::2"));
        assert_eq!((x, y), (0, 1));
        assert_eq!(it.intern(a("2001:db8::1")), x);
        assert_eq!(it.len(), 2);
        assert_eq!(it.resolve(y), a("2001:db8::2"));
        assert_eq!(it.lookup(a("2001:db8::2")), Some(y));
        assert_eq!(it.lookup(a("2001:db8::3")), None);
    }

    #[test]
    fn survives_growth() {
        let mut it = AddrInterner::with_capacity(0);
        let n = 10_000u32;
        for i in 0..n {
            let id = it.intern(Ipv6Addr::from(0x2001_0db8_u128 << 96 | i as u128));
            assert_eq!(id, i);
        }
        assert_eq!(it.len(), n as usize);
        for i in 0..n {
            let addr = Ipv6Addr::from(0x2001_0db8_u128 << 96 | i as u128);
            assert_eq!(it.lookup(addr), Some(i));
            assert_eq!(it.resolve(i), addr);
        }
    }

    #[test]
    fn map_ids_is_per_unique_address() {
        let mut it = AddrInterner::new();
        for _ in 0..100 {
            it.intern(a("::1"));
            it.intern(a("::2"));
        }
        let mut calls = 0;
        let lens = it.map_ids(|addr| {
            calls += 1;
            u128::from(addr)
        });
        assert_eq!(calls, 2);
        assert_eq!(lens, vec![1, 2]);
    }
}
