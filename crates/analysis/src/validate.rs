//! Ground-truth validation of subnet discovery (§6 "Subnet Validation").
//!
//! The paper validates against operator truth data: interior
//! ("distribution") prefixes of major ISPs with city-level locations.
//! Here the simulator's subnet plan plays that role. Two evaluations:
//!
//! * **direct** — how many candidates match truth subnets exactly, and
//!   how many truth prefixes contain more-specific candidates;
//! * **stratified sampling** — re-run discovery with only one trace per
//!   truth subnet, intentionally lowering target DPL so discovery is
//!   bounded by the truth granularity; count exact matches and
//!   one/two-bit-short misses.
//!
//! Both passes are columnar: truth membership is a binary search over a
//! sorted `(base, len)` table and the per-truth "considered"/"more
//! specific" sets are sort-dedup flat rows, not per-candidate tree
//! nodes.

use crate::subnets::CandidateSubnet;
use serde::{Deserialize, Serialize};
use v6addr::{Ipv6Prefix, PrefixTrie};

/// Validation outcome.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Truth subnets considered (those we traced into).
    pub truth_considered: u64,
    /// Candidates matching a truth subnet exactly (base and length).
    pub exact: u64,
    /// Truth subnets containing at least one *more-specific* candidate.
    pub truth_with_more_specific: u64,
    /// Candidates whose length is one bit short of a containing truth
    /// subnet with the same base.
    pub short_by_one: u64,
    /// Two bits short.
    pub short_by_two: u64,
    /// Candidates unrelated to any truth subnet.
    pub unmatched: u64,
}

#[inline]
fn key(p: &Ipv6Prefix) -> (u128, u8) {
    (p.base_word(), p.len())
}

/// Compares candidates against truth prefixes.
pub fn validate(
    candidates: &[CandidateSubnet],
    truth: &[Ipv6Prefix],
    traced_targets: &[std::net::Ipv6Addr],
) -> ValidationReport {
    let truth_trie: PrefixTrie<()> = truth.iter().map(|&p| (p, ())).collect();
    let mut truth_keys: Vec<(u128, u8)> = truth.iter().map(key).collect();
    truth_keys.sort_unstable();
    truth_keys.dedup();

    // Truth subnets we actually sent traces into.
    let mut considered: Vec<(u128, u8)> = traced_targets
        .iter()
        .filter_map(|&t| truth_trie.longest_match(t).map(|(p, _)| key(&p)))
        .collect();
    considered.sort_unstable();
    considered.dedup();

    let mut report = ValidationReport {
        truth_considered: considered.len() as u64,
        ..Default::default()
    };
    let mut more_specific: Vec<(u128, u8)> = Vec::new();
    for c in candidates {
        if truth_keys.binary_search(&key(&c.prefix)).is_ok() {
            report.exact += 1;
            continue;
        }
        // A containing truth prefix => candidate is more specific (or a
        // short-by-n approximation of it when bases align).
        if let Some((tp, _)) = truth_trie.longest_match(c.prefix.base()) {
            if tp.len() < c.prefix.len() {
                more_specific.push(key(&tp));
                continue;
            }
            // Candidate is *shorter* than the truth prefix: how short?
            let delta = tp.len() - c.prefix.len();
            match delta {
                1 => report.short_by_one += 1,
                2 => report.short_by_two += 1,
                _ => report.unmatched += 1,
            }
        } else {
            report.unmatched += 1;
        }
    }
    more_specific.sort_unstable();
    more_specific.dedup();
    report.truth_with_more_specific = more_specific.len() as u64;
    report
}

/// Stratified sampling: keep one target per truth subnet (the first in
/// address order), lowering DPL fidelity on purpose. One sort groups
/// targets per truth prefix; a second restores address order.
pub fn stratified_sample(
    targets: &[std::net::Ipv6Addr],
    truth: &[Ipv6Prefix],
) -> Vec<std::net::Ipv6Addr> {
    let truth_trie: PrefixTrie<()> = truth.iter().map(|&p| (p, ())).collect();
    let mut sorted: Vec<std::net::Ipv6Addr> = targets.to_vec();
    sorted.sort();
    // (truth key, position in address order): the first row of each
    // truth-prefix run is the first target in address order.
    let mut rows: Vec<(u128, u8, u32)> = sorted
        .iter()
        .enumerate()
        .filter_map(|(i, &t)| {
            truth_trie
                .longest_match(t)
                .map(|(p, _)| (p.base_word(), p.len(), i as u32))
        })
        .collect();
    rows.sort_unstable();
    rows.dedup_by(|b, a| b.0 == a.0 && b.1 == a.1);
    let mut picks: Vec<u32> = rows.into_iter().map(|(_, _, i)| i).collect();
    picks.sort_unstable();
    picks.into_iter().map(|i| sorted[i as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv6Addr;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    fn cand(s: &str) -> CandidateSubnet {
        CandidateSubnet {
            prefix: p(s),
            exact: false,
        }
    }

    #[test]
    fn exact_and_more_specific() {
        let truth = vec![p("2001:db8::/40"), p("2001:db8:100::/40")];
        let targets: Vec<Ipv6Addr> = vec![
            "2001:db8::1".parse().unwrap(),
            "2001:db8:100::1".parse().unwrap(),
        ];
        let cands = vec![
            cand("2001:db8::/40"),     // exact
            cand("2001:db8:100::/48"), // more specific within truth[1]
        ];
        let r = validate(&cands, &truth, &targets);
        assert_eq!(r.truth_considered, 2);
        assert_eq!(r.exact, 1);
        assert_eq!(r.truth_with_more_specific, 1);
        assert_eq!(r.unmatched, 0);
    }

    #[test]
    fn short_by_counts() {
        let truth = vec![p("2001:db8::/40")];
        let cands = vec![
            cand("2001:db8::/39"),
            cand("2001:db8::/38"),
            cand("2001:db8::/30"),
        ];
        let r = validate(&cands, &truth, &["2001:db8::1".parse().unwrap()]);
        assert_eq!(r.short_by_one, 1);
        assert_eq!(r.short_by_two, 1);
        // /30 is 10 bits short: unmatched... but note /30 doesn't have a
        // containing truth prefix (it *contains* the truth), longest_match
        // of its base finds /40 though (base 2001:db8:: is inside /40).
        assert_eq!(r.unmatched, 1);
    }

    #[test]
    fn stratified_keeps_one_per_truth() {
        let truth = vec![p("2001:db8::/40"), p("2001:db8:100::/40")];
        let targets: Vec<Ipv6Addr> = vec![
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            "2001:db8:100::1".parse().unwrap(),
            "3fff::1".parse().unwrap(), // outside truth: dropped
        ];
        let s = stratified_sample(&targets, &truth);
        assert_eq!(s.len(), 2);
        assert!(s.contains(&"2001:db8::1".parse().unwrap()));
        assert!(s.contains(&"2001:db8:100::1".parse().unwrap()));
    }
}
