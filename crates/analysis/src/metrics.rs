//! Campaign metrics: the quantities behind Tables 3, 4, 6 and 7 and
//! Figures 5, 6 and 7.
//!
//! All passes are columnar: the log's records are reduced with sorts
//! and merges over flat rows, per-address facts (origin ASN, IID class)
//! are derived once per unique interned address via the trace set's
//! [`crate::intern::AddrInterner`], and no per-record map nodes are
//! allocated.

use crate::traces::TraceSet;
use serde::{Deserialize, Serialize};
use std::net::Ipv6Addr;
use v6addr::iid::{classify, IidClass};
use v6addr::Asn;
use yarrp6::{ProbeLog, ResponseKind};

/// One campaign's Table 7 row (without the cross-campaign exclusives,
/// which need the whole grid — see [`exclusive_features`]).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CampaignMetrics {
    /// Campaign identity.
    pub name: String,
    /// Probes emitted (the paper's "Traces" column counts probes here).
    pub probes: u64,
    /// Unique targets probed.
    pub targets: u64,
    /// Unique Time-Exceeded sources ("Rtr Int Addrs").
    pub interface_addrs: u64,
    /// Distinct BGP prefixes covering discovered interfaces.
    pub int_bgp_prefixes: u64,
    /// Distinct origin ASNs of discovered interfaces.
    pub int_asns: u64,
    /// Fraction of traces that penetrated the target's origin AS: the
    /// destination itself answered, or some responding hop resolves to
    /// the target's ASN (Table 7's "Reach Int Target ASN").
    pub reach_frac: f64,
    /// 95th-percentile path length.
    pub path_len_p95: u8,
    /// Median path length.
    pub path_len_median: u8,
    /// EUI-64 interface addresses discovered.
    pub eui64_addrs: u64,
    /// EUI-64 share of all interface addresses.
    pub eui64_frac: f64,
    /// 5th percentile of EUI-64 path offsets (offset ≤ 0; 0 = last hop).
    pub eui64_offset_p5: i16,
    /// Median EUI-64 path offset.
    pub eui64_offset_median: i16,
}

fn percentile<T: Copy + Ord>(sorted: &[T], p: f64) -> Option<T> {
    if sorted.is_empty() {
        return None;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    Some(sorted[idx])
}

/// Unique Time-Exceeded sources of a log, sorted — the flat-pass
/// equivalent of [`ProbeLog::interface_addrs`] (one sort instead of a
/// `BTreeSet` node per record).
fn sorted_interface_addrs(log: &ProbeLog) -> Vec<Ipv6Addr> {
    let mut ifaces: Vec<Ipv6Addr> = log
        .records
        .iter()
        .filter(|r| r.kind == ResponseKind::TimeExceeded)
        .map(|r| r.responder)
        .collect();
    ifaces.sort_unstable();
    ifaces.dedup();
    ifaces
}

impl CampaignMetrics {
    /// Computes the row for one campaign.
    pub fn compute(log: &ProbeLog, bgp: &v6addr::BgpTable) -> CampaignMetrics {
        let ts = TraceSet::from_log(log);
        let ifaces = sorted_interface_addrs(log);

        let mut pfxs: Vec<v6addr::Ipv6Prefix> = Vec::new();
        let mut asns: Vec<u32> = Vec::new();
        for &a in &ifaces {
            if let Some((p, asn)) = bgp.lookup(a) {
                pfxs.push(p);
                asns.push(asn.0);
            }
        }
        pfxs.sort_unstable_by_key(|p| (p.base_word(), p.len()));
        pfxs.dedup();
        asns.sort_unstable();
        asns.dedup();

        // Per-unique-address facts, once per interned id.
        let id_origin: Vec<Option<Asn>> = ts.interner().map_ids(|a| bgp.origin(a));
        let id_eui64: Vec<bool> = ts.interner().map_ids(|a| classify(a) == IidClass::Eui64);

        let mut path_lens: Vec<u8> = ts.iter().filter_map(|t| t.path_len()).collect();
        path_lens.sort_unstable();

        let reached = ts
            .iter()
            .filter(|t| {
                if t.reached_at().is_some() {
                    return true;
                }
                let Some(tasn) = bgp.origin(t.target()) else {
                    return false;
                };
                t.hop_cells()
                    .iter()
                    .chain(t.unreachable_cells())
                    .any(|&(_, id)| id_origin[id as usize] == Some(tasn))
            })
            .count();

        // EUI-64 interfaces and their path offsets. Offset is relative to
        // the trace's path length: 0 means last hop on path. Uniqueness
        // is tracked per interned id, not by re-hashing addresses.
        let mut eui_seen = vec![false; ts.interner().len()];
        let mut eui_count = 0u64;
        let mut offsets: Vec<i16> = Vec::new();
        for t in ts.iter() {
            let Some(plen) = t.path_len() else { continue };
            for &(ttl, id) in t.hop_cells() {
                if id_eui64[id as usize] {
                    if !eui_seen[id as usize] {
                        eui_seen[id as usize] = true;
                        eui_count += 1;
                    }
                    offsets.push(ttl as i16 - plen as i16);
                }
            }
        }
        offsets.sort_unstable();

        CampaignMetrics {
            name: format!("{} {}", log.vantage, log.target_set),
            probes: log.probes_sent,
            targets: log.traces,
            interface_addrs: ifaces.len() as u64,
            int_bgp_prefixes: pfxs.len() as u64,
            int_asns: asns.len() as u64,
            reach_frac: if ts.is_empty() {
                0.0
            } else {
                reached as f64 / ts.len() as f64
            },
            path_len_p95: percentile(&path_lens, 0.95).unwrap_or(0),
            path_len_median: percentile(&path_lens, 0.5).unwrap_or(0),
            eui64_addrs: eui_count,
            eui64_frac: if ifaces.is_empty() {
                0.0
            } else {
                eui_count as f64 / ifaces.len() as f64
            },
            eui64_offset_p5: percentile(&offsets, 0.05).unwrap_or(0),
            eui64_offset_median: percentile(&offsets, 0.5).unwrap_or(0),
        }
    }
}

/// Per-hop responsiveness (Figure 5): for each TTL, the fraction of
/// traces that received a Time-Exceeded from that hop. One flat
/// `(target, ttl)` sort replaces the per-record set probe.
pub fn hop_responsiveness(log: &ProbeLog, max_ttl: u8) -> Vec<f64> {
    let total = log.traces.max(1) as f64;
    let mut rows: Vec<(u128, u8)> = log
        .records
        .iter()
        .filter(|r| r.kind == ResponseKind::TimeExceeded)
        .filter_map(|r| {
            r.probe_ttl
                .filter(|&t| t <= max_ttl)
                .map(|t| (u128::from(r.target), t))
        })
        .collect();
    rows.sort_unstable();
    rows.dedup();
    let mut counts = vec![0u64; max_ttl as usize + 1];
    for &(_, ttl) in &rows {
        counts[ttl as usize] += 1;
    }
    (1..=max_ttl as usize)
        .map(|t| counts[t] as f64 / total)
        .collect()
}

/// Discovery curve (Figure 7): cumulative unique interface addresses as
/// a function of probes emitted. Probe position is recovered from the
/// response's send timestamp and the campaign rate (stateless probers
/// do not number their probes). Two sorts — first-sighting per address,
/// then time order — replace the incremental set.
pub fn discovery_curve(log: &ProbeLog) -> Vec<(u64, u64)> {
    let rate_interval = if log.probes_sent > 0 && log.duration_us > 0 {
        (log.duration_us as f64 / log.probes_sent as f64).max(1.0)
    } else {
        1.0
    };
    // (addr, send time): sorted, the first row per address is its
    // earliest sighting.
    let mut rows: Vec<(u128, u64)> = log
        .records
        .iter()
        .filter(|r| r.kind == ResponseKind::TimeExceeded)
        .map(|r| {
            let sent = r.recv_us - r.rtt_us.unwrap_or(0).min(r.recv_us);
            (u128::from(r.responder), sent)
        })
        .collect();
    rows.sort_unstable();
    rows.dedup_by(|b, a| b.0 == a.0);
    // Re-order first sightings by send time (ties by address, matching
    // the reference's (sent, addr) iteration order).
    let mut firsts: Vec<(u64, u128)> = rows.into_iter().map(|(a, s)| (s, a)).collect();
    firsts.sort_unstable();
    firsts
        .into_iter()
        .enumerate()
        .map(|(i, (sent_us, _))| {
            let probe_no = (sent_us as f64 / rate_interval) as u64 + 1;
            (probe_no, i as u64 + 1)
        })
        .collect()
}

/// Cross-campaign exclusive features (Figure 6 insets / Table 7
/// "Excl" columns): for each campaign, how many interfaces / prefixes /
/// ASNs no *other* campaign in the grid discovered. Computed by sorted
/// merge over per-campaign sorted feature lists.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ExclusiveFeatures {
    /// Interfaces unique to this campaign.
    pub interfaces: u64,
    /// BGP prefixes unique to this campaign.
    pub prefixes: u64,
    /// ASNs unique to this campaign.
    pub asns: u64,
}

/// Counts, for each sorted per-campaign list, how many of its elements
/// appear in no other campaign's list.
fn exclusive_counts<T: Copy + Ord>(per_log: &[Vec<T>]) -> Vec<u64> {
    let mut all: Vec<T> = per_log.iter().flatten().copied().collect();
    all.sort_unstable();
    // An element kept by exactly one campaign appears exactly once in
    // the concatenation (per-campaign lists are deduplicated).
    let mut unique: Vec<T> = Vec::new();
    let mut i = 0;
    while i < all.len() {
        let mut j = i + 1;
        while j < all.len() && all[j] == all[i] {
            j += 1;
        }
        if j - i == 1 {
            unique.push(all[i]);
        }
        i = j;
    }
    per_log
        .iter()
        .map(|v| v.iter().filter(|x| unique.binary_search(x).is_ok()).count() as u64)
        .collect()
}

/// Computes exclusives for each log against the others.
pub fn exclusive_features(logs: &[&ProbeLog], bgp: &v6addr::BgpTable) -> Vec<ExclusiveFeatures> {
    let mut ifaces_per: Vec<Vec<Ipv6Addr>> = Vec::with_capacity(logs.len());
    let mut pfxs_per: Vec<Vec<(u128, u8)>> = Vec::with_capacity(logs.len());
    let mut asns_per: Vec<Vec<u32>> = Vec::with_capacity(logs.len());
    for log in logs {
        let ifaces = sorted_interface_addrs(log);
        let mut pfxs: Vec<(u128, u8)> = Vec::new();
        let mut asns: Vec<u32> = Vec::new();
        for &a in &ifaces {
            if let Some((p, asn)) = bgp.lookup(a) {
                pfxs.push((p.base_word(), p.len()));
                asns.push(asn.0);
            }
        }
        pfxs.sort_unstable();
        pfxs.dedup();
        asns.sort_unstable();
        asns.dedup();
        ifaces_per.push(ifaces);
        pfxs_per.push(pfxs);
        asns_per.push(asns);
    }
    let i_excl = exclusive_counts(&ifaces_per);
    let p_excl = exclusive_counts(&pfxs_per);
    let a_excl = exclusive_counts(&asns_per);
    (0..logs.len())
        .map(|k| ExclusiveFeatures {
            interfaces: i_excl[k],
            prefixes: p_excl[k],
            asns: a_excl[k],
        })
        .collect()
}

/// One vantage's share of a multi-vantage sweep — the quantities
/// behind the paper's vantage tables (each vantage's discoveries, how
/// much only it saw, and how much of the union it covers).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct VantageContribution {
    /// Vantage name (from the set's campaign identity).
    pub vantage: String,
    /// Unique interface addresses this vantage discovered.
    pub interfaces: u64,
    /// Interfaces *no other* vantage in the sweep discovered.
    pub exclusive: u64,
    /// `interfaces / union` — this vantage's coverage of the sweep's
    /// combined discovery (1.0 means it alone saw everything).
    pub union_share: f64,
}

/// Sorted unique interface words per set — the shared basis of the
/// vantage statistics. Borrows the sets (no columnar clones at call
/// sites) and accepts any iterable of references, matching
/// [`TraceSet::merge_all`]'s shape.
fn interface_words_per<'a>(sets: impl IntoIterator<Item = &'a TraceSet>) -> Vec<Vec<u128>> {
    sets.into_iter().map(|s| s.interface_words()).collect()
}

/// Unique interfaces across the union of all sets' discoveries.
fn union_count(per: &[Vec<u128>]) -> u64 {
    let mut all: Vec<u128> = per.iter().flatten().copied().collect();
    all.sort_unstable();
    all.dedup();
    all.len() as u64
}

/// Unique interface addresses discovered by the union of the given
/// per-vantage sets (sorted-merge over their interface columns).
pub fn vantage_union_count<'a>(sets: impl IntoIterator<Item = &'a TraceSet>) -> u64 {
    union_count(&interface_words_per(sets))
}

/// Per-vantage contribution rows for a multi-vantage sweep: unique and
/// exclusive interface counts plus each vantage's share of the union.
/// Pass the *per-vantage* sets (e.g.
/// [`crate::builder::MultiVantageCampaign::per_vantage`]) — the merged
/// union set cannot attribute discoveries back to vantages.
pub fn vantage_contributions<'a>(
    sets: impl IntoIterator<Item = &'a TraceSet> + Clone,
) -> Vec<VantageContribution> {
    let per = interface_words_per(sets.clone());
    let union = union_count(&per).max(1) as f64;
    let excl = exclusive_counts(&per);
    sets.into_iter()
        .zip(&per)
        .zip(&excl)
        .map(|((s, words), &exclusive)| VantageContribution {
            vantage: s.vantage.to_string(),
            interfaces: words.len() as u64,
            exclusive,
            union_share: words.len() as f64 / union,
        })
        .collect()
}

/// Pairwise Jaccard similarity of the vantages' interface sets:
/// `out[i][j] = |Ai ∩ Aj| / |Ai ∪ Aj|` (1.0 on the diagonal and for
/// two empty sets). Low off-diagonal values are the paper's argument
/// for vantage diversity — the vantages see substantially different
/// slices of the topology.
pub fn vantage_jaccard<'a>(sets: impl IntoIterator<Item = &'a TraceSet>) -> Vec<Vec<f64>> {
    let per = interface_words_per(sets);
    let n = per.len();
    let mut out = vec![vec![1.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            // Sorted-merge intersection count.
            let (a, b) = (&per[i], &per[j]);
            let (mut x, mut y, mut inter) = (0usize, 0usize, 0usize);
            while x < a.len() && y < b.len() {
                match a[x].cmp(&b[y]) {
                    std::cmp::Ordering::Less => x += 1,
                    std::cmp::Ordering::Greater => y += 1,
                    std::cmp::Ordering::Equal => {
                        inter += 1;
                        x += 1;
                        y += 1;
                    }
                }
            }
            let union = a.len() + b.len() - inter;
            let jac = if union == 0 {
                1.0
            } else {
                inter as f64 / union as f64
            };
            out[i][j] = jac;
            out[j][i] = jac;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use yarrp6::ResponseRecord;

    fn rec(
        target: &str,
        responder: &str,
        kind: ResponseKind,
        ttl: u8,
        recv: u64,
    ) -> ResponseRecord {
        ResponseRecord {
            target: target.parse().unwrap(),
            responder: responder.parse().unwrap(),
            kind,
            probe_ttl: Some(ttl),
            rtt_us: Some(10),
            recv_us: recv,
            target_cksum_ok: true,
        }
    }

    fn sample_log() -> ProbeLog {
        let mut log = ProbeLog {
            vantage: "V".into(),
            target_set: "S".into(),
            probes_sent: 100,
            traces: 2,
            duration_us: 100_000,
            ..Default::default()
        };
        log.records.push(rec(
            "2001:db8::1",
            "2001:db8:f::1",
            ResponseKind::TimeExceeded,
            1,
            20,
        ));
        log.records.push(rec(
            "2001:db8::1",
            "2001:db8:f::2",
            ResponseKind::TimeExceeded,
            2,
            30,
        ));
        log.records.push(rec(
            "2001:db8::1",
            "2001:db8:f:0:0211:22ff:fe33:4455",
            ResponseKind::TimeExceeded,
            3,
            40,
        ));
        log.records.push(rec(
            "2001:db8::1",
            "2001:db8::1",
            ResponseKind::EchoReply,
            4,
            50,
        ));
        log.records.push(rec(
            "2001:db8::2",
            "2001:db8:f::1",
            ResponseKind::TimeExceeded,
            1,
            60,
        ));
        log
    }

    fn bgp() -> v6addr::BgpTable {
        let mut b = v6addr::BgpTable::new();
        b.announce("2001:db8::/32".parse().unwrap(), v6addr::Asn(1));
        b
    }

    #[test]
    fn metrics_row() {
        let m = CampaignMetrics::compute(&sample_log(), &bgp());
        assert_eq!(m.interface_addrs, 3);
        assert_eq!(m.int_bgp_prefixes, 1);
        assert_eq!(m.int_asns, 1);
        // Trace 1 reached its destination; trace 2's hop resolves to the
        // target's own AS — both count as reaching the target ASN.
        assert_eq!(m.reach_frac, 1.0);
        assert_eq!(m.eui64_addrs, 1);
        // EUI-64 hop at ttl 3, path len 4 → offset -1.
        assert_eq!(m.eui64_offset_median, -1);
        // Path lengths are [1, 4]; the median index rounds up to 4.
        assert_eq!(m.path_len_median, 4);
    }

    #[test]
    fn responsiveness_counts_per_trace() {
        let r = hop_responsiveness(&sample_log(), 4);
        assert_eq!(r.len(), 4);
        assert_eq!(r[0], 1.0); // both traces saw hop 1
        assert_eq!(r[1], 0.5);
    }

    #[test]
    fn curve_is_monotonic() {
        let c = discovery_curve(&sample_log());
        assert_eq!(c.len(), 3); // 3 unique interfaces
        for w in c.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert_eq!(w[1].1, w[0].1 + 1);
        }
    }

    fn vantage_set(vantage: &str, hops: &[(&str, &str, u8)]) -> TraceSet {
        let mut log = ProbeLog {
            vantage: vantage.into(),
            target_set: "vset".into(),
            ..Default::default()
        };
        for (i, &(tgt, responder, ttl)) in hops.iter().enumerate() {
            log.records.push(rec(
                tgt,
                responder,
                ResponseKind::TimeExceeded,
                ttl,
                i as u64,
            ));
        }
        TraceSet::from_log(&log)
    }

    #[test]
    fn vantage_contribution_rows() {
        // A sees {a, b}; B sees {b, c}; C sees {b}.
        let sets = [
            vantage_set("A", &[("2001:db8::1", "::a", 1), ("2001:db8::1", "::b", 2)]),
            vantage_set("B", &[("2001:db8::2", "::b", 1), ("2001:db8::2", "::c", 2)]),
            vantage_set("C", &[("2001:db8::3", "::b", 1)]),
        ];
        assert_eq!(vantage_union_count(&sets), 3);
        let rows = vantage_contributions(&sets);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].vantage, "A");
        assert_eq!(
            rows.iter().map(|r| r.interfaces).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
        assert_eq!(
            rows.iter().map(|r| r.exclusive).collect::<Vec<_>>(),
            vec![1, 1, 0]
        );
        assert!((rows[0].union_share - 2.0 / 3.0).abs() < 1e-9);

        let jac = vantage_jaccard(&sets);
        assert_eq!(jac[0][0], 1.0);
        // A∩B = {b}, A∪B = {a,b,c}.
        assert!((jac[0][1] - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(jac[0][1], jac[1][0]);
        // B∩C = {b}, B∪C = {b,c}.
        assert!((jac[1][2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn exclusives_across_campaigns() {
        let log1 = sample_log();
        let mut log2 = ProbeLog {
            traces: 1,
            ..Default::default()
        };
        log2.records.push(rec(
            "2001:db8::9",
            "2001:db8:f::1",
            ResponseKind::TimeExceeded,
            1,
            5,
        ));
        log2.records.push(rec(
            "2001:db8::9",
            "2001:db8:f::9",
            ResponseKind::TimeExceeded,
            2,
            6,
        ));
        let b = bgp();
        let ex = exclusive_features(&[&log1, &log2], &b);
        // log1 exclusively has ::2 and the EUI hop; log2 exclusively ::9.
        assert_eq!(ex[0].interfaces, 2);
        assert_eq!(ex[1].interfaces, 1);
        // The /32 prefix is shared.
        assert_eq!(ex[0].prefixes, 0);
        assert_eq!(ex[1].prefixes, 0);
    }
}
