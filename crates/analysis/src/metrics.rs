//! Campaign metrics: the quantities behind Tables 3, 4, 6 and 7 and
//! Figures 5, 6 and 7.

use crate::traces::TraceSet;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv6Addr;
use v6addr::iid::{classify, IidClass};
use yarrp6::{ProbeLog, ResponseKind};

/// One campaign's Table 7 row (without the cross-campaign exclusives,
/// which need the whole grid — see [`exclusive_features`]).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CampaignMetrics {
    /// Campaign identity.
    pub name: String,
    /// Probes emitted (the paper's "Traces" column counts probes here).
    pub probes: u64,
    /// Unique targets probed.
    pub targets: u64,
    /// Unique Time-Exceeded sources ("Rtr Int Addrs").
    pub interface_addrs: u64,
    /// Distinct BGP prefixes covering discovered interfaces.
    pub int_bgp_prefixes: u64,
    /// Distinct origin ASNs of discovered interfaces.
    pub int_asns: u64,
    /// Fraction of traces that penetrated the target's origin AS: the
    /// destination itself answered, or some responding hop resolves to
    /// the target's ASN (Table 7's "Reach Int Target ASN").
    pub reach_frac: f64,
    /// 95th-percentile path length.
    pub path_len_p95: u8,
    /// Median path length.
    pub path_len_median: u8,
    /// EUI-64 interface addresses discovered.
    pub eui64_addrs: u64,
    /// EUI-64 share of all interface addresses.
    pub eui64_frac: f64,
    /// 5th percentile of EUI-64 path offsets (offset ≤ 0; 0 = last hop).
    pub eui64_offset_p5: i16,
    /// Median EUI-64 path offset.
    pub eui64_offset_median: i16,
}

fn percentile<T: Copy + Ord>(sorted: &[T], p: f64) -> Option<T> {
    if sorted.is_empty() {
        return None;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    Some(sorted[idx])
}

impl CampaignMetrics {
    /// Computes the row for one campaign.
    pub fn compute(log: &ProbeLog, bgp: &v6addr::BgpTable) -> CampaignMetrics {
        let ts = TraceSet::from_log(log);
        let ifaces = log.interface_addrs();

        let mut pfxs = BTreeSet::new();
        let mut asns = BTreeSet::new();
        for &a in &ifaces {
            if let Some((p, asn)) = bgp.lookup(a) {
                pfxs.insert(p);
                asns.insert(asn.0);
            }
        }

        let mut path_lens: Vec<u8> = ts.traces.values().filter_map(|t| t.path_len()).collect();
        path_lens.sort_unstable();
        let reached = ts
            .traces
            .values()
            .filter(|t| {
                if t.reached_at.is_some() {
                    return true;
                }
                let Some(tasn) = bgp.origin(t.target) else {
                    return false;
                };
                t.hops
                    .values()
                    .chain(t.unreachable.iter().map(|(_, r)| r))
                    .any(|&h| bgp.origin(h) == Some(tasn))
            })
            .count();

        // EUI-64 interfaces and their path offsets. Offset is relative to
        // the trace's path length: 0 means last hop on path.
        let mut eui_addrs: BTreeSet<Ipv6Addr> = BTreeSet::new();
        let mut offsets: Vec<i16> = Vec::new();
        for t in ts.traces.values() {
            let Some(plen) = t.path_len() else { continue };
            for (&ttl, &hop) in &t.hops {
                if classify(hop) == IidClass::Eui64 {
                    eui_addrs.insert(hop);
                    offsets.push(ttl as i16 - plen as i16);
                }
            }
        }
        offsets.sort_unstable();

        CampaignMetrics {
            name: format!("{} {}", log.vantage, log.target_set),
            probes: log.probes_sent,
            targets: log.traces,
            interface_addrs: ifaces.len() as u64,
            int_bgp_prefixes: pfxs.len() as u64,
            int_asns: asns.len() as u64,
            reach_frac: if ts.is_empty() {
                0.0
            } else {
                reached as f64 / ts.len() as f64
            },
            path_len_p95: percentile(&path_lens, 0.95).unwrap_or(0),
            path_len_median: percentile(&path_lens, 0.5).unwrap_or(0),
            eui64_addrs: eui_addrs.len() as u64,
            eui64_frac: if ifaces.is_empty() {
                0.0
            } else {
                eui_addrs.len() as f64 / ifaces.len() as f64
            },
            eui64_offset_p5: percentile(&offsets, 0.05).unwrap_or(0),
            eui64_offset_median: percentile(&offsets, 0.5).unwrap_or(0),
        }
    }
}

/// Per-hop responsiveness (Figure 5): for each TTL, the fraction of
/// traces that received a Time-Exceeded from that hop.
pub fn hop_responsiveness(log: &ProbeLog, max_ttl: u8) -> Vec<f64> {
    let total = log.traces.max(1) as f64;
    let mut counts = vec![0u64; max_ttl as usize + 1];
    let mut seen: BTreeSet<(Ipv6Addr, u8)> = BTreeSet::new();
    for r in &log.records {
        if r.kind == ResponseKind::TimeExceeded {
            if let Some(ttl) = r.probe_ttl {
                if ttl <= max_ttl && seen.insert((r.target, ttl)) {
                    counts[ttl as usize] += 1;
                }
            }
        }
    }
    (1..=max_ttl as usize)
        .map(|t| counts[t] as f64 / total)
        .collect()
}

/// Discovery curve (Figure 7): cumulative unique interface addresses as
/// a function of probes emitted. Probe position is recovered from the
/// response's send timestamp and the campaign rate (stateless probers
/// do not number their probes).
pub fn discovery_curve(log: &ProbeLog) -> Vec<(u64, u64)> {
    let rate_interval = if log.probes_sent > 0 && log.duration_us > 0 {
        (log.duration_us as f64 / log.probes_sent as f64).max(1.0)
    } else {
        1.0
    };
    // Order TE records by send time (recv - rtt).
    let mut sends: Vec<(u64, Ipv6Addr)> = log
        .records
        .iter()
        .filter(|r| r.kind == ResponseKind::TimeExceeded)
        .map(|r| {
            let sent = r.recv_us - r.rtt_us.unwrap_or(0).min(r.recv_us);
            (sent, r.responder)
        })
        .collect();
    sends.sort_unstable();
    let mut seen = BTreeSet::new();
    let mut curve = Vec::new();
    for (sent_us, addr) in sends {
        if seen.insert(addr) {
            let probe_no = (sent_us as f64 / rate_interval) as u64 + 1;
            curve.push((probe_no, seen.len() as u64));
        }
    }
    curve
}

/// Cross-campaign exclusive features (Figure 6 insets / Table 7
/// "Excl" columns): for each campaign, how many interfaces / prefixes /
/// ASNs no *other* campaign in the grid discovered.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ExclusiveFeatures {
    /// Interfaces unique to this campaign.
    pub interfaces: u64,
    /// BGP prefixes unique to this campaign.
    pub prefixes: u64,
    /// ASNs unique to this campaign.
    pub asns: u64,
}

/// Computes exclusives for each log against the others.
pub fn exclusive_features(logs: &[&ProbeLog], bgp: &v6addr::BgpTable) -> Vec<ExclusiveFeatures> {
    let mut iface_count: BTreeMap<Ipv6Addr, u32> = BTreeMap::new();
    let mut pfx_count: BTreeMap<v6addr::Ipv6Prefix, u32> = BTreeMap::new();
    let mut asn_count: BTreeMap<u32, u32> = BTreeMap::new();
    let per_log: Vec<(
        BTreeSet<Ipv6Addr>,
        BTreeSet<v6addr::Ipv6Prefix>,
        BTreeSet<u32>,
    )> = logs
        .iter()
        .map(|log| {
            let ifaces = log.interface_addrs();
            let mut pfxs = BTreeSet::new();
            let mut asns = BTreeSet::new();
            for &a in &ifaces {
                if let Some((p, asn)) = bgp.lookup(a) {
                    pfxs.insert(p);
                    asns.insert(asn.0);
                }
            }
            for &a in &ifaces {
                *iface_count.entry(a).or_default() += 1;
            }
            for &p in &pfxs {
                *pfx_count.entry(p).or_default() += 1;
            }
            for &a in &asns {
                *asn_count.entry(a).or_default() += 1;
            }
            (ifaces, pfxs, asns)
        })
        .collect();
    per_log
        .iter()
        .map(|(ifaces, pfxs, asns)| ExclusiveFeatures {
            interfaces: ifaces.iter().filter(|a| iface_count[a] == 1).count() as u64,
            prefixes: pfxs.iter().filter(|p| pfx_count[p] == 1).count() as u64,
            asns: asns.iter().filter(|a| asn_count[a] == 1).count() as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use yarrp6::ResponseRecord;

    fn rec(
        target: &str,
        responder: &str,
        kind: ResponseKind,
        ttl: u8,
        recv: u64,
    ) -> ResponseRecord {
        ResponseRecord {
            target: target.parse().unwrap(),
            responder: responder.parse().unwrap(),
            kind,
            probe_ttl: Some(ttl),
            rtt_us: Some(10),
            recv_us: recv,
            target_cksum_ok: true,
        }
    }

    fn sample_log() -> ProbeLog {
        let mut log = ProbeLog {
            vantage: "V".into(),
            target_set: "S".into(),
            probes_sent: 100,
            traces: 2,
            duration_us: 100_000,
            ..Default::default()
        };
        log.records.push(rec(
            "2001:db8::1",
            "2001:db8:f::1",
            ResponseKind::TimeExceeded,
            1,
            20,
        ));
        log.records.push(rec(
            "2001:db8::1",
            "2001:db8:f::2",
            ResponseKind::TimeExceeded,
            2,
            30,
        ));
        log.records.push(rec(
            "2001:db8::1",
            "2001:db8:f:0:0211:22ff:fe33:4455",
            ResponseKind::TimeExceeded,
            3,
            40,
        ));
        log.records.push(rec(
            "2001:db8::1",
            "2001:db8::1",
            ResponseKind::EchoReply,
            4,
            50,
        ));
        log.records.push(rec(
            "2001:db8::2",
            "2001:db8:f::1",
            ResponseKind::TimeExceeded,
            1,
            60,
        ));
        log
    }

    fn bgp() -> v6addr::BgpTable {
        let mut b = v6addr::BgpTable::new();
        b.announce("2001:db8::/32".parse().unwrap(), v6addr::Asn(1));
        b
    }

    #[test]
    fn metrics_row() {
        let m = CampaignMetrics::compute(&sample_log(), &bgp());
        assert_eq!(m.interface_addrs, 3);
        assert_eq!(m.int_bgp_prefixes, 1);
        assert_eq!(m.int_asns, 1);
        // Trace 1 reached its destination; trace 2's hop resolves to the
        // target's own AS — both count as reaching the target ASN.
        assert_eq!(m.reach_frac, 1.0);
        assert_eq!(m.eui64_addrs, 1);
        // EUI-64 hop at ttl 3, path len 4 → offset -1.
        assert_eq!(m.eui64_offset_median, -1);
        // Path lengths are [1, 4]; the median index rounds up to 4.
        assert_eq!(m.path_len_median, 4);
    }

    #[test]
    fn responsiveness_counts_per_trace() {
        let r = hop_responsiveness(&sample_log(), 4);
        assert_eq!(r.len(), 4);
        assert_eq!(r[0], 1.0); // both traces saw hop 1
        assert_eq!(r[1], 0.5);
    }

    #[test]
    fn curve_is_monotonic() {
        let c = discovery_curve(&sample_log());
        assert_eq!(c.len(), 3); // 3 unique interfaces
        for w in c.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert_eq!(w[1].1, w[0].1 + 1);
        }
    }

    #[test]
    fn exclusives_across_campaigns() {
        let log1 = sample_log();
        let mut log2 = ProbeLog {
            traces: 1,
            ..Default::default()
        };
        log2.records.push(rec(
            "2001:db8::9",
            "2001:db8:f::1",
            ResponseKind::TimeExceeded,
            1,
            5,
        ));
        log2.records.push(rec(
            "2001:db8::9",
            "2001:db8:f::9",
            ResponseKind::TimeExceeded,
            2,
            6,
        ));
        let b = bgp();
        let ex = exclusive_features(&[&log1, &log2], &b);
        // log1 exclusively has ::2 and the EUI hop; log2 exclusively ::9.
        assert_eq!(ex[0].interfaces, 2);
        assert_eq!(ex[1].interfaces, 1);
        // The /32 prefix is shared.
        assert_eq!(ex[0].prefixes, 0);
        assert_eq!(ex[1].prefixes, 0);
    }
}
