//! Hand-rolled binary snapshots of the columnar stores — the
//! serialization seam under the adaptive loop's checkpoint/resume.
//!
//! The repo's serde is a no-op shim (derives expand to markers), so
//! durable state is written by hand: a [`SnapWriter`] appends
//! fixed-width little-endian primitives and length-prefixed strings to
//! a byte vector, a [`SnapReader`] reads them back with explicit
//! [`SnapshotError`]s instead of panics. The encoding has no varints,
//! no alignment, no framing beyond what the caller writes — two
//! encodes of equal values are byte-identical, which is what lets the
//! checkpoint tests compare snapshots with `==`.
//!
//! [`write_trace_set`] / [`read_trace_set`] snapshot a
//! [`TraceSet`] *bit-identically*: the interner is stored as its word
//! column in id order and rebuilt by re-interning in that order (ids
//! are first-insertion-order stable, so every hop cell's `u32` id
//! resolves to the same address after a round-trip), and the
//! provenance columns ride along so merges after a resume behave
//! exactly as they would have in the uninterrupted run.

use crate::intern::AddrInterner;
use crate::traces::{TraceMeta, TraceSet};
use std::net::Ipv6Addr;
use std::sync::Arc;

/// Why a snapshot failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before the value it promised.
    Truncated,
    /// The leading magic/version did not match this build's format.
    BadMagic,
    /// A decoded value was structurally impossible (an out-of-range
    /// index, a length that overflows the buffer); the payload names
    /// the field.
    BadValue(&'static str),
    /// A string field held invalid UTF-8.
    Utf8,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "snapshot magic/version mismatch"),
            SnapshotError::BadValue(what) => write!(f, "snapshot field out of range: {what}"),
            SnapshotError::Utf8 => write!(f, "snapshot string is not UTF-8"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Appends fixed-width little-endian values to a growing byte buffer.
#[derive(Clone, Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far, borrowed.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bits — exact, so EWMA
    /// weights survive a round-trip to the last ulp.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Reads [`SnapWriter`]-encoded values back out of a byte slice.
#[derive(Clone, Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its raw bits.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool; anything but 0/1 is a [`SnapshotError::BadValue`].
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::BadValue("bool")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapshotError> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| SnapshotError::Utf8)
    }
}

/// Serializes a [`TraceSet`] — columns verbatim, interner as its word
/// list in id order. Inverse of [`read_trace_set`].
pub fn write_trace_set(w: &mut SnapWriter, ts: &TraceSet) {
    w.str(&ts.vantage);
    w.str(&ts.target_set);
    w.u64(ts.rewritten_dropped);
    let words = ts.interner.words();
    w.u32(words.len() as u32);
    for &word in words {
        w.u128(word);
    }
    w.u32(ts.targets.len() as u32);
    for &t in &ts.targets {
        w.u128(u128::from(t));
    }
    for m in &ts.metas {
        w.u32(m.hop_off);
        w.u32(m.hop_len);
        w.u32(m.unreach_off);
        w.u32(m.unreach_len);
        match m.reached_at {
            Some(at) => {
                w.u8(1);
                w.u8(at);
            }
            None => w.u8(0),
        }
    }
    w.u32(ts.hops.len() as u32);
    for &(ttl, id) in &ts.hops {
        w.u8(ttl);
        w.u32(id);
    }
    w.u32(ts.unreach.len() as u32);
    for &(ttl, id) in &ts.unreach {
        w.u8(ttl);
        w.u32(id);
    }
    w.u32(ts.sources.len() as u32);
    for s in &ts.sources {
        w.str(s);
    }
    w.u32(ts.prov.len() as u32);
    for &p in &ts.prov {
        w.u32(p);
    }
}

/// Deserializes a [`TraceSet`] written by [`write_trace_set`]. The
/// interner is rebuilt by re-interning the stored word list in order —
/// ids are insertion-order stable, so the result is bit-identical to
/// the original (`PartialEq`, interner ids, provenance and all).
pub fn read_trace_set(r: &mut SnapReader<'_>) -> Result<TraceSet, SnapshotError> {
    let vantage: Arc<str> = r.str()?.into();
    let target_set: Arc<str> = r.str()?.into();
    let rewritten_dropped = r.u64()?;
    let n_words = r.u32()? as usize;
    let mut interner = AddrInterner::with_capacity(n_words);
    for _ in 0..n_words {
        interner.intern(Ipv6Addr::from(r.u128()?));
    }
    if interner.len() != n_words {
        return Err(SnapshotError::BadValue("duplicate interner word"));
    }
    let n_targets = r.u32()? as usize;
    let mut targets = Vec::with_capacity(n_targets);
    for _ in 0..n_targets {
        targets.push(Ipv6Addr::from(r.u128()?));
    }
    let mut metas = Vec::with_capacity(n_targets);
    for _ in 0..n_targets {
        let hop_off = r.u32()?;
        let hop_len = r.u32()?;
        let unreach_off = r.u32()?;
        let unreach_len = r.u32()?;
        let reached_at = match r.u8()? {
            0 => None,
            1 => Some(r.u8()?),
            _ => return Err(SnapshotError::BadValue("reached_at tag")),
        };
        metas.push(TraceMeta {
            hop_off,
            hop_len,
            unreach_off,
            unreach_len,
            reached_at,
        });
    }
    let n_hops = r.u32()? as usize;
    let mut hops = Vec::with_capacity(n_hops);
    for _ in 0..n_hops {
        let ttl = r.u8()?;
        let id = r.u32()?;
        if id as usize >= n_words {
            return Err(SnapshotError::BadValue("hop interner id"));
        }
        hops.push((ttl, id));
    }
    let n_unreach = r.u32()? as usize;
    let mut unreach = Vec::with_capacity(n_unreach);
    for _ in 0..n_unreach {
        let ttl = r.u8()?;
        let id = r.u32()?;
        if id as usize >= n_words {
            return Err(SnapshotError::BadValue("unreach interner id"));
        }
        unreach.push((ttl, id));
    }
    let n_sources = r.u32()? as usize;
    let mut sources: Vec<Arc<str>> = Vec::with_capacity(n_sources);
    for _ in 0..n_sources {
        sources.push(r.str()?.into());
    }
    let n_prov = r.u32()? as usize;
    let mut prov = Vec::with_capacity(n_prov);
    for _ in 0..n_prov {
        let p = r.u32()?;
        if p as usize >= n_sources {
            return Err(SnapshotError::BadValue("provenance index"));
        }
        prov.push(p);
    }
    Ok(TraceSet {
        vantage,
        target_set,
        rewritten_dropped,
        interner,
        targets,
        metas,
        hops,
        unreach,
        sources,
        prov,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use yarrp6::{ProbeLog, ResponseKind, ResponseRecord};

    fn rec(target: &str, responder: &str, kind: ResponseKind, ttl: Option<u8>) -> ResponseRecord {
        ResponseRecord {
            target: target.parse().unwrap(),
            responder: responder.parse().unwrap(),
            kind,
            probe_ttl: ttl,
            rtt_us: Some(1),
            recv_us: 0,
            target_cksum_ok: true,
        }
    }

    fn sample() -> TraceSet {
        let a = TraceSet::from_log(&ProbeLog {
            vantage: "V-A".into(),
            target_set: "snap".into(),
            records: vec![
                rec("2001:db8::1", "::a", ResponseKind::TimeExceeded, Some(1)),
                rec("2001:db8::1", "::b", ResponseKind::TimeExceeded, Some(2)),
                rec(
                    "2001:db8::1",
                    "2001:db8::1",
                    ResponseKind::EchoReply,
                    Some(3),
                ),
            ],
            ..Default::default()
        });
        let b = TraceSet::from_log(&ProbeLog {
            vantage: "V-B".into(),
            target_set: "snap".into(),
            records: vec![rec(
                "2001:db8::9",
                "::c",
                ResponseKind::TimeExceeded,
                Some(4),
            )],
            ..Default::default()
        });
        a.merge(&b)
    }

    #[test]
    fn trace_set_round_trips_bit_identically() {
        let ts = sample();
        let mut w = SnapWriter::new();
        write_trace_set(&mut w, &ts);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = read_trace_set(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(back, ts);
        assert_eq!(back.interner().words(), ts.interner().words());
        assert_eq!(back.sources(), ts.sources());
        for (x, y) in back.iter().zip(ts.iter()) {
            assert_eq!(x.vantage(), y.vantage());
            assert_eq!(x.hop_cells(), y.hop_cells());
            assert_eq!(x.unreachable_cells(), y.unreachable_cells());
        }
        // Byte-determinism: re-encoding the decoded set is identical.
        let mut w2 = SnapWriter::new();
        write_trace_set(&mut w2, &back);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn truncation_is_an_error_at_every_length() {
        let ts = sample();
        let mut w = SnapWriter::new();
        write_trace_set(&mut w, &ts);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            assert!(
                read_trace_set(&mut r).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn corrupt_ids_are_rejected() {
        // An empty-interner set whose hop column references id 0.
        let mut w = SnapWriter::new();
        w.str("v");
        w.str("t");
        w.u64(0);
        w.u32(0); // no interner words
        w.u32(0); // no targets
        w.u32(1); // one hop cell
        w.u8(1);
        w.u32(0); // id 0 — out of range
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(
            read_trace_set(&mut r),
            Err(SnapshotError::BadValue("hop interner id"))
        );
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.u128(0x0123_4567_89ab_cdef_u128 << 64 | 42);
        w.f64(0.1 + 0.2);
        w.bool(true);
        w.str("κλίμα");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.u128().unwrap(), 0x0123_4567_89ab_cdef_u128 << 64 | 42);
        assert_eq!(r.f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "κλίμα");
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u8(), Err(SnapshotError::Truncated));
    }
}
