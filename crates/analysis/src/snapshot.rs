//! Hand-rolled binary snapshots of the columnar stores — the
//! serialization seam under the adaptive loop's checkpoint/resume.
//!
//! The repo's serde is a no-op shim (derives expand to markers), so
//! durable state is written by hand: a [`SnapWriter`] appends
//! fixed-width little-endian primitives and length-prefixed strings to
//! a byte vector, a [`SnapReader`] reads them back with explicit
//! [`SnapshotError`]s instead of panics. The encoding has no varints,
//! no alignment, no framing beyond what the caller writes — two
//! encodes of equal values are byte-identical, which is what lets the
//! checkpoint tests compare snapshots with `==`.
//!
//! [`write_trace_set`] / [`read_trace_set`] snapshot a
//! [`TraceSet`] *bit-identically*: the interner is stored as its word
//! column in id order and rebuilt by re-interning in that order (ids
//! are first-insertion-order stable, so every hop cell's `u32` id
//! resolves to the same address after a round-trip), and the
//! provenance columns ride along so merges after a resume behave
//! exactly as they would have in the uninterrupted run.

use crate::intern::AddrInterner;
use crate::traces::{TraceMeta, TraceSet};
use std::net::Ipv6Addr;
use std::sync::Arc;

/// Why a snapshot failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before the value it promised.
    Truncated,
    /// The leading magic/version did not match this build's format.
    BadMagic,
    /// A decoded value was structurally impossible (an out-of-range
    /// index, a length that overflows the buffer); the payload names
    /// the field.
    BadValue(&'static str),
    /// A string field held invalid UTF-8.
    Utf8,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "snapshot magic/version mismatch"),
            SnapshotError::BadValue(what) => write!(f, "snapshot field out of range: {what}"),
            SnapshotError::Utf8 => write!(f, "snapshot string is not UTF-8"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Appends fixed-width little-endian values to a growing byte buffer.
#[derive(Clone, Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far, borrowed.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bits — exact, so EWMA
    /// weights survive a round-trip to the last ulp.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Reads [`SnapWriter`]-encoded values back out of a byte slice.
#[derive(Clone, Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its raw bits.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool; anything but 0/1 is a [`SnapshotError::BadValue`].
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::BadValue("bool")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapshotError> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| SnapshotError::Utf8)
    }
}

/// Serializes a [`TraceSet`] — columns verbatim, interner as its word
/// list in id order. Inverse of [`read_trace_set`].
pub fn write_trace_set(w: &mut SnapWriter, ts: &TraceSet) {
    w.str(&ts.vantage);
    w.str(&ts.target_set);
    w.u64(ts.rewritten_dropped);
    let words = ts.interner.words();
    w.u32(words.len() as u32);
    for &word in words {
        w.u128(word);
    }
    w.u32(ts.targets.len() as u32);
    for &t in &ts.targets {
        w.u128(u128::from(t));
    }
    for m in &ts.metas {
        w.u32(m.hop_off);
        w.u32(m.hop_len);
        w.u32(m.unreach_off);
        w.u32(m.unreach_len);
        match m.reached_at {
            Some(at) => {
                w.u8(1);
                w.u8(at);
            }
            None => w.u8(0),
        }
    }
    w.u32(ts.hops.len() as u32);
    for &(ttl, id) in &ts.hops {
        w.u8(ttl);
        w.u32(id);
    }
    w.u32(ts.unreach.len() as u32);
    for &(ttl, id) in &ts.unreach {
        w.u8(ttl);
        w.u32(id);
    }
    w.u32(ts.sources.len() as u32);
    for s in &ts.sources {
        w.str(s);
    }
    w.u32(ts.prov.len() as u32);
    for &p in &ts.prov {
        w.u32(p);
    }
}

/// Deserializes a [`TraceSet`] written by [`write_trace_set`]. The
/// interner is rebuilt by re-interning the stored word list in order —
/// ids are insertion-order stable, so the result is bit-identical to
/// the original (`PartialEq`, interner ids, provenance and all).
pub fn read_trace_set(r: &mut SnapReader<'_>) -> Result<TraceSet, SnapshotError> {
    let vantage: Arc<str> = r.str()?.into();
    let target_set: Arc<str> = r.str()?.into();
    let rewritten_dropped = r.u64()?;
    let n_words = r.u32()? as usize;
    let mut interner = AddrInterner::with_capacity(n_words);
    for _ in 0..n_words {
        interner.intern(Ipv6Addr::from(r.u128()?));
    }
    if interner.len() != n_words {
        return Err(SnapshotError::BadValue("duplicate interner word"));
    }
    let n_targets = r.u32()? as usize;
    let mut targets = Vec::with_capacity(n_targets);
    for _ in 0..n_targets {
        targets.push(Ipv6Addr::from(r.u128()?));
    }
    let mut metas = Vec::with_capacity(n_targets);
    for _ in 0..n_targets {
        let hop_off = r.u32()?;
        let hop_len = r.u32()?;
        let unreach_off = r.u32()?;
        let unreach_len = r.u32()?;
        let reached_at = match r.u8()? {
            0 => None,
            1 => Some(r.u8()?),
            _ => return Err(SnapshotError::BadValue("reached_at tag")),
        };
        metas.push(TraceMeta {
            hop_off,
            hop_len,
            unreach_off,
            unreach_len,
            reached_at,
        });
    }
    let n_hops = r.u32()? as usize;
    let mut hops = Vec::with_capacity(n_hops);
    for _ in 0..n_hops {
        let ttl = r.u8()?;
        let id = r.u32()?;
        if id as usize >= n_words {
            return Err(SnapshotError::BadValue("hop interner id"));
        }
        hops.push((ttl, id));
    }
    let n_unreach = r.u32()? as usize;
    let mut unreach = Vec::with_capacity(n_unreach);
    for _ in 0..n_unreach {
        let ttl = r.u8()?;
        let id = r.u32()?;
        if id as usize >= n_words {
            return Err(SnapshotError::BadValue("unreach interner id"));
        }
        unreach.push((ttl, id));
    }
    let n_sources = r.u32()? as usize;
    let mut sources: Vec<Arc<str>> = Vec::with_capacity(n_sources);
    for _ in 0..n_sources {
        sources.push(r.str()?.into());
    }
    let n_prov = r.u32()? as usize;
    let mut prov = Vec::with_capacity(n_prov);
    for _ in 0..n_prov {
        let p = r.u32()?;
        if p as usize >= n_sources {
            return Err(SnapshotError::BadValue("provenance index"));
        }
        prov.push(p);
    }
    Ok(TraceSet {
        vantage,
        target_set,
        rewritten_dropped,
        interner,
        targets,
        metas,
        hops,
        unreach,
        sources,
        prov,
    })
}

// ---------------------------------------------------------------------------
// Persistent sharded store: a versioned multi-shard on-disk format.
//
// A [`crate::shard::ShardedTraceSet`] persists as a directory —
// `manifest.snap` plus one `shard-NNNN.seg` per shard. The manifest
// records the format version, the routing parameters, and each
// segment's byte length and FNV-1a checksum; each segment is the
// shard's raw column dump (interner word table, target words, metas,
// hop/unreachable cells — the `write_trace_set` layout, which is
// already offset-addressable and mmap-friendly: no varints, no
// compression, fixed-width cells). Writes are byte-deterministic:
// persisting the same store twice produces identical files, so
// day-over-day diffs of a snapshot directory are real topology diffs.

use crate::shard::{ShardRoute, ShardedTraceSet};
use std::io::{Read, Write};
use std::path::Path;

/// Manifest magic: `"BSNP"`.
pub const STORE_MAGIC: u32 = 0x4253_4e50;
/// Segment magic: `"BSEG"`.
pub const SEGMENT_MAGIC: u32 = 0x4253_4547;
/// On-disk format version. Bump on any layout change; readers reject
/// other versions rather than guessing.
pub const STORE_VERSION: u32 = 1;

/// Manifest file name inside a snapshot directory.
pub const MANIFEST_FILE: &str = "manifest.snap";

/// The name of shard `s`'s segment file.
pub fn segment_file(s: usize) -> String {
    format!("shard-{s:04}.seg")
}

/// FNV-1a over a byte slice — the same construction
/// `beholder::checkpoint` uses for its config digest, applied here to
/// whole segment files so bit rot fails loudly at load.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One segment's entry in the manifest: enough to detect truncation
/// (length) and corruption (checksum) before decoding a byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Segment file length in bytes.
    pub len: u64,
    /// FNV-1a over the whole segment file.
    pub fnv: u64,
}

/// The decoded `manifest.snap`: format version, routing parameters,
/// per-segment integrity table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotManifest {
    /// Shard count — the [`ShardRoute`] parameter (the routing
    /// function itself is versioned by [`STORE_VERSION`]).
    pub n_shards: u32,
    /// Per-shard integrity entries, in shard order.
    pub segments: Vec<SegmentInfo>,
}

impl SnapshotManifest {
    /// The route this snapshot's shards were partitioned by.
    pub fn route(&self) -> ShardRoute {
        ShardRoute::new(self.n_shards as usize)
    }
}

/// Encodes a manifest. Byte-deterministic.
pub fn encode_manifest(m: &SnapshotManifest) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.u32(STORE_MAGIC);
    w.u32(STORE_VERSION);
    w.u32(m.n_shards);
    for seg in &m.segments {
        w.u64(seg.len);
        w.u64(seg.fnv);
    }
    w.into_bytes()
}

/// Decodes and validates a manifest: magic, version, a segment entry
/// per shard, nothing trailing.
pub fn decode_manifest(bytes: &[u8]) -> Result<SnapshotManifest, SnapshotError> {
    let mut r = SnapReader::new(bytes);
    if r.u32()? != STORE_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if r.u32()? != STORE_VERSION {
        return Err(SnapshotError::BadValue("store version"));
    }
    let n_shards = r.u32()?;
    if n_shards == 0 {
        return Err(SnapshotError::BadValue("shard count"));
    }
    let mut segments = Vec::with_capacity(n_shards as usize);
    for _ in 0..n_shards {
        segments.push(SegmentInfo {
            len: r.u64()?,
            fnv: r.u64()?,
        });
    }
    if r.remaining() != 0 {
        return Err(SnapshotError::BadValue("trailing manifest bytes"));
    }
    Ok(SnapshotManifest { n_shards, segments })
}

/// Encodes one shard as a standalone segment: magic, version, then the
/// [`write_trace_set`] column dump. Byte-deterministic.
pub fn encode_segment(ts: &TraceSet) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.u32(SEGMENT_MAGIC);
    w.u32(STORE_VERSION);
    write_trace_set(&mut w, ts);
    w.into_bytes()
}

/// Decodes one segment, rejecting wrong magic/version and trailing
/// bytes.
pub fn decode_segment(bytes: &[u8]) -> Result<TraceSet, SnapshotError> {
    let mut r = SnapReader::new(bytes);
    if r.u32()? != SEGMENT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if r.u32()? != STORE_VERSION {
        return Err(SnapshotError::BadValue("store version"));
    }
    let ts = read_trace_set(&mut r)?;
    if r.remaining() != 0 {
        return Err(SnapshotError::BadValue("trailing segment bytes"));
    }
    Ok(ts)
}

/// Why a persistent snapshot failed to load or save.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure (missing directory, unreadable file, ...).
    Io(std::io::Error),
    /// A manifest or segment failed structural decoding.
    Decode(SnapshotError),
    /// A segment's bytes did not match the manifest's checksum.
    Corrupt {
        /// The shard whose segment is damaged.
        segment: u32,
    },
    /// Manifest and directory disagree (a segment's length changed, a
    /// target routed to the wrong shard, ...); the payload names the
    /// inconsistency.
    Mismatch(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot io: {e}"),
            StoreError::Decode(e) => write!(f, "snapshot decode: {e}"),
            StoreError::Corrupt { segment } => {
                write!(f, "snapshot segment {segment} failed its checksum")
            }
            StoreError::Mismatch(what) => write!(f, "snapshot inconsistent: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<SnapshotError> for StoreError {
    fn from(e: SnapshotError) -> Self {
        StoreError::Decode(e)
    }
}

/// Persists a sharded store under `dir` (created if absent):
/// `manifest.snap` plus one segment file per shard. Returns the
/// manifest it wrote. Byte-deterministic — equal stores produce
/// identical directories.
pub fn write_sharded_snapshot(
    dir: &Path,
    set: &ShardedTraceSet,
) -> Result<SnapshotManifest, StoreError> {
    std::fs::create_dir_all(dir)?;
    let mut segments = Vec::with_capacity(set.n_shards());
    for (s, shard) in set.shards().iter().enumerate() {
        let bytes = encode_segment(shard);
        segments.push(SegmentInfo {
            len: bytes.len() as u64,
            fnv: fnv1a(&bytes),
        });
        let mut f = std::fs::File::create(dir.join(segment_file(s)))?;
        f.write_all(&bytes)?;
    }
    let manifest = SnapshotManifest {
        n_shards: set.n_shards() as u32,
        segments,
    };
    let mut f = std::fs::File::create(dir.join(MANIFEST_FILE))?;
    f.write_all(&encode_manifest(&manifest))?;
    Ok(manifest)
}

/// Loads a sharded store from `dir`, verifying every segment's length
/// and checksum against the manifest before decoding, and every
/// decoded target's shard against the routing function — a snapshot
/// that would merge under the wrong route is rejected, not repaired.
pub fn read_sharded_snapshot(dir: &Path) -> Result<ShardedTraceSet, StoreError> {
    let manifest = decode_manifest(&read_file(&dir.join(MANIFEST_FILE))?)?;
    let route = manifest.route();
    let mut shards = Vec::with_capacity(manifest.n_shards as usize);
    for (s, seg) in manifest.segments.iter().enumerate() {
        let bytes = read_file(&dir.join(segment_file(s)))?;
        if bytes.len() as u64 != seg.len {
            return Err(StoreError::Mismatch("segment length"));
        }
        if fnv1a(&bytes) != seg.fnv {
            return Err(StoreError::Corrupt { segment: s as u32 });
        }
        let ts = decode_segment(&bytes)?;
        if ts.targets().iter().any(|&t| route.shard_of(t) != s) {
            return Err(StoreError::Mismatch("target routed to wrong shard"));
        }
        shards.push(ts);
    }
    Ok(ShardedTraceSet::from_parts(route, shards))
}

fn read_file(path: &Path) -> Result<Vec<u8>, StoreError> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use yarrp6::{ProbeLog, ResponseKind, ResponseRecord};

    fn rec(target: &str, responder: &str, kind: ResponseKind, ttl: Option<u8>) -> ResponseRecord {
        ResponseRecord {
            target: target.parse().unwrap(),
            responder: responder.parse().unwrap(),
            kind,
            probe_ttl: ttl,
            rtt_us: Some(1),
            recv_us: 0,
            target_cksum_ok: true,
        }
    }

    fn sample() -> TraceSet {
        let a = TraceSet::from_log(&ProbeLog {
            vantage: "V-A".into(),
            target_set: "snap".into(),
            records: vec![
                rec("2001:db8::1", "::a", ResponseKind::TimeExceeded, Some(1)),
                rec("2001:db8::1", "::b", ResponseKind::TimeExceeded, Some(2)),
                rec(
                    "2001:db8::1",
                    "2001:db8::1",
                    ResponseKind::EchoReply,
                    Some(3),
                ),
            ],
            ..Default::default()
        });
        let b = TraceSet::from_log(&ProbeLog {
            vantage: "V-B".into(),
            target_set: "snap".into(),
            records: vec![rec(
                "2001:db8::9",
                "::c",
                ResponseKind::TimeExceeded,
                Some(4),
            )],
            ..Default::default()
        });
        a.merge(&b)
    }

    #[test]
    fn trace_set_round_trips_bit_identically() {
        let ts = sample();
        let mut w = SnapWriter::new();
        write_trace_set(&mut w, &ts);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = read_trace_set(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(back, ts);
        assert_eq!(back.interner().words(), ts.interner().words());
        assert_eq!(back.sources(), ts.sources());
        for (x, y) in back.iter().zip(ts.iter()) {
            assert_eq!(x.vantage(), y.vantage());
            assert_eq!(x.hop_cells(), y.hop_cells());
            assert_eq!(x.unreachable_cells(), y.unreachable_cells());
        }
        // Byte-determinism: re-encoding the decoded set is identical.
        let mut w2 = SnapWriter::new();
        write_trace_set(&mut w2, &back);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn truncation_is_an_error_at_every_length() {
        let ts = sample();
        let mut w = SnapWriter::new();
        write_trace_set(&mut w, &ts);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            assert!(
                read_trace_set(&mut r).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn corrupt_ids_are_rejected() {
        // An empty-interner set whose hop column references id 0.
        let mut w = SnapWriter::new();
        w.str("v");
        w.str("t");
        w.u64(0);
        w.u32(0); // no interner words
        w.u32(0); // no targets
        w.u32(1); // one hop cell
        w.u8(1);
        w.u32(0); // id 0 — out of range
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(
            read_trace_set(&mut r),
            Err(SnapshotError::BadValue("hop interner id"))
        );
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.u128(0x0123_4567_89ab_cdef_u128 << 64 | 42);
        w.f64(0.1 + 0.2);
        w.bool(true);
        w.str("κλίμα");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.u128().unwrap(), 0x0123_4567_89ab_cdef_u128 << 64 | 42);
        assert_eq!(r.f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "κλίμα");
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u8(), Err(SnapshotError::Truncated));
    }
}
