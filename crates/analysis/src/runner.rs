//! One front door for running campaigns: the [`CampaignRunner`]
//! builder.
//!
//! Five PRs of organic growth left ~28 overlapping
//! `run_*`/`try_run_*`/`stream_*` entry points across
//! `yarrp6::campaign` and [`crate::builder`] — every combination of
//! {single, multi-vantage} × {serial, parallel} × {plain, supervised}
//! × {batch, streaming} got its own function. This module collapses
//! the matrix into one builder:
//!
//! ```ignore
//! let outcome = CampaignRunner::new(&topo)
//!     .targets(set)
//!     .vantages(&[0, 1, 2])
//!     .parallel(true)
//!     .supervised(RetryPolicy::default())
//!     .streaming(StreamConfig::default())
//!     .run()?;
//! ```
//!
//! `run()` always goes through the streaming pipeline (the record log
//! never materializes) and always returns `Result` — the panicking
//! shims live on as deprecated wrappers. The pre-existing entry points
//! ([`crate::builder::stream_campaign`],
//! [`crate::builder::stream_multi_vantage`], ...) now delegate here,
//! which is what pins the runner bit-identical to five PRs of golden,
//! streaming, and supervised tests.
//!
//! [`run_with_sink`](CampaignRunner::run_with_sink) is the escape
//! hatch for custom record consumers (exporters, counters): same
//! builder, caller-supplied sink factory instead of the trace
//! builders.

use crate::builder::builder_consumer;
use crate::shard::{ShardedTraceSet, ShardedTraceSetBuilder};
use crate::traces::TraceSet;
use simnet::{EngineStats, Topology};
use std::sync::Arc;
use targets::TargetSet;
use yarrp6::campaign::{
    try_run_campaigns_parallel_streaming, try_run_campaigns_serial_streaming, CampaignError,
    CampaignSpec, RetryPolicy, StreamedCampaign,
};
use yarrp6::sink::{RecordStream, StreamConfig};
use yarrp6::YarrpConfig;

/// One campaign's slice of a [`CampaignOutcome`]: the vantage it
/// probed from, its finished trace set, and its accounting.
#[derive(Clone, Debug)]
pub struct CampaignRun {
    /// Vantage index this campaign probed from.
    pub vantage_idx: u8,
    /// The campaign's finished columnar trace set.
    pub traces: TraceSet,
    /// Engine accounting (all supervised attempts when supervision is
    /// on — retries burn probes too).
    pub stats: EngineStats,
    /// Supervised attempts made (always 1 without supervision).
    pub attempts: u32,
    /// The campaign recovered through retries but its final attempt
    /// was still a blackout, or a sibling attempt failed — only ever
    /// `true` under supervision.
    pub degraded: bool,
}

/// Everything a [`CampaignRunner::run`] produces: per-campaign sets in
/// vantage order, their deterministic union, merged accounting, and —
/// when [`sharded`](CampaignRunner::sharded) — the partitioned store.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// `TraceSet::merge_all` over the runs in vantage order — the
    /// union-of-vantages discovery set with per-trace provenance.
    pub merged: TraceSet,
    /// Each campaign's own run, in [`CampaignRunner::vantages`] order.
    pub runs: Vec<CampaignRun>,
    /// Engine accounting merged over every campaign (and attempt).
    pub stats: EngineStats,
    /// The merged store partitioned by target prefix, present when the
    /// runner was configured [`sharded`](CampaignRunner::sharded). The
    /// per-campaign records were routed shard-aware at ingest
    /// ([`ShardedTraceSetBuilder`]); `merged` is its flattened form.
    pub sharded: Option<ShardedTraceSet>,
}

/// Builder for a probing campaign (or a multi-vantage sweep of them).
/// See the module docs; every knob has a conservative default — the
/// minimum viable call is `CampaignRunner::new(&topo).targets(set).run()`.
#[derive(Clone, Debug)]
pub struct CampaignRunner<'a> {
    topo: &'a Arc<Topology>,
    set: Option<&'a TargetSet>,
    vantages: Vec<u8>,
    cfg: YarrpConfig,
    stream: StreamConfig,
    policy: Option<RetryPolicy>,
    parallel: bool,
    start_us: u64,
    shards: Option<usize>,
}

impl<'a> CampaignRunner<'a> {
    /// A runner over `topo` with defaults: vantage 0, default prober
    /// and stream configs, serial, unsupervised, unsharded.
    pub fn new(topo: &'a Arc<Topology>) -> CampaignRunner<'a> {
        CampaignRunner {
            topo,
            set: None,
            vantages: vec![0],
            cfg: YarrpConfig::default(),
            stream: StreamConfig::default(),
            policy: None,
            parallel: false,
            start_us: 0,
            shards: None,
        }
    }

    /// The target set to probe (required).
    pub fn targets(mut self, set: &'a TargetSet) -> Self {
        self.set = Some(set);
        self
    }

    /// Probe from these vantage indices, one campaign each, merged in
    /// this order. Replaces the default `[0]`.
    pub fn vantages(mut self, vantages: &[u8]) -> Self {
        self.vantages = vantages.to_vec();
        self
    }

    /// Probe from a single vantage.
    pub fn vantage(mut self, vantage_idx: u8) -> Self {
        self.vantages = vec![vantage_idx];
        self
    }

    /// Prober configuration for every campaign.
    pub fn config(mut self, cfg: YarrpConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Bounded-channel configuration for the streaming pipeline.
    pub fn streaming(mut self, stream: StreamConfig) -> Self {
        self.stream = stream;
        self
    }

    /// Run the campaigns on the work-queue thread pool instead of one
    /// after another. Bit-identical either way (campaigns are
    /// engine-isolated and results return in input order).
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Run every campaign under the supervisor: failures and blackouts
    /// retry with deterministic virtual-time backoff per `policy`; a
    /// campaign that recovers comes back flagged
    /// [`CampaignRun::degraded`], one that exhausts its retries turns
    /// into the `Err` of [`run`](Self::run).
    pub fn supervised(mut self, policy: RetryPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Start the campaigns at this virtual time on the fault
    /// schedule's clock (meaningful with scheduled outages and
    /// supervision; 0 — the default — is "now").
    pub fn start_at(mut self, start_us: u64) -> Self {
        self.start_us = start_us;
        self
    }

    /// Route records into a sharded store at ingest: each campaign
    /// builds a [`ShardedTraceSet`] over this many shards
    /// (shard-aware sink routing), and the outcome carries the merged
    /// sharded store alongside its flat view.
    pub fn sharded(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    fn specs(&self, set: &'a TargetSet) -> Vec<CampaignSpec<'a>> {
        self.vantages
            .iter()
            .map(|&v| CampaignSpec {
                vantage_idx: v,
                set,
                cfg: self.cfg,
            })
            .collect()
    }

    /// Runs the configured campaigns and assembles the outcome. The
    /// first campaign failure (after retries, when supervised) is the
    /// `Err`; completed sibling campaigns are dropped with it — use
    /// [`crate::builder::stream_campaigns_supervised`] directly when
    /// partial sweeps must survive.
    ///
    /// # Panics
    ///
    /// When no target set was given ([`targets`](Self::targets)).
    pub fn run(self) -> Result<CampaignOutcome, CampaignError> {
        let set = self.set.expect("CampaignRunner::run without .targets(..)");
        match self.shards {
            None => {
                let runs: Vec<CampaignRun> = self
                    .execute(set, builder_consumer(self.topo))?
                    .into_iter()
                    .map(|r| CampaignRun {
                        vantage_idx: r.vantage_idx,
                        traces: r.traces,
                        stats: r.stats,
                        attempts: r.attempts,
                        degraded: r.degraded,
                    })
                    .collect();
                let merged = TraceSet::merge_all(runs.iter().map(|r| &r.traces));
                let stats = EngineStats::merged(runs.iter().map(|r| &r.stats));
                Ok(CampaignOutcome {
                    merged,
                    runs,
                    stats,
                    sharded: None,
                })
            }
            Some(n) => {
                let topo = self.topo;
                let sharded_runs = self.execute(set, move |_, spec: &CampaignSpec<'_>| {
                    let vantage = topo.vantages[spec.vantage_idx as usize].name.clone();
                    let set_name = spec.set.name.clone();
                    Box::new(move |records: RecordStream| {
                        let mut b = ShardedTraceSetBuilder::new(n).with_identity(vantage, set_name);
                        records.for_each_chunk(|c| b.push_chunk(c));
                        b.finish()
                    }) as Box<dyn FnOnce(RecordStream) -> ShardedTraceSet>
                })?;
                let per_shard: Vec<ShardedTraceSet> =
                    sharded_runs.iter().map(|r| r.traces.clone()).collect();
                let sharded = ShardedTraceSet::merge_all(&per_shard);
                let merged = sharded.to_trace_set();
                let stats = EngineStats::merged(sharded_runs.iter().map(|r| &r.stats));
                let runs = sharded_runs
                    .into_iter()
                    .map(|r| CampaignRun {
                        vantage_idx: r.vantage_idx,
                        traces: r.traces.to_trace_set(),
                        stats: r.stats,
                        attempts: r.attempts,
                        degraded: r.degraded,
                    })
                    .collect();
                Ok(CampaignOutcome {
                    merged,
                    runs,
                    stats,
                    sharded: Some(sharded),
                })
            }
        }
    }

    /// Runs the configured campaigns with a caller-supplied record
    /// sink instead of the trace builders — the custom-consumer escape
    /// hatch (exporters, counters, protocol analyzers). `make_sink` is
    /// called once per campaign with its index and spec; results come
    /// back in vantage order.
    ///
    /// # Panics
    ///
    /// When no target set was given ([`targets`](Self::targets)).
    pub fn run_with_sink<T, C, F>(
        self,
        make_sink: F,
    ) -> Result<Vec<StreamedCampaign<T>>, CampaignError>
    where
        T: Send,
        C: FnOnce(RecordStream) -> T,
        F: Fn(usize, &CampaignSpec<'_>) -> C + Sync,
    {
        let set = self.set.expect("CampaignRunner::run without .targets(..)");
        let specs = self.specs(set);
        let results = if self.parallel {
            try_run_campaigns_parallel_streaming(self.topo, &specs, &self.stream, make_sink)
        } else {
            try_run_campaigns_serial_streaming(self.topo, &specs, &self.stream, make_sink)
        };
        results.into_iter().collect()
    }

    /// Shared execution core: runs the specs (supervised or not,
    /// serial or parallel) through `make_consumer` and normalizes to
    /// [`GenericRun`]s in input order, first error wins.
    fn execute<T, C, F>(
        &self,
        set: &'a TargetSet,
        make_consumer: F,
    ) -> Result<Vec<GenericRun<T>>, CampaignError>
    where
        T: Send,
        C: FnOnce(RecordStream) -> T,
        F: Fn(usize, &CampaignSpec<'_>) -> C + Sync + Send,
    {
        let specs = self.specs(set);
        match &self.policy {
            Some(policy) => {
                let supervised = if self.parallel {
                    yarrp6::campaign::run_campaigns_supervised_parallel(
                        self.topo,
                        &specs,
                        &self.stream,
                        policy,
                        self.start_us,
                        make_consumer,
                    )
                } else {
                    yarrp6::campaign::run_campaigns_supervised_serial(
                        self.topo,
                        &specs,
                        &self.stream,
                        policy,
                        self.start_us,
                        make_consumer,
                    )
                };
                supervised
                    .into_iter()
                    .map(|sc| match sc.result {
                        Some(run) => Ok(GenericRun {
                            vantage_idx: sc.vantage_idx,
                            traces: run.output,
                            stats: sc.stats,
                            attempts: sc.attempts,
                            degraded: sc.degraded,
                        }),
                        None => Err(sc.error.expect("failed campaign carries its error")),
                    })
                    .collect()
            }
            None => {
                let results = if self.parallel {
                    try_run_campaigns_parallel_streaming(
                        self.topo,
                        &specs,
                        &self.stream,
                        make_consumer,
                    )
                } else {
                    try_run_campaigns_serial_streaming(
                        self.topo,
                        &specs,
                        &self.stream,
                        make_consumer,
                    )
                };
                results
                    .into_iter()
                    .zip(&specs)
                    .map(|(r, spec)| {
                        r.map(|run| GenericRun {
                            vantage_idx: spec.vantage_idx,
                            traces: run.output,
                            stats: run.engine_stats,
                            attempts: 1,
                            degraded: false,
                        })
                    })
                    .collect()
            }
        }
    }
}

/// [`CampaignRun`] generic over the consumer product (`TraceSet` for
/// the flat path, [`ShardedTraceSet`] for the sharded one).
struct GenericRun<T> {
    vantage_idx: u8,
    traces: T,
    stats: EngineStats,
    attempts: u32,
    degraded: bool,
}
