//! Reconstructing per-target traces from stateless response records.
//!
//! Yarrp6 responses arrive in no particular order, interleaved across
//! all destinations; this module groups them back into traceroute-style
//! paths.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv6Addr;
use v6addr::{Asn, BgpTable, Ipv6Prefix};
use yarrp6::{ProbeLog, ResponseKind};

/// One reconstructed trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Trace {
    /// The probed destination.
    pub target: Ipv6Addr,
    /// TTL → responding router interface (Time Exceeded sources only).
    pub hops: BTreeMap<u8, Ipv6Addr>,
    /// Smallest TTL at which the destination itself answered, if any.
    pub reached_at: Option<u8>,
    /// Destination Unreachable responses seen: (ttl, responder).
    pub unreachable: Vec<(u8, Ipv6Addr)>,
}

impl Trace {
    /// An empty trace toward `target`.
    pub fn new(target: Ipv6Addr) -> Self {
        Trace {
            target,
            hops: BTreeMap::new(),
            reached_at: None,
            unreachable: Vec::new(),
        }
    }

    /// Estimated path length in router hops: the TTL of the destination
    /// response when reached, else the deepest responding hop (a lower
    /// bound).
    pub fn path_len(&self) -> Option<u8> {
        self.reached_at
            .or_else(|| self.hops.keys().next_back().copied())
    }

    /// The deepest responding hop address (the "last hop" of §6).
    pub fn last_hop(&self) -> Option<(u8, Ipv6Addr)> {
        self.hops.iter().next_back().map(|(&t, &a)| (t, a))
    }

    /// The hop sequence `ttl=1..=k` with gaps as `None`, up to the
    /// deepest response.
    pub fn hop_vec(&self) -> Vec<Option<Ipv6Addr>> {
        let Some((&max, _)) = self.hops.iter().next_back() else {
            return Vec::new();
        };
        (1..=max).map(|t| self.hops.get(&t).copied()).collect()
    }
}

/// All traces of one campaign, indexed by target.
#[derive(Clone, Debug, Default)]
pub struct TraceSet {
    /// target → trace.
    pub traces: HashMap<Ipv6Addr, Trace>,
    /// Campaign identity, carried through for reporting.
    pub vantage: String,
    /// Target-set name.
    pub target_set: String,
    /// Records dropped because the quoted destination failed the target
    /// checksum (middlebox rewriting detected): their "target" is not
    /// an address we probed, so including them would fabricate traces.
    pub rewritten_dropped: u64,
}

impl TraceSet {
    /// Builds traces from a probe log.
    pub fn from_log(log: &ProbeLog) -> Self {
        let mut traces: HashMap<Ipv6Addr, Trace> = HashMap::new();
        let mut rewritten_dropped = 0u64;
        for r in &log.records {
            if !r.target_cksum_ok {
                rewritten_dropped += 1;
                continue;
            }
            let t = traces
                .entry(r.target)
                .or_insert_with(|| Trace::new(r.target));
            match r.kind {
                ResponseKind::TimeExceeded => {
                    if let Some(ttl) = r.probe_ttl {
                        // First responder wins; duplicates (fill + main
                        // probes) are consistent by path determinism.
                        t.hops.entry(ttl).or_insert(r.responder);
                    }
                }
                ResponseKind::DestUnreachable(c)
                    if c != v6packet::icmp6::DestUnreachCode::PortUnreachable =>
                {
                    if let Some(ttl) = r.probe_ttl {
                        t.unreachable.push((ttl, r.responder));
                    }
                }
                _ => {
                    // Destination responded (echo reply, TCP, port
                    // unreachable from the host).
                    let at = r.probe_ttl.unwrap_or(u8::MAX);
                    t.reached_at = Some(t.reached_at.map_or(at, |x| x.min(at)));
                }
            }
        }
        TraceSet {
            traces,
            vantage: log.vantage.clone(),
            target_set: log.target_set.clone(),
            rewritten_dropped,
        }
    }

    /// Number of traces with at least one response.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when no responses were recorded.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Iterates traces in target order (deterministic).
    pub fn iter_sorted(&self) -> Vec<&Trace> {
        let mut v: Vec<&Trace> = self.traces.values().collect();
        v.sort_by_key(|t| u128::from(t.target));
        v
    }
}

/// Resolves addresses to origin ASNs using the *public* view: BGP,
/// registry-only prefixes, and declared ASN equivalences (§6's two
/// augmentations).
#[derive(Clone, Debug)]
pub struct AsnResolver {
    bgp: BgpTable,
    extra: Vec<(Ipv6Prefix, Asn)>,
}

impl AsnResolver {
    /// Builds a resolver; `extra` are the registry-only prefixes and
    /// `equivalences` the sibling-ASN declarations.
    pub fn new(bgp: BgpTable, extra: Vec<(Ipv6Prefix, Asn)>, equivalences: &[(Asn, Asn)]) -> Self {
        let mut bgp = bgp;
        for &(a, b) in equivalences {
            bgp.declare_equivalent(a, b);
        }
        AsnResolver { bgp, extra }
    }

    /// Origin ASN under the augmented view.
    pub fn origin(&self, addr: Ipv6Addr) -> Option<Asn> {
        self.bgp.origin(addr).or_else(|| {
            self.extra
                .iter()
                .find(|(p, _)| p.contains_addr(addr))
                .map(|&(_, a)| a)
        })
    }

    /// Are two ASNs the same organization?
    pub fn same_org(&self, a: Asn, b: Asn) -> bool {
        self.bgp.same_org(a, b)
    }

    /// The underlying BGP table.
    pub fn bgp(&self) -> &BgpTable {
        &self.bgp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yarrp6::ResponseRecord;

    fn rec(target: &str, responder: &str, kind: ResponseKind, ttl: Option<u8>) -> ResponseRecord {
        ResponseRecord {
            target: target.parse().unwrap(),
            responder: responder.parse().unwrap(),
            kind,
            probe_ttl: ttl,
            rtt_us: Some(1),
            recv_us: 0,
            target_cksum_ok: true,
        }
    }

    #[test]
    fn reconstructs_hops_and_reach() {
        let mut log = ProbeLog::default();
        log.records.push(rec(
            "2001:db8::1",
            "::a",
            ResponseKind::TimeExceeded,
            Some(1),
        ));
        log.records.push(rec(
            "2001:db8::1",
            "::b",
            ResponseKind::TimeExceeded,
            Some(3),
        ));
        log.records.push(rec(
            "2001:db8::1",
            "2001:db8::1",
            ResponseKind::EchoReply,
            Some(4),
        ));
        log.records.push(rec(
            "2001:db8::1",
            "2001:db8::1",
            ResponseKind::EchoReply,
            Some(7),
        ));
        let ts = TraceSet::from_log(&log);
        let t = &ts.traces[&"2001:db8::1".parse::<Ipv6Addr>().unwrap()];
        assert_eq!(t.hops.len(), 2);
        assert_eq!(t.reached_at, Some(4));
        assert_eq!(t.path_len(), Some(4));
        assert_eq!(
            t.hop_vec(),
            vec![
                Some("::a".parse().unwrap()),
                None,
                Some("::b".parse().unwrap()),
            ]
        );
        assert_eq!(t.last_hop().unwrap().0, 3);
    }

    #[test]
    fn unreached_path_len_is_deepest_hop() {
        let mut log = ProbeLog::default();
        log.records.push(rec(
            "2001:db8::2",
            "::a",
            ResponseKind::TimeExceeded,
            Some(5),
        ));
        let ts = TraceSet::from_log(&log);
        let t = &ts.traces[&"2001:db8::2".parse::<Ipv6Addr>().unwrap()];
        assert_eq!(t.reached_at, None);
        assert_eq!(t.path_len(), Some(5));
    }

    #[test]
    fn resolver_augmentations() {
        let mut bgp = BgpTable::new();
        bgp.announce("2001:db8::/32".parse().unwrap(), Asn(1));
        let extra = vec![("2a10::/32".parse().unwrap(), Asn(2))];
        let r = AsnResolver::new(bgp, extra, &[(Asn(1), Asn(51))]);
        assert_eq!(r.origin("2001:db8::1".parse().unwrap()), Some(Asn(1)));
        assert_eq!(r.origin("2a10::9".parse().unwrap()), Some(Asn(2)));
        assert_eq!(r.origin("3fff::1".parse().unwrap()), None);
        assert!(r.same_org(Asn(1), Asn(51)));
        assert!(!r.same_org(Asn(1), Asn(2)));
    }
}
