//! Reconstructing per-target traces from stateless response records —
//! columnar layout.
//!
//! Yarrp6 responses arrive in no particular order, interleaved across
//! all destinations; this module groups them back into traceroute-style
//! paths. The store is flat and index-based rather than a map of maps:
//!
//! * records are bucketed by target with one **stable counting
//!   scatter** over dense interned target ids — no comparison sort
//!   over the record volume and no `HashMap`/`BTreeMap` node
//!   insertions;
//! * all hop cells live contiguously in a single `Vec<(ttl, iface_id)>`,
//!   each trace owning an `(offset, len)` range — iteration is a slice
//!   walk, already in target order, so no `iter_sorted()` re-sort per
//!   analysis pass;
//! * responder addresses are interned once into a shared
//!   [`AddrInterner`] ([`crate::intern`]); hops carry dense `u32` ids
//!   and downstream stages cache per-address derived values by id.
//!
//! [`TraceView`] is the per-trace accessor; it mirrors the old `Trace`
//! API (`path_len`, `last_hop`, `hop_vec`, ...) over the flat store.
//! The original map-based implementation survives as
//! [`crate::reference`], pinned bit-identical by golden tests.

use crate::intern::AddrInterner;
use crate::reference;
use std::net::Ipv6Addr;
use std::sync::Arc;
use v6addr::{Asn, BgpTable, Ipv6Prefix};
use yarrp6::addrset::AddrSet;
use yarrp6::{ProbeLog, ResponseKind};

/// Per-trace metadata: ranges into the shared hop/unreachable columns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct TraceMeta {
    hop_off: u32,
    hop_len: u32,
    unreach_off: u32,
    unreach_len: u32,
    reached_at: Option<u8>,
}

/// All traces of one campaign in columnar form, sorted by target.
#[derive(Clone, Debug, Default)]
pub struct TraceSet {
    /// Campaign identity, carried through for reporting (shared, not
    /// re-allocated per analysis).
    pub vantage: Arc<str>,
    /// Target-set name.
    pub target_set: Arc<str>,
    /// Records dropped because the quoted destination failed the target
    /// checksum (middlebox rewriting detected): their "target" is not
    /// an address we probed, so including them would fabricate traces.
    pub rewritten_dropped: u64,
    /// Interned responder/interface addresses shared by all stages.
    interner: AddrInterner,
    /// Probed destinations, ascending by address word.
    targets: Vec<Ipv6Addr>,
    /// Parallel to `targets`.
    metas: Vec<TraceMeta>,
    /// All hop cells `(ttl, iface_id)`, contiguous per trace, ttl
    /// ascending within a trace.
    hops: Vec<(u8, u32)>,
    /// All Destination Unreachable cells `(ttl, responder_id)`,
    /// contiguous per trace, record order within a trace.
    unreach: Vec<(u8, u32)>,
}

/// Bit-for-bit equality of the flat stores, *including* interner id
/// assignment — the pinned contract between the batch classify pass
/// and the streaming [`crate::builder::TraceSetBuilder`].
impl PartialEq for TraceSet {
    fn eq(&self, other: &Self) -> bool {
        self.vantage == other.vantage
            && self.target_set == other.target_set
            && self.rewritten_dropped == other.rewritten_dropped
            && self.targets == other.targets
            && self.metas == other.metas
            && self.hops == other.hops
            && self.unreach == other.unreach
            && self.interner.words() == other.interner.words()
    }
}

/// `reached_at` sentinel in the tid-indexed scratch column.
pub(crate) const NOT_REACHED: u16 = u16::MAX;

/// Stable counting scatter: buckets `(tid, rid, ttl)` rows into
/// target-address order (`order[r] = (word, tid)`) in two linear passes
/// (count, then place), returning the bucketed `(rid, ttl)` payloads
/// plus the `n + 1` bucket start offsets (rank-indexed). Both passes
/// index per-tid arrays directly — one random access per row. Within a
/// bucket the input (record) order is preserved; that stability is what
/// lets the emit walk apply first-record-wins dedup without any
/// comparison sort.
fn scatter_by_rank(rows: &[(u32, u32, u8)], order: &[(u128, u32)]) -> (Vec<(u32, u8)>, Vec<u32>) {
    let n_targets = order.len();
    let mut counts = vec![0u32; n_targets];
    for &(tid, _, _) in rows {
        counts[tid as usize] += 1;
    }
    let mut starts = vec![0u32; n_targets + 1];
    // Write cursors, indexed by tid so the place pass skips the
    // tid → rank indirection.
    let mut cur = vec![0u32; n_targets];
    let mut acc = 0u32;
    for (r, &(_, tid)) in order.iter().enumerate() {
        starts[r] = acc;
        cur[tid as usize] = acc;
        acc += counts[tid as usize];
    }
    starts[n_targets] = acc;
    let mut out = vec![(0u32, 0u8); rows.len()];
    for &(tid, rid, ttl) in rows {
        let slot = &mut cur[tid as usize];
        out[*slot as usize] = (rid, ttl);
        *slot += 1;
    }
    (out, starts)
}

/// The classified form of a record stream, ready for assembly: the
/// shared seam between the batch classify pass ([`TraceSet::from_log`])
/// and the incremental [`crate::builder::TraceSetBuilder`].
pub(crate) struct ClassifiedRows {
    /// Responder interner — ids as the final `TraceSet` will carry them
    /// (first-occurrence order over the classified rows).
    pub interner: AddrInterner,
    /// Probed-target interner: dense `tid`s.
    pub tgt_ids: AddrInterner,
    /// Min destination-response TTL per tid; [`NOT_REACHED`] = none.
    pub reached: Vec<u16>,
    /// Time-Exceeded rows `(tid, responder id, ttl)`, record order.
    pub hop_rows: Vec<(u32, u32, u8)>,
    /// Destination Unreachable rows, record order.
    pub unreach_rows: Vec<(u32, u32, u8)>,
    /// Records dropped for failing the target checksum.
    pub rewritten_dropped: u64,
}

/// Assembles classified rows into the final columnar store: target-
/// address ordering, the stable counting scatters, and the dedup/emit
/// walk. Row order is preserved within each target bucket, so "first
/// row wins per (target, ttl)" falls out without a comparison sort.
pub(crate) fn assemble(rows: ClassifiedRows, vantage: Arc<str>, target_set: Arc<str>) -> TraceSet {
    let ClassifiedRows {
        interner,
        tgt_ids,
        reached,
        hop_rows,
        unreach_rows,
        rewritten_dropped,
    } = rows;
    let n_targets = tgt_ids.len();

    // Target-address order over the dense tid arena (the arena holds
    // every probed target, so no separate union pass exists). The
    // sort runs over materialized (word, tid) pairs — sorting ids
    // with an arena-lookup key would re-read random memory on every
    // comparison.
    let mut order: Vec<(u128, u32)> = tgt_ids
        .words()
        .iter()
        .enumerate()
        .map(|(tid, &w)| (w, tid as u32))
        .collect();
    order.sort_unstable();

    // Stable counting scatter: bucket rows straight into final
    // trace order, preserving record order within each bucket.
    let (hops_scratch, hop_starts) = scatter_by_rank(&hop_rows, &order);
    drop(hop_rows);
    let (unreach_scratch, unreach_starts) = scatter_by_rank(&unreach_rows, &order);
    drop(unreach_rows);

    // Emit walk. `ttl_slot[t]` holds (owner rank + 1, responder) —
    // the epoch trick avoids clearing 256 slots per trace.
    let mut ttl_slot = [(0u32, 0u32); 256];
    let mut targets = Vec::with_capacity(n_targets);
    let mut metas = Vec::with_capacity(n_targets);
    let mut hops = Vec::with_capacity(hops_scratch.len());
    let mut unreach = Vec::with_capacity(unreach_scratch.len());
    for (r, &(word, tid)) in order.iter().enumerate() {
        let epoch = r as u32 + 1;
        let bucket = &hops_scratch[hop_starts[r] as usize..hop_starts[r + 1] as usize];
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for &(rid, ttl) in bucket {
            let slot = &mut ttl_slot[ttl as usize];
            // First record wins per (target, ttl): bucket order is
            // record order, so only an unclaimed slot is written.
            if slot.0 != epoch {
                *slot = (epoch, rid);
                lo = lo.min(ttl as usize);
                hi = hi.max(ttl as usize);
            }
        }
        let hop_off = hops.len() as u32;
        if lo != usize::MAX {
            for (t, &(e, rid)) in ttl_slot.iter().enumerate().take(hi + 1).skip(lo) {
                if e == epoch {
                    hops.push((t as u8, rid));
                }
            }
        }
        let unreach_off = unreach.len() as u32;
        unreach.extend(
            unreach_scratch[unreach_starts[r] as usize..unreach_starts[r + 1] as usize]
                .iter()
                .map(|&(rid, ttl)| (ttl, rid)),
        );
        let at = reached[tid as usize];
        targets.push(Ipv6Addr::from(word));
        metas.push(TraceMeta {
            hop_off,
            hop_len: hops.len() as u32 - hop_off,
            unreach_off,
            unreach_len: unreach.len() as u32 - unreach_off,
            reached_at: (at != NOT_REACHED).then_some(at as u8),
        });
    }

    TraceSet {
        vantage,
        target_set,
        rewritten_dropped,
        interner,
        targets,
        metas,
        hops,
        unreach,
    }
}

impl TraceSet {
    /// Builds traces from a probe log in one classify pass plus a
    /// *stable* counting scatter — no comparison sort, no `seq` keys:
    ///
    /// * targets are interned to dense `tid`s, so the destination-
    ///   response class updates a flat `reached_at[tid]` min-column —
    ///   no rows at all;
    /// * Time-Exceeded hops become 12-byte `(tid, responder id, ttl)`
    ///   rows, bucketed by the target's *rank* (position in address
    ///   order) with one counting scatter; the scatter is stable, so
    ///   each bucket keeps record order and "first record wins per
    ///   (target, ttl)" — the map pipeline's exact semantics — falls
    ///   out of a 256-slot TTL scratch, no per-bucket sort;
    /// * Destination Unreachable rows ride the same scatter; their
    ///   bucket order *is* the required record order, copied verbatim.
    pub fn from_log(log: &ProbeLog) -> Self {
        let mut interner = AddrInterner::with_capacity(1024);
        let mut tgt_ids = AddrInterner::with_capacity(1024);
        let mut rewritten_dropped = 0u64;
        // (tid, responder id, ttl) — record order.
        let mut hop_rows: Vec<(u32, u32, u8)> = Vec::with_capacity(log.records.len() / 2);
        let mut unreach_rows: Vec<(u32, u32, u8)> = Vec::new();
        // Min destination-response TTL per tid; NOT_REACHED = none.
        let mut reached: Vec<u16> = Vec::new();
        // Probe the target table a window ahead so slot misses overlap
        // instead of serializing (a HashMap cannot expose its bucket
        // address to do this).
        const PREFETCH: usize = 8;
        for (i, r) in log.records.iter().enumerate() {
            if let Some(ahead) = log.records.get(i + PREFETCH) {
                tgt_ids.prefetch(ahead.target);
            }
            if !r.target_cksum_ok {
                rewritten_dropped += 1;
                continue;
            }
            let tid = tgt_ids.intern(r.target);
            if tid as usize == reached.len() {
                reached.push(NOT_REACHED);
            }
            match r.kind {
                ResponseKind::TimeExceeded => {
                    if let Some(ttl) = r.probe_ttl {
                        hop_rows.push((tid, interner.intern(r.responder), ttl));
                    }
                }
                ResponseKind::DestUnreachable(c)
                    if c != v6packet::icmp6::DestUnreachCode::PortUnreachable =>
                {
                    if let Some(ttl) = r.probe_ttl {
                        unreach_rows.push((tid, interner.intern(r.responder), ttl));
                    }
                }
                _ => {
                    // Destination responded (echo reply, TCP, port
                    // unreachable from the host).
                    let at = r.probe_ttl.unwrap_or(u8::MAX) as u16;
                    reached[tid as usize] = reached[tid as usize].min(at);
                }
            }
        }

        assemble(
            ClassifiedRows {
                interner,
                tgt_ids,
                reached,
                hop_rows,
                unreach_rows,
                rewritten_dropped,
            },
            log.vantage.clone(),
            log.target_set.clone(),
        )
    }

    /// Builds a columnar set from hand-constructed [`reference::Trace`]s
    /// (tests, conversions). Duplicate targets: last one wins, matching
    /// `HashMap::insert`.
    pub fn from_traces(traces: impl IntoIterator<Item = reference::Trace>) -> Self {
        let mut by_target: std::collections::BTreeMap<u128, reference::Trace> =
            std::collections::BTreeMap::new();
        for t in traces {
            by_target.insert(u128::from(t.target), t);
        }
        let mut set = TraceSet::default();
        for (tw, t) in by_target {
            let hop_off = set.hops.len() as u32;
            for (&ttl, &addr) in &t.hops {
                let id = set.interner.intern(addr);
                set.hops.push((ttl, id));
            }
            let unreach_off = set.unreach.len() as u32;
            for &(ttl, addr) in &t.unreachable {
                let id = set.interner.intern(addr);
                set.unreach.push((ttl, id));
            }
            set.targets.push(Ipv6Addr::from(tw));
            set.metas.push(TraceMeta {
                hop_off,
                hop_len: set.hops.len() as u32 - hop_off,
                unreach_off,
                unreach_len: set.unreach.len() as u32 - unreach_off,
                reached_at: t.reached_at,
            });
        }
        set
    }

    /// Number of traces with at least one response.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when no responses were recorded.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// The probed targets, ascending.
    pub fn targets(&self) -> &[Ipv6Addr] {
        &self.targets
    }

    /// The shared interface-address interner.
    pub fn interner(&self) -> &AddrInterner {
        &self.interner
    }

    /// Per-round incremental discovery delta: every responder interface
    /// in this set that is not yet in `seen`, in first-discovery
    /// (interner id) order, inserting each into `seen` as it goes.
    ///
    /// This is a straight walk of the interner's word column — no
    /// per-record work, no re-derivation from the hop cells — so a
    /// multi-round orchestrator pays O(unique interfaces) per round to
    /// learn what the round newly earned, and a shared `seen` set
    /// guarantees no interface is ever counted (or re-fed into target
    /// generation) twice across rounds.
    pub fn discovery_delta(&self, seen: &mut AddrSet) -> Vec<Ipv6Addr> {
        let mut fresh = Vec::new();
        for &w in self.interner.words() {
            let addr = Ipv6Addr::from(w);
            if seen.insert(addr) {
                fresh.push(addr);
            }
        }
        fresh
    }

    /// Iterates traces in target order — a slice walk, no re-sort.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = TraceView<'_>> + Clone {
        (0..self.targets.len()).map(move |idx| TraceView { set: self, idx })
    }

    /// The trace at position `idx` in target order.
    pub fn view_at(&self, idx: usize) -> TraceView<'_> {
        assert!(idx < self.targets.len());
        TraceView { set: self, idx }
    }

    /// The trace toward `target`, via binary search.
    pub fn get(&self, target: Ipv6Addr) -> Option<TraceView<'_>> {
        let w = u128::from(target);
        self.targets
            .binary_search_by_key(&w, |&t| u128::from(t))
            .ok()
            .map(|idx| TraceView { set: self, idx })
    }
}

/// A borrowed view of one trace inside the flat store.
#[derive(Clone, Copy)]
pub struct TraceView<'a> {
    set: &'a TraceSet,
    idx: usize,
}

impl<'a> TraceView<'a> {
    #[inline]
    fn meta(&self) -> &'a TraceMeta {
        &self.set.metas[self.idx]
    }

    /// The probed destination.
    #[inline]
    pub fn target(&self) -> Ipv6Addr {
        self.set.targets[self.idx]
    }

    /// Position of this trace in target order.
    #[inline]
    pub fn index(&self) -> usize {
        self.idx
    }

    /// Smallest TTL at which the destination itself answered, if any.
    #[inline]
    pub fn reached_at(&self) -> Option<u8> {
        self.meta().reached_at
    }

    /// The raw hop cells `(ttl, iface_id)`, ttl ascending. Ids resolve
    /// through [`TraceSet::interner`]; id equality is address equality.
    #[inline]
    pub fn hop_cells(&self) -> &'a [(u8, u32)] {
        let m = self.meta();
        &self.set.hops[m.hop_off as usize..(m.hop_off + m.hop_len) as usize]
    }

    /// Hops as `(ttl, address)`, ttl ascending.
    pub fn hops(&self) -> impl ExactSizeIterator<Item = (u8, Ipv6Addr)> + 'a {
        let interner = &self.set.interner;
        self.hop_cells()
            .iter()
            .map(move |&(ttl, id)| (ttl, interner.resolve(id)))
    }

    /// The raw Destination Unreachable cells `(ttl, responder_id)`, in
    /// record order.
    #[inline]
    pub fn unreachable_cells(&self) -> &'a [(u8, u32)] {
        let m = self.meta();
        &self.set.unreach[m.unreach_off as usize..(m.unreach_off + m.unreach_len) as usize]
    }

    /// Destination Unreachable responses as `(ttl, responder)`.
    pub fn unreachable(&self) -> impl ExactSizeIterator<Item = (u8, Ipv6Addr)> + 'a {
        let interner = &self.set.interner;
        self.unreachable_cells()
            .iter()
            .map(move |&(ttl, id)| (ttl, interner.resolve(id)))
    }

    /// Estimated path length in router hops: the TTL of the destination
    /// response when reached, else the deepest responding hop (a lower
    /// bound).
    pub fn path_len(&self) -> Option<u8> {
        self.reached_at()
            .or_else(|| self.hop_cells().last().map(|&(t, _)| t))
    }

    /// The deepest responding hop address (the "last hop" of §6).
    pub fn last_hop(&self) -> Option<(u8, Ipv6Addr)> {
        self.hop_cells()
            .last()
            .map(|&(t, id)| (t, self.set.interner.resolve(id)))
    }

    /// The hop sequence `ttl=1..=k` with gaps as `None`, up to the
    /// deepest response. Compatibility helper — the analysis passes walk
    /// [`hop_cells`](Self::hop_cells) directly instead of materializing
    /// this.
    pub fn hop_vec(&self) -> Vec<Option<Ipv6Addr>> {
        let cells = self.hop_cells();
        let Some(&(max, _)) = cells.last() else {
            return Vec::new();
        };
        let mut out = vec![None; max as usize];
        for &(ttl, id) in cells {
            // The sequence starts at ttl 1; a (nonsensical but
            // representable) ttl-0 hop is dropped here, as the map
            // reference's `(1..=max)` range did.
            if ttl > 0 {
                out[ttl as usize - 1] = Some(self.set.interner.resolve(id));
            }
        }
        out
    }
}

/// Resolves addresses to origin ASNs using the *public* view: BGP,
/// registry-only prefixes, and declared ASN equivalences (§6's two
/// augmentations).
#[derive(Clone, Debug)]
pub struct AsnResolver {
    bgp: BgpTable,
    extra: Vec<(Ipv6Prefix, Asn)>,
}

impl AsnResolver {
    /// Builds a resolver; `extra` are the registry-only prefixes and
    /// `equivalences` the sibling-ASN declarations.
    pub fn new(bgp: BgpTable, extra: Vec<(Ipv6Prefix, Asn)>, equivalences: &[(Asn, Asn)]) -> Self {
        let mut bgp = bgp;
        for &(a, b) in equivalences {
            bgp.declare_equivalent(a, b);
        }
        AsnResolver { bgp, extra }
    }

    /// Origin ASN under the augmented view.
    pub fn origin(&self, addr: Ipv6Addr) -> Option<Asn> {
        self.bgp.origin(addr).or_else(|| {
            self.extra
                .iter()
                .find(|(p, _)| p.contains_addr(addr))
                .map(|&(_, a)| a)
        })
    }

    /// Are two ASNs the same organization?
    pub fn same_org(&self, a: Asn, b: Asn) -> bool {
        self.bgp.same_org(a, b)
    }

    /// The underlying BGP table.
    pub fn bgp(&self) -> &BgpTable {
        &self.bgp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yarrp6::ResponseRecord;

    fn rec(target: &str, responder: &str, kind: ResponseKind, ttl: Option<u8>) -> ResponseRecord {
        ResponseRecord {
            target: target.parse().unwrap(),
            responder: responder.parse().unwrap(),
            kind,
            probe_ttl: ttl,
            rtt_us: Some(1),
            recv_us: 0,
            target_cksum_ok: true,
        }
    }

    #[test]
    fn reconstructs_hops_and_reach() {
        let mut log = ProbeLog::default();
        log.records.push(rec(
            "2001:db8::1",
            "::a",
            ResponseKind::TimeExceeded,
            Some(1),
        ));
        log.records.push(rec(
            "2001:db8::1",
            "::b",
            ResponseKind::TimeExceeded,
            Some(3),
        ));
        log.records.push(rec(
            "2001:db8::1",
            "2001:db8::1",
            ResponseKind::EchoReply,
            Some(4),
        ));
        log.records.push(rec(
            "2001:db8::1",
            "2001:db8::1",
            ResponseKind::EchoReply,
            Some(7),
        ));
        let ts = TraceSet::from_log(&log);
        let t = ts.get("2001:db8::1".parse().unwrap()).unwrap();
        assert_eq!(t.hop_cells().len(), 2);
        assert_eq!(t.reached_at(), Some(4));
        assert_eq!(t.path_len(), Some(4));
        assert_eq!(
            t.hop_vec(),
            vec![
                Some("::a".parse().unwrap()),
                None,
                Some("::b".parse().unwrap()),
            ]
        );
        assert_eq!(t.last_hop().unwrap().0, 3);
    }

    #[test]
    fn discovery_delta_is_incremental_and_ordered() {
        let mut log = ProbeLog::default();
        log.records.push(rec(
            "2001:db8::1",
            "::a",
            ResponseKind::TimeExceeded,
            Some(1),
        ));
        log.records.push(rec(
            "2001:db8::1",
            "::b",
            ResponseKind::TimeExceeded,
            Some(2),
        ));
        let ts1 = TraceSet::from_log(&log);
        log.records.push(rec(
            "2001:db8::2",
            "::b",
            ResponseKind::TimeExceeded,
            Some(2),
        ));
        log.records.push(rec(
            "2001:db8::2",
            "::c",
            ResponseKind::TimeExceeded,
            Some(3),
        ));
        let ts2 = TraceSet::from_log(&log);

        let mut seen = AddrSet::new();
        let first = ts1.discovery_delta(&mut seen);
        let a: Ipv6Addr = "::a".parse().unwrap();
        let b: Ipv6Addr = "::b".parse().unwrap();
        let c: Ipv6Addr = "::c".parse().unwrap();
        assert_eq!(first, vec![a, b]);
        // Round two only pays for the genuinely new interface.
        let second = ts2.discovery_delta(&mut seen);
        assert_eq!(second, vec![c]);
        assert_eq!(seen.len(), 3);
        // A repeat round discovers nothing.
        assert!(ts2.discovery_delta(&mut seen).is_empty());
    }

    #[test]
    fn first_te_record_wins_per_ttl() {
        let mut log = ProbeLog::default();
        log.records.push(rec(
            "2001:db8::1",
            "::a",
            ResponseKind::TimeExceeded,
            Some(2),
        ));
        log.records.push(rec(
            "2001:db8::1",
            "::b",
            ResponseKind::TimeExceeded,
            Some(2),
        ));
        let ts = TraceSet::from_log(&log);
        let t = ts.get("2001:db8::1".parse().unwrap()).unwrap();
        assert_eq!(
            t.hops().collect::<Vec<_>>(),
            vec![(2, "::a".parse().unwrap())]
        );
    }

    #[test]
    fn unreached_path_len_is_deepest_hop() {
        let mut log = ProbeLog::default();
        log.records.push(rec(
            "2001:db8::2",
            "::a",
            ResponseKind::TimeExceeded,
            Some(5),
        ));
        let ts = TraceSet::from_log(&log);
        let t = ts.get("2001:db8::2".parse().unwrap()).unwrap();
        assert_eq!(t.reached_at(), None);
        assert_eq!(t.path_len(), Some(5));
    }

    #[test]
    fn targets_sorted_and_interner_shared() {
        let mut log = ProbeLog::default();
        log.records.push(rec(
            "2001:db8::9",
            "::a",
            ResponseKind::TimeExceeded,
            Some(1),
        ));
        log.records.push(rec(
            "2001:db8::1",
            "::a",
            ResponseKind::TimeExceeded,
            Some(1),
        ));
        let ts = TraceSet::from_log(&log);
        let targets: Vec<Ipv6Addr> = ts.targets().to_vec();
        assert_eq!(
            targets,
            vec![
                "2001:db8::1".parse::<Ipv6Addr>().unwrap(),
                "2001:db8::9".parse::<Ipv6Addr>().unwrap(),
            ]
        );
        // Both traces' hop cells share one interned id for ::a.
        assert_eq!(ts.interner().len(), 1);
        let ids: Vec<u32> = ts.iter().map(|t| t.hop_cells()[0].1).collect();
        assert_eq!(ids, vec![0, 0]);
    }

    #[test]
    fn resolver_augmentations() {
        let mut bgp = BgpTable::new();
        bgp.announce("2001:db8::/32".parse().unwrap(), Asn(1));
        let extra = vec![("2a10::/32".parse().unwrap(), Asn(2))];
        let r = AsnResolver::new(bgp, extra, &[(Asn(1), Asn(51))]);
        assert_eq!(r.origin("2001:db8::1".parse().unwrap()), Some(Asn(1)));
        assert_eq!(r.origin("2a10::9".parse().unwrap()), Some(Asn(2)));
        assert_eq!(r.origin("3fff::1".parse().unwrap()), None);
        assert!(r.same_org(Asn(1), Asn(51)));
        assert!(!r.same_org(Asn(1), Asn(2)));
    }
}
