//! Reconstructing per-target traces from stateless response records —
//! columnar layout.
//!
//! Yarrp6 responses arrive in no particular order, interleaved across
//! all destinations; this module groups them back into traceroute-style
//! paths. The store is flat and index-based rather than a map of maps:
//!
//! * records are bucketed by target with one **stable counting
//!   scatter** over dense interned target ids — no comparison sort
//!   over the record volume and no `HashMap`/`BTreeMap` node
//!   insertions;
//! * all hop cells live contiguously in a single `Vec<(ttl, iface_id)>`,
//!   each trace owning an `(offset, len)` range — iteration is a slice
//!   walk, already in target order, so no `iter_sorted()` re-sort per
//!   analysis pass;
//! * responder addresses are interned once into a shared
//!   [`AddrInterner`] ([`crate::intern`]); hops carry dense `u32` ids
//!   and downstream stages cache per-address derived values by id.
//!
//! [`TraceView`] is the per-trace accessor; it mirrors the old `Trace`
//! API (`path_len`, `last_hop`, `hop_vec`, ...) over the flat store.
//! The original map-based implementation survives as
//! [`crate::reference`], pinned bit-identical by golden tests.

use crate::intern::AddrInterner;
use crate::reference;
use std::net::Ipv6Addr;
use std::sync::Arc;
use v6addr::{Asn, BgpTable, Ipv6Prefix};
use yarrp6::addrset::AddrSet;
use yarrp6::{ProbeLog, ResponseKind};

/// Per-trace metadata: ranges into the shared hop/unreachable columns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct TraceMeta {
    pub(crate) hop_off: u32,
    pub(crate) hop_len: u32,
    pub(crate) unreach_off: u32,
    pub(crate) unreach_len: u32,
    pub(crate) reached_at: Option<u8>,
}

/// All traces of one campaign in columnar form, sorted by target.
#[derive(Clone, Debug, Default)]
pub struct TraceSet {
    /// Campaign identity, carried through for reporting (shared, not
    /// re-allocated per analysis). For a merged set this is the
    /// `+`-joined list of distinct source vantage names.
    pub vantage: Arc<str>,
    /// Target-set name.
    pub target_set: Arc<str>,
    /// Records dropped because the quoted destination failed the target
    /// checksum (middlebox rewriting detected): their "target" is not
    /// an address we probed, so including them would fabricate traces.
    /// Additive under [`merge`](Self::merge) — a union of campaigns
    /// saw the sum of their tampered records.
    pub rewritten_dropped: u64,
    /// Interned responder/interface addresses shared by all stages.
    pub(crate) interner: AddrInterner,
    /// Probed destinations, ascending by address word.
    pub(crate) targets: Vec<Ipv6Addr>,
    /// Parallel to `targets`.
    pub(crate) metas: Vec<TraceMeta>,
    /// All hop cells `(ttl, iface_id)`, contiguous per trace, ttl
    /// ascending within a trace.
    pub(crate) hops: Vec<(u8, u32)>,
    /// All Destination Unreachable cells `(ttl, responder_id)`,
    /// contiguous per trace, record order within a trace.
    pub(crate) unreach: Vec<(u8, u32)>,
    /// Vantage-provenance table: the distinct source vantage names a
    /// merged set was assembled from. Empty for a single-campaign set
    /// (every trace then comes from [`vantage`](Self::vantage)).
    pub(crate) sources: Vec<Arc<str>>,
    /// Per-trace provenance column, parallel to `targets`: index into
    /// `sources`. Empty when `sources` is empty.
    pub(crate) prov: Vec<u32>,
}

/// Bit-for-bit equality of the flat stores, *including* interner id
/// assignment — the pinned contract between the batch classify pass
/// and the streaming [`crate::builder::TraceSetBuilder`], and between
/// the multi-vantage streaming and batch merge paths.
///
/// The vantage-provenance columns (`sources`/`prov`) are reporting
/// metadata, not observations, and are deliberately excluded: a merged
/// set and a `from_log` of the equivalent concatenated log must compare
/// equal even though only the former knows which vantage earned which
/// trace.
impl PartialEq for TraceSet {
    fn eq(&self, other: &Self) -> bool {
        self.vantage == other.vantage
            && self.target_set == other.target_set
            && self.rewritten_dropped == other.rewritten_dropped
            && self.targets == other.targets
            && self.metas == other.metas
            && self.hops == other.hops
            && self.unreach == other.unreach
            && self.interner.words() == other.interner.words()
    }
}

/// `reached_at` sentinel in the tid-indexed scratch column.
pub(crate) const NOT_REACHED: u16 = u16::MAX;

/// Stable counting scatter: buckets `(tid, rid, ttl)` rows into
/// target-address order (`order[r] = (word, tid)`) in two linear passes
/// (count, then place), returning the bucketed `(rid, ttl)` payloads
/// plus the `n + 1` bucket start offsets (rank-indexed). Both passes
/// index per-tid arrays directly — one random access per row. Within a
/// bucket the input (record) order is preserved; that stability is what
/// lets the emit walk apply first-record-wins dedup without any
/// comparison sort.
fn scatter_by_rank(rows: &[(u32, u32, u8)], order: &[(u128, u32)]) -> (Vec<(u32, u8)>, Vec<u32>) {
    let n_targets = order.len();
    let mut counts = vec![0u32; n_targets];
    for &(tid, _, _) in rows {
        counts[tid as usize] += 1;
    }
    let mut starts = vec![0u32; n_targets + 1];
    // Write cursors, indexed by tid so the place pass skips the
    // tid → rank indirection.
    let mut cur = vec![0u32; n_targets];
    let mut acc = 0u32;
    for (r, &(_, tid)) in order.iter().enumerate() {
        starts[r] = acc;
        cur[tid as usize] = acc;
        acc += counts[tid as usize];
    }
    starts[n_targets] = acc;
    let mut out = vec![(0u32, 0u8); rows.len()];
    for &(tid, rid, ttl) in rows {
        let slot = &mut cur[tid as usize];
        out[*slot as usize] = (rid, ttl);
        *slot += 1;
    }
    (out, starts)
}

/// The classified form of a record stream, ready for assembly: the
/// shared seam between the batch classify pass ([`TraceSet::from_log`])
/// and the incremental [`crate::builder::TraceSetBuilder`].
pub(crate) struct ClassifiedRows {
    /// Responder interner — ids as the final `TraceSet` will carry them
    /// (first-occurrence order over the classified rows).
    pub interner: AddrInterner,
    /// Probed-target interner: dense `tid`s.
    pub tgt_ids: AddrInterner,
    /// Min destination-response TTL per tid; [`NOT_REACHED`] = none.
    pub reached: Vec<u16>,
    /// Time-Exceeded rows `(tid, responder id, ttl)`, record order.
    pub hop_rows: Vec<(u32, u32, u8)>,
    /// Destination Unreachable rows, record order.
    pub unreach_rows: Vec<(u32, u32, u8)>,
    /// Records dropped for failing the target checksum.
    pub rewritten_dropped: u64,
}

/// Assembles classified rows into the final columnar store: target-
/// address ordering, the stable counting scatters, and the dedup/emit
/// walk. Row order is preserved within each target bucket, so "first
/// row wins per (target, ttl)" falls out without a comparison sort.
pub(crate) fn assemble(rows: ClassifiedRows, vantage: Arc<str>, target_set: Arc<str>) -> TraceSet {
    let ClassifiedRows {
        interner,
        tgt_ids,
        reached,
        hop_rows,
        unreach_rows,
        rewritten_dropped,
    } = rows;
    let n_targets = tgt_ids.len();

    // Target-address order over the dense tid arena (the arena holds
    // every probed target, so no separate union pass exists). The
    // sort runs over materialized (word, tid) pairs — sorting ids
    // with an arena-lookup key would re-read random memory on every
    // comparison.
    let mut order: Vec<(u128, u32)> = tgt_ids
        .words()
        .iter()
        .enumerate()
        .map(|(tid, &w)| (w, tid as u32))
        .collect();
    order.sort_unstable();

    // Stable counting scatter: bucket rows straight into final
    // trace order, preserving record order within each bucket.
    let (hops_scratch, hop_starts) = scatter_by_rank(&hop_rows, &order);
    drop(hop_rows);
    let (unreach_scratch, unreach_starts) = scatter_by_rank(&unreach_rows, &order);
    drop(unreach_rows);

    // Emit walk. `ttl_slot[t]` holds (owner rank + 1, responder) —
    // the epoch trick avoids clearing 256 slots per trace.
    let mut ttl_slot = [(0u32, 0u32); 256];
    let mut targets = Vec::with_capacity(n_targets);
    let mut metas = Vec::with_capacity(n_targets);
    let mut hops = Vec::with_capacity(hops_scratch.len());
    let mut unreach = Vec::with_capacity(unreach_scratch.len());
    for (r, &(word, tid)) in order.iter().enumerate() {
        let epoch = r as u32 + 1;
        let bucket = &hops_scratch[hop_starts[r] as usize..hop_starts[r + 1] as usize];
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for &(rid, ttl) in bucket {
            let slot = &mut ttl_slot[ttl as usize];
            // First record wins per (target, ttl): bucket order is
            // record order, so only an unclaimed slot is written.
            if slot.0 != epoch {
                *slot = (epoch, rid);
                lo = lo.min(ttl as usize);
                hi = hi.max(ttl as usize);
            }
        }
        let hop_off = hops.len() as u32;
        if lo != usize::MAX {
            for (t, &(e, rid)) in ttl_slot.iter().enumerate().take(hi + 1).skip(lo) {
                if e == epoch {
                    hops.push((t as u8, rid));
                }
            }
        }
        let unreach_off = unreach.len() as u32;
        unreach.extend(
            unreach_scratch[unreach_starts[r] as usize..unreach_starts[r + 1] as usize]
                .iter()
                .map(|&(rid, ttl)| (ttl, rid)),
        );
        let at = reached[tid as usize];
        targets.push(Ipv6Addr::from(word));
        metas.push(TraceMeta {
            hop_off,
            hop_len: hops.len() as u32 - hop_off,
            unreach_off,
            unreach_len: unreach.len() as u32 - unreach_off,
            reached_at: (at != NOT_REACHED).then_some(at as u8),
        });
    }

    TraceSet {
        vantage,
        target_set,
        rewritten_dropped,
        interner,
        targets,
        metas,
        hops,
        unreach,
        sources: Vec::new(),
        prov: Vec::new(),
    }
}

impl TraceSet {
    /// Builds traces from a probe log in one classify pass plus a
    /// *stable* counting scatter — no comparison sort, no `seq` keys:
    ///
    /// * targets are interned to dense `tid`s, so the destination-
    ///   response class updates a flat `reached_at[tid]` min-column —
    ///   no rows at all;
    /// * Time-Exceeded hops become 12-byte `(tid, responder id, ttl)`
    ///   rows, bucketed by the target's *rank* (position in address
    ///   order) with one counting scatter; the scatter is stable, so
    ///   each bucket keeps record order and "first record wins per
    ///   (target, ttl)" — the map pipeline's exact semantics — falls
    ///   out of a 256-slot TTL scratch, no per-bucket sort;
    /// * Destination Unreachable rows ride the same scatter; their
    ///   bucket order *is* the required record order, copied verbatim.
    pub fn from_log(log: &ProbeLog) -> Self {
        let mut interner = AddrInterner::with_capacity(1024);
        let mut tgt_ids = AddrInterner::with_capacity(1024);
        let mut rewritten_dropped = 0u64;
        // (tid, responder id, ttl) — record order.
        let mut hop_rows: Vec<(u32, u32, u8)> = Vec::with_capacity(log.records.len() / 2);
        let mut unreach_rows: Vec<(u32, u32, u8)> = Vec::new();
        // Min destination-response TTL per tid; NOT_REACHED = none.
        let mut reached: Vec<u16> = Vec::new();
        // Probe the target table a window ahead so slot misses overlap
        // instead of serializing (a HashMap cannot expose its bucket
        // address to do this).
        const PREFETCH: usize = 8;
        for (i, r) in log.records.iter().enumerate() {
            if let Some(ahead) = log.records.get(i + PREFETCH) {
                tgt_ids.prefetch(ahead.target);
            }
            if !r.target_cksum_ok {
                rewritten_dropped += 1;
                continue;
            }
            let tid = tgt_ids.intern(r.target);
            if tid as usize == reached.len() {
                reached.push(NOT_REACHED);
            }
            match r.kind {
                ResponseKind::TimeExceeded => {
                    if let Some(ttl) = r.probe_ttl {
                        hop_rows.push((tid, interner.intern(r.responder), ttl));
                    }
                }
                ResponseKind::DestUnreachable(c)
                    if c != v6packet::icmp6::DestUnreachCode::PortUnreachable =>
                {
                    if let Some(ttl) = r.probe_ttl {
                        unreach_rows.push((tid, interner.intern(r.responder), ttl));
                    }
                }
                _ => {
                    // Destination responded (echo reply, TCP, port
                    // unreachable from the host).
                    let at = r.probe_ttl.unwrap_or(u8::MAX) as u16;
                    reached[tid as usize] = reached[tid as usize].min(at);
                }
            }
        }

        assemble(
            ClassifiedRows {
                interner,
                tgt_ids,
                reached,
                hop_rows,
                unreach_rows,
                rewritten_dropped,
            },
            log.vantage.clone(),
            log.target_set.clone(),
        )
    }

    /// Builds a columnar set from hand-constructed [`reference::Trace`]s
    /// (tests, conversions). Duplicate targets: last one wins, matching
    /// `HashMap::insert`.
    pub fn from_traces(traces: impl IntoIterator<Item = reference::Trace>) -> Self {
        let mut by_target: std::collections::BTreeMap<u128, reference::Trace> =
            std::collections::BTreeMap::new();
        for t in traces {
            by_target.insert(u128::from(t.target), t);
        }
        let mut set = TraceSet::default();
        for (tw, t) in by_target {
            let hop_off = set.hops.len() as u32;
            for (&ttl, &addr) in &t.hops {
                let id = set.interner.intern(addr);
                set.hops.push((ttl, id));
            }
            let unreach_off = set.unreach.len() as u32;
            for &(ttl, addr) in &t.unreachable {
                let id = set.interner.intern(addr);
                set.unreach.push((ttl, id));
            }
            set.targets.push(Ipv6Addr::from(tw));
            set.metas.push(TraceMeta {
                hop_off,
                hop_len: set.hops.len() as u32 - hop_off,
                unreach_off,
                unreach_len: set.unreach.len() as u32 - unreach_off,
                reached_at: t.reached_at,
            });
        }
        set
    }

    /// Number of traces with at least one response.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when no responses were recorded.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// The probed targets, ascending.
    pub fn targets(&self) -> &[Ipv6Addr] {
        &self.targets
    }

    /// The shared interface-address interner.
    pub fn interner(&self) -> &AddrInterner {
        &self.interner
    }

    /// Per-round incremental discovery delta: every responder interface
    /// in this set that is not yet in `seen`, in first-discovery
    /// (interner id) order, inserting each into `seen` as it goes.
    ///
    /// This is a straight walk of the interner's word column — no
    /// per-record work, no re-derivation from the hop cells — so a
    /// multi-round orchestrator pays O(unique interfaces) per round to
    /// learn what the round newly earned, and a shared `seen` set
    /// guarantees no interface is ever counted (or re-fed into target
    /// generation) twice across rounds.
    pub fn discovery_delta(&self, seen: &mut AddrSet) -> Vec<Ipv6Addr> {
        let mut fresh = Vec::new();
        for &w in self.interner.words() {
            let addr = Ipv6Addr::from(w);
            if seen.insert(addr) {
                fresh.push(addr);
            }
        }
        fresh
    }

    /// The distinct source vantage names of this set, materialized:
    /// a single-campaign set reports `[vantage]`, a merged set its
    /// provenance table (first-contribution order).
    pub fn sources(&self) -> Vec<Arc<str>> {
        if self.sources.is_empty() {
            vec![self.vantage.clone()]
        } else {
            self.sources.clone()
        }
    }

    /// Unique *interface* address words of this set — the distinct
    /// responders referenced by Time-Exceeded hop cells (the paper's
    /// "Rtr Int Addrs"; Destination Unreachable responders are in the
    /// interner but are not interfaces in this sense) — sorted
    /// ascending. One flat pass over the hop column plus a per-id
    /// bitmap; no address re-hashing.
    pub fn interface_words(&self) -> Vec<u128> {
        let mut seen = vec![false; self.interner.len()];
        for &(_, id) in &self.hops {
            seen[id as usize] = true;
        }
        let mut out: Vec<u128> = self
            .interner
            .words()
            .iter()
            .zip(&seen)
            .filter(|&(_, &s)| s)
            .map(|(&w, _)| w)
            .collect();
        out.sort_unstable();
        out
    }

    /// [`interface_words`](Self::interface_words) as addresses.
    pub fn interface_addrs(&self) -> Vec<Ipv6Addr> {
        self.interface_words()
            .into_iter()
            .map(Ipv6Addr::from)
            .collect()
    }

    /// Unions two columnar sets into one — the cross-vantage merge.
    ///
    /// * **Interner union with id remapping**: the result's interner
    ///   keeps `self`'s ids verbatim and appends `other`'s unseen
    ///   addresses in `other`'s id order, so the merged set's interner
    ///   is the *full* union of both campaigns' discovered responders —
    ///   including responders whose traces lose the dedup below. Union
    ///   discovery yield is therefore never undercounted.
    /// * **First-wins per-target trace dedup**: where both sets probed
    ///   the same target, `self`'s whole trace (hops, unreachables,
    ///   `reached_at`) is kept and `other`'s is dropped from the trace
    ///   columns. `merge_all` folds left, so earlier operands win —
    ///   deterministic for the multi-vantage drivers, which merge in
    ///   vantage order.
    /// * **Provenance**: every trace in the result carries the vantage
    ///   it came from ([`TraceView::vantage`]); the provenance table is
    ///   the name-deduplicated concatenation of both sides' sources.
    /// * `rewritten_dropped` adds; the `vantage`/`target_set` names
    ///   join with `+` when they differ.
    ///
    /// Merging is commutative and associative *up to canonical form*
    /// ([`canonical`](Self::canonical)) whenever the operands' target
    /// sets are disjoint or agree on shared traces; with conflicting
    /// shared targets the first operand's trace wins by design. Merging
    /// a set with itself returns the same observations (`a.merge(&a) ==
    /// a` when `rewritten_dropped` is zero; the tamper counter is
    /// additive).
    pub fn merge(&self, other: &TraceSet) -> TraceSet {
        // Interner union: self's ids are stable; other's ids remap.
        let mut interner = self.interner.clone();
        let id_remap: Vec<u32> = other
            .interner
            .words()
            .iter()
            .map(|&w| interner.intern(Ipv6Addr::from(w)))
            .collect();

        // Provenance tables, deduplicated by name. A traceless side
        // contributes no provenance entry (nothing in the result can
        // point at it — keeps `TraceSet::default()` from planting a
        // phantom nameless vantage in the table); its prov remap is
        // then never indexed.
        let mut sources = if self.is_empty() {
            Vec::new()
        } else {
            self.sources()
        };
        let src_remap: Vec<u32> = if other.is_empty() {
            Vec::new()
        } else {
            other
                .sources()
                .iter()
                .map(|name| match sources.iter().position(|s| s == name) {
                    Some(i) => i as u32,
                    None => {
                        sources.push(name.clone());
                        (sources.len() - 1) as u32
                    }
                })
                .collect()
        };

        let mut out = TraceSet {
            vantage: join_names(&self.vantage, &other.vantage),
            target_set: join_names(&self.target_set, &other.target_set),
            rewritten_dropped: self.rewritten_dropped + other.rewritten_dropped,
            interner,
            targets: Vec::with_capacity(self.targets.len() + other.targets.len()),
            metas: Vec::with_capacity(self.targets.len() + other.targets.len()),
            hops: Vec::with_capacity(self.hops.len() + other.hops.len()),
            unreach: Vec::with_capacity(self.unreach.len() + other.unreach.len()),
            sources,
            prov: Vec::with_capacity(self.targets.len() + other.targets.len()),
        };

        // Sorted two-pointer walk over both target columns.
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.targets.len() || j < other.targets.len() {
            let sw = self.targets.get(i).map(|&t| u128::from(t));
            let ow = other.targets.get(j).map(|&t| u128::from(t));
            match (sw, ow) {
                (Some(s), Some(o)) if s == o => {
                    // First wins: self's trace, other's dropped (its
                    // responders stay in the interner regardless).
                    out.push_merged_trace(self, i, None, &src_remap);
                    i += 1;
                    j += 1;
                }
                (Some(s), Some(o)) if s < o => {
                    out.push_merged_trace(self, i, None, &src_remap);
                    i += 1;
                }
                (Some(_), None) => {
                    out.push_merged_trace(self, i, None, &src_remap);
                    i += 1;
                }
                _ => {
                    out.push_merged_trace(other, j, Some(&id_remap), &src_remap);
                    j += 1;
                }
            }
        }
        out
    }

    /// Appends `src`'s trace at `idx` to `self`'s columns. `id_remap`
    /// is `Some` for the *other* operand (whose interner ids and
    /// provenance indices must be translated), `None` for the first.
    fn push_merged_trace(
        &mut self,
        src: &TraceSet,
        idx: usize,
        id_remap: Option<&[u32]>,
        src_remap: &[u32],
    ) {
        let m = src.metas[idx];
        let hop_off = self.hops.len() as u32;
        for &(ttl, id) in &src.hops[m.hop_off as usize..(m.hop_off + m.hop_len) as usize] {
            self.hops
                .push((ttl, id_remap.map_or(id, |r| r[id as usize])));
        }
        let unreach_off = self.unreach.len() as u32;
        for &(ttl, id) in
            &src.unreach[m.unreach_off as usize..(m.unreach_off + m.unreach_len) as usize]
        {
            self.unreach
                .push((ttl, id_remap.map_or(id, |r| r[id as usize])));
        }
        self.targets.push(src.targets[idx]);
        self.metas.push(TraceMeta {
            hop_off,
            hop_len: self.hops.len() as u32 - hop_off,
            unreach_off,
            unreach_len: self.unreach.len() as u32 - unreach_off,
            reached_at: m.reached_at,
        });
        // A single-campaign source has an empty prov column: all its
        // traces come from its sources()[0].
        let p = src.prov.get(idx).copied().unwrap_or(0);
        self.prov.push(if id_remap.is_some() {
            src_remap[p as usize]
        } else {
            p
        });
    }

    /// Union of many sets, equivalent to the left fold
    /// `a.merge(b).merge(c)…` — earlier sets win trace dedup. Returns
    /// an empty default set for an empty iterator.
    ///
    /// [`merge`](Self::merge) is associative bit-for-bit (the
    /// surviving trace per target is the leftmost owner's under any
    /// grouping, interner ids append in first-appearance order, and
    /// the identity-name join deduplicates), so this reduces
    /// *pairwise* — adjacent pairs, then pairs of pairs — copying each
    /// set's columns O(log k) times instead of the left fold's O(k).
    /// An adaptive run folding hundreds of per-campaign sets through
    /// it stays near-linear; the associativity is pinned by the
    /// `merge_props` property suite.
    pub fn merge_all<'a>(sets: impl IntoIterator<Item = &'a TraceSet>) -> TraceSet {
        let refs: Vec<&TraceSet> = sets.into_iter().collect();
        match refs.len() {
            0 => TraceSet::default(),
            1 => refs[0].clone(),
            _ => {
                let mut level: Vec<TraceSet> = refs
                    .chunks(2)
                    .map(|c| {
                        if c.len() == 2 {
                            c[0].merge(c[1])
                        } else {
                            c[0].clone()
                        }
                    })
                    .collect();
                while level.len() > 1 {
                    level = level
                        .chunks(2)
                        .map(|c| {
                            if c.len() == 2 {
                                c[0].merge(&c[1])
                            } else {
                                c[0].clone()
                            }
                        })
                        .collect();
                }
                level.pop().expect("non-empty reduction")
            }
        }
    }

    /// Single-pass k-way union, bit-identical to
    /// [`merge_all`](Self::merge_all)'s pairwise reduction (pinned by
    /// the `merge_props` suite): interner ids append in
    /// first-appearance, input-major order; the leftmost owner wins
    /// per-target dedup; names and provenance join exactly as the fold
    /// would. Where the reduction copies every column O(log k) times
    /// and re-hashes the accumulated interner at each level, this
    /// copies each surviving cell once and interns each input word
    /// once — but it holds all k id-remap tables live at once, which
    /// is what makes it the *sharded* store's merge
    /// ([`crate::shard::ShardedTraceSet::merge_all`]): per-shard
    /// interners are a fraction of the flat set's, so the k tables stay
    /// small and hot. The flat `merge_all` keeps the associative fold
    /// as the documented reference implementation.
    pub(crate) fn merge_kway(refs: &[&TraceSet]) -> TraceSet {
        match refs.len() {
            0 => return TraceSet::default(),
            1 => return refs[0].clone(),
            _ => {}
        }
        // Names and tamper counter fold left; `join_names` dedups, so
        // any grouping agrees.
        let mut vantage = refs[0].vantage.clone();
        let mut target_set = refs[0].target_set.clone();
        let mut rewritten_dropped = refs[0].rewritten_dropped;
        for s in &refs[1..] {
            vantage = join_names(&vantage, &s.vantage);
            target_set = join_names(&target_set, &s.target_set);
            rewritten_dropped += s.rewritten_dropped;
        }

        // Interner union: input 0's ids are verbatim, later inputs get
        // a remap table in their own id order — the fold's
        // first-appearance order.
        let mut interner = refs[0].interner.clone();
        let id_remaps: Vec<Option<Vec<u32>>> = std::iter::once(None)
            .chain(refs[1..].iter().map(|s| {
                Some(
                    s.interner
                        .words()
                        .iter()
                        .map(|&w| interner.intern(Ipv6Addr::from(w)))
                        .collect(),
                )
            }))
            .collect();

        // Provenance tables dedup by name in input order; a traceless
        // input contributes nothing (its remap is never indexed).
        let mut sources: Vec<Arc<str>> = Vec::new();
        let src_remaps: Vec<Vec<u32>> = refs
            .iter()
            .map(|s| {
                if s.is_empty() {
                    return Vec::new();
                }
                s.sources()
                    .iter()
                    .map(|name| match sources.iter().position(|n| n == name) {
                        Some(i) => i as u32,
                        None => {
                            sources.push(name.clone());
                            (sources.len() - 1) as u32
                        }
                    })
                    .collect()
            })
            .collect();

        let n_targets: usize = refs.iter().map(|s| s.targets.len()).sum();
        let mut out = TraceSet {
            vantage,
            target_set,
            rewritten_dropped,
            interner,
            targets: Vec::with_capacity(n_targets),
            metas: Vec::with_capacity(n_targets),
            hops: Vec::with_capacity(refs.iter().map(|s| s.hops.len()).sum()),
            unreach: Vec::with_capacity(refs.iter().map(|s| s.unreach.len()).sum()),
            sources,
            prov: Vec::with_capacity(n_targets),
        };

        // Sorted k-pointer walk: each step takes the smallest pending
        // target; the lowest-index input holding it owns the surviving
        // trace (leftmost wins, as in the fold) and every input at that
        // target advances.
        let mut cursors = vec![0usize; refs.len()];
        loop {
            let mut min: Option<u128> = None;
            for (s, &c) in refs.iter().zip(&cursors) {
                if let Some(&t) = s.targets.get(c) {
                    let w = u128::from(t);
                    if min.is_none_or(|m| w < m) {
                        min = Some(w);
                    }
                }
            }
            let Some(min) = min else { break };
            let mut owner: Option<usize> = None;
            for (i, (s, c)) in refs.iter().zip(&mut cursors).enumerate() {
                if s.targets.get(*c).is_some_and(|&t| u128::from(t) == min) {
                    if owner.is_none() {
                        owner = Some(i);
                    }
                    *c += 1;
                }
            }
            let i = owner.expect("min target has an owner");
            out.push_merged_trace(
                refs[i],
                cursors[i] - 1,
                id_remaps[i].as_deref(),
                &src_remaps[i],
            );
        }
        out
    }

    /// The canonically re-interned form of this set: interner ids are
    /// reassigned by first use in a deterministic walk (traces in
    /// target order, each trace's hop cells then unreachable cells),
    /// with addresses referenced by no surviving cell — dedup losers,
    /// and whole traces lost to merge dedup — appended afterwards in
    /// ascending address order.
    ///
    /// Two sets holding the same observations through different
    /// assembly histories (different merge orders; a merge of split
    /// logs vs `from_log` of their concatenation) differ only in id
    /// assignment; their canonical forms compare bit-identical under
    /// `PartialEq`. The trace columns, targets, and counters are
    /// untouched apart from the id rewrite.
    pub fn canonical(&self) -> TraceSet {
        const UNMAPPED: u32 = u32::MAX;
        let mut interner = AddrInterner::with_capacity(self.interner.len());
        let mut remap = vec![UNMAPPED; self.interner.len()];
        let mut hops = Vec::with_capacity(self.hops.len());
        let mut unreach = Vec::with_capacity(self.unreach.len());
        for m in &self.metas {
            for &(ttl, id) in &self.hops[m.hop_off as usize..(m.hop_off + m.hop_len) as usize] {
                let slot = &mut remap[id as usize];
                if *slot == UNMAPPED {
                    *slot = interner.intern(self.interner.resolve(id));
                }
                hops.push((ttl, *slot));
            }
            for &(ttl, id) in
                &self.unreach[m.unreach_off as usize..(m.unreach_off + m.unreach_len) as usize]
            {
                let slot = &mut remap[id as usize];
                if *slot == UNMAPPED {
                    *slot = interner.intern(self.interner.resolve(id));
                }
                unreach.push((ttl, *slot));
            }
        }
        // Unreferenced remainder in a history-free order.
        let mut rest: Vec<u128> = self
            .interner
            .words()
            .iter()
            .zip(&remap)
            .filter(|&(_, &r)| r == UNMAPPED)
            .map(|(&w, _)| w)
            .collect();
        rest.sort_unstable();
        for w in rest {
            interner.intern(Ipv6Addr::from(w));
        }
        TraceSet {
            vantage: self.vantage.clone(),
            target_set: self.target_set.clone(),
            rewritten_dropped: self.rewritten_dropped,
            interner,
            targets: self.targets.clone(),
            metas: self.metas.clone(),
            hops,
            unreach,
            sources: self.sources.clone(),
            prov: self.prov.clone(),
        }
    }

    /// Iterates traces in target order — a slice walk, no re-sort.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = TraceView<'_>> + Clone {
        (0..self.targets.len()).map(move |idx| TraceView { set: self, idx })
    }

    /// The trace at position `idx` in target order.
    pub fn view_at(&self, idx: usize) -> TraceView<'_> {
        assert!(idx < self.targets.len());
        TraceView { set: self, idx }
    }

    /// The trace toward `target`, via binary search.
    pub fn get(&self, target: Ipv6Addr) -> Option<TraceView<'_>> {
        let w = u128::from(target);
        self.targets
            .binary_search_by_key(&w, |&t| u128::from(t))
            .ok()
            .map(|idx| TraceView { set: self, idx })
    }
}

/// Joins two campaign-identity names for a merged set: the
/// `+`-separated union of both sides' *distinct* components in
/// first-appearance order — `merge_all` over the three vantages yields
/// `"EU-NET+US-EDU-1+US-EDU-2"`, and re-merging sets that share
/// components (an adaptive run folding the same vantages round after
/// round) never repeats one or grows the name unboundedly. An empty
/// side (the `Default` identity) contributes nothing.
fn join_names(a: &Arc<str>, b: &Arc<str>) -> Arc<str> {
    if a == b || b.is_empty() {
        return a.clone();
    }
    if a.is_empty() {
        return b.clone();
    }
    let parts: Vec<&str> = a.split('+').collect();
    let fresh: Vec<&str> = b.split('+').filter(|p| !parts.contains(p)).collect();
    if fresh.is_empty() {
        a.clone()
    } else {
        let mut out = String::from(&**a);
        for p in fresh {
            out.push('+');
            out.push_str(p);
        }
        out.into()
    }
}

/// A borrowed view of one trace inside the flat store.
#[derive(Clone, Copy)]
pub struct TraceView<'a> {
    set: &'a TraceSet,
    idx: usize,
}

impl<'a> TraceView<'a> {
    #[inline]
    fn meta(&self) -> &'a TraceMeta {
        &self.set.metas[self.idx]
    }

    /// The probed destination.
    #[inline]
    pub fn target(&self) -> Ipv6Addr {
        self.set.targets[self.idx]
    }

    /// Position of this trace in target order.
    #[inline]
    pub fn index(&self) -> usize {
        self.idx
    }

    /// Smallest TTL at which the destination itself answered, if any.
    #[inline]
    pub fn reached_at(&self) -> Option<u8> {
        self.meta().reached_at
    }

    /// The vantage this trace was observed from: the per-trace
    /// provenance of a merged set, or the set-wide campaign vantage for
    /// a single-campaign set.
    #[inline]
    pub fn vantage(&self) -> &'a Arc<str> {
        match self.set.prov.get(self.idx) {
            Some(&p) => &self.set.sources[p as usize],
            None => &self.set.vantage,
        }
    }

    /// The raw hop cells `(ttl, iface_id)`, ttl ascending. Ids resolve
    /// through [`TraceSet::interner`]; id equality is address equality.
    #[inline]
    pub fn hop_cells(&self) -> &'a [(u8, u32)] {
        let m = self.meta();
        &self.set.hops[m.hop_off as usize..(m.hop_off + m.hop_len) as usize]
    }

    /// Hops as `(ttl, address)`, ttl ascending.
    pub fn hops(&self) -> impl ExactSizeIterator<Item = (u8, Ipv6Addr)> + 'a {
        let interner = &self.set.interner;
        self.hop_cells()
            .iter()
            .map(move |&(ttl, id)| (ttl, interner.resolve(id)))
    }

    /// The raw Destination Unreachable cells `(ttl, responder_id)`, in
    /// record order.
    #[inline]
    pub fn unreachable_cells(&self) -> &'a [(u8, u32)] {
        let m = self.meta();
        &self.set.unreach[m.unreach_off as usize..(m.unreach_off + m.unreach_len) as usize]
    }

    /// Destination Unreachable responses as `(ttl, responder)`.
    pub fn unreachable(&self) -> impl ExactSizeIterator<Item = (u8, Ipv6Addr)> + 'a {
        let interner = &self.set.interner;
        self.unreachable_cells()
            .iter()
            .map(move |&(ttl, id)| (ttl, interner.resolve(id)))
    }

    /// Estimated path length in router hops: the TTL of the destination
    /// response when reached, else the deepest responding hop (a lower
    /// bound).
    pub fn path_len(&self) -> Option<u8> {
        self.reached_at()
            .or_else(|| self.hop_cells().last().map(|&(t, _)| t))
    }

    /// The deepest responding hop address (the "last hop" of §6).
    pub fn last_hop(&self) -> Option<(u8, Ipv6Addr)> {
        self.hop_cells()
            .last()
            .map(|&(t, id)| (t, self.set.interner.resolve(id)))
    }

    /// The hop sequence `ttl=1..=k` with gaps as `None`, up to the
    /// deepest response. Compatibility helper — the analysis passes walk
    /// [`hop_cells`](Self::hop_cells) directly instead of materializing
    /// this.
    pub fn hop_vec(&self) -> Vec<Option<Ipv6Addr>> {
        let cells = self.hop_cells();
        let Some(&(max, _)) = cells.last() else {
            return Vec::new();
        };
        let mut out = vec![None; max as usize];
        for &(ttl, id) in cells {
            // The sequence starts at ttl 1; a (nonsensical but
            // representable) ttl-0 hop is dropped here, as the map
            // reference's `(1..=max)` range did.
            if ttl > 0 {
                out[ttl as usize - 1] = Some(self.set.interner.resolve(id));
            }
        }
        out
    }

    /// True when both views report the same observations — identical
    /// `(ttl, address)` hop sequences, the same destination-response
    /// TTL, and the same unreachable cells *as a multiset* — regardless
    /// of which set (and thus which interner id assignment) each view
    /// lives in. The change detector of snapshot-vs-snapshot
    /// comparison.
    ///
    /// Hop cells compare in order (they are TTL-ascending and deduped,
    /// so the order is canonical). Unreachable cells keep record
    /// (receive) order, which follows the prober's randomized schedule
    /// — two probes of an unchanged target from differently composed
    /// campaigns interleave differently — so they compare sorted.
    pub fn same_observations(&self, other: &TraceView<'_>) -> bool {
        if self.reached_at() != other.reached_at() || !self.hops().eq(other.hops()) {
            return false;
        }
        let mut a: Vec<(u8, Ipv6Addr)> = self.unreachable().collect();
        let mut b: Vec<(u8, Ipv6Addr)> = other.unreachable().collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }
}

/// Resolves addresses to origin ASNs using the *public* view: BGP,
/// registry-only prefixes, and declared ASN equivalences (§6's two
/// augmentations).
#[derive(Clone, Debug)]
pub struct AsnResolver {
    bgp: BgpTable,
    extra: Vec<(Ipv6Prefix, Asn)>,
}

impl AsnResolver {
    /// Builds a resolver; `extra` are the registry-only prefixes and
    /// `equivalences` the sibling-ASN declarations.
    pub fn new(bgp: BgpTable, extra: Vec<(Ipv6Prefix, Asn)>, equivalences: &[(Asn, Asn)]) -> Self {
        let mut bgp = bgp;
        for &(a, b) in equivalences {
            bgp.declare_equivalent(a, b);
        }
        AsnResolver { bgp, extra }
    }

    /// Origin ASN under the augmented view.
    pub fn origin(&self, addr: Ipv6Addr) -> Option<Asn> {
        self.bgp.origin(addr).or_else(|| {
            self.extra
                .iter()
                .find(|(p, _)| p.contains_addr(addr))
                .map(|&(_, a)| a)
        })
    }

    /// Are two ASNs the same organization?
    pub fn same_org(&self, a: Asn, b: Asn) -> bool {
        self.bgp.same_org(a, b)
    }

    /// The underlying BGP table.
    pub fn bgp(&self) -> &BgpTable {
        &self.bgp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yarrp6::ResponseRecord;

    fn rec(target: &str, responder: &str, kind: ResponseKind, ttl: Option<u8>) -> ResponseRecord {
        ResponseRecord {
            target: target.parse().unwrap(),
            responder: responder.parse().unwrap(),
            kind,
            probe_ttl: ttl,
            rtt_us: Some(1),
            recv_us: 0,
            target_cksum_ok: true,
        }
    }

    #[test]
    fn reconstructs_hops_and_reach() {
        let mut log = ProbeLog::default();
        log.records.push(rec(
            "2001:db8::1",
            "::a",
            ResponseKind::TimeExceeded,
            Some(1),
        ));
        log.records.push(rec(
            "2001:db8::1",
            "::b",
            ResponseKind::TimeExceeded,
            Some(3),
        ));
        log.records.push(rec(
            "2001:db8::1",
            "2001:db8::1",
            ResponseKind::EchoReply,
            Some(4),
        ));
        log.records.push(rec(
            "2001:db8::1",
            "2001:db8::1",
            ResponseKind::EchoReply,
            Some(7),
        ));
        let ts = TraceSet::from_log(&log);
        let t = ts.get("2001:db8::1".parse().unwrap()).unwrap();
        assert_eq!(t.hop_cells().len(), 2);
        assert_eq!(t.reached_at(), Some(4));
        assert_eq!(t.path_len(), Some(4));
        assert_eq!(
            t.hop_vec(),
            vec![
                Some("::a".parse().unwrap()),
                None,
                Some("::b".parse().unwrap()),
            ]
        );
        assert_eq!(t.last_hop().unwrap().0, 3);
    }

    #[test]
    fn discovery_delta_is_incremental_and_ordered() {
        let mut log = ProbeLog::default();
        log.records.push(rec(
            "2001:db8::1",
            "::a",
            ResponseKind::TimeExceeded,
            Some(1),
        ));
        log.records.push(rec(
            "2001:db8::1",
            "::b",
            ResponseKind::TimeExceeded,
            Some(2),
        ));
        let ts1 = TraceSet::from_log(&log);
        log.records.push(rec(
            "2001:db8::2",
            "::b",
            ResponseKind::TimeExceeded,
            Some(2),
        ));
        log.records.push(rec(
            "2001:db8::2",
            "::c",
            ResponseKind::TimeExceeded,
            Some(3),
        ));
        let ts2 = TraceSet::from_log(&log);

        let mut seen = AddrSet::new();
        let first = ts1.discovery_delta(&mut seen);
        let a: Ipv6Addr = "::a".parse().unwrap();
        let b: Ipv6Addr = "::b".parse().unwrap();
        let c: Ipv6Addr = "::c".parse().unwrap();
        assert_eq!(first, vec![a, b]);
        // Round two only pays for the genuinely new interface.
        let second = ts2.discovery_delta(&mut seen);
        assert_eq!(second, vec![c]);
        assert_eq!(seen.len(), 3);
        // A repeat round discovers nothing.
        assert!(ts2.discovery_delta(&mut seen).is_empty());
    }

    #[test]
    fn first_te_record_wins_per_ttl() {
        let mut log = ProbeLog::default();
        log.records.push(rec(
            "2001:db8::1",
            "::a",
            ResponseKind::TimeExceeded,
            Some(2),
        ));
        log.records.push(rec(
            "2001:db8::1",
            "::b",
            ResponseKind::TimeExceeded,
            Some(2),
        ));
        let ts = TraceSet::from_log(&log);
        let t = ts.get("2001:db8::1".parse().unwrap()).unwrap();
        assert_eq!(
            t.hops().collect::<Vec<_>>(),
            vec![(2, "::a".parse().unwrap())]
        );
    }

    #[test]
    fn unreached_path_len_is_deepest_hop() {
        let mut log = ProbeLog::default();
        log.records.push(rec(
            "2001:db8::2",
            "::a",
            ResponseKind::TimeExceeded,
            Some(5),
        ));
        let ts = TraceSet::from_log(&log);
        let t = ts.get("2001:db8::2".parse().unwrap()).unwrap();
        assert_eq!(t.reached_at(), None);
        assert_eq!(t.path_len(), Some(5));
    }

    #[test]
    fn targets_sorted_and_interner_shared() {
        let mut log = ProbeLog::default();
        log.records.push(rec(
            "2001:db8::9",
            "::a",
            ResponseKind::TimeExceeded,
            Some(1),
        ));
        log.records.push(rec(
            "2001:db8::1",
            "::a",
            ResponseKind::TimeExceeded,
            Some(1),
        ));
        let ts = TraceSet::from_log(&log);
        let targets: Vec<Ipv6Addr> = ts.targets().to_vec();
        assert_eq!(
            targets,
            vec![
                "2001:db8::1".parse::<Ipv6Addr>().unwrap(),
                "2001:db8::9".parse::<Ipv6Addr>().unwrap(),
            ]
        );
        // Both traces' hop cells share one interned id for ::a.
        assert_eq!(ts.interner().len(), 1);
        let ids: Vec<u32> = ts.iter().map(|t| t.hop_cells()[0].1).collect();
        assert_eq!(ids, vec![0, 0]);
    }

    fn log_named(vantage: &str, records: Vec<ResponseRecord>) -> ProbeLog {
        ProbeLog {
            vantage: vantage.into(),
            target_set: "merge-test".into(),
            records,
            ..Default::default()
        }
    }

    #[test]
    fn merge_unions_disjoint_targets_and_interners() {
        let a = TraceSet::from_log(&log_named(
            "V-A",
            vec![rec(
                "2001:db8::9",
                "::a",
                ResponseKind::TimeExceeded,
                Some(1),
            )],
        ));
        let b = TraceSet::from_log(&log_named(
            "V-B",
            vec![
                rec("2001:db8::1", "::b", ResponseKind::TimeExceeded, Some(2)),
                rec("2001:db8::1", "::a", ResponseKind::TimeExceeded, Some(3)),
            ],
        ));
        let m = a.merge(&b);
        assert_eq!(m.len(), 2);
        assert_eq!(&*m.vantage, "V-A+V-B");
        assert_eq!(&*m.target_set, "merge-test");
        // Targets sorted; ::1 (from b) precedes ::9 (from a).
        let t1 = m.view_at(0);
        assert_eq!(t1.target(), "2001:db8::1".parse::<Ipv6Addr>().unwrap());
        assert_eq!(&**t1.vantage(), "V-B");
        assert_eq!(
            t1.hops().collect::<Vec<_>>(),
            vec![
                (2, "::b".parse::<Ipv6Addr>().unwrap()),
                (3, "::a".parse::<Ipv6Addr>().unwrap())
            ]
        );
        let t9 = m.view_at(1);
        assert_eq!(&**t9.vantage(), "V-A");
        // Interner: a's ids first (::a = 0), b's new words after
        // (::b = 1); b's ::a remapped onto a's id.
        assert_eq!(m.interner().len(), 2);
        assert_eq!(m.interner().resolve(0), "::a".parse::<Ipv6Addr>().unwrap());
        assert_eq!(m.interner().resolve(1), "::b".parse::<Ipv6Addr>().unwrap());
        assert_eq!(m.sources().len(), 2);
    }

    #[test]
    fn merge_first_wins_on_shared_targets_but_interner_keeps_both() {
        let a = TraceSet::from_log(&log_named(
            "V-A",
            vec![rec(
                "2001:db8::1",
                "::a",
                ResponseKind::TimeExceeded,
                Some(1),
            )],
        ));
        let b = TraceSet::from_log(&log_named(
            "V-B",
            vec![rec(
                "2001:db8::1",
                "::b",
                ResponseKind::TimeExceeded,
                Some(2),
            )],
        ));
        let m = a.merge(&b);
        assert_eq!(m.len(), 1);
        let t = m.view_at(0);
        // a's trace wins wholesale...
        assert_eq!(
            t.hops().collect::<Vec<_>>(),
            vec![(1, "::a".parse::<Ipv6Addr>().unwrap())]
        );
        assert_eq!(&**t.vantage(), "V-A");
        // ...but b's responder still counts toward union discovery.
        assert_eq!(m.interner().len(), 2);
        // The hop-referenced interfaces exclude the dedup loser.
        assert_eq!(
            m.interface_addrs(),
            vec!["::a".parse::<Ipv6Addr>().unwrap()]
        );
        // Reversed merge order flips the winner.
        let r = b.merge(&a);
        assert_eq!(
            r.view_at(0).hops().collect::<Vec<_>>(),
            vec![(2, "::b".parse::<Ipv6Addr>().unwrap())]
        );
    }

    #[test]
    fn merge_is_idempotent_on_observations_and_sums_drops() {
        let mut records = vec![
            rec("2001:db8::1", "::a", ResponseKind::TimeExceeded, Some(1)),
            rec("2001:db8::2", "::b", ResponseKind::TimeExceeded, Some(2)),
            rec(
                "2001:db8::1",
                "2001:db8::1",
                ResponseKind::EchoReply,
                Some(3),
            ),
        ];
        let a = TraceSet::from_log(&log_named("V", records.clone()));
        assert_eq!(a.merge(&a), a, "self-merge must be a no-op");
        assert_eq!(&*a.merge(&a).vantage, "V");

        // The tamper counter is additive by design.
        records[0].target_cksum_ok = false;
        let d = TraceSet::from_log(&log_named("V", records));
        assert_eq!(d.rewritten_dropped, 1);
        assert_eq!(d.merge(&d).rewritten_dropped, 2);
    }

    #[test]
    fn canonical_reassigns_ids_in_walk_order() {
        // Build a set whose interner order (record order) differs from
        // trace-walk order: target ::9's record comes first, but ::1
        // sorts first.
        let ts = TraceSet::from_log(&log_named(
            "V",
            vec![
                rec("2001:db8::9", "::b", ResponseKind::TimeExceeded, Some(1)),
                rec("2001:db8::1", "::a", ResponseKind::TimeExceeded, Some(1)),
            ],
        ));
        assert_eq!(ts.interner().resolve(0), "::b".parse::<Ipv6Addr>().unwrap());
        let c = ts.canonical();
        // Walk order visits ::1's trace first, so ::a takes id 0.
        assert_eq!(c.interner().resolve(0), "::a".parse::<Ipv6Addr>().unwrap());
        assert_eq!(c.interner().resolve(1), "::b".parse::<Ipv6Addr>().unwrap());
        // Same observations either way.
        for (t, u) in ts.iter().zip(c.iter()) {
            assert_eq!(t.target(), u.target());
            assert_eq!(t.hops().collect::<Vec<_>>(), u.hops().collect::<Vec<_>>());
        }
        // Canonicalizing is itself idempotent.
        assert_eq!(c.canonical(), c);
    }

    #[test]
    fn merge_all_folds_left_and_handles_empty() {
        assert!(TraceSet::merge_all(std::iter::empty::<&TraceSet>()).is_empty());
        let a = TraceSet::from_log(&log_named(
            "A",
            vec![rec(
                "2001:db8::1",
                "::a",
                ResponseKind::TimeExceeded,
                Some(1),
            )],
        ));
        let b = TraceSet::from_log(&log_named(
            "B",
            vec![rec(
                "2001:db8::2",
                "::b",
                ResponseKind::TimeExceeded,
                Some(1),
            )],
        ));
        let c = TraceSet::from_log(&log_named(
            "C",
            vec![rec(
                "2001:db8::3",
                "::c",
                ResponseKind::TimeExceeded,
                Some(1),
            )],
        ));
        let m = TraceSet::merge_all([&a, &b, &c]);
        assert_eq!(m.len(), 3);
        assert_eq!(&*m.vantage, "A+B+C");
        assert_eq!(m, a.merge(&b).merge(&c));
        let names: Vec<String> = m.iter().map(|t| t.vantage().to_string()).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }

    #[test]
    fn merging_with_an_empty_set_leaves_no_phantom_provenance() {
        let b = TraceSet::from_log(&log_named(
            "V-B",
            vec![rec(
                "2001:db8::1",
                "::a",
                ResponseKind::TimeExceeded,
                Some(1),
            )],
        ));
        for m in [TraceSet::default().merge(&b), b.merge(&TraceSet::default())] {
            assert_eq!(m, b, "empty side must not change observations");
            assert_eq!(&*m.vantage, "V-B");
            let sources = m.sources();
            assert_eq!(sources.len(), 1, "no phantom nameless vantage");
            assert_eq!(&*sources[0], "V-B");
            assert_eq!(&**m.view_at(0).vantage(), "V-B");
        }
    }

    #[test]
    fn merge_all_pairwise_reduction_equals_left_fold() {
        // Five sets (odd count exercises the carried chunk), with
        // repeated vantage names and overlapping targets so dedup,
        // provenance and name joining are all live.
        let sets: Vec<TraceSet> = (0..5)
            .map(|i| {
                TraceSet::from_log(&log_named(
                    if i % 2 == 0 { "V-A" } else { "V-B" },
                    vec![
                        rec(
                            &format!("2001:db8::{}", i + 1),
                            &format!("::{}", i + 1),
                            ResponseKind::TimeExceeded,
                            Some(1),
                        ),
                        rec("2001:db8::77", "::aa", ResponseKind::TimeExceeded, Some(2)),
                    ],
                ))
            })
            .collect();
        let fold = sets[1..]
            .iter()
            .fold(sets[0].clone(), |acc, s| acc.merge(s));
        let pairwise = TraceSet::merge_all(&sets);
        assert_eq!(pairwise, fold);
        // Bit-identical including raw interner ids (PartialEq covers
        // the words; spot-check an id too).
        assert_eq!(pairwise.interner().words(), fold.interner().words());
        // Repeated vantage names never duplicate in the joined
        // identity or the provenance table.
        assert_eq!(&*pairwise.vantage, "V-A+V-B");
        assert_eq!(pairwise.sources().len(), 2);
        // The shared target's trace belongs to the first set.
        let shared = pairwise.get("2001:db8::77".parse().unwrap()).unwrap();
        assert_eq!(&**shared.vantage(), "V-A");
    }

    #[test]
    fn resolver_augmentations() {
        let mut bgp = BgpTable::new();
        bgp.announce("2001:db8::/32".parse().unwrap(), Asn(1));
        let extra = vec![("2a10::/32".parse().unwrap(), Asn(2))];
        let r = AsnResolver::new(bgp, extra, &[(Asn(1), Asn(51))]);
        assert_eq!(r.origin("2001:db8::1".parse().unwrap()), Some(Asn(1)));
        assert_eq!(r.origin("2a10::9".parse().unwrap()), Some(Asn(2)));
        assert_eq!(r.origin("3fff::1".parse().unwrap()), None);
        assert!(r.same_org(Asn(1), Asn(51)));
        assert!(!r.same_org(Asn(1), Asn(2)));
    }
}
