//! Sharding the columnar [`TraceSet`] by target prefix.
//!
//! A single flat `TraceSet` serves one campaign well, but a
//! longitudinal store accumulating many campaigns wants two things the
//! flat layout can't give: `merge`/`canonical` that scale across cores,
//! and an on-disk unit small enough to rewrite incrementally
//! ([`crate::snapshot`]'s per-shard segments). [`ShardedTraceSet`]
//! provides both by routing every target through a **fixed
//! prefix→shard function** ([`ShardRoute`]): all addresses in one /64
//! land in the same shard (a trace never straddles shards, and the
//! same target routes identically in every set), so per-shard
//! `merge`/`merge_all`/`canonical` are independent and fan out across
//! the same work-queue pattern the campaign drivers use.
//!
//! Each shard is a complete, self-contained `TraceSet` — its own
//! interner, its own (sorted) target subset — so every existing
//! analysis pass runs on a shard unchanged. [`to_trace_set`] folds the
//! disjoint shards back into one flat set; the pinned contract
//! (property-tested in `tests/shard_props.rs`) is
//!
//! ```text
//! ShardedTraceSet::from_set(&ts, k).to_trace_set().canonical() == ts.canonical()
//! ```
//!
//! for any shard count, and likewise sharded `merge_all` against flat
//! `merge_all`. Only interner id *assignment* may differ between the
//! two assembly histories, which is exactly what [`TraceSet::canonical`]
//! normalizes.
//!
//! [`to_trace_set`]: ShardedTraceSet::to_trace_set

use crate::builder::TraceSetBuilder;
use crate::intern::AddrInterner;
use crate::traces::{TraceMeta, TraceSet, TraceView};
use std::net::Ipv6Addr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use yarrp6::addrset::AddrSet;
use yarrp6::ResponseRecord;

/// One splitmix64 round — the same mixer `yarrp6::addrset` and
/// `analysis::intern` use for address words.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The fixed prefix→shard routing function.
///
/// A target's shard is `splitmix64(top 64 bits) mod shards`: routing
/// depends only on the /64 prefix — the paper's unit of target
/// generation — so every address of one subnet stays in one shard
/// (locality for subnet inference), while the mixer spreads clustered
/// prefix allocations evenly across shards. The function is pure and
/// versioned by the snapshot format: two processes with the same shard
/// count route identically, which is what makes per-shard merge of
/// independently built sets sound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRoute {
    shards: u32,
}

impl ShardRoute {
    /// A route over `shards` shards (at least 1).
    pub fn new(shards: usize) -> ShardRoute {
        ShardRoute {
            shards: shards.max(1) as u32,
        }
    }

    /// Number of shards this route spreads over.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// The shard `addr` routes to. Constant per /64 prefix.
    #[inline]
    pub fn shard_of(&self, addr: Ipv6Addr) -> usize {
        if self.shards == 1 {
            return 0;
        }
        (mix64((u128::from(addr) >> 64) as u64) % self.shards as u64) as usize
    }
}

/// Runs `f(0..n)` on the work-queue thread pool (the
/// `yarrp6::campaign` pattern: fixed pool, atomic claim counter,
/// results restored to input order). Falls back to the calling thread
/// for a single shard.
fn fan_out<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, v) in rx {
        out[i] = Some(v);
    }
    out.into_iter()
        .map(|v| v.expect("shard worker lost"))
        .collect()
}

/// A [`TraceSet`] partitioned into independent per-shard stores by the
/// fixed [`ShardRoute`]. See the module docs for the contracts.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedTraceSet {
    route: ShardRoute,
    /// One complete `TraceSet` per shard; shard `s` holds exactly the
    /// targets with `route.shard_of(t) == s`, each with its own
    /// interner. `rewritten_dropped` (a set-level counter with no
    /// per-target home) lives on shard 0 by convention.
    shards: Vec<TraceSet>,
}

impl ShardedTraceSet {
    /// Partitions `ts` into `shards` shards. Each shard re-interns its
    /// own responders in trace-walk order; shard target lists stay
    /// sorted because a subsequence of a sorted list is sorted.
    pub fn from_set(ts: &TraceSet, shards: usize) -> ShardedTraceSet {
        Self::with_route(ts, ShardRoute::new(shards))
    }

    /// [`from_set`](Self::from_set) with an explicit route.
    pub fn with_route(ts: &TraceSet, route: ShardRoute) -> ShardedTraceSet {
        let n = route.shards();
        // Bucket trace indices first so each shard's build is a single
        // in-order walk (and can fan out if ever needed).
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &t) in ts.targets.iter().enumerate() {
            buckets[route.shard_of(t)].push(i);
        }
        let mut shards: Vec<TraceSet> = fan_out(n, |s| {
            let mut out = TraceSet {
                vantage: ts.vantage.clone(),
                target_set: ts.target_set.clone(),
                rewritten_dropped: if s == 0 { ts.rewritten_dropped } else { 0 },
                interner: AddrInterner::new(),
                targets: Vec::with_capacity(buckets[s].len()),
                metas: Vec::with_capacity(buckets[s].len()),
                hops: Vec::new(),
                unreach: Vec::new(),
                sources: ts.sources.clone(),
                prov: Vec::new(),
            };
            for &i in &buckets[s] {
                let m = &ts.metas[i];
                let hop_off = out.hops.len() as u32;
                for &(ttl, id) in &ts.hops[m.hop_off as usize..(m.hop_off + m.hop_len) as usize] {
                    let nid = out.interner.intern(ts.interner.resolve(id));
                    out.hops.push((ttl, nid));
                }
                let unreach_off = out.unreach.len() as u32;
                for &(ttl, id) in
                    &ts.unreach[m.unreach_off as usize..(m.unreach_off + m.unreach_len) as usize]
                {
                    let nid = out.interner.intern(ts.interner.resolve(id));
                    out.unreach.push((ttl, nid));
                }
                out.targets.push(ts.targets[i]);
                out.metas.push(TraceMeta {
                    hop_off,
                    hop_len: m.hop_len,
                    unreach_off,
                    unreach_len: m.unreach_len,
                    reached_at: m.reached_at,
                });
                if !ts.prov.is_empty() {
                    out.prov.push(ts.prov[i]);
                }
            }
            out
        });
        // Interner words referenced by no surviving row — dedup losers
        // kept deliberately by `merge`/`canonical` because they are
        // real observed responders (`discovery_delta` counts them) —
        // have no target to route by; they live in shard 0, beside
        // `rewritten_dropped`, sorted ascending for determinism.
        let mut referenced = vec![false; ts.interner.len()];
        for &(_, id) in ts.hops.iter().chain(&ts.unreach) {
            referenced[id as usize] = true;
        }
        let mut orphans: Vec<u128> = ts
            .interner
            .words()
            .iter()
            .zip(&referenced)
            .filter(|&(_, &r)| !r)
            .map(|(&w, _)| w)
            .collect();
        orphans.sort_unstable();
        for w in orphans {
            shards[0].interner.intern(Ipv6Addr::from(w));
        }
        ShardedTraceSet { route, shards }
    }

    /// Reassembles a sharded set from already-partitioned shards (the
    /// snapshot reader's path). The caller guarantees each shard's
    /// targets route to it.
    pub(crate) fn from_parts(route: ShardRoute, shards: Vec<TraceSet>) -> ShardedTraceSet {
        debug_assert_eq!(route.shards(), shards.len());
        ShardedTraceSet { route, shards }
    }

    /// The routing function this set was partitioned by.
    pub fn route(&self) -> ShardRoute {
        self.route
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard stores, in shard order.
    pub fn shards(&self) -> &[TraceSet] {
        &self.shards
    }

    /// One shard's store.
    pub fn shard(&self, s: usize) -> &TraceSet {
        &self.shards[s]
    }

    /// Total traces across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True when no shard holds a trace.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// The trace probed toward `target`, routed straight to its shard
    /// (one hash, one binary search — no cross-shard scan).
    pub fn get(&self, target: Ipv6Addr) -> Option<TraceView<'_>> {
        self.shards[self.route.shard_of(target)].get(target)
    }

    /// Merges with `other` shard-by-shard in parallel. Sound because
    /// the shared route puts any given target in the same shard on
    /// both sides, so per-shard [`TraceSet::merge`] sees exactly the
    /// conflicts the flat merge would. Panics when the routes differ —
    /// re-shard one side first.
    pub fn merge(&self, other: &ShardedTraceSet) -> ShardedTraceSet {
        assert_eq!(
            self.route, other.route,
            "cannot merge sharded sets with different routes"
        );
        let shards = fan_out(self.shards.len(), |s| {
            self.shards[s].merge(&other.shards[s])
        });
        ShardedTraceSet {
            route: self.route,
            shards,
        }
    }

    /// Merges many sharded sets: shard `s` of the result is the
    /// single-pass k-way union over every input's shard `s`, all
    /// shards in parallel on the work-queue pool. Bit-identical per
    /// shard to `TraceSet::merge_all`'s pairwise fold — but where the
    /// fold copies each column O(log k) times, the k-way pass copies
    /// each surviving cell once, holding one small id-remap table per
    /// input (cheap precisely because shard interners are a fraction
    /// of the flat set's — the flat path can't afford k large tables
    /// hot at once). After [`canonical`](Self::canonical) this equals
    /// sharding the flat `merge_all` of the unsharded inputs. Panics
    /// on mixed routes.
    pub fn merge_all(sets: &[ShardedTraceSet]) -> ShardedTraceSet {
        let Some(first) = sets.first() else {
            return ShardedTraceSet::from_set(&TraceSet::default(), 1);
        };
        let route = first.route;
        assert!(
            sets.iter().all(|s| s.route == route),
            "cannot merge sharded sets with different routes"
        );
        let shards = fan_out(route.shards(), |s| {
            let per_shard: Vec<&TraceSet> = sets.iter().map(|set| &set.shards[s]).collect();
            TraceSet::merge_kway(&per_shard)
        });
        ShardedTraceSet { route, shards }
    }

    /// Canonicalizes every shard ([`TraceSet::canonical`]) in
    /// parallel: each shard's interner ids are reassigned by its
    /// deterministic trace walk, making sets from different assembly
    /// histories comparable shard-by-shard.
    pub fn canonical(&self) -> ShardedTraceSet {
        let shards = fan_out(self.shards.len(), |s| self.shards[s].canonical());
        ShardedTraceSet {
            route: self.route,
            shards,
        }
    }

    /// Folds the shards back into one flat [`TraceSet`]
    /// (`merge_all` in shard order — the shards' target sets are
    /// disjoint, so this is a pure union). Canonical forms satisfy
    /// `from_set(&ts, k).to_trace_set().canonical() == ts.canonical()`.
    pub fn to_trace_set(&self) -> TraceSet {
        TraceSet::merge_all(&self.shards)
    }

    /// Walks every shard's interner in shard order, inserting into
    /// `seen` and returning the addresses not previously present —
    /// [`TraceSet::discovery_delta`] lifted over the sharded store.
    /// Deterministic, but the order is shard-major (not the flat set's
    /// first-discovery order).
    pub fn discovery_delta(&self, seen: &mut AddrSet) -> Vec<Ipv6Addr> {
        let mut fresh = Vec::new();
        for shard in &self.shards {
            fresh.extend(shard.discovery_delta(seen));
        }
        fresh
    }

    /// All distinct interface words across shards, ascending (shards
    /// may share responders — a router's interface is reachable on
    /// paths toward many prefixes — so this dedups).
    pub fn interface_words(&self) -> Vec<u128> {
        let per: Vec<Vec<u128>> = fan_out(self.shards.len(), |s| self.shards[s].interface_words());
        let mut all: Vec<u128> = per.into_iter().flatten().collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// [`interface_words`](Self::interface_words) as addresses.
    pub fn interface_addrs(&self) -> Vec<Ipv6Addr> {
        self.interface_words()
            .into_iter()
            .map(Ipv6Addr::from)
            .collect()
    }

    /// Interfaces in `self` that a prior snapshot had not seen — the
    /// day-over-day discovery delta between two persisted stores.
    pub fn interfaces_since(&self, prior: &ShardedTraceSet) -> Vec<Ipv6Addr> {
        let mut seen = AddrSet::new();
        prior.discovery_delta(&mut seen);
        self.discovery_delta(&mut seen)
    }

    /// Targets whose observed trace differs between `prior` and
    /// `self` — changed path, changed reachability, or a target only
    /// one side knows. Sorted ascending. This is the snapshot-vs-
    /// snapshot form of change detection the delta-seeded adaptive
    /// loop keys on.
    pub fn changed_targets(&self, prior: &ShardedTraceSet) -> Vec<Ipv6Addr> {
        let mut changed = Vec::new();
        for shard in &self.shards {
            for view in shard.iter() {
                match prior.get(view.target()) {
                    Some(old) => {
                        if !view.same_observations(&old) {
                            changed.push(view.target());
                        }
                    }
                    None => changed.push(view.target()),
                }
            }
        }
        for shard in &prior.shards {
            for view in shard.iter() {
                if self.get(view.target()).is_none() {
                    changed.push(view.target());
                }
            }
        }
        changed.sort_unstable();
        changed.dedup();
        changed
    }
}

/// A record-stream consumer that routes each record to a per-shard
/// [`TraceSetBuilder`] as it arrives — the shard-aware twin of the
/// flat builder, for sinks that want the campaign to finish already
/// partitioned. `finish` yields per-shard sets whose **canonical**
/// forms equal [`ShardedTraceSet::from_set`] of the flat build (id
/// assignment differs: the flat builder interns in global receive
/// order, each shard builder in its own).
pub struct ShardedTraceSetBuilder {
    route: ShardRoute,
    builders: Vec<TraceSetBuilder>,
}

impl ShardedTraceSetBuilder {
    /// A builder routing over `shards` shards.
    pub fn new(shards: usize) -> ShardedTraceSetBuilder {
        let route = ShardRoute::new(shards);
        ShardedTraceSetBuilder {
            route,
            builders: (0..route.shards())
                .map(|_| TraceSetBuilder::new())
                .collect(),
        }
    }

    /// Stamps the campaign identity on every shard (shards of one set
    /// share vantage and target-set names).
    pub fn with_identity(
        mut self,
        vantage: std::sync::Arc<str>,
        target_set: std::sync::Arc<str>,
    ) -> Self {
        self.builders = self
            .builders
            .into_iter()
            .map(|b| b.with_identity(vantage.clone(), target_set.clone()))
            .collect();
        self
    }

    /// Routes one record to its target's shard.
    pub fn push(&mut self, r: &ResponseRecord) {
        self.builders[self.route.shard_of(r.target)].push(r);
    }

    /// Routes a chunk record-by-record (routing is per-target, so a
    /// chunk spans shards).
    pub fn push_chunk(&mut self, chunk: &[ResponseRecord]) {
        for r in chunk {
            self.push(r);
        }
    }

    /// Records pushed so far, across all shards.
    pub fn records_seen(&self) -> u64 {
        self.builders.iter().map(|b| b.records_seen()).sum()
    }

    /// Finishes every shard. Checksum-rewritten drop counts (set-level,
    /// no per-target home) consolidate onto shard 0, matching the
    /// [`ShardedTraceSet::from_set`] convention.
    pub fn finish(self) -> ShardedTraceSet {
        let mut shards: Vec<TraceSet> = self.builders.into_iter().map(|b| b.finish()).collect();
        let total: u64 = shards.iter().map(|s| s.rewritten_dropped).sum();
        for s in &mut shards {
            s.rewritten_dropped = 0;
        }
        shards[0].rewritten_dropped = total;
        ShardedTraceSet {
            route: self.route,
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yarrp6::{ProbeLog, ResponseKind};

    fn rec(target: &str, responder: &str, ttl: u8, recv_us: u64) -> ResponseRecord {
        ResponseRecord {
            target: target.parse().unwrap(),
            responder: responder.parse().unwrap(),
            kind: ResponseKind::TimeExceeded,
            probe_ttl: Some(ttl),
            rtt_us: Some(1),
            recv_us,
            target_cksum_ok: true,
        }
    }

    fn sample_set() -> TraceSet {
        // Targets across several /64s so the route actually splits.
        let mut records = Vec::new();
        for p in 0u64..12 {
            let t = format!("2001:db8:{p:x}::1");
            records.push(rec(&t, &format!("2001:db8:ffff::{:x}", p % 5), 1, p));
            records.push(rec(&t, &format!("2001:db8:fffe::{:x}", p % 3), 2, 100 + p));
        }
        let mut log = ProbeLog {
            vantage: "V".into(),
            target_set: "S".into(),
            records,
            ..Default::default()
        };
        log.sort_by_recv();
        TraceSet::from_log(&log)
    }

    #[test]
    fn route_is_prefix_constant() {
        let route = ShardRoute::new(8);
        let a: Ipv6Addr = "2001:db8:7::1".parse().unwrap();
        let b: Ipv6Addr = "2001:db8:7::ffff".parse().unwrap();
        assert_eq!(route.shard_of(a), route.shard_of(b));
    }

    #[test]
    fn from_set_round_trips_through_canonical() {
        let ts = sample_set();
        for k in [1, 2, 3, 8] {
            let sharded = ShardedTraceSet::from_set(&ts, k);
            assert_eq!(sharded.len(), ts.len());
            assert_eq!(
                sharded.to_trace_set().canonical(),
                ts.canonical(),
                "shard count {k}"
            );
            // Every shard holds only its own targets.
            for (s, shard) in sharded.shards().iter().enumerate() {
                for &t in shard.targets() {
                    assert_eq!(sharded.route().shard_of(t), s);
                }
            }
        }
    }

    #[test]
    fn get_routes_to_the_right_shard() {
        let ts = sample_set();
        let sharded = ShardedTraceSet::from_set(&ts, 4);
        for view in ts.iter() {
            let got = sharded.get(view.target()).expect("target present");
            assert!(got.same_observations(&view));
        }
        assert!(sharded.get("2001:db8:aaaa::1".parse().unwrap()).is_none());
    }

    #[test]
    fn sharded_merge_matches_flat_merge() {
        let ts = sample_set();
        // Split the set into two halves by target parity and merge back.
        let halves: Vec<TraceSet> = (0..2)
            .map(|par| {
                let keep: Vec<_> = ts
                    .iter()
                    .filter(|v| (u128::from(v.target()) as usize) % 2 == par)
                    .map(|v| v.index())
                    .collect();
                let mut log = ProbeLog {
                    vantage: "V".into(),
                    target_set: "S".into(),
                    ..Default::default()
                };
                for i in keep {
                    let v = ts.view_at(i);
                    for (ttl, hop) in v.hops() {
                        log.records
                            .push(rec(&v.target().to_string(), &hop.to_string(), ttl, 0));
                    }
                }
                log.sort_by_recv();
                TraceSet::from_log(&log)
            })
            .collect();
        let flat = TraceSet::merge_all(&halves).canonical();
        let sharded: Vec<ShardedTraceSet> = halves
            .iter()
            .map(|h| ShardedTraceSet::from_set(h, 4))
            .collect();
        let merged = ShardedTraceSet::merge_all(&sharded);
        assert_eq!(merged.to_trace_set().canonical(), flat);
    }

    #[test]
    fn discovery_matches_flat_interfaces() {
        let ts = sample_set();
        let sharded = ShardedTraceSet::from_set(&ts, 8);
        assert_eq!(sharded.interface_words(), {
            let mut w = ts.interface_words();
            w.sort_unstable();
            w
        });
        let mut seen = AddrSet::new();
        let fresh = sharded.discovery_delta(&mut seen);
        assert_eq!(fresh.len(), ts.interner().len());
        // Second walk discovers nothing.
        assert!(sharded.discovery_delta(&mut seen).is_empty());
    }

    #[test]
    fn changed_targets_detects_differences() {
        let ts = sample_set();
        let a = ShardedTraceSet::from_set(&ts, 4);
        assert!(a.changed_targets(&a).is_empty());
        // A prior missing some targets: those count as changed.
        let mut log = ProbeLog {
            vantage: "V".into(),
            target_set: "S".into(),
            ..Default::default()
        };
        for v in ts.iter().take(5) {
            for (ttl, hop) in v.hops() {
                log.records
                    .push(rec(&v.target().to_string(), &hop.to_string(), ttl, 0));
            }
        }
        log.sort_by_recv();
        let prior = ShardedTraceSet::from_set(&TraceSet::from_log(&log), 4);
        let changed = a.changed_targets(&prior);
        assert_eq!(changed.len(), ts.len() - 5);
    }

    #[test]
    fn builder_routing_matches_from_set_canonically() {
        let mut records = Vec::new();
        for p in 0u64..12 {
            let t = format!("2001:db8:{p:x}::1");
            records.push(rec(&t, &format!("2001:db8:ffff::{:x}", p % 5), 1, p));
        }
        let mut log = ProbeLog {
            vantage: "V".into(),
            target_set: "S".into(),
            records,
            ..Default::default()
        };
        log.sort_by_recv();
        let flat = TraceSet::from_log(&log);

        let mut builder = ShardedTraceSetBuilder::new(4).with_identity("V".into(), "S".into());
        builder.push_chunk(&log.records);
        let built = builder.finish();
        let want = ShardedTraceSet::from_set(&flat, 4);
        assert_eq!(built.canonical(), want.canonical());
    }
}
