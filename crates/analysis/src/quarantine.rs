//! Trace quarantine: scrubbing hostile-responder artifacts out of a
//! [`TraceSet`] before its interfaces feed anything downstream.
//!
//! The decoder ([`yarrp6::record::decode_response`]) already rejects
//! packets that are *provably* fabricated — bad checksums, spoofed
//! Time Exceeded messages quoting an unexhausted hop limit, truncated
//! garbage. What survives decoding is well-formed traffic from real
//! on-path devices that *lie at the trace level*: zombie middleboxes
//! answering for every TTL, duplicate-storm boxes shadowing their
//! neighbors, and TTL-rewriting routers whose quoted probe TTL places
//! them at depths they never occupied. Those lies are invisible per
//! packet and only emerge as cross-trace structure, which is what this
//! pass inspects:
//!
//! * **loop rule** — a responder appearing at
//!   [`QuarantineConfig::min_loop_repeats`] or more distinct TTLs of
//!   *one* trace is condemned. Per-flow ECMP pins a target's path, so a
//!   clean interface occupies exactly one depth per trace; only a
//!   device answering for hops it does not occupy (zombie, storm) can
//!   repeat.
//! * **span rule** — a responder whose observed probe-TTL range across
//!   *all* traces exceeds [`QuarantineConfig::max_ttl_span`] is
//!   condemned. Honest depths vary a little across targets and
//!   vantages; a TTL-rewriting router smears itself across the whole
//!   TTL space.
//! * **implausible TTL** — individual hop/unreachable cells beyond
//!   [`QuarantineConfig::max_plausible_ttl`] are dropped even when
//!   their responder survives.
//! * **beyond-destination** — a Time Exceeded deeper than the TTL at
//!   which the destination itself answered contradicts the probe's own
//!   fate; such cells are dropped.
//!
//! Condemnation is *global*: once an address is condemned anywhere,
//! every cell it owns is scrubbed from every set
//! ([`quarantine_all`] evaluates the rules jointly across vantages).
//! A set with nothing to scrub is returned as a verbatim clone — the
//! clean-input path is bit-identical, pinned by tests.

use crate::intern::AddrInterner;
use crate::traces::{TraceMeta, TraceSet};
use std::collections::BTreeSet;
use std::net::Ipv6Addr;

/// Thresholds for the quarantine rules. The defaults are conservative
/// for this simulator's topologies (depths well under 24) and for
/// Paris-style probing (per-target flow keys, so one depth per
/// responder per trace).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuarantineConfig {
    /// Distinct TTLs within one trace at which a responder must appear
    /// to be condemned as looping. `2` assumes Paris-style probing;
    /// raise it when probing varies flow labels per TTL.
    pub min_loop_repeats: u32,
    /// Maximum credible spread between a responder's shallowest and
    /// deepest observed probe TTL across all traces and vantages.
    pub max_ttl_span: u8,
    /// Hop/unreachable cells with a probe TTL above this are dropped
    /// outright.
    pub max_plausible_ttl: u8,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig {
            min_loop_repeats: 2,
            max_ttl_span: 24,
            max_plausible_ttl: 40,
        }
    }
}

/// What a quarantine pass found and removed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Responders condemned by the loop rule.
    pub looping_responders: u64,
    /// Responders condemned by the span rule (not already looping).
    pub wide_span_responders: u64,
    /// Every condemned address, ascending — the union of both rules.
    pub condemned: Vec<Ipv6Addr>,
    /// Hop cells removed because their responder was condemned.
    pub condemned_hops_dropped: u64,
    /// Hop cells removed for an implausible or beyond-destination TTL
    /// while their responder survived.
    pub implausible_hops_dropped: u64,
    /// Destination Unreachable cells removed (condemned responder or
    /// implausible TTL).
    pub unreach_dropped: u64,
    /// Traces that lost at least one cell.
    pub traces_touched: u64,
}

impl QuarantineReport {
    /// Did the pass remove anything at all? A clean report guarantees
    /// the returned sets are verbatim clones of their inputs.
    pub fn is_clean(&self) -> bool {
        self.condemned.is_empty()
            && self.condemned_hops_dropped == 0
            && self.implausible_hops_dropped == 0
            && self.unreach_dropped == 0
    }

    /// Total cells removed across all classes.
    pub fn cells_dropped(&self) -> u64 {
        self.condemned_hops_dropped + self.implausible_hops_dropped + self.unreach_dropped
    }
}

/// Quarantines one set in isolation: rule evidence comes only from the
/// set itself. Equivalent to `quarantine_all(&[set], cfg)`.
pub fn quarantine(set: &TraceSet, cfg: &QuarantineConfig) -> (TraceSet, QuarantineReport) {
    let (mut cleaned, report) = quarantine_all(&[set], cfg);
    (cleaned.pop().expect("one input, one output"), report)
}

/// Quarantines many sets jointly: the loop and span rules pool their
/// evidence across every set (a router lying toward one vantage is
/// condemned toward all), then each set is scrubbed independently.
/// Outputs are index-aligned with inputs; a set that loses nothing is
/// returned as a verbatim clone (bit-identical, including interner id
/// assignment).
pub fn quarantine_all(
    sets: &[&TraceSet],
    cfg: &QuarantineConfig,
) -> (Vec<TraceSet>, QuarantineReport) {
    // Pass 1: per-responder evidence, keyed by address word so ids
    // from different interners pool correctly.
    let mut span: std::collections::HashMap<u128, (u8, u8)> = std::collections::HashMap::new();
    let mut looping: BTreeSet<u128> = BTreeSet::new();
    // Per-trace responder repeat counts; reused across traces with an
    // epoch so the map is allocated once per set.
    for set in sets {
        let mut seen_in_trace: std::collections::HashMap<u32, u32> =
            std::collections::HashMap::new();
        for t in set.iter() {
            seen_in_trace.clear();
            for &(ttl, id) in t.hop_cells() {
                let w = set.interner().resolve_word(id);
                let e = span.entry(w).or_insert((ttl, ttl));
                e.0 = e.0.min(ttl);
                e.1 = e.1.max(ttl);
                let c = seen_in_trace.entry(id).or_insert(0);
                *c += 1;
                if *c >= cfg.min_loop_repeats {
                    looping.insert(w);
                }
            }
        }
    }
    let mut wide: BTreeSet<u128> = BTreeSet::new();
    for (&w, &(lo, hi)) in &span {
        if hi - lo > cfg.max_ttl_span && !looping.contains(&w) {
            wide.insert(w);
        }
    }
    let condemned: BTreeSet<u128> = looping.union(&wide).copied().collect();

    let mut report = QuarantineReport {
        looping_responders: looping.len() as u64,
        wide_span_responders: wide.len() as u64,
        condemned: condemned.iter().map(|&w| Ipv6Addr::from(w)).collect(),
        ..QuarantineReport::default()
    };

    // Pass 2: scrub each set.
    let cleaned = sets
        .iter()
        .map(|set| scrub(set, cfg, &condemned, &mut report))
        .collect();
    (cleaned, report)
}

/// Rebuilds one set without the condemned/implausible cells. When no
/// cell is dropped the input is cloned verbatim; otherwise the
/// surviving cells are re-interned in walk order (traces in target
/// order, hops then unreachables), so the cleaned interner holds *only*
/// addresses still backed by an observation — nothing condemned can
/// leak out through `discovery_delta` or `interface_words`.
fn scrub(
    set: &TraceSet,
    cfg: &QuarantineConfig,
    condemned: &BTreeSet<u128>,
    report: &mut QuarantineReport,
) -> TraceSet {
    let keep_hop = |ttl: u8, id: u32, reached_at: Option<u8>| -> Option<bool> {
        // Some(true)=keep, Some(false)=implausible drop, None=condemned.
        let w = set.interner().resolve_word(id);
        if condemned.contains(&w) {
            return None;
        }
        let beyond = matches!(reached_at, Some(r) if ttl > r);
        Some(ttl <= cfg.max_plausible_ttl && !beyond)
    };
    let keep_unreach = |ttl: u8, id: u32| -> bool {
        let w = set.interner().resolve_word(id);
        !condemned.contains(&w) && ttl <= cfg.max_plausible_ttl
    };

    // Dry pass: is there anything to drop at all?
    let mut dirty = false;
    'scan: for t in set.iter() {
        let r = t.reached_at();
        for &(ttl, id) in t.hop_cells() {
            if keep_hop(ttl, id, r) != Some(true) {
                dirty = true;
                break 'scan;
            }
        }
        for &(ttl, id) in t.unreachable_cells() {
            if !keep_unreach(ttl, id) {
                dirty = true;
                break 'scan;
            }
        }
    }
    if !dirty {
        return set.clone();
    }

    let mut interner = AddrInterner::with_capacity(set.interner().len());
    let mut remap: Vec<u32> = vec![u32::MAX; set.interner().len()];
    let intern = |id: u32, interner: &mut AddrInterner, remap: &mut Vec<u32>| -> u32 {
        let slot = &mut remap[id as usize];
        if *slot == u32::MAX {
            *slot = interner.intern(set.interner().resolve(id));
        }
        *slot
    };

    let mut out = TraceSet {
        vantage: set.vantage.clone(),
        target_set: set.target_set.clone(),
        rewritten_dropped: set.rewritten_dropped,
        interner: AddrInterner::new(),
        targets: set.targets.clone(),
        metas: Vec::with_capacity(set.metas.len()),
        hops: Vec::with_capacity(set.hops.len()),
        unreach: Vec::with_capacity(set.unreach.len()),
        sources: set.sources.clone(),
        prov: set.prov.clone(),
    };
    for t in set.iter() {
        let r = t.reached_at();
        let hop_off = out.hops.len() as u32;
        let mut touched = false;
        for &(ttl, id) in t.hop_cells() {
            match keep_hop(ttl, id, r) {
                Some(true) => {
                    let nid = intern(id, &mut interner, &mut remap);
                    out.hops.push((ttl, nid));
                }
                Some(false) => {
                    report.implausible_hops_dropped += 1;
                    touched = true;
                }
                None => {
                    report.condemned_hops_dropped += 1;
                    touched = true;
                }
            }
        }
        let unreach_off = out.unreach.len() as u32;
        for &(ttl, id) in t.unreachable_cells() {
            if keep_unreach(ttl, id) {
                let nid = intern(id, &mut interner, &mut remap);
                out.unreach.push((ttl, nid));
            } else {
                report.unreach_dropped += 1;
                touched = true;
            }
        }
        if touched {
            report.traces_touched += 1;
        }
        out.metas.push(TraceMeta {
            hop_off,
            hop_len: out.hops.len() as u32 - hop_off,
            unreach_off,
            unreach_len: out.unreach.len() as u32 - unreach_off,
            reached_at: r,
        });
    }
    out.interner = interner;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use yarrp6::{ProbeLog, ResponseKind, ResponseRecord};

    fn rec(target: &str, responder: &str, kind: ResponseKind, ttl: Option<u8>) -> ResponseRecord {
        ResponseRecord {
            target: target.parse().unwrap(),
            responder: responder.parse().unwrap(),
            kind,
            probe_ttl: ttl,
            rtt_us: Some(1),
            recv_us: 0,
            target_cksum_ok: true,
        }
    }

    fn set_of(records: Vec<ResponseRecord>) -> TraceSet {
        TraceSet::from_log(&ProbeLog {
            vantage: Arc::from("V"),
            target_set: Arc::from("q-test"),
            records,
            ..ProbeLog::default()
        })
    }

    #[test]
    fn clean_set_comes_back_bit_identical() {
        let set = set_of(vec![
            rec("2001:db8::1", "::a", ResponseKind::TimeExceeded, Some(1)),
            rec("2001:db8::1", "::b", ResponseKind::TimeExceeded, Some(2)),
            rec(
                "2001:db8::1",
                "2001:db8::1",
                ResponseKind::EchoReply,
                Some(3),
            ),
            rec("2001:db8::2", "::a", ResponseKind::TimeExceeded, Some(1)),
        ]);
        let (cleaned, report) = quarantine(&set, &QuarantineConfig::default());
        assert!(report.is_clean());
        assert_eq!(cleaned, set);
        // Bit-identity includes interner id assignment.
        assert_eq!(cleaned.interner().words(), set.interner().words());
    }

    #[test]
    fn zombie_repeating_across_ttls_is_condemned() {
        let set = set_of(vec![
            rec("2001:db8::1", "::ea1", ResponseKind::TimeExceeded, Some(1)),
            rec("2001:db8::1", "::bad", ResponseKind::TimeExceeded, Some(2)),
            rec("2001:db8::1", "::bad", ResponseKind::TimeExceeded, Some(3)),
            rec("2001:db8::1", "::bad", ResponseKind::TimeExceeded, Some(4)),
            // The zombie also answered for a second target, at a sane
            // single depth there: condemnation is global, so that cell
            // goes too.
            rec("2001:db8::2", "::bad", ResponseKind::TimeExceeded, Some(2)),
        ]);
        let (cleaned, report) = quarantine(&set, &QuarantineConfig::default());
        assert_eq!(report.looping_responders, 1);
        assert_eq!(report.condemned, vec!["::bad".parse::<Ipv6Addr>().unwrap()]);
        assert_eq!(report.condemned_hops_dropped, 4);
        assert_eq!(report.traces_touched, 2);
        assert_eq!(
            cleaned.interface_addrs(),
            vec!["::ea1".parse::<Ipv6Addr>().unwrap()]
        );
        // The scrubbed interner carries no trace of the zombie.
        assert!(!cleaned
            .interner()
            .words()
            .contains(&u128::from("::bad".parse::<Ipv6Addr>().unwrap())));
    }

    #[test]
    fn ttl_liar_smeared_across_traces_is_condemned_by_span() {
        let mut records = vec![rec(
            "2001:db8::1",
            "::be5",
            ResponseKind::TimeExceeded,
            Some(3),
        )];
        // One cell per target (Paris probing dedups per TTL), but the
        // lied depths range 1..=200 across targets.
        for (i, lie) in [1u8, 60, 130, 200].iter().enumerate() {
            records.push(rec(
                &format!("2001:db8::1:{}", i + 1),
                "::dead",
                ResponseKind::TimeExceeded,
                Some(*lie),
            ));
        }
        let set = set_of(records);
        let (cleaned, report) = quarantine(&set, &QuarantineConfig::default());
        assert_eq!(report.looping_responders, 0);
        assert_eq!(report.wide_span_responders, 1);
        assert_eq!(
            report.condemned,
            vec!["::dead".parse::<Ipv6Addr>().unwrap()]
        );
        assert_eq!(
            cleaned.interface_addrs(),
            vec!["::be5".parse::<Ipv6Addr>().unwrap()]
        );
        // Implausible-TTL cells (130, 200 > 40) are charged to the
        // condemned counter, not double-counted.
        assert_eq!(report.condemned_hops_dropped, 4);
        assert_eq!(report.implausible_hops_dropped, 0);
    }

    #[test]
    fn implausible_and_beyond_destination_cells_drop_without_condemning() {
        let set = set_of(vec![
            rec("2001:db8::1", "::a", ResponseKind::TimeExceeded, Some(2)),
            // Beyond max_plausible_ttl.
            rec("2001:db8::1", "::b", ResponseKind::TimeExceeded, Some(99)),
            // Beyond the destination's own answer at TTL 4.
            rec("2001:db8::2", "::c", ResponseKind::TimeExceeded, Some(6)),
            rec(
                "2001:db8::2",
                "2001:db8::2",
                ResponseKind::EchoReply,
                Some(4),
            ),
            rec("2001:db8::2", "::a", ResponseKind::TimeExceeded, Some(2)),
        ]);
        let (cleaned, report) = quarantine(&set, &QuarantineConfig::default());
        assert!(report.condemned.is_empty());
        assert_eq!(report.implausible_hops_dropped, 2);
        assert_eq!(report.traces_touched, 2);
        assert_eq!(
            cleaned.interface_addrs(),
            vec!["::a".parse::<Ipv6Addr>().unwrap()]
        );
        // reached_at survives scrubbing.
        assert_eq!(
            cleaned
                .get("2001:db8::2".parse().unwrap())
                .unwrap()
                .reached_at(),
            Some(4)
        );
    }

    #[test]
    fn condemnation_pools_across_sets() {
        // The zombie loops only in vantage A's set; vantage B saw it
        // once, at a plausible depth. Joint quarantine still scrubs B.
        let a = set_of(vec![
            rec("2001:db8::1", "::bad", ResponseKind::TimeExceeded, Some(2)),
            rec("2001:db8::1", "::bad", ResponseKind::TimeExceeded, Some(3)),
        ]);
        let b = set_of(vec![
            rec("2001:db8::9", "::bad", ResponseKind::TimeExceeded, Some(2)),
            rec("2001:db8::9", "::feed", ResponseKind::TimeExceeded, Some(3)),
        ]);
        let (cleaned, report) = quarantine_all(&[&a, &b], &QuarantineConfig::default());
        assert_eq!(report.looping_responders, 1);
        assert!(cleaned[0].interface_addrs().is_empty());
        assert_eq!(
            cleaned[1].interface_addrs(),
            vec!["::feed".parse::<Ipv6Addr>().unwrap()]
        );
        // Solo quarantine of B alone would have kept the zombie.
        let (solo, solo_report) = quarantine(&b, &QuarantineConfig::default());
        assert!(solo_report.is_clean());
        assert_eq!(solo.interface_addrs().len(), 2);
    }

    #[test]
    fn unreachable_cells_from_condemned_responders_drop() {
        let set = set_of(vec![
            rec("2001:db8::1", "::bad", ResponseKind::TimeExceeded, Some(2)),
            rec("2001:db8::1", "::bad", ResponseKind::TimeExceeded, Some(3)),
            rec(
                "2001:db8::2",
                "::bad",
                ResponseKind::DestUnreachable(v6packet::icmp6::DestUnreachCode::NoRoute),
                Some(4),
            ),
            rec(
                "2001:db8::2",
                "::f3",
                ResponseKind::DestUnreachable(v6packet::icmp6::DestUnreachCode::AdminProhibited),
                Some(3),
            ),
        ]);
        let (cleaned, report) = quarantine(&set, &QuarantineConfig::default());
        assert_eq!(report.unreach_dropped, 1);
        let t = cleaned.get("2001:db8::2".parse().unwrap()).unwrap();
        assert_eq!(t.unreachable().count(), 1);
        assert_eq!(
            t.unreachable().next().unwrap().1,
            "::f3".parse::<Ipv6Addr>().unwrap()
        );
    }

    #[test]
    fn repeat_quarantine_is_a_fixpoint() {
        let set = set_of(vec![
            rec("2001:db8::1", "::a", ResponseKind::TimeExceeded, Some(1)),
            rec("2001:db8::1", "::bad", ResponseKind::TimeExceeded, Some(2)),
            rec("2001:db8::1", "::bad", ResponseKind::TimeExceeded, Some(3)),
        ]);
        let cfg = QuarantineConfig::default();
        let (once, r1) = quarantine(&set, &cfg);
        let (twice, r2) = quarantine(&once, &cfg);
        assert!(!r1.is_clean());
        assert!(r2.is_clean());
        assert_eq!(twice, once);
        assert_eq!(twice.interner().words(), once.interner().words());
    }
}
