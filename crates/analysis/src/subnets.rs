//! Subnet discovery from trace results (§6).
//!
//! Two techniques:
//!
//! * **Path divergence** (`discoverByPathDiv`, after Lee & Spring's
//!   Hobbit adapted to IPv6): when traces to two targets share a
//!   significant *last common subpath* (LCS) and then diverge into
//!   significant *divergent suffixes* (DS), the targets are taken to be
//!   in different subnets; their Discriminating Prefix Length then
//!   lower-bounds both subnets' prefix lengths. The implementation is
//!   deliberately conservative, gated by the paper's parameters
//!   (`c, C, A, s, S, z, T`).
//! * **The IA hack**: when a trace's last hop is a `::1`-IID address in
//!   the *same /64* as the target, the gateway of the target's LAN
//!   answered — the /64 is discovered exactly and the trace is known to
//!   be complete.
//!
//! Candidate subnets report *minimum* prefix lengths: "we've discovered
//! a subnet having a prefix length of at least that reported".

use crate::traces::{AsnResolver, Trace, TraceSet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv6Addr;
use v6addr::{bits, dpl, Asn, Ipv6Prefix};

/// The discoverByPathDiv gate parameters (§6 defaults).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PathDivParams {
    /// `c` — minimum LCS length.
    pub min_lcs: usize,
    /// `C` — LCS hops whose ASN must match the target's ASN.
    pub lcs_asn_matches: usize,
    /// `A` — require the LCS's last hop outside the vantage AS.
    pub last_lcs_outside_vantage_as: bool,
    /// `s` — minimum DS length.
    pub min_ds: usize,
    /// `S` — DS hops whose ASN must match the target's ASN.
    pub ds_asn_matches: usize,
    /// `T` — require both targets in the same (equivalent) ASN.
    pub targets_same_asn: bool,
    /// Tolerate non-responding TTLs inside the common subpath (they are
    /// skipped and never counted toward `c`/`C`). The paper's strictest
    /// reading ("missing hop addresses are not allowed in the LCS") is
    /// `false`; the default `true` keeps vantages with a permanently
    /// silent hop (like the paper's own) usable.
    pub allow_gaps: bool,
}

impl Default for PathDivParams {
    fn default() -> Self {
        PathDivParams {
            min_lcs: 2,
            lcs_asn_matches: 1,
            last_lcs_outside_vantage_as: true,
            min_ds: 1,
            ds_asn_matches: 1,
            targets_same_asn: true,
            allow_gaps: true,
        }
    }
}

/// A discovered candidate subnet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CandidateSubnet {
    /// The subnet's covering prefix at the inferred minimum length.
    pub prefix: Ipv6Prefix,
    /// True when produced by the IA hack (exact /64), false for the
    /// path-divergence lower bound.
    pub exact: bool,
}

/// Runs path-divergence discovery over a set of traces.
///
/// Pairs are formed between *address-adjacent* targets (sorted order):
/// nearest neighbors have the highest DPL and thus give the tightest
/// subnet bounds; comparing all O(n²) pairs adds nothing since any
/// farther pair has lower DPL than some adjacent chain.
pub fn discover_by_path_div(
    ts: &TraceSet,
    resolver: &AsnResolver,
    vantage_asn: Asn,
    params: &PathDivParams,
) -> Vec<CandidateSubnet> {
    let traces = ts.iter_sorted();
    // Per-target best (max) DPL bound.
    let mut best: HashMap<Ipv6Addr, u8> = HashMap::new();
    for pair in traces.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if let Some(n) = divergence_bound(a, b, resolver, vantage_asn, params) {
            for t in [a.target, b.target] {
                let e = best.entry(t).or_insert(0);
                *e = (*e).max(n);
            }
        }
    }
    let mut out: Vec<CandidateSubnet> = best
        .into_iter()
        .map(|(t, n)| CandidateSubnet {
            prefix: Ipv6Prefix::truncating(t, n),
            exact: false,
        })
        .collect();
    out.sort_by_key(|c| (c.prefix.base_word(), c.prefix.len()));
    out.dedup();
    out
}

/// Tests one target pair for significant divergence; returns the DPL
/// bound when the gates pass.
fn divergence_bound(
    a: &Trace,
    b: &Trace,
    resolver: &AsnResolver,
    vantage_asn: Asn,
    params: &PathDivParams,
) -> Option<u8> {
    // T: both targets in the same organization.
    let asn_a = resolver.origin(a.target)?;
    let asn_b = resolver.origin(b.target)?;
    if params.targets_same_asn && !resolver.same_org(asn_a, asn_b) {
        return None;
    }

    let ha = a.hop_vec();
    let hb = b.hop_vec();

    // LCS: common prefix of the hop sequences. A position where both
    // responded with the same address extends it; differing responses
    // mark the divergence point; a missing response either terminates
    // the LCS (strict mode) or is skipped without being counted.
    let mut lcs_hops: Vec<Ipv6Addr> = Vec::new();
    let mut i = 0usize;
    let mut diverged_at = None;
    while i < ha.len().min(hb.len()) {
        match (ha[i], hb[i]) {
            (Some(x), Some(y)) if x == y => {
                lcs_hops.push(x);
                i += 1;
            }
            (Some(_), Some(_)) => {
                diverged_at = Some(i);
                break;
            }
            _ => {
                if !params.allow_gaps {
                    break;
                }
                i += 1;
            }
        }
    }
    let div = diverged_at?;
    if lcs_hops.len() < params.min_lcs {
        return None;
    }
    // A: divergence must happen outside the vantage AS.
    if params.last_lcs_outside_vantage_as {
        let last_asn = resolver.origin(*lcs_hops.last()?)?;
        if resolver.same_org(last_asn, vantage_asn) {
            return None;
        }
    }
    // C: enough LCS hops inside the target's organization.
    let lcs_matches = lcs_hops
        .iter()
        .filter(|&&h| {
            resolver
                .origin(h)
                .map(|x| resolver.same_org(x, asn_a))
                .unwrap_or(false)
        })
        .count();
    if lcs_matches < params.lcs_asn_matches {
        return None;
    }
    // DS: both suffixes non-empty (z = 0) and long enough, counting only
    // responding hops from the divergence point on.
    let ds_a: Vec<Ipv6Addr> = ha[div..].iter().flatten().copied().collect();
    let ds_b: Vec<Ipv6Addr> = hb[div..].iter().flatten().copied().collect();
    if ds_a.len() < params.min_ds || ds_b.len() < params.min_ds {
        return None;
    }
    // S: enough DS hops inside the target's organization, on each side.
    let count_in_org = |ds: &[Ipv6Addr], asn: Asn| {
        ds.iter()
            .filter(|&&h| {
                resolver
                    .origin(h)
                    .map(|x| resolver.same_org(x, asn))
                    .unwrap_or(false)
            })
            .count()
    };
    if count_in_org(&ds_a, asn_a) < params.ds_asn_matches
        || count_in_org(&ds_b, asn_b) < params.ds_asn_matches
    {
        return None;
    }

    dpl::dpl_of_pair(a.target, b.target)
}

/// The IA hack: traces whose last hop is a low-byte (`::1`) address in
/// the target's own /64 discovered that /64 exactly.
pub fn ia_hack(ts: &TraceSet) -> Vec<CandidateSubnet> {
    let mut out = Vec::new();
    for t in ts.iter_sorted() {
        let Some((_, last)) = t.last_hop() else {
            continue;
        };
        let lw = u128::from(last);
        let tw = u128::from(t.target);
        let same_64 = bits::net_bits(lw) == bits::net_bits(tw);
        let is_one = bits::iid_bits(lw) == 1;
        if same_64 && is_one {
            out.push(CandidateSubnet {
                prefix: Ipv6Prefix::from_word(tw, 64),
                exact: true,
            });
        }
    }
    out.sort_by_key(|c| c.prefix.base_word());
    out.dedup();
    out
}

/// Histogram of candidate counts by minimum prefix length (Fig 8b).
pub fn by_prefix_length(cands: &[CandidateSubnet]) -> std::collections::BTreeMap<u8, u64> {
    let mut m = std::collections::BTreeMap::new();
    for c in cands {
        *m.entry(c.prefix.len()).or_default() += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Hand-built trace: hops at ttl 1.. from a list.
    fn trace(target: &str, hops: &[&str]) -> Trace {
        let mut t = Trace::new(target.parse().unwrap());
        for (i, h) in hops.iter().enumerate() {
            t.hops.insert(i as u8 + 1, h.parse().unwrap());
        }
        t
    }

    fn resolver() -> AsnResolver {
        let mut bgp = v6addr::BgpTable::new();
        bgp.announce("2001:db8::/32".parse().unwrap(), Asn(100)); // target org
        bgp.announce("2620:1::/32".parse().unwrap(), Asn(50)); // transit
        bgp.announce("2620:2::/32".parse().unwrap(), Asn(1)); // vantage
        AsnResolver::new(bgp, vec![], &[])
    }

    fn ts(traces: Vec<Trace>) -> TraceSet {
        let mut set = TraceSet::default();
        for t in traces {
            set.traces.insert(t.target, t);
        }
        set
    }

    #[test]
    fn detects_divergence_and_bounds_subnet() {
        // Shared: transit hop + org border; divergent: two distribution
        // routers inside the org.
        let a = trace(
            "2001:db8:0:1::aa",
            &["2620:1::1", "2001:db8:ff::1", "2001:db8:ff::10"],
        );
        let b = trace(
            "2001:db8:0:2::bb",
            &["2620:1::1", "2001:db8:ff::1", "2001:db8:ff::20"],
        );
        let cands = discover_by_path_div(
            &ts(vec![a, b]),
            &resolver(),
            Asn(1),
            &PathDivParams::default(),
        );
        assert_eq!(cands.len(), 2);
        // Targets differ first within group 4 (0:1 vs 0:2): DPL = 62? The
        // words differ at ...0001 vs ...0010 in bits 48..64 → common
        // prefix 48 + 12 = 60, DPL 61? Compute exactly:
        let n = dpl::dpl_of_pair(
            "2001:db8:0:1::aa".parse().unwrap(),
            "2001:db8:0:2::bb".parse().unwrap(),
        )
        .unwrap();
        assert!(cands.iter().all(|c| c.prefix.len() == n));
    }

    #[test]
    fn no_divergence_no_candidates() {
        // Identical paths except final hop missing: no divergent suffix.
        let a = trace("2001:db8:0:1::aa", &["2620:1::1", "2001:db8:ff::1"]);
        let b = trace("2001:db8:0:2::bb", &["2620:1::1", "2001:db8:ff::1"]);
        let cands = discover_by_path_div(
            &ts(vec![a, b]),
            &resolver(),
            Asn(1),
            &PathDivParams::default(),
        );
        assert!(cands.is_empty());
    }

    #[test]
    fn different_asn_targets_rejected() {
        let a = trace(
            "2001:db8:0:1::aa",
            &["2620:1::1", "2001:db8:ff::1", "2001:db8:ff::10"],
        );
        let b = trace(
            "2620:2:0:2::bb",
            &["2620:1::1", "2001:db8:ff::1", "2001:db8:ff::20"],
        );
        let cands = discover_by_path_div(
            &ts(vec![a, b]),
            &resolver(),
            Asn(1),
            &PathDivParams::default(),
        );
        assert!(cands.is_empty());
    }

    #[test]
    fn short_lcs_rejected() {
        let a = trace("2001:db8:0:1::aa", &["2620:1::1", "2001:db8:ff::10"]);
        let b = trace("2001:db8:0:2::bb", &["2620:1::1", "2001:db8:ff::20"]);
        // LCS = 1 < c = 2.
        let cands = discover_by_path_div(
            &ts(vec![a, b]),
            &resolver(),
            Asn(1),
            &PathDivParams::default(),
        );
        assert!(cands.is_empty());
    }

    #[test]
    fn missing_hop_in_lcs_rejected() {
        let mut a = trace("2001:db8:0:1::aa", &[]);
        a.hops.insert(1, "2620:1::1".parse().unwrap());
        a.hops.insert(3, "2001:db8:ff::10".parse().unwrap()); // gap at 2
        let b = trace(
            "2001:db8:0:2::bb",
            &["2620:1::1", "2001:db8:ff::1", "2001:db8:ff::20"],
        );
        let cands = discover_by_path_div(
            &ts(vec![a, b]),
            &resolver(),
            Asn(1),
            &PathDivParams::default(),
        );
        assert!(cands.is_empty());
    }

    #[test]
    fn divergence_inside_vantage_as_rejected() {
        // All common hops inside the vantage AS (2620:2::/32, ASN 1).
        let a = trace(
            "2001:db8:0:1::aa",
            &["2620:2::1", "2620:2::2", "2001:db8:ff::10"],
        );
        let b = trace(
            "2001:db8:0:2::bb",
            &["2620:2::1", "2620:2::2", "2001:db8:ff::20"],
        );
        let cands = discover_by_path_div(
            &ts(vec![a.clone(), b.clone()]),
            &resolver(),
            Asn(1),
            &PathDivParams::default(),
        );
        assert!(cands.is_empty());
        // With the gate disabled (and C relaxed — the LCS is all vantage
        // hops), the same pair passes.
        let relaxed = PathDivParams {
            last_lcs_outside_vantage_as: false,
            lcs_asn_matches: 0,
            ..Default::default()
        };
        let cands = discover_by_path_div(&ts(vec![a, b]), &resolver(), Asn(1), &relaxed);
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn ia_hack_finds_gateway_64() {
        let mut t = trace("2001:db8:0:7::abcd", &["2620:1::1", "2001:db8:0:7::1"]);
        t.reached_at = None;
        let cands = ia_hack(&ts(vec![t]));
        assert_eq!(cands.len(), 1);
        assert!(cands[0].exact);
        assert_eq!(cands[0].prefix, "2001:db8:0:7::/64".parse().unwrap());
        // A last hop in a different /64 does not trigger.
        let t2 = trace("2001:db8:0:8::abcd", &["2620:1::1", "2001:db8:0:9::1"]);
        assert!(ia_hack(&ts(vec![t2])).is_empty());
        // A non-::1 last hop does not trigger.
        let t3 = trace("2001:db8:0:8::abcd", &["2620:1::1", "2001:db8:0:8::2"]);
        assert!(ia_hack(&ts(vec![t3])).is_empty());
    }

    #[test]
    fn histogram_counts() {
        let cands = vec![
            CandidateSubnet {
                prefix: "2001:db8::/48".parse().unwrap(),
                exact: false,
            },
            CandidateSubnet {
                prefix: "2001:db8:1::/48".parse().unwrap(),
                exact: false,
            },
            CandidateSubnet {
                prefix: "2001:db8:2:3::/64".parse().unwrap(),
                exact: true,
            },
        ];
        let h: BTreeMap<u8, u64> = by_prefix_length(&cands);
        assert_eq!(h[&48], 2);
        assert_eq!(h[&64], 1);
    }
}
