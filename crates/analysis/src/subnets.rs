//! Subnet discovery from trace results (§6).
//!
//! Two techniques:
//!
//! * **Path divergence** (`discoverByPathDiv`, after Lee & Spring's
//!   Hobbit adapted to IPv6): when traces to two targets share a
//!   significant *last common subpath* (LCS) and then diverge into
//!   significant *divergent suffixes* (DS), the targets are taken to be
//!   in different subnets; their Discriminating Prefix Length then
//!   lower-bounds both subnets' prefix lengths. The implementation is
//!   deliberately conservative, gated by the paper's parameters
//!   (`c, C, A, s, S, z, T`).
//! * **The IA hack**: when a trace's last hop is a `::1`-IID address in
//!   the *same /64* as the target, the gateway of the target's LAN
//!   answered — the /64 is discovered exactly and the trace is known to
//!   be complete.
//!
//! Candidate subnets report *minimum* prefix lengths: "we've discovered
//! a subnet having a prefix length of at least that reported".
//!
//! Both discoveries are **single sorted-merge passes** over the columnar
//! [`TraceSet`]: traces arrive already in target order (adjacent pairs
//! are just consecutive indices), hop comparison walks two `(ttl, id)`
//! slices with two cursors, and all per-address ASN lookups are resolved
//! once per unique interned address up front. The only allocation per
//! call is the output vector plus one reused LCS scratch buffer — the
//! original per-pair `hop_vec()` materializations live on in
//! [`crate::reference`] and are pinned equivalent by golden tests.

use crate::traces::{AsnResolver, TraceSet, TraceView};
use serde::{Deserialize, Serialize};
use v6addr::{bits, dpl, Asn, Ipv6Prefix};

/// The discoverByPathDiv gate parameters (§6 defaults).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PathDivParams {
    /// `c` — minimum LCS length.
    pub min_lcs: usize,
    /// `C` — LCS hops whose ASN must match the target's ASN.
    pub lcs_asn_matches: usize,
    /// `A` — require the LCS's last hop outside the vantage AS.
    pub last_lcs_outside_vantage_as: bool,
    /// `s` — minimum DS length.
    pub min_ds: usize,
    /// `S` — DS hops whose ASN must match the target's ASN.
    pub ds_asn_matches: usize,
    /// `T` — require both targets in the same (equivalent) ASN.
    pub targets_same_asn: bool,
    /// Tolerate non-responding TTLs inside the common subpath (they are
    /// skipped and never counted toward `c`/`C`). The paper's strictest
    /// reading ("missing hop addresses are not allowed in the LCS") is
    /// `false`; the default `true` keeps vantages with a permanently
    /// silent hop (like the paper's own) usable.
    pub allow_gaps: bool,
}

impl Default for PathDivParams {
    fn default() -> Self {
        PathDivParams {
            min_lcs: 2,
            lcs_asn_matches: 1,
            last_lcs_outside_vantage_as: true,
            min_ds: 1,
            ds_asn_matches: 1,
            targets_same_asn: true,
            allow_gaps: true,
        }
    }
}

/// A discovered candidate subnet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CandidateSubnet {
    /// The subnet's covering prefix at the inferred minimum length.
    pub prefix: Ipv6Prefix,
    /// True when produced by the IA hack (exact /64), false for the
    /// path-divergence lower bound.
    pub exact: bool,
}

/// Per-unique-address ASN facts, resolved once and indexed by interned
/// id — the shared-interner payoff: a campaign touches each router
/// interface thousands of times but resolves it exactly once.
struct IdAsns {
    /// Origin ASN per interned id.
    origin: Vec<Option<Asn>>,
    /// Whether the id's origin is the vantage organization.
    vantage_org: Vec<bool>,
}

impl IdAsns {
    fn resolve(ts: &TraceSet, resolver: &AsnResolver, vantage_asn: Asn) -> Self {
        let origin = ts.interner().map_ids(|a| resolver.origin(a));
        let vantage_org = origin
            .iter()
            .map(|o| {
                o.map(|x| resolver.same_org(x, vantage_asn))
                    .unwrap_or(false)
            })
            .collect();
        IdAsns {
            origin,
            vantage_org,
        }
    }
}

/// Runs path-divergence discovery over a set of traces.
///
/// Pairs are formed between *address-adjacent* targets (sorted order):
/// nearest neighbors have the highest DPL and thus give the tightest
/// subnet bounds; comparing all O(n²) pairs adds nothing since any
/// farther pair has lower DPL than some adjacent chain. The columnar
/// store keeps targets sorted, so the pass is one linear walk.
pub fn discover_by_path_div(
    ts: &TraceSet,
    resolver: &AsnResolver,
    vantage_asn: Asn,
    params: &PathDivParams,
) -> Vec<CandidateSubnet> {
    let n = ts.len();
    if n < 2 {
        return Vec::new();
    }
    let ids = IdAsns::resolve(ts, resolver, vantage_asn);
    // Target origins, one lookup per trace.
    let tgt_origin: Vec<Option<Asn>> = ts.targets().iter().map(|&t| resolver.origin(t)).collect();

    // Per-target best (max) DPL bound; 0 = no divergence found (a real
    // bound is always >= 1).
    let mut best = vec![0u8; n];
    let mut lcs_buf: Vec<u32> = Vec::new();
    for i in 0..n - 1 {
        if let Some(b) = divergence_bound(
            ts.view_at(i),
            ts.view_at(i + 1),
            &ids,
            &tgt_origin,
            resolver,
            params,
            &mut lcs_buf,
        ) {
            best[i] = best[i].max(b);
            best[i + 1] = best[i + 1].max(b);
        }
    }
    let mut out: Vec<CandidateSubnet> = ts
        .targets()
        .iter()
        .zip(&best)
        .filter(|&(_, &b)| b > 0)
        .map(|(&t, &b)| CandidateSubnet {
            prefix: Ipv6Prefix::truncating(t, b),
            exact: false,
        })
        .collect();
    out.sort_by_key(|c| (c.prefix.base_word(), c.prefix.len()));
    out.dedup();
    out
}

/// Tests one adjacent target pair for significant divergence; returns
/// the DPL bound when the gates pass. Walks the two hop slices with two
/// cursors — no `hop_vec` materialization, no per-pair allocation
/// (`lcs_buf` is reused across pairs).
fn divergence_bound(
    a: TraceView<'_>,
    b: TraceView<'_>,
    ids: &IdAsns,
    tgt_origin: &[Option<Asn>],
    resolver: &AsnResolver,
    params: &PathDivParams,
    lcs_buf: &mut Vec<u32>,
) -> Option<u8> {
    // T: both targets in the same organization.
    let asn_a = tgt_origin[a.index()]?;
    let asn_b = tgt_origin[b.index()]?;
    if params.targets_same_asn && !resolver.same_org(asn_a, asn_b) {
        return None;
    }

    let ca = a.hop_cells();
    let cb = b.hop_cells();
    // Conceptual hop arrays run over ttl 1..=deepest; the walk visits
    // each position once, advancing both cursors monotonically.
    let deepest_a = ca.last().map_or(0, |&(t, _)| t as usize);
    let deepest_b = cb.last().map_or(0, |&(t, _)| t as usize);
    let limit = deepest_a.min(deepest_b);

    // LCS: common prefix of the hop sequences. A position where both
    // responded with the same interface extends it (id equality is
    // address equality — shared interner); differing responses mark the
    // divergence point; a missing response either terminates the LCS
    // (strict mode) or is skipped without being counted.
    lcs_buf.clear();
    let (mut pa, mut pb) = (0usize, 0usize);
    let mut diverged_at = None;
    let mut pos = 0usize;
    while pos < limit {
        let ttl = pos as u8 + 1;
        while pa < ca.len() && ca[pa].0 < ttl {
            pa += 1;
        }
        while pb < cb.len() && cb[pb].0 < ttl {
            pb += 1;
        }
        let xa = (pa < ca.len() && ca[pa].0 == ttl).then(|| ca[pa].1);
        let xb = (pb < cb.len() && cb[pb].0 == ttl).then(|| cb[pb].1);
        match (xa, xb) {
            (Some(x), Some(y)) if x == y => {
                lcs_buf.push(x);
                pos += 1;
            }
            (Some(_), Some(_)) => {
                diverged_at = Some(pos);
                break;
            }
            _ => {
                if !params.allow_gaps {
                    break;
                }
                pos += 1;
            }
        }
    }
    let div = diverged_at?;
    if lcs_buf.len() < params.min_lcs {
        return None;
    }
    // A: divergence must happen outside the vantage AS.
    if params.last_lcs_outside_vantage_as {
        let last = *lcs_buf.last()? as usize;
        ids.origin[last]?;
        if ids.vantage_org[last] {
            return None;
        }
    }
    // C: enough LCS hops inside the target's organization.
    let lcs_matches = lcs_buf
        .iter()
        .filter(|&&h| in_org(ids, resolver, h, asn_a))
        .count();
    if lcs_matches < params.lcs_asn_matches {
        return None;
    }
    // DS: both suffixes non-empty (z = 0) and long enough, counting only
    // responding hops from the divergence point on. In the flat layout
    // the divergent suffix is simply the tail of each hop slice.
    let ds_a = &ca[ca.partition_point(|&(t, _)| (t as usize) <= div)..];
    let ds_b = &cb[cb.partition_point(|&(t, _)| (t as usize) <= div)..];
    if ds_a.len() < params.min_ds || ds_b.len() < params.min_ds {
        return None;
    }
    // S: enough DS hops inside the target's organization, on each side.
    let count_in_org = |ds: &[(u8, u32)], asn: Asn| {
        ds.iter()
            .filter(|&&(_, h)| in_org(ids, resolver, h, asn))
            .count()
    };
    if count_in_org(ds_a, asn_a) < params.ds_asn_matches
        || count_in_org(ds_b, asn_b) < params.ds_asn_matches
    {
        return None;
    }

    dpl::dpl_of_pair(a.target(), b.target())
}

#[inline]
fn in_org(ids: &IdAsns, resolver: &AsnResolver, id: u32, asn: Asn) -> bool {
    ids.origin[id as usize]
        .map(|x| resolver.same_org(x, asn))
        .unwrap_or(false)
}

/// The IA hack: traces whose last hop is a low-byte (`::1`) address in
/// the target's own /64 discovered that /64 exactly. One pass in target
/// order — the output is born sorted, no re-sort needed.
pub fn ia_hack(ts: &TraceSet) -> Vec<CandidateSubnet> {
    let mut out: Vec<CandidateSubnet> = Vec::new();
    let interner = ts.interner();
    for t in ts.iter() {
        let Some(&(_, last_id)) = t.hop_cells().last() else {
            continue;
        };
        let lw = interner.resolve_word(last_id);
        let tw = u128::from(t.target());
        let same_64 = bits::net_bits(lw) == bits::net_bits(tw);
        let is_one = bits::iid_bits(lw) == 1;
        if same_64 && is_one {
            out.push(CandidateSubnet {
                prefix: Ipv6Prefix::from_word(tw, 64),
                exact: true,
            });
        }
    }
    // Targets ascend, so /64 base words ascend too; only dedup remains.
    debug_assert!(out
        .windows(2)
        .all(|w| w[0].prefix.base_word() <= w[1].prefix.base_word()));
    out.dedup();
    out
}

/// Histogram of candidate counts by minimum prefix length (Fig 8b).
pub fn by_prefix_length(cands: &[CandidateSubnet]) -> std::collections::BTreeMap<u8, u64> {
    let mut m = std::collections::BTreeMap::new();
    for c in cands {
        *m.entry(c.prefix.len()).or_default() += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use std::collections::BTreeMap;

    /// Hand-built trace: hops at ttl 1.. from a list.
    fn trace(target: &str, hops: &[&str]) -> reference::Trace {
        let mut t = reference::Trace::new(target.parse().unwrap());
        for (i, h) in hops.iter().enumerate() {
            t.hops.insert(i as u8 + 1, h.parse().unwrap());
        }
        t
    }

    fn resolver() -> AsnResolver {
        let mut bgp = v6addr::BgpTable::new();
        bgp.announce("2001:db8::/32".parse().unwrap(), Asn(100)); // target org
        bgp.announce("2620:1::/32".parse().unwrap(), Asn(50)); // transit
        bgp.announce("2620:2::/32".parse().unwrap(), Asn(1)); // vantage
        AsnResolver::new(bgp, vec![], &[])
    }

    fn ts(traces: Vec<reference::Trace>) -> TraceSet {
        TraceSet::from_traces(traces)
    }

    #[test]
    fn detects_divergence_and_bounds_subnet() {
        // Shared: transit hop + org border; divergent: two distribution
        // routers inside the org.
        let a = trace(
            "2001:db8:0:1::aa",
            &["2620:1::1", "2001:db8:ff::1", "2001:db8:ff::10"],
        );
        let b = trace(
            "2001:db8:0:2::bb",
            &["2620:1::1", "2001:db8:ff::1", "2001:db8:ff::20"],
        );
        let cands = discover_by_path_div(
            &ts(vec![a, b]),
            &resolver(),
            Asn(1),
            &PathDivParams::default(),
        );
        assert_eq!(cands.len(), 2);
        let n = dpl::dpl_of_pair(
            "2001:db8:0:1::aa".parse().unwrap(),
            "2001:db8:0:2::bb".parse().unwrap(),
        )
        .unwrap();
        assert!(cands.iter().all(|c| c.prefix.len() == n));
    }

    #[test]
    fn no_divergence_no_candidates() {
        // Identical paths except final hop missing: no divergent suffix.
        let a = trace("2001:db8:0:1::aa", &["2620:1::1", "2001:db8:ff::1"]);
        let b = trace("2001:db8:0:2::bb", &["2620:1::1", "2001:db8:ff::1"]);
        let cands = discover_by_path_div(
            &ts(vec![a, b]),
            &resolver(),
            Asn(1),
            &PathDivParams::default(),
        );
        assert!(cands.is_empty());
    }

    #[test]
    fn different_asn_targets_rejected() {
        let a = trace(
            "2001:db8:0:1::aa",
            &["2620:1::1", "2001:db8:ff::1", "2001:db8:ff::10"],
        );
        let b = trace(
            "2620:2:0:2::bb",
            &["2620:1::1", "2001:db8:ff::1", "2001:db8:ff::20"],
        );
        let cands = discover_by_path_div(
            &ts(vec![a, b]),
            &resolver(),
            Asn(1),
            &PathDivParams::default(),
        );
        assert!(cands.is_empty());
    }

    #[test]
    fn short_lcs_rejected() {
        let a = trace("2001:db8:0:1::aa", &["2620:1::1", "2001:db8:ff::10"]);
        let b = trace("2001:db8:0:2::bb", &["2620:1::1", "2001:db8:ff::20"]);
        // LCS = 1 < c = 2.
        let cands = discover_by_path_div(
            &ts(vec![a, b]),
            &resolver(),
            Asn(1),
            &PathDivParams::default(),
        );
        assert!(cands.is_empty());
    }

    #[test]
    fn missing_hop_in_lcs_rejected() {
        let mut a = trace("2001:db8:0:1::aa", &[]);
        a.hops.insert(1, "2620:1::1".parse().unwrap());
        a.hops.insert(3, "2001:db8:ff::10".parse().unwrap()); // gap at 2
        let b = trace(
            "2001:db8:0:2::bb",
            &["2620:1::1", "2001:db8:ff::1", "2001:db8:ff::20"],
        );
        let cands = discover_by_path_div(
            &ts(vec![a, b]),
            &resolver(),
            Asn(1),
            &PathDivParams::default(),
        );
        assert!(cands.is_empty());
    }

    #[test]
    fn divergence_inside_vantage_as_rejected() {
        // All common hops inside the vantage AS (2620:2::/32, ASN 1).
        let a = trace(
            "2001:db8:0:1::aa",
            &["2620:2::1", "2620:2::2", "2001:db8:ff::10"],
        );
        let b = trace(
            "2001:db8:0:2::bb",
            &["2620:2::1", "2620:2::2", "2001:db8:ff::20"],
        );
        let cands = discover_by_path_div(
            &ts(vec![a.clone(), b.clone()]),
            &resolver(),
            Asn(1),
            &PathDivParams::default(),
        );
        assert!(cands.is_empty());
        // With the gate disabled (and C relaxed — the LCS is all vantage
        // hops), the same pair passes.
        let relaxed = PathDivParams {
            last_lcs_outside_vantage_as: false,
            lcs_asn_matches: 0,
            ..Default::default()
        };
        let cands = discover_by_path_div(&ts(vec![a, b]), &resolver(), Asn(1), &relaxed);
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn ia_hack_finds_gateway_64() {
        let mut t = trace("2001:db8:0:7::abcd", &["2620:1::1", "2001:db8:0:7::1"]);
        t.reached_at = None;
        let cands = ia_hack(&ts(vec![t]));
        assert_eq!(cands.len(), 1);
        assert!(cands[0].exact);
        assert_eq!(cands[0].prefix, "2001:db8:0:7::/64".parse().unwrap());
        // A last hop in a different /64 does not trigger.
        let t2 = trace("2001:db8:0:8::abcd", &["2620:1::1", "2001:db8:0:9::1"]);
        assert!(ia_hack(&ts(vec![t2])).is_empty());
        // A non-::1 last hop does not trigger.
        let t3 = trace("2001:db8:0:8::abcd", &["2620:1::1", "2001:db8:0:8::2"]);
        assert!(ia_hack(&ts(vec![t3])).is_empty());
    }

    #[test]
    fn histogram_counts() {
        let cands = vec![
            CandidateSubnet {
                prefix: "2001:db8::/48".parse().unwrap(),
                exact: false,
            },
            CandidateSubnet {
                prefix: "2001:db8:1::/48".parse().unwrap(),
                exact: false,
            },
            CandidateSubnet {
                prefix: "2001:db8:2:3::/64".parse().unwrap(),
                exact: true,
            },
        ];
        let h: BTreeMap<u8, u64> = by_prefix_length(&cands);
        assert_eq!(h[&48], 2);
        assert_eq!(h[&64], 1);
    }
}
