//! Golden + property equivalence for the streaming pipeline: a
//! campaign streamed chunk-by-chunk through [`TraceSetBuilder`] must
//! produce a `TraceSet` **bit-identical** (interner ids included — the
//! `PartialEq` on `TraceSet` compares the raw columns) to the batch
//! path `TraceSet::from_log(&run_campaign(..).log)`, across every
//! probe protocol, fill mode, neighborhood mode, and middlebox
//! rewriting — and on adversarial synthetic record streams with
//! arbitrary chunk boundaries.

use analysis::{stream_campaign, stream_campaigns_parallel, TraceSet, TraceSetBuilder};
use proptest::prelude::*;
use simnet::config::TopologyConfig;
use simnet::Topology;
use std::net::Ipv6Addr;
use std::sync::Arc;
use targets::TargetSet;
use v6packet::icmp6::DestUnreachCode;
use v6packet::probe::Protocol;
use yarrp6::campaign::{run_campaign, CampaignSpec};
use yarrp6::sink::StreamConfig;
use yarrp6::yarrp::Neighborhood;
use yarrp6::{ProbeLog, ResponseKind, ResponseRecord, YarrpConfig};

fn fixture(seed: u64) -> (Arc<Topology>, TargetSet) {
    let topo = Arc::new(simnet::generate::generate(TopologyConfig::tiny(seed)));
    let addrs: Vec<Ipv6Addr> = topo.hosts().map(|(a, _)| a).take(250).collect();
    let set = TargetSet::new("stream-golden", addrs);
    (topo, set)
}

/// Batch comparator: the full-log pipeline the streaming path must
/// reproduce.
fn batch(topo: &Arc<Topology>, v: u8, set: &TargetSet, cfg: &YarrpConfig) -> TraceSet {
    TraceSet::from_log(&run_campaign(topo, v, set, cfg).log)
}

#[test]
fn streamed_campaigns_match_batch_all_protocols() {
    for (i, proto) in [Protocol::Icmp6, Protocol::Udp, Protocol::Tcp]
        .into_iter()
        .enumerate()
    {
        let (topo, set) = fixture(3100 + i as u64);
        let v = (i % 3) as u8;
        for vary in [false, true] {
            let cfg = YarrpConfig {
                protocol: proto,
                vary_flow_label: vary,
                ..Default::default()
            };
            // A tiny chunk size exercises many channel round-trips.
            let stream = StreamConfig {
                chunk_records: 64,
                channel_chunks: 2,
            };
            let (streamed, stats) = stream_campaign(&topo, v, &set, &cfg, &stream);
            assert_eq!(
                streamed,
                batch(&topo, v, &set, &cfg),
                "stream != batch (proto {proto:?}, vary {vary})"
            );
            assert_eq!(
                stats,
                run_campaign(&topo, v, &set, &cfg).engine_stats,
                "engine stats diverged (proto {proto:?}, vary {vary})"
            );
        }
    }
}

#[test]
fn streamed_fill_and_neighborhood_match_batch() {
    let (topo, set) = fixture(3177);
    let cfgs = [
        YarrpConfig {
            max_ttl: 4,
            fill_mode: true,
            ..Default::default()
        },
        YarrpConfig {
            neighborhood: Some(Neighborhood {
                max_ttl: 4,
                window_us: 2_000_000,
            }),
            ..Default::default()
        },
    ];
    for cfg in cfgs {
        let stream = StreamConfig {
            chunk_records: 17, // deliberately odd: chunk seams everywhere
            channel_chunks: 3,
        };
        let (streamed, _) = stream_campaign(&topo, 1, &set, &cfg, &stream);
        assert_eq!(streamed, batch(&topo, 1, &set, &cfg));
    }
}

#[test]
fn parallel_streamed_sweep_matches_batch_sets() {
    let (topo, set) = fixture(3204);
    let cfg = YarrpConfig::default();
    let specs: Vec<CampaignSpec> = (0..3u8)
        .map(|v| CampaignSpec {
            vantage_idx: v,
            set: &set,
            cfg,
        })
        .collect();
    let results = stream_campaigns_parallel(&topo, &specs, &StreamConfig::default());
    assert_eq!(results.len(), 3);
    for (v, (ts, stats)) in results.iter().enumerate() {
        let b = run_campaign(&topo, v as u8, &set, &cfg);
        assert_eq!(*ts, TraceSet::from_log(&b.log), "vantage {v}");
        assert_eq!(*stats, b.engine_stats, "vantage {v}");
        assert_eq!(&*ts.vantage, &*b.log.vantage, "vantage name {v}");
        assert_eq!(&*ts.target_set, "stream-golden");
    }
}

/// Decodes one synthetic record from two drawn words, covering every
/// response class: Time Exceeded, all Destination Unreachable codes the
/// decoder produces, Echo Reply, TCP, checksum failures, missing TTLs,
/// and the degenerate ttl 0.
fn synth_record(w: u64, recv_us: u64) -> ResponseRecord {
    let target = Ipv6Addr::from((0x2001_0db8_u128 << 96) | (w & 0x1f) as u128);
    let responder = Ipv6Addr::from((0x2001_0db8_ffff_u128 << 80) | ((w >> 5) & 0xf) as u128);
    let kind = match (w >> 9) % 8 {
        0..=2 => ResponseKind::TimeExceeded,
        3 => ResponseKind::DestUnreachable(DestUnreachCode::NoRoute),
        4 => ResponseKind::DestUnreachable(DestUnreachCode::AdminProhibited),
        5 => ResponseKind::DestUnreachable(DestUnreachCode::PortUnreachable),
        6 => ResponseKind::EchoReply,
        _ => ResponseKind::Tcp,
    };
    let probe_ttl = match (w >> 12) % 10 {
        0 => None,
        _ => Some(((w >> 16) % 20) as u8),
    };
    ResponseRecord {
        target,
        responder,
        kind,
        probe_ttl,
        rtt_us: Some(w % 10_000),
        recv_us,
        target_cksum_ok: !(w >> 21).is_multiple_of(10),
    }
}

proptest! {
    /// Chunked streaming ingestion — random records, random chunk
    /// sizes — is bit-identical to the batch pipeline (receive-sort
    /// then `from_log`), interner ids and all.
    #[test]
    fn chunked_ingestion_matches_batch_from_log(
        draws in prop::collection::vec((any::<u64>(), 0u64..50_000), 0..600),
        chunk_size in 1usize..80,
    ) {
        let records: Vec<ResponseRecord> =
            draws.iter().map(|&(w, recv)| synth_record(w, recv)).collect();

        let mut log = ProbeLog {
            vantage: "stream-prop".into(),
            target_set: "prop-set".into(),
            records: records.clone(),
            ..Default::default()
        };
        log.sort_by_recv();
        let want = TraceSet::from_log(&log);

        let mut builder = TraceSetBuilder::new()
            .with_identity("stream-prop".into(), "prop-set".into());
        for chunk in records.chunks(chunk_size) {
            builder.push_chunk(chunk);
        }
        prop_assert_eq!(builder.records_seen(), records.len() as u64);
        let got = builder.finish();
        prop_assert!(got == want, "builder != batch from_log (chunk {})", chunk_size);
    }

    /// Splitting one stream at an arbitrary seam never changes the
    /// result: prefix+suffix ingestion equals whole-stream ingestion.
    #[test]
    fn chunk_seams_are_invisible(
        draws in prop::collection::vec((any::<u64>(), 0u64..10_000), 1..200),
        seam_frac in 0u32..100,
    ) {
        let records: Vec<ResponseRecord> =
            draws.iter().map(|&(w, recv)| synth_record(w, recv)).collect();
        let seam = (records.len() * seam_frac as usize) / 100;

        let mut whole = TraceSetBuilder::new();
        whole.push_chunk(&records);

        let mut split = TraceSetBuilder::new();
        split.push_chunk(&records[..seam]);
        split.push_chunk(&records[seam..]);

        prop_assert!(whole.finish() == split.finish(), "seam at {}", seam);
    }
}
