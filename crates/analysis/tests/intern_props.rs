//! Property tests for the shared address interner: id ↔ address
//! round-trips, stable ids under re-insertion, dense id assignment.

use analysis::AddrInterner;
use proptest::prelude::*;
use std::net::Ipv6Addr;

proptest! {
    /// Every interned address resolves back to itself, and lookup
    /// agrees with intern.
    #[test]
    fn roundtrip(words in prop::collection::vec(any::<u128>(), 1..300)) {
        let mut it = AddrInterner::new();
        let ids: Vec<u32> = words.iter().map(|&w| it.intern(Ipv6Addr::from(w))).collect();
        for (&w, &id) in words.iter().zip(&ids) {
            prop_assert_eq!(it.resolve(id), Ipv6Addr::from(w));
            prop_assert_eq!(it.resolve_word(id), w);
            prop_assert_eq!(it.lookup(Ipv6Addr::from(w)), Some(id));
        }
    }

    /// Re-interning any address returns its original id, in any order,
    /// across growth.
    #[test]
    fn ids_stable_under_reinsert(words in prop::collection::vec(any::<u128>(), 1..300)) {
        let mut it = AddrInterner::new();
        let first: Vec<u32> = words.iter().map(|&w| it.intern(Ipv6Addr::from(w))).collect();
        let len_after_first = it.len();
        // Second pass in reverse order: nothing new, same ids.
        for (&w, &id) in words.iter().zip(&first).rev() {
            prop_assert_eq!(it.intern(Ipv6Addr::from(w)), id);
        }
        prop_assert_eq!(it.len(), len_after_first);
    }

    /// Ids are dense: 0..n in first-insertion order, n = distinct count.
    #[test]
    fn ids_dense_in_first_insertion_order(words in prop::collection::vec(any::<u128>(), 1..300)) {
        let mut it = AddrInterner::new();
        let mut expected_order: Vec<u128> = Vec::new();
        for &w in &words {
            let id = it.intern(Ipv6Addr::from(w));
            if !expected_order.contains(&w) {
                // New address: must receive the next dense id.
                prop_assert_eq!(id as usize, expected_order.len());
                expected_order.push(w);
            } else {
                prop_assert!((id as usize) < expected_order.len());
            }
        }
        prop_assert_eq!(it.len(), expected_order.len());
        // The arena mirrors first-insertion order exactly.
        let arena: Vec<u128> = it.addrs().iter().map(|&a| u128::from(a)).collect();
        prop_assert_eq!(arena, expected_order);
    }

    /// lookup never invents members.
    #[test]
    fn lookup_misses_unknown(words in prop::collection::vec(any::<u128>(), 1..100), probe: u128) {
        let mut it = AddrInterner::new();
        for &w in &words {
            it.intern(Ipv6Addr::from(w));
        }
        if !words.contains(&probe) {
            prop_assert_eq!(it.lookup(Ipv6Addr::from(probe)), None);
        }
    }

    /// map_ids computes per unique id, aligned with the arena.
    #[test]
    fn map_ids_aligned(words in prop::collection::vec(any::<u128>(), 1..200)) {
        let mut it = AddrInterner::new();
        for &w in &words {
            it.intern(Ipv6Addr::from(w));
        }
        let mapped = it.map_ids(u128::from);
        prop_assert_eq!(mapped.len(), it.len());
        for (id, &w) in mapped.iter().enumerate() {
            prop_assert_eq!(it.resolve_word(id as u32), w);
        }
    }
}
