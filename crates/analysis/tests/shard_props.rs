//! Property suite pinning the sharded columnar store
//! ([`ShardedTraceSet`]) to its flat reference: sharding is a pure
//! re-partitioning of the columns, so every whole-store operation —
//! flatten, merge, canonicalize, discovery — must agree bit-for-bit
//! with the unsharded [`TraceSet`] path on any fuzzed record stream.

use analysis::{ShardRoute, ShardedTraceSet, ShardedTraceSetBuilder, TraceSet, TraceSetBuilder};
use proptest::prelude::*;
use std::net::Ipv6Addr;
use v6packet::icmp6::DestUnreachCode;
use yarrp6::addrset::AddrSet;
use yarrp6::{ProbeLog, ResponseKind, ResponseRecord};

/// Decodes one synthetic record from two drawn words — the same
/// generator shape as the merge property suite, with the target's
/// low bits spread over several /64 prefixes so the prefix router
/// actually fans out.
fn synth_record(w: u64, recv_us: u64, allow_tamper: bool) -> ResponseRecord {
    let prefix = (w >> 40) & 0x7; // one of 8 /64s
    let target =
        Ipv6Addr::from((0x2001_0db8_u128 << 96) | (prefix as u128) << 64 | (w & 0x1f) as u128);
    let responder = Ipv6Addr::from((0x2001_0db8_ffff_u128 << 80) | ((w >> 5) & 0xf) as u128);
    let kind = match (w >> 9) % 8 {
        0..=2 => ResponseKind::TimeExceeded,
        3 => ResponseKind::DestUnreachable(DestUnreachCode::NoRoute),
        4 => ResponseKind::DestUnreachable(DestUnreachCode::AdminProhibited),
        5 => ResponseKind::DestUnreachable(DestUnreachCode::PortUnreachable),
        6 => ResponseKind::EchoReply,
        _ => ResponseKind::Tcp,
    };
    let probe_ttl = match (w >> 12) % 10 {
        0 => None,
        _ => Some(((w >> 16) % 20) as u8),
    };
    ResponseRecord {
        target,
        responder,
        kind,
        probe_ttl,
        rtt_us: Some(w % 10_000),
        recv_us,
        target_cksum_ok: !allow_tamper || !(w >> 21).is_multiple_of(10),
    }
}

fn set_of(draws: &[(u64, u64)], allow_tamper: bool) -> TraceSet {
    let records: Vec<ResponseRecord> = draws
        .iter()
        .map(|&(w, recv)| synth_record(w, recv, allow_tamper))
        .collect();
    let mut log = ProbeLog {
        vantage: "V".into(),
        target_set: "S".into(),
        records,
        ..Default::default()
    };
    log.sort_by_recv();
    TraceSet::from_log(&log)
}

proptest! {
    /// The central contract: shard any set, merge the shards back
    /// down, canonicalize — bit-identical to the canonical flat set,
    /// for every shard count. `from_set` → `to_trace_set` is a clean
    /// round trip.
    #[test]
    fn shard_then_flatten_is_bit_identical(
        draws in prop::collection::vec((any::<u64>(), 0u64..50_000), 0..500),
        k in 1usize..9,
    ) {
        let flat = set_of(&draws, true);
        let sharded = ShardedTraceSet::from_set(&flat, k);
        let back = sharded.to_trace_set().canonical();
        let want = flat.canonical();
        prop_assert!(back == want, "{k}-shard round trip diverged");
        // Every trace landed in the shard its target routes to.
        let route = ShardRoute::new(k);
        for (s, shard) in sharded.shards().iter().enumerate() {
            for &t in shard.targets() {
                prop_assert_eq!(route.shard_of(t), s, "target {} misrouted", t);
            }
        }
    }

    /// Sharded merge_all distributes over the flat one: merging k
    /// sharded stores shard-by-shard then flattening equals flat
    /// merge_all of the flattened inputs.
    #[test]
    fn sharded_merge_all_matches_flat(
        a in prop::collection::vec((any::<u64>(), 0u64..20_000), 0..300),
        b in prop::collection::vec((any::<u64>(), 0u64..20_000), 0..300),
        c in prop::collection::vec((any::<u64>(), 0u64..20_000), 0..300),
        k in 1usize..6,
    ) {
        let flats = [set_of(&a, true), set_of(&b, true), set_of(&c, true)];
        let shardeds: Vec<ShardedTraceSet> =
            flats.iter().map(|f| ShardedTraceSet::from_set(f, k)).collect();
        let merged_sharded = ShardedTraceSet::merge_all(&shardeds).to_trace_set().canonical();
        let merged_flat = TraceSet::merge_all(&flats).canonical();
        prop_assert!(merged_sharded == merged_flat, "sharded merge_all diverged at k={k}");
    }

    /// The sharded store's single-pass k-way merge is **bit-identical**
    /// per shard — not merely canonical-equal — to the flat pairwise
    /// fold over the same per-shard inputs: interner id assignment,
    /// column layout, names, provenance, everything.
    #[test]
    fn kway_shard_merge_is_bit_identical_to_pairwise_fold(
        a in prop::collection::vec((any::<u64>(), 0u64..20_000), 0..300),
        b in prop::collection::vec((any::<u64>(), 0u64..20_000), 0..300),
        c in prop::collection::vec((any::<u64>(), 0u64..20_000), 0..300),
        d in prop::collection::vec((any::<u64>(), 0u64..20_000), 0..300),
        k in 1usize..6,
    ) {
        let flats = [set_of(&a, true), set_of(&b, true), set_of(&c, true), set_of(&d, true)];
        let shardeds: Vec<ShardedTraceSet> =
            flats.iter().map(|f| ShardedTraceSet::from_set(f, k)).collect();
        let merged = ShardedTraceSet::merge_all(&shardeds);
        for s in 0..k {
            let fold = TraceSet::merge_all(shardeds.iter().map(|set| set.shard(s)));
            prop_assert!(
                *merged.shard(s) == fold,
                "k-way merge of shard {s} is not bit-identical to the pairwise fold (k={k})"
            );
        }
    }

    /// The shard-aware streaming builder routes at ingest to the same
    /// store `from_set` builds after the fact, on any chunking.
    #[test]
    fn builder_routing_matches_from_set(
        draws in prop::collection::vec((any::<u64>(), 0u64..20_000), 0..300),
        k in 1usize..6,
        chunk in 1usize..64,
    ) {
        let records: Vec<ResponseRecord> = draws
            .iter()
            .map(|&(w, recv)| synth_record(w, recv, true))
            .collect();
        let mut flat_b = TraceSetBuilder::new().with_identity("V".into(), "S".into());
        let mut shard_b =
            ShardedTraceSetBuilder::new(k).with_identity("V".into(), "S".into());
        for c in records.chunks(chunk) {
            flat_b.push_chunk(c);
            shard_b.push_chunk(c);
        }
        let sharded = shard_b.finish();
        for (s, shard) in sharded.shards().iter().enumerate() {
            for &t in shard.targets() {
                prop_assert_eq!(sharded.route().shard_of(t), s, "target {} misrouted", t);
            }
        }
        // Dedup-loser interner words land in the shard of the record
        // that carried them (ingest routing) rather than shard 0
        // (`from_set`'s convention), so the builder is pinned through
        // the flatten, which normalizes placement globally.
        let want = flat_b.finish().canonical();
        let got = sharded.to_trace_set().canonical();
        prop_assert!(got == want, "builder-routed store diverged at k={k} chunk={chunk}");
    }

    /// Discovery is partition-independent: the sharded store's
    /// interface union and discovery delta equal the flat set's.
    #[test]
    fn discovery_is_partition_independent(
        draws in prop::collection::vec((any::<u64>(), 0u64..20_000), 0..300),
        k in 1usize..6,
    ) {
        let flat = set_of(&draws, true);
        let sharded = ShardedTraceSet::from_set(&flat, k);
        let mut w = flat.interface_words();
        w.sort_unstable();
        prop_assert_eq!(sharded.interface_words(), w);
        let mut seen_flat = AddrSet::new();
        let mut seen_sharded = AddrSet::new();
        let mut from_flat = flat.discovery_delta(&mut seen_flat);
        let mut from_sharded = sharded.discovery_delta(&mut seen_sharded);
        from_flat.sort_unstable();
        from_sharded.sort_unstable();
        prop_assert_eq!(from_flat, from_sharded);
        // Nothing is new against a seen-set that already holds it all.
        prop_assert!(sharded.discovery_delta(&mut seen_sharded).is_empty());
    }
}
