//! Property + differential suite pinning [`TraceSet::merge`].
//!
//! The central contract: take any fuzzed record stream, receive-sort
//! it (what a batch prober's log looks like), and split it across `k`
//! vantages **by target** — the multi-vantage shape, where each
//! vantage's log holds whole traces. Then
//!
//! * `merge_all` over the per-vantage sets is **bit-identical** to
//!   `from_log` of the full concatenated log, after canonical
//!   re-interning of both sides (id assignment is the only thing the
//!   two assembly histories may disagree on);
//! * merging is commutative and associative up to canonical form;
//! * merging a set with itself changes nothing.
//!
//! The algebraic properties hold *because* the per-vantage sets carry
//! whole traces: `merge`'s first-wins trace dedup only bites on
//! conflicting shared targets, where the multi-vantage drivers resolve
//! by vantage order (pinned by unit tests in `analysis::traces`).

use analysis::TraceSet;
use proptest::prelude::*;
use std::net::Ipv6Addr;
use v6packet::icmp6::DestUnreachCode;
use yarrp6::{ProbeLog, ResponseKind, ResponseRecord};

/// Decodes one synthetic record from two drawn words, covering every
/// response class the classify pass distinguishes: Time Exceeded,
/// Destination Unreachable codes, Echo Reply, TCP, checksum failures,
/// missing TTLs, and the degenerate ttl 0.
fn synth_record(w: u64, recv_us: u64, allow_tamper: bool) -> ResponseRecord {
    let target = Ipv6Addr::from((0x2001_0db8_u128 << 96) | (w & 0x1f) as u128);
    let responder = Ipv6Addr::from((0x2001_0db8_ffff_u128 << 80) | ((w >> 5) & 0xf) as u128);
    let kind = match (w >> 9) % 8 {
        0..=2 => ResponseKind::TimeExceeded,
        3 => ResponseKind::DestUnreachable(DestUnreachCode::NoRoute),
        4 => ResponseKind::DestUnreachable(DestUnreachCode::AdminProhibited),
        5 => ResponseKind::DestUnreachable(DestUnreachCode::PortUnreachable),
        6 => ResponseKind::EchoReply,
        _ => ResponseKind::Tcp,
    };
    let probe_ttl = match (w >> 12) % 10 {
        0 => None,
        _ => Some(((w >> 16) % 20) as u8),
    };
    ResponseRecord {
        target,
        responder,
        kind,
        probe_ttl,
        rtt_us: Some(w % 10_000),
        recv_us,
        target_cksum_ok: !allow_tamper || !(w >> 21).is_multiple_of(10),
    }
}

fn log_of(records: Vec<ResponseRecord>) -> ProbeLog {
    ProbeLog {
        vantage: "V".into(),
        target_set: "S".into(),
        records,
        ..Default::default()
    }
}

/// Receive-sorts the fuzz draws into the batch-log shape, then
/// partitions the records across `k` per-vantage logs **by target**
/// (hash of the target word), preserving the global receive order
/// inside each partition — each vantage holds whole traces, the shape
/// `merge` is specified over.
fn sorted_and_split(
    draws: &[(u64, u64)],
    k: usize,
    allow_tamper: bool,
) -> (ProbeLog, Vec<ProbeLog>) {
    let records: Vec<ResponseRecord> = draws
        .iter()
        .map(|&(w, recv)| synth_record(w, recv, allow_tamper))
        .collect();
    let mut full = log_of(records);
    full.sort_by_recv();
    let mut parts: Vec<Vec<ResponseRecord>> = vec![Vec::new(); k];
    for r in &full.records {
        let word = u128::from(r.target);
        let slot = (word ^ (word >> 7)) as usize % k;
        parts[slot].push(*r);
    }
    let chunks = parts.into_iter().map(log_of).collect();
    (full, chunks)
}

proptest! {
    /// The differential contract: per-vantage sets merged in vantage
    /// order are bit-identical (after canonical re-intern) to the
    /// batch `from_log` of the receive-sorted concatenated log —
    /// targets, metas, hop/unreachable columns, interner contents, and
    /// the tamper counter all included.
    #[test]
    fn split_logs_merge_bit_identical_to_concatenated_from_log(
        draws in prop::collection::vec((any::<u64>(), 0u64..50_000), 0..500),
        k in 2usize..5,
    ) {
        let (full, chunks) = sorted_and_split(&draws, k, true);
        let want = TraceSet::from_log(&full).canonical();
        let sets: Vec<TraceSet> = chunks.iter().map(TraceSet::from_log).collect();
        let merged = TraceSet::merge_all(&sets).canonical();
        prop_assert!(merged == want, "merge of {k}-way split != from_log of concatenation");
    }

    /// Commutativity and associativity up to canonical form: any
    /// merge order over the per-vantage sets produces the same set.
    #[test]
    fn merge_is_commutative_and_associative_up_to_canonical(
        draws in prop::collection::vec((any::<u64>(), 0u64..20_000), 0..300),
        rot in 0usize..3,
    ) {
        let (_, chunks) = sorted_and_split(&draws, 3, true);
        let s: Vec<TraceSet> = chunks.iter().map(TraceSet::from_log).collect();
        // Left fold in a rotated order.
        let order = [&s[rot % 3], &s[(rot + 1) % 3], &s[(rot + 2) % 3]];
        let rotated = TraceSet::merge_all(order).canonical();
        let reference = TraceSet::merge_all(&s).canonical();
        prop_assert!(rotated == reference, "rotation {rot} diverged");
        // Right-associated grouping.
        let right = s[0].merge(&s[1].merge(&s[2])).canonical();
        prop_assert!(right == reference, "right association diverged");
        // Full reversal.
        let reversed = s[2].merge(&s[1]).merge(&s[0]).canonical();
        prop_assert!(reversed == reference, "reversal diverged");
    }

    /// Idempotence: merging a set with itself is a no-op on every
    /// observation column (the tamper counter is additive by design,
    /// so the generator draws no tampered records here).
    #[test]
    fn merge_is_idempotent(
        draws in prop::collection::vec((any::<u64>(), 0u64..20_000), 0..300),
    ) {
        let records: Vec<ResponseRecord> =
            draws.iter().map(|&(w, recv)| synth_record(w, recv, false)).collect();
        let mut log = log_of(records);
        log.sort_by_recv();
        let a = TraceSet::from_log(&log);
        prop_assert!(a.merge(&a) == a, "self-merge must be a no-op");
    }

    /// The canonical form is a fixed point: canonicalizing twice equals
    /// canonicalizing once, and canonicalization never changes the
    /// observations a view reports.
    #[test]
    fn canonical_is_a_fixed_point_preserving_observations(
        draws in prop::collection::vec((any::<u64>(), 0u64..20_000), 0..300),
    ) {
        let records: Vec<ResponseRecord> =
            draws.iter().map(|&(w, recv)| synth_record(w, recv, true)).collect();
        let mut log = log_of(records);
        log.sort_by_recv();
        let a = TraceSet::from_log(&log);
        let c = a.canonical();
        prop_assert!(c.canonical() == c, "canonical must be idempotent");
        prop_assert_eq!(a.len(), c.len());
        prop_assert_eq!(a.interner().len(), c.interner().len());
        for (x, y) in a.iter().zip(c.iter()) {
            prop_assert_eq!(x.target(), y.target());
            prop_assert_eq!(x.reached_at(), y.reached_at());
            prop_assert_eq!(x.hops().collect::<Vec<_>>(), y.hops().collect::<Vec<_>>());
            prop_assert_eq!(
                x.unreachable().collect::<Vec<_>>(),
                y.unreachable().collect::<Vec<_>>()
            );
        }
    }
}
