//! Golden equivalence: the columnar pipeline must reproduce the
//! map-based reference bit for bit — on real campaigns across every
//! probe protocol and on adversarial synthetic logs (checksum failures,
//! missing TTLs, duplicate records, out-of-order arrival).

use analysis::reference;
use analysis::{discover_by_path_div, ia_hack, AsnResolver, PathDivParams, TraceSet};
use simnet::config::TopologyConfig;
use simnet::Topology;
use std::net::Ipv6Addr;
use std::sync::Arc;
use v6packet::icmp6::DestUnreachCode;
use v6packet::probe::Protocol;
use yarrp6::campaign::run_campaign;
use yarrp6::{ProbeLog, ResponseKind, ResponseRecord, YarrpConfig};

/// Asserts the columnar set reproduces the reference set exactly.
fn assert_equivalent(col: &TraceSet, refset: &reference::TraceSet) {
    assert_eq!(col.len(), refset.len(), "trace count");
    assert_eq!(col.rewritten_dropped, refset.rewritten_dropped);
    assert_eq!(&*col.vantage, refset.vantage.as_str());
    assert_eq!(&*col.target_set, refset.target_set.as_str());
    for (view, rt) in col.iter().zip(refset.iter_sorted()) {
        assert_eq!(view.target(), rt.target, "target order");
        assert_eq!(view.reached_at(), rt.reached_at, "reached_at {}", rt.target);
        let ref_hops: Vec<(u8, Ipv6Addr)> = rt.hops.iter().map(|(&t, &a)| (t, a)).collect();
        assert_eq!(
            view.hops().collect::<Vec<_>>(),
            ref_hops,
            "hops {}",
            rt.target
        );
        assert_eq!(
            view.unreachable().collect::<Vec<_>>(),
            rt.unreachable,
            "unreachable {}",
            rt.target
        );
        assert_eq!(view.path_len(), rt.path_len(), "path_len {}", rt.target);
        assert_eq!(view.last_hop(), rt.last_hop(), "last_hop {}", rt.target);
        assert_eq!(view.hop_vec(), rt.hop_vec(), "hop_vec {}", rt.target);
    }
}

fn fixture(seed: u64) -> (Arc<Topology>, Vec<Ipv6Addr>) {
    let topo = Arc::new(simnet::generate::generate(TopologyConfig::tiny(seed)));
    let addrs: Vec<Ipv6Addr> = topo.hosts().map(|(a, _)| a).take(250).collect();
    (topo, addrs)
}

fn resolver(topo: &Topology) -> AsnResolver {
    AsnResolver::new(
        topo.bgp.clone(),
        topo.rir_extra.clone(),
        &topo.asn_equivalences,
    )
}

#[test]
fn campaigns_match_reference_all_protocols() {
    for (i, proto) in [Protocol::Icmp6, Protocol::Udp, Protocol::Tcp]
        .into_iter()
        .enumerate()
    {
        let (topo, addrs) = fixture(1000 + i as u64);
        let set = targets::TargetSet::new("golden", addrs);
        for vary in [false, true] {
            let cfg = YarrpConfig {
                protocol: proto,
                vary_flow_label: vary,
                ..Default::default()
            };
            let res = run_campaign(&topo, (i % 3) as u8, &set, &cfg);
            let col = TraceSet::from_log(&res.log);
            let refset = reference::TraceSet::from_log(&res.log);
            assert_equivalent(&col, &refset);

            // Subnet inference must agree, gate for gate.
            let r = resolver(&topo);
            let vasn = topo.ases[topo.vantages[i % 3].as_idx as usize].asn;
            for params in [
                PathDivParams::default(),
                PathDivParams {
                    allow_gaps: false,
                    ..Default::default()
                },
                PathDivParams {
                    last_lcs_outside_vantage_as: false,
                    lcs_asn_matches: 0,
                    min_lcs: 1,
                    ..Default::default()
                },
            ] {
                assert_eq!(
                    discover_by_path_div(&col, &r, vasn, &params),
                    reference::discover_by_path_div(&refset, &r, vasn, &params),
                    "path divergence diverged (proto {proto:?}, vary {vary}, {params:?})"
                );
            }
            assert_eq!(
                ia_hack(&col),
                reference::ia_hack(&refset),
                "ia_hack diverged (proto {proto:?}, vary {vary})"
            );
        }
    }
}

#[test]
fn fill_and_neighborhood_campaigns_match_reference() {
    let (topo, addrs) = fixture(77);
    let set = targets::TargetSet::new("golden-fill", addrs);
    let cfgs = [
        YarrpConfig {
            max_ttl: 4,
            fill_mode: true,
            ..Default::default()
        },
        YarrpConfig {
            neighborhood: Some(yarrp6::yarrp::Neighborhood {
                max_ttl: 4,
                window_us: 2_000_000,
            }),
            ..Default::default()
        },
    ];
    for cfg in cfgs {
        let res = run_campaign(&topo, 1, &set, &cfg);
        let col = TraceSet::from_log(&res.log);
        let refset = reference::TraceSet::from_log(&res.log);
        assert_equivalent(&col, &refset);
    }
}

/// Deterministic splitmix64 for the synthetic-log fuzz below.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[test]
fn randomized_synthetic_logs_match_reference() {
    for case in 0..40u64 {
        let mut rng = Rng(0xc01u64 ^ (case << 32));
        let n_targets = 1 + (rng.next() % 40) as u128;
        let n_responders = 1 + (rng.next() % 25) as u128;
        let n_records = (rng.next() % 600) as usize;
        let mut log = ProbeLog {
            vantage: "golden-fuzz".into(),
            target_set: format!("case-{case}").into(),
            ..Default::default()
        };
        for _ in 0..n_records {
            let target =
                Ipv6Addr::from((0x2001_0db8_u128 << 96) | (rng.next() as u128 % n_targets));
            let responder =
                Ipv6Addr::from((0x2001_0db8_ffff_u128 << 80) | (rng.next() as u128 % n_responders));
            let kind = match rng.next() % 8 {
                0..=3 => ResponseKind::TimeExceeded,
                4 => ResponseKind::DestUnreachable(DestUnreachCode::NoRoute),
                5 => ResponseKind::DestUnreachable(DestUnreachCode::PortUnreachable),
                6 => ResponseKind::EchoReply,
                _ => ResponseKind::Tcp,
            };
            // Includes None and the degenerate ttl 0 (representable via
            // CSV import), both of which the reference handles.
            let probe_ttl = match rng.next() % 10 {
                0 => None,
                _ => Some((rng.next() % 20) as u8),
            };
            log.records.push(ResponseRecord {
                target,
                responder,
                kind,
                probe_ttl,
                rtt_us: Some(rng.next() % 10_000),
                recv_us: rng.next() % 1_000_000,
                target_cksum_ok: !rng.next().is_multiple_of(10),
            });
        }
        let col = TraceSet::from_log(&log);
        let refset = reference::TraceSet::from_log(&log);
        assert_equivalent(&col, &refset);
        assert_eq!(ia_hack(&col), reference::ia_hack(&refset), "case {case}");
    }
}

/// The metrics passes were rewritten columnar too; pin them against the
/// original map/set-based derivations, recomputed here from the
/// reference trace set on a real campaign.
#[test]
fn metrics_match_map_based_reference() {
    use analysis::metrics::{discovery_curve, hop_responsiveness, CampaignMetrics};
    use std::collections::{BTreeMap, BTreeSet};
    use v6addr::iid::{classify, IidClass};

    let (topo, addrs) = fixture(99);
    let set = targets::TargetSet::new("golden-metrics", addrs);
    let log = run_campaign(&topo, 2, &set, &YarrpConfig::default()).log;
    let bgp = &topo.bgp;
    let m = CampaignMetrics::compute(&log, bgp);
    let refset = reference::TraceSet::from_log(&log);

    // interface_addrs / prefixes / ASNs — original BTreeSet derivation.
    let ifaces = log.interface_addrs();
    let mut pfxs = BTreeSet::new();
    let mut asns = BTreeSet::new();
    for &a in &ifaces {
        if let Some((p, asn)) = bgp.lookup(a) {
            pfxs.insert(p);
            asns.insert(asn.0);
        }
    }
    assert_eq!(m.interface_addrs, ifaces.len() as u64);
    assert_eq!(m.int_bgp_prefixes, pfxs.len() as u64);
    assert_eq!(m.int_asns, asns.len() as u64);

    // reach_frac — original per-trace map walk.
    let reached = refset
        .traces
        .values()
        .filter(|t| {
            if t.reached_at.is_some() {
                return true;
            }
            let Some(tasn) = bgp.origin(t.target) else {
                return false;
            };
            t.hops
                .values()
                .chain(t.unreachable.iter().map(|(_, r)| r))
                .any(|&h| bgp.origin(h) == Some(tasn))
        })
        .count();
    assert!((m.reach_frac - reached as f64 / refset.len() as f64).abs() < 1e-12);

    // EUI-64 uniques and offsets — original BTreeSet + per-hop walk.
    let mut eui_addrs: BTreeSet<Ipv6Addr> = BTreeSet::new();
    let mut offsets: Vec<i16> = Vec::new();
    for t in refset.traces.values() {
        let Some(plen) = t.path_len() else { continue };
        for (&ttl, &hop) in &t.hops {
            if classify(hop) == IidClass::Eui64 {
                eui_addrs.insert(hop);
                offsets.push(ttl as i16 - plen as i16);
            }
        }
    }
    offsets.sort_unstable();
    assert_eq!(m.eui64_addrs, eui_addrs.len() as u64);
    if !offsets.is_empty() {
        let idx = |p: f64| ((offsets.len() - 1) as f64 * p).round() as usize;
        assert_eq!(m.eui64_offset_median, offsets[idx(0.5)]);
        assert_eq!(m.eui64_offset_p5, offsets[idx(0.05)]);
    }

    // hop_responsiveness — original per-(target, ttl) set derivation.
    let max_ttl = 16;
    let total = log.traces.max(1) as f64;
    let mut counts = vec![0u64; max_ttl as usize + 1];
    let mut seen: BTreeSet<(Ipv6Addr, u8)> = BTreeSet::new();
    for r in &log.records {
        if r.kind == ResponseKind::TimeExceeded {
            if let Some(ttl) = r.probe_ttl {
                if ttl <= max_ttl && seen.insert((r.target, ttl)) {
                    counts[ttl as usize] += 1;
                }
            }
        }
    }
    let expect: Vec<f64> = (1..=max_ttl as usize)
        .map(|t| counts[t] as f64 / total)
        .collect();
    assert_eq!(hop_responsiveness(&log, max_ttl), expect);

    // discovery_curve — original incremental-set derivation.
    let rate_interval = if log.probes_sent > 0 && log.duration_us > 0 {
        (log.duration_us as f64 / log.probes_sent as f64).max(1.0)
    } else {
        1.0
    };
    let mut sends: Vec<(u64, Ipv6Addr)> = log
        .records
        .iter()
        .filter(|r| r.kind == ResponseKind::TimeExceeded)
        .map(|r| {
            let sent = r.recv_us - r.rtt_us.unwrap_or(0).min(r.recv_us);
            (sent, r.responder)
        })
        .collect();
    sends.sort_unstable();
    let mut seen = BTreeSet::new();
    let mut curve = Vec::new();
    for (sent_us, addr) in sends {
        if seen.insert(addr) {
            let probe_no = (sent_us as f64 / rate_interval) as u64 + 1;
            curve.push((probe_no, seen.len() as u64));
        }
    }
    assert_eq!(discovery_curve(&log), curve);

    // exclusive_features — original count-map derivation, across the
    // three vantages.
    let logs: Vec<yarrp6::ProbeLog> = (0..3u8)
        .map(|v| run_campaign(&topo, v, &set, &YarrpConfig::default()).log)
        .collect();
    let log_refs: Vec<&yarrp6::ProbeLog> = logs.iter().collect();
    let got = analysis::metrics::exclusive_features(&log_refs, bgp);
    let mut iface_count: BTreeMap<Ipv6Addr, u32> = BTreeMap::new();
    let per_log: Vec<BTreeSet<Ipv6Addr>> = logs
        .iter()
        .map(|l| {
            let ifaces = l.interface_addrs();
            for &a in &ifaces {
                *iface_count.entry(a).or_default() += 1;
            }
            ifaces
        })
        .collect();
    for (k, ifaces) in per_log.iter().enumerate() {
        let excl = ifaces.iter().filter(|a| iface_count[a] == 1).count() as u64;
        assert_eq!(got[k].interfaces, excl, "vantage {k} exclusives");
    }
}

#[test]
fn from_traces_round_trips_reference_traces() {
    let (topo, addrs) = fixture(5);
    let set = targets::TargetSet::new("golden-rt", addrs);
    let res = run_campaign(&topo, 0, &set, &YarrpConfig::default());
    let refset = reference::TraceSet::from_log(&res.log);
    let col = TraceSet::from_traces(refset.traces.values().cloned());
    for (view, rt) in col.iter().zip(refset.iter_sorted()) {
        assert_eq!(view.target(), rt.target);
        assert_eq!(
            view.hops().collect::<Vec<_>>(),
            rt.hops.iter().map(|(&t, &a)| (t, a)).collect::<Vec<_>>()
        );
        assert_eq!(view.reached_at(), rt.reached_at);
        assert_eq!(view.unreachable().collect::<Vec<_>>(), rt.unreachable);
    }
}
