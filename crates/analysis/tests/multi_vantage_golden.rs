//! Golden equivalence for the multi-vantage orchestration: the
//! streaming sweep ([`stream_multi_vantage`] /
//! [`stream_multi_vantage_parallel`]) must be **bit-identical** — per
//! vantage, in the merged union (interner ids included, both raw and
//! after canonical re-intern), and in the merged engine accounting —
//! to the batch path (per-vantage `run_campaign` → `from_log` →
//! `TraceSet::merge_all`), across every probe protocol,
//! `vary_flow_label`, fill mode, and neighborhood mode.

use analysis::{stream_multi_vantage, stream_multi_vantage_parallel, TraceSet};
use simnet::config::TopologyConfig;
use simnet::{EngineStats, Topology};
use std::net::Ipv6Addr;
use std::sync::Arc;
use targets::TargetSet;
use v6packet::probe::Protocol;
use yarrp6::campaign::run_campaign;
use yarrp6::sink::StreamConfig;
use yarrp6::yarrp::Neighborhood;
use yarrp6::YarrpConfig;

const VANTAGES: [u8; 3] = [0, 1, 2];

fn fixture(seed: u64) -> (Arc<Topology>, TargetSet) {
    let topo = Arc::new(simnet::generate::generate(TopologyConfig::tiny(seed)));
    let addrs: Vec<Ipv6Addr> = topo.hosts().map(|(a, _)| a).take(200).collect();
    let set = TargetSet::new("mv-golden", addrs);
    (topo, set)
}

/// The batch comparator: per-vantage batch campaigns, merged in
/// vantage order.
fn batch(
    topo: &Arc<Topology>,
    set: &TargetSet,
    cfg: &YarrpConfig,
) -> (TraceSet, Vec<TraceSet>, EngineStats) {
    let per: Vec<(TraceSet, EngineStats)> = VANTAGES
        .iter()
        .map(|&v| {
            let res = run_campaign(topo, v, set, cfg);
            (TraceSet::from_log(&res.log), res.engine_stats)
        })
        .collect();
    let merged = TraceSet::merge_all(per.iter().map(|(ts, _)| ts));
    let stats = EngineStats::merged(per.iter().map(|(_, es)| es));
    (merged, per.into_iter().map(|(ts, _)| ts).collect(), stats)
}

fn assert_sweep_matches(topo: &Arc<Topology>, set: &TargetSet, cfg: &YarrpConfig, label: &str) {
    let stream = StreamConfig {
        chunk_records: 64, // tiny chunks: many channel round-trips
        channel_chunks: 2,
    };
    let (want_merged, want_per, want_stats) = batch(topo, set, cfg);
    for (mode, sweep) in [
        (
            "serial",
            stream_multi_vantage(topo, &VANTAGES, set, cfg, &stream),
        ),
        (
            "parallel",
            stream_multi_vantage_parallel(topo, &VANTAGES, set, cfg, &stream),
        ),
    ] {
        assert_eq!(sweep.per_vantage.len(), 3, "{label} [{mode}]");
        for (v, ((ts, _), want)) in sweep.per_vantage.iter().zip(&want_per).enumerate() {
            assert_eq!(ts, want, "{label} [{mode}] vantage {v} diverged");
        }
        assert_eq!(
            sweep.merged, want_merged,
            "{label} [{mode}] merged union diverged"
        );
        assert_eq!(
            sweep.merged.canonical(),
            want_merged.canonical(),
            "{label} [{mode}] canonical forms diverged"
        );
        assert_eq!(
            sweep.stats, want_stats,
            "{label} [{mode}] merged engine stats diverged"
        );
        // The merged identity is the `+`-joined vantage list, and every
        // trace resolves its provenance to one of the three vantages.
        assert_eq!(&*sweep.merged.vantage, "EU-NET+US-EDU-1+US-EDU-2");
        assert_eq!(sweep.merged.sources().len(), 3);
        for t in sweep.merged.iter() {
            assert!(
                sweep.merged.sources().contains(t.vantage()),
                "{label} [{mode}] trace provenance outside the sweep"
            );
        }
    }
}

#[test]
fn multi_vantage_streaming_matches_batch_all_protocols() {
    for (i, proto) in [Protocol::Icmp6, Protocol::Udp, Protocol::Tcp]
        .into_iter()
        .enumerate()
    {
        let (topo, set) = fixture(4600 + i as u64);
        for vary in [false, true] {
            let cfg = YarrpConfig {
                protocol: proto,
                vary_flow_label: vary,
                ..Default::default()
            };
            assert_sweep_matches(&topo, &set, &cfg, &format!("proto {proto:?} vary {vary}"));
        }
    }
}

#[test]
fn multi_vantage_streaming_matches_batch_fill_and_neighborhood() {
    let (topo, set) = fixture(4677);
    let cfgs = [
        (
            "fill",
            YarrpConfig {
                max_ttl: 4,
                fill_mode: true,
                ..Default::default()
            },
        ),
        (
            "neighborhood",
            YarrpConfig {
                neighborhood: Some(Neighborhood {
                    max_ttl: 4,
                    window_us: 2_000_000,
                }),
                ..Default::default()
            },
        ),
    ];
    for (label, cfg) in cfgs {
        assert_sweep_matches(&topo, &set, &cfg, label);
    }
}

/// The union must actually union: the merged set's interface count is
/// at least every single vantage's, and its interner covers every
/// per-vantage discovery.
#[test]
fn merged_union_covers_every_vantage() {
    let (topo, set) = fixture(4712);
    let sweep = stream_multi_vantage_parallel(
        &topo,
        &VANTAGES,
        &set,
        &YarrpConfig::default(),
        &StreamConfig::default(),
    );
    let union = analysis::vantage_union_count(sweep.per_vantage.iter().map(|(ts, _)| ts));
    for (ts, _) in &sweep.per_vantage {
        assert!(ts.interface_words().len() as u64 <= union);
        for w in ts.interner().words() {
            assert!(
                sweep.merged.interner().lookup(Ipv6Addr::from(*w)).is_some(),
                "merged interner missing a per-vantage discovery"
            );
        }
    }
}
