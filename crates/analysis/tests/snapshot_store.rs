//! Filesystem battery for the persistent sharded snapshot
//! ([`analysis::snapshot`]): byte-determinism of the written
//! directory, a faithful round trip, and — because a longitudinal
//! store is only as good as its failure modes — loud rejection of
//! truncation, bit rot, version skew, missing files, and segments
//! whose targets route to the wrong shard.

use analysis::snapshot::{
    decode_segment, encode_manifest, encode_segment, fnv1a, segment_file, SegmentInfo,
    MANIFEST_FILE,
};
use analysis::{
    read_sharded_snapshot, write_sharded_snapshot, ShardedTraceSet, SnapshotError,
    SnapshotManifest, StoreError, TraceSet,
};
use std::net::Ipv6Addr;
use std::path::{Path, PathBuf};
use v6packet::icmp6::DestUnreachCode;
use yarrp6::{ProbeLog, ResponseKind, ResponseRecord};

/// A unique scratch directory removed on drop, even when the test
/// fails partway.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("beholder-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A deterministic synthetic store spread over several /64 prefixes so
/// every shard of a small route is non-empty.
fn sample_store(shards: usize) -> ShardedTraceSet {
    let mut records = Vec::new();
    let mut x = 0x9e37_79b9u64;
    for i in 0..400u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let prefix = x & 0xf;
        let target = Ipv6Addr::from(
            (0x2001_0db8_u128 << 96) | (prefix as u128) << 64 | (x >> 32 & 0x3f) as u128,
        );
        let responder = Ipv6Addr::from((0x2001_0db8_ffff_u128 << 80) | (x >> 16 & 0xff) as u128);
        let kind = match x % 5 {
            0..=2 => ResponseKind::TimeExceeded,
            3 => ResponseKind::DestUnreachable(DestUnreachCode::NoRoute),
            _ => ResponseKind::EchoReply,
        };
        records.push(ResponseRecord {
            target,
            responder,
            kind,
            probe_ttl: Some((x % 16) as u8 + 1),
            rtt_us: Some(x % 10_000),
            recv_us: i * 10,
            target_cksum_ok: !x.is_multiple_of(97),
        });
    }
    let mut log = ProbeLog {
        vantage: "snapshot-v".into(),
        target_set: "snapshot-s".into(),
        records,
        ..Default::default()
    };
    log.sort_by_recv();
    ShardedTraceSet::from_set(&TraceSet::from_log(&log), shards)
}

fn patch(path: &Path, offset: usize, f: impl FnOnce(&mut u8)) {
    let mut bytes = std::fs::read(path).unwrap();
    f(&mut bytes[offset]);
    std::fs::write(path, bytes).unwrap();
}

#[test]
fn round_trip_is_faithful() {
    let dir = TempDir::new("round-trip");
    let store = sample_store(4);
    let manifest = write_sharded_snapshot(dir.path(), &store).unwrap();
    assert_eq!(manifest.n_shards, 4);
    let back = read_sharded_snapshot(dir.path()).unwrap();
    // Exact: same route, same shards, same interner id assignment.
    assert!(back == store, "snapshot round trip diverged");
    assert!(back.to_trace_set().canonical() == store.to_trace_set().canonical());
}

#[test]
fn single_shard_and_empty_stores_round_trip() {
    let dir = TempDir::new("degenerate");
    for (name, store) in [
        ("one", sample_store(1)),
        ("empty", ShardedTraceSet::from_set(&TraceSet::default(), 3)),
    ] {
        let sub = dir.path().join(name);
        write_sharded_snapshot(&sub, &store).unwrap();
        assert!(read_sharded_snapshot(&sub).unwrap() == store);
    }
}

#[test]
fn writes_are_byte_deterministic() {
    let dir = TempDir::new("determinism");
    let store = sample_store(4);
    let (a, b) = (dir.path().join("a"), dir.path().join("b"));
    write_sharded_snapshot(&a, &store).unwrap();
    write_sharded_snapshot(&b, &store).unwrap();
    let mut files: Vec<String> = (0..4).map(segment_file).collect();
    files.push(MANIFEST_FILE.to_string());
    for f in files {
        assert_eq!(
            std::fs::read(a.join(&f)).unwrap(),
            std::fs::read(b.join(&f)).unwrap(),
            "{f} differs between two writes of the same store"
        );
    }
}

#[test]
fn truncated_segment_is_rejected_before_decoding() {
    let dir = TempDir::new("truncate");
    write_sharded_snapshot(dir.path(), &sample_store(3)).unwrap();
    let seg = dir.path().join(segment_file(1));
    let bytes = std::fs::read(&seg).unwrap();
    std::fs::write(&seg, &bytes[..bytes.len() - 1]).unwrap();
    match read_sharded_snapshot(dir.path()) {
        Err(StoreError::Mismatch(what)) => assert_eq!(what, "segment length"),
        other => panic!("expected length mismatch, got {other:?}"),
    }
}

#[test]
fn bit_rot_fails_the_checksum() {
    let dir = TempDir::new("bitrot");
    write_sharded_snapshot(dir.path(), &sample_store(3)).unwrap();
    // Flip one bit past the segment header; length is unchanged, so
    // only the checksum can catch it — and it names the shard.
    patch(&dir.path().join(segment_file(2)), 64, |b| *b ^= 0x40);
    match read_sharded_snapshot(dir.path()) {
        Err(StoreError::Corrupt { segment: 2 }) => {}
        other => panic!("expected corrupt segment 2, got {other:?}"),
    }
}

#[test]
fn manifest_version_and_magic_skew_are_rejected() {
    let dir = TempDir::new("skew");
    write_sharded_snapshot(dir.path(), &sample_store(2)).unwrap();
    // Bytes 4..8 are the little-endian store version.
    patch(&dir.path().join(MANIFEST_FILE), 4, |b| *b ^= 0xff);
    match read_sharded_snapshot(dir.path()) {
        Err(StoreError::Decode(SnapshotError::BadValue("store version"))) => {}
        other => panic!("expected version rejection, got {other:?}"),
    }
    patch(&dir.path().join(MANIFEST_FILE), 4, |b| *b ^= 0xff);
    patch(&dir.path().join(MANIFEST_FILE), 0, |b| *b ^= 0xff);
    match read_sharded_snapshot(dir.path()) {
        Err(StoreError::Decode(SnapshotError::BadMagic)) => {}
        other => panic!("expected magic rejection, got {other:?}"),
    }
}

#[test]
fn segment_version_skew_is_rejected() {
    let shard = sample_store(1).shard(0).clone();
    let mut bytes = encode_segment(&shard);
    bytes[4] ^= 0xff;
    match decode_segment(&bytes) {
        Err(SnapshotError::BadValue("store version")) => {}
        other => panic!("expected version rejection, got {other:?}"),
    }
    bytes[4] ^= 0xff;
    assert!(decode_segment(&bytes).unwrap() == shard);
}

#[test]
fn missing_segment_is_an_io_error() {
    let dir = TempDir::new("missing");
    write_sharded_snapshot(dir.path(), &sample_store(3)).unwrap();
    std::fs::remove_file(dir.path().join(segment_file(0))).unwrap();
    match read_sharded_snapshot(dir.path()) {
        Err(StoreError::Io(_)) => {}
        other => panic!("expected io error, got {other:?}"),
    }
}

#[test]
fn misrouted_segment_is_rejected() {
    let dir = TempDir::new("misroute");
    let store = sample_store(2);
    write_sharded_snapshot(dir.path(), &store).unwrap();
    // Swap the two segment files and re-manifest with matching
    // lengths/checksums: every integrity check passes, but the targets
    // now sit in shards the route disagrees with.
    let (f0, f1) = (
        dir.path().join(segment_file(0)),
        dir.path().join(segment_file(1)),
    );
    let (b0, b1) = (std::fs::read(&f0).unwrap(), std::fs::read(&f1).unwrap());
    std::fs::write(&f0, &b1).unwrap();
    std::fs::write(&f1, &b0).unwrap();
    let manifest = SnapshotManifest {
        n_shards: 2,
        segments: vec![
            SegmentInfo {
                len: b1.len() as u64,
                fnv: fnv1a(&b1),
            },
            SegmentInfo {
                len: b0.len() as u64,
                fnv: fnv1a(&b0),
            },
        ],
    };
    std::fs::write(dir.path().join(MANIFEST_FILE), encode_manifest(&manifest)).unwrap();
    match read_sharded_snapshot(dir.path()) {
        Err(StoreError::Mismatch(what)) => assert_eq!(what, "target routed to wrong shard"),
        other => panic!("expected misroute rejection, got {other:?}"),
    }
}
