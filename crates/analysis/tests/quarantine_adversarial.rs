//! Quarantine under fire: for **every** hostile responder class the
//! simulator can schedule, the quarantine stage must be deterministic
//! (serial == parallel streaming, repeat runs bit-identical) and must
//! never let a fabricated interface through — every surviving interface
//! address resolves to a real router of the topology.
//!
//! The clean-input contract rides along: quarantining a campaign with
//! no hostile responders returns the input verbatim.

use analysis::{
    quarantine, quarantine_all, stream_campaigns_parallel, stream_campaigns_serial,
    QuarantineConfig, TraceSet,
};
use simnet::config::TopologyConfig;
use simnet::{AdversarialClass, AdversarialSchedule, Topology};
use std::net::Ipv6Addr;
use std::sync::Arc;
use targets::TargetSet;
use yarrp6::campaign::CampaignSpec;
use yarrp6::sink::StreamConfig;
use yarrp6::YarrpConfig;

/// Marks every `stride`-th router permanently hostile, cycling through
/// `classes`, and returns the poisoned topology.
fn hostile_topology(seed: u64, classes: &[AdversarialClass], stride: usize) -> Arc<Topology> {
    let base = TopologyConfig::tiny(seed);
    let clean = simnet::generate::generate(base.clone());
    let mut sched = AdversarialSchedule::default();
    let mut k = 0usize;
    for r in 0..clean.routers.len() {
        if r % stride == 0 {
            sched =
                sched.with_hostile_always(simnet::RouterId(r as u32), classes[k % classes.len()]);
            k += 1;
        }
    }
    let mut cfg = base;
    cfg.adversarial = sched;
    Arc::new(simnet::generate::generate(cfg))
}

fn targets_of(topo: &Topology, n: usize) -> TargetSet {
    let addrs: Vec<Ipv6Addr> = topo.hosts().map(|(a, _)| a).take(n).collect();
    TargetSet::new("q-adv", addrs)
}

fn run_all(topo: &Arc<Topology>, set: &TargetSet, parallel: bool) -> Vec<TraceSet> {
    let cfg = YarrpConfig::default();
    let specs: Vec<CampaignSpec> = (0..3u8)
        .map(|v| CampaignSpec {
            vantage_idx: v,
            set,
            cfg,
        })
        .collect();
    let stream = StreamConfig {
        chunk_records: 64,
        channel_chunks: 2,
    };
    let run = if parallel {
        stream_campaigns_parallel(topo, &specs, &stream)
    } else {
        stream_campaigns_serial(topo, &specs, &stream)
    };
    run.into_iter().map(|(ts, _)| ts).collect()
}

/// Every interface address a cleaned set still carries must belong to a
/// real router of the topology — zero fabricated interfaces.
fn assert_no_fabricated(topo: &Topology, sets: &[TraceSet], label: &str) {
    for set in sets {
        for addr in set.interface_addrs() {
            assert!(
                topo.router_by_iface(addr).is_some(),
                "{label}: fabricated interface {addr} survived quarantine"
            );
            assert_ne!(
                addr.octets()[0],
                0xfd,
                "{label}: spoofed-source address {addr} survived"
            );
        }
    }
}

#[test]
fn every_class_is_deterministic_and_yields_no_fabricated_interfaces() {
    for (i, class) in AdversarialClass::ALL.into_iter().enumerate() {
        let topo = hostile_topology(9000 + i as u64, &[class], 4);
        let set = targets_of(&topo, 200);
        let cfg = QuarantineConfig::default();

        let serial = run_all(&topo, &set, false);
        let parallel = run_all(&topo, &set, true);
        assert_eq!(serial, parallel, "{class:?}: serial != parallel streaming");

        let refs: Vec<&TraceSet> = serial.iter().collect();
        let prefs: Vec<&TraceSet> = parallel.iter().collect();
        let (clean_s, rep_s) = quarantine_all(&refs, &cfg);
        let (clean_p, rep_p) = quarantine_all(&prefs, &cfg);
        assert_eq!(clean_s, clean_p, "{class:?}: quarantine output diverged");
        assert_eq!(rep_s, rep_p, "{class:?}: quarantine report diverged");

        // Repeat run from scratch: bit-identical, interner ids and all.
        let again = run_all(&topo, &set, false);
        let arefs: Vec<&TraceSet> = again.iter().collect();
        let (clean_a, rep_a) = quarantine_all(&arefs, &cfg);
        assert_eq!(clean_s, clean_a, "{class:?}: repeat run diverged");
        assert_eq!(rep_s, rep_a, "{class:?}: repeat report diverged");
        for (a, b) in clean_s.iter().zip(&clean_a) {
            assert_eq!(
                a.interner().words(),
                b.interner().words(),
                "{class:?}: interner id assignment diverged"
            );
        }

        assert_no_fabricated(&topo, &clean_s, &format!("{class:?}"));
    }
}

#[test]
fn mixed_classes_pooled_across_vantages() {
    let topo = hostile_topology(9100, &AdversarialClass::ALL, 5);
    let set = targets_of(&topo, 250);
    let sets = run_all(&topo, &set, false);
    let refs: Vec<&TraceSet> = sets.iter().collect();
    let (cleaned, report) = quarantine_all(&refs, &QuarantineConfig::default());
    // A fleet this hostile must trip at least one rule.
    assert!(
        !report.is_clean(),
        "a topology with every fifth router hostile produced a clean report"
    );
    assert_no_fabricated(&topo, &cleaned, "mixed");
    // The merged cleaned union stays fabricated-free too.
    let merged = TraceSet::merge_all(cleaned.iter());
    assert_no_fabricated(&topo, std::slice::from_ref(&merged), "merged");
}

#[test]
fn clean_campaigns_pass_through_bit_identical() {
    let base = TopologyConfig::tiny(9200);
    let topo = Arc::new(simnet::generate::generate(base));
    let set = targets_of(&topo, 200);
    let sets = run_all(&topo, &set, false);
    let cfg = QuarantineConfig::default();
    for ts in &sets {
        let (cleaned, report) = quarantine(ts, &cfg);
        assert!(report.is_clean(), "clean campaign flagged: {report:?}");
        assert_eq!(&cleaned, ts);
        assert_eq!(cleaned.interner().words(), ts.interner().words());
    }
}
