//! Offline shim for `rand`.
//!
//! Provides exactly the surface this workspace uses: `SmallRng` (a
//! xoshiro256++ generator, seeded via splitmix64 like the real
//! `rand_xoshiro`), `SeedableRng::seed_from_u64`, and `Rng` with
//! `gen`/`gen_bool`/`gen_range`. Deterministic by construction — all
//! topology/seed synthesis in the workspace is keyed off fixed seeds.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                self.start.wrapping_add((<$wide as Standard>::sample(rng) % span) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-width range.
                    return <$wide as Standard>::sample(rng) as $t;
                }
                lo.wrapping_add((<$wide as Standard>::sample(rng) % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
    u128 => u128, i128 => u128
);

/// The user-facing random-value API.
pub trait Rng: RngCore {
    /// Samples a value of an inferred type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Uniform draw from a range.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed ^ 0x2545f4914f6cdd1du64;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let a = r.gen_range(3usize..10);
            assert!((3..10).contains(&a));
            let b = r.gen_range(0u8..=2);
            assert!(b <= 2);
            let c = r.gen_range(5u128..=5);
            assert_eq!(c, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }
}
