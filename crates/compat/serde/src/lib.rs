//! Offline shim for `serde`.
//!
//! Exposes the `Serialize`/`Deserialize` trait names and their derive
//! macros so `use serde::{Deserialize, Serialize}` + `#[derive(...)]`
//! compile unchanged. The derives are no-ops (see `serde_derive`); no
//! code in this workspace serializes through serde.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
