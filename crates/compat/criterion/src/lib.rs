//! Offline shim for `criterion`.
//!
//! A wall-clock harness with criterion's API shape: benchmark groups,
//! `Bencher::iter`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark warms up briefly, then runs
//! timed batches for ~`CRITERION_MEASURE_MS` (default 300 ms) and
//! reports the median batch's ns/iter plus derived throughput.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Collects per-iteration timings.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, storing the median batch's ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup and calibration: find an iteration count that takes
        // roughly one batch interval.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < Duration::from_millis(30) {
            black_box(f());
            calib_iters += 1;
        }
        let batch = calib_iters.max(1);

        let measure_ms: u64 = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300);
        let deadline = Instant::now() + Duration::from_millis(measure_ms);
        let mut samples: Vec<f64> = Vec::new();
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            samples.push(dt.as_nanos() as f64 / batch as f64);
        }
        // Minimum batch: the noise-robust estimator — contention and
        // frequency scaling only ever add time.
        self.ns_per_iter = samples.iter().copied().fold(f64::INFINITY, f64::min);
    }
}

fn report(name: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let mut line = format!("{name:<44} {:>12.1} ns/iter", ns_per_iter);
    if let Some(t) = throughput {
        let (n, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let rate = n as f64 * 1e9 / ns_per_iter;
        line.push_str(&format!("   {:>14.0} {unit}/s", rate));
    }
    println!("{line}");
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput annotation.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(&mut self, id: N, mut f: F) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.as_ref()),
            b.ns_per_iter,
            self.throughput,
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<N: AsRef<str>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(&mut self, id: N, mut f: F) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(id.as_ref(), b.ns_per_iter, None);
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
