//! Offline shim for the `serde_derive` proc-macro crate.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! documentation of intent — nothing serializes through serde (JSON
//! emitters are hand-rolled), so the derives expand to nothing. If a
//! future PR needs real serialization, replace this shim with the real
//! crate (or emit impls here).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
