//! Offline shim for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`strategy::Strategy`] trait over a deterministic RNG, `any`,
//! integer-range and tuple strategies, `prop::collection::{vec,
//! btree_set}`, and the `proptest!` / `prop_compose!` / `prop_oneof!` /
//! `prop_assert*` macros. No shrinking: failures report the generated
//! case's seed so they reproduce exactly (everything is deterministic
//! per test name + case index).

/// Number of cases each `proptest!` test runs (override with
/// `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

pub mod test_runner {
    //! The deterministic test RNG and failure type.

    use std::fmt;

    /// Error carried out of a failing property body.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Splitmix64-based deterministic RNG, seeded from the test name and
    /// re-seeded per case.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        base: u64,
        state: u64,
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// RNG keyed by a stable name (the test function's name).
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { base: h, state: h }
        }

        /// Re-keys for case `i` so each case is independent of how much
        /// entropy earlier cases consumed.
        pub fn reseed_case(&mut self, i: u32) {
            let mut s = self.base ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
            self.state = splitmix64(&mut s);
        }

        /// The next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from a deterministic RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct OneOf<V>(pub Vec<Box<dyn Strategy<Value = V>>>);

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    /// Closure-backed strategy (used by `prop_compose!`).
    pub struct FnStrategy<F>(pub F);

    impl<V, F: Fn(&mut TestRng) -> V> Strategy for FnStrategy<F> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty => $wide:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                    let draw = ((rng.next_u64() as $wide)
                        ^ ((rng.next_u64() as $wide) << 32)) % span;
                    self.start.wrapping_add(draw as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                    let draw = (rng.next_u64() as $wide) ^ ((rng.next_u64() as $wide) << 32);
                    if span == 0 {
                        return draw as $t;
                    }
                    lo.wrapping_add((draw % span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
        u128 => u128
    );

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy! {
        (0 S0, 1 S1)
        (0 S0, 1 S1, 2 S2)
        (0 S0, 1 S1, 2 S2, 3 S3)
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the `Arbitrary` trait.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[inline]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        #[inline]
        fn arbitrary(rng: &mut TestRng) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        #[inline]
        fn arbitrary(rng: &mut TestRng) -> Self {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        #[inline]
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with `size.start..size.end` elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet<S::Value>` with cardinality drawn from
    /// `size` (best-effort under duplicate draws).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + (rng.next_u64() % span) as usize;
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 10 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `BTreeSet` strategy with `size.start..size.end` elements.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Binds `proptest!`/`prop_compose!` parameters: `pat in strategy` draws
/// from the strategy; `ident: Type` draws an arbitrary value.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $x:ident : $ty:ty, $($rest:tt)*) => {
        let $x: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut *$rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $x:ident : $ty:ty) => {
        let $x: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut *$rng);
    };
    ($rng:ident, $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut *$rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut *$rng);
    };
}

/// The property-test macro: each `fn` becomes a `#[test]` running
/// [`cases`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..$crate::cases() {
                __rng.reseed_case(__case);
                let rng = &mut __rng;
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $crate::__proptest_bind!(rng, $($params)*);
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                if let Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}: {}",
                        stringify!($name),
                        __case,
                        e
                    );
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Composes named strategies from sub-strategies, mirroring
/// `proptest::prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($args:tt)*)($($params:tt)*) -> $ty:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($args)*) -> impl $crate::strategy::Strategy<Value = $ty> {
            $crate::strategy::FnStrategy(move |rng: &mut $crate::test_runner::TestRng| -> $ty {
                $crate::__proptest_bind!(rng, $($params)*);
                $body
            })
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![
            $(Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// `assert!` that fails the property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` for property cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__a, __b) => {
                $crate::prop_assert!(
                    __a == __b,
                    "assertion failed: {:?} != {:?}",
                    __a,
                    __b
                )
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (__a, __b) => {
                if !(__a == __b) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                        format!(
                            "{} (left: {:?}, right: {:?})",
                            format!($($fmt)*),
                            __a,
                            __b
                        ),
                    ));
                }
            }
        }
    };
}

/// `assert_ne!` for property cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__a, __b) => {
                $crate::prop_assert!(
                    __a != __b,
                    "assertion failed: {:?} == {:?}",
                    __a,
                    __b
                )
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (__a, __b) => {
                if !(__a != __b) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                        format!(
                            "{} (both: {:?})",
                            format!($($fmt)*),
                            __a
                        ),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u8..=7, y in 10usize..20, w: u128) {
            prop_assert!((3..=7).contains(&x));
            prop_assert!((10..20).contains(&y));
            let _ = w;
        }

        #[test]
        fn collections_sized(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }
    }

    prop_compose! {
        fn pairs()(a in 0u32..10, b: u8) -> (u32, u8) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn composed(p in pairs()) {
            prop_assert!(p.0 < 10);
        }

        #[test]
        fn oneof_picks(v in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1u8..=3).contains(&v));
        }
    }
}
