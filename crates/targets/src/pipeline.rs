//! End-to-end target catalog: the 18 target sets (9 sources × z48/z64)
//! that the paper's campaigns probe (Table 5 / Table 7 row space) —
//! plus the feedback-driven entry point ([`feedback_targets`]) that
//! turns *discovered* prefixes into the next probing round's targets
//! instead of starting from a static file.

use crate::synthesize::{synthesize, IidStrategy};
use crate::transform::zn;
use crate::TargetSet;
use seeds::sources::SeedCatalog;
use seeds::SeedList;
use std::sync::Arc;
use v6addr::Ipv6Prefix;

/// All generated target sets, in table order.
#[derive(Clone, Debug)]
pub struct TargetCatalog {
    /// `(source-name, aggregation)` → target set; aggregation ∈ {48, 64}.
    pub sets: Vec<TargetSet>,
}

/// Sources excluded from the exclusivity basis (supersets of others).
const NON_INDEPENDENT: [&str; 3] = ["tum", "combined", "random"];

/// Feedback-driven target synthesis: the adaptive loop's replacement
/// for the static `zn` step.
///
/// Address entries aggregate to their /64 exactly like `z64`. Prefix
/// entries (kIP aggregates of discovered interfaces, analysis-inferred
/// subnets) are *expanded*: every /64 inside the prefix, up to
/// `per_prefix_64s` of them, becomes an intermediate prefix — the gaps
/// inside an aggregate are precisely where locality says the next
/// round should look, which plain `zn` (base-/64 only) would throw
/// away. One target per intermediate prefix is then synthesized under
/// `strategy`, deduplicated and sorted as always.
pub fn feedback_targets(
    name: impl Into<Arc<str>>,
    list: &SeedList,
    per_prefix_64s: usize,
    strategy: IidStrategy,
) -> TargetSet {
    let cap = per_prefix_64s.max(1) as u128;
    let mut prefixes: Vec<Ipv6Prefix> = Vec::new();
    for p in list.prefixes() {
        if p.len() >= 64 {
            prefixes.push(Ipv6Prefix::truncating(p.base(), 64));
        } else {
            let n = p.count_64s().min(cap);
            for i in 0..n {
                prefixes.push(p.subnet(64, i));
            }
        }
    }
    prefixes.sort_unstable();
    prefixes.dedup();
    synthesize(name, &prefixes, strategy)
}

impl TargetCatalog {
    /// Builds every `(source, zn)` combination with the given synthesis
    /// strategy (campaigns use `fixediid`).
    pub fn build(catalog: &SeedCatalog, strategy: IidStrategy) -> Self {
        let mut sets = Vec::new();
        let mut named = catalog.named();
        named.push(("combined", &catalog.combined));
        for (name, list) in named {
            for n in [48u8, 64] {
                let prefixes = zn(list, n);
                sets.push(synthesize(format!("{name}-z{n}"), &prefixes, strategy));
            }
        }
        TargetCatalog { sets }
    }

    /// Looks a set up by full name (e.g. `"cdn-k32-z64"`).
    pub fn get(&self, name: &str) -> Option<&TargetSet> {
        self.sets.iter().find(|s| &*s.name == name)
    }

    /// Indices of the independent sets (the Table 5 exclusivity basis:
    /// everything except TUM, Combined and the random control).
    pub fn independent_indices(&self) -> Vec<usize> {
        self.sets
            .iter()
            .enumerate()
            .filter(|(_, s)| !NON_INDEPENDENT.iter().any(|ni| s.name.starts_with(ni)))
            .map(|(i, _)| i)
            .collect()
    }

    /// All sets as `(name, &set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TargetSet)> {
        self.sets.iter().map(|s| (&*s.name, s))
    }

    /// Only the z64 sets (the Fig 3 / Fig 7 slice).
    pub fn z64_sets(&self) -> Vec<&TargetSet> {
        self.sets
            .iter()
            .filter(|s| s.name.ends_with("-z64"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::config::TopologyConfig;
    use simnet::generate::generate;

    fn catalog() -> TargetCatalog {
        let topo = generate(TopologyConfig::tiny(42));
        let seeds = SeedCatalog::synthesize(&topo, 99);
        TargetCatalog::build(&seeds, IidStrategy::FixedIid)
    }

    #[test]
    fn feedback_targets_expand_prefix_interiors() {
        use seeds::SeedEntry;
        let list = SeedList::new(
            "fb",
            vec![
                SeedEntry::Prefix("2001:db8::/60".parse().unwrap()), // 16 /64s
                SeedEntry::Addr("2620::1234".parse().unwrap()),
                SeedEntry::Prefix("2620:0:0:7::/64".parse().unwrap()),
            ],
        );
        let set = feedback_targets("fb-targets", &list, 8, IidStrategy::FixedIid);
        // /60 expands to its first 8 /64s (capped), the address to its
        // own /64, the /64 passes through: 10 targets.
        assert_eq!(set.len(), 10);
        for a in &set.addrs {
            assert_eq!(u128::from(*a) as u64, crate::synthesize::FIXED_IID);
        }
        // Interior /64s beyond the base are present.
        assert!(set.contains(
            "2001:db8:0:3:1234:5678:1234:5678"
                .parse::<std::net::Ipv6Addr>()
                .unwrap()
        ));
        // Uncapped expansion covers the whole /60.
        let full = feedback_targets("fb-full", &list, 1_000, IidStrategy::FixedIid);
        assert_eq!(full.len(), 18);
        // Determinism.
        assert_eq!(
            feedback_targets("x", &list, 8, IidStrategy::FixedIid).addrs,
            set.addrs
        );
    }

    #[test]
    fn twenty_sets_built() {
        let c = catalog();
        assert_eq!(c.sets.len(), 20); // 10 sources × 2 aggregations
        assert!(c.get("caida-z64").is_some());
        assert!(c.get("cdn-k32-z48").is_some());
        assert!(c.get("combined-z64").is_some());
        assert!(c.get("nope").is_none());
    }

    #[test]
    fn z64_at_least_as_large_as_z48() {
        let c = catalog();
        for src in ["caida", "fdns", "fiebig", "cdn-k32"] {
            let z48 = c.get(&format!("{src}-z48")).unwrap().len();
            let z64 = c.get(&format!("{src}-z64")).unwrap().len();
            assert!(z64 >= z48, "{src}: z64 {z64} < z48 {z48}");
        }
    }

    #[test]
    fn independent_basis_excludes_supersets() {
        let c = catalog();
        let ind = c.independent_indices();
        assert_eq!(ind.len(), 14); // 7 independent sources × 2
        for &i in &ind {
            let n = &c.sets[i].name;
            assert!(
                !n.starts_with("tum") && !n.starts_with("combined") && !n.starts_with("random")
            );
        }
    }

    #[test]
    fn all_targets_have_fixed_iid() {
        let c = catalog();
        for (_, set) in c.iter() {
            for &a in set.addrs.iter().take(20) {
                assert_eq!(u128::from(a) as u64, crate::synthesize::FIXED_IID);
            }
        }
    }

    #[test]
    fn z64_slice() {
        let c = catalog();
        assert_eq!(c.z64_sets().len(), 10);
    }
}
