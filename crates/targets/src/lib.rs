//! The target-generation pipeline (§3.1, Figure 1):
//!
//! ```text
//!   seeds  --prefix transformation-->  intermediate prefixes
//!          --target synthesis------->  target addresses
//! ```
//!
//! * [`transform`] — the `zn` transformation (extend/aggregate every seed
//!   prefix to exactly /n) — `kn` (kIP) lives in the `seeds` crate since
//!   it is applied at the data source;
//! * [`synthesize`] — IID selection: `lowbyte1`, `fixediid`, `random`,
//!   `known`;
//! * [`TargetSet`] — a deduplicated target list with the
//!   characterization machinery behind Table 5, Figure 2 and Figure 3;
//! * [`pipeline`] — builds the full 18-set catalog (9 sources × z48/z64)
//!   used by the probing campaigns.

pub mod pipeline;
pub mod synthesize;
pub mod transform;

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::net::Ipv6Addr;
use std::sync::Arc;
use v6addr::dpl::DplCdf;
use v6addr::{BgpTable, Ipv6Prefix};

pub use pipeline::{feedback_targets, TargetCatalog};
pub use synthesize::IidStrategy;
pub use transform::zn;

/// Evenly stride-samples `n` items out of `items`, spanning the whole
/// slice — on a sorted target list this keeps a truncated round or
/// allocation spread across the address space instead of starving the
/// high end. When `n >= items.len()` the slice is returned whole. For
/// `n <= items.len()` the picked indices `i * len / n` are strictly
/// increasing (consecutive picks differ by `len / n >= 1`), so no item
/// repeats.
pub fn stride_sample<T: Copy>(items: &[T], n: usize) -> Vec<T> {
    if n >= items.len() {
        items.to_vec()
    } else {
        (0..n).map(|i| items[i * items.len() / n]).collect()
    }
}

/// A named, deduplicated, sorted set of probe targets.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TargetSet {
    /// Name, e.g. `"cdn-k32-z64"` — shared (`Arc`) so campaign logs
    /// reference it without copying.
    pub name: Arc<str>,
    /// Sorted unique target addresses.
    pub addrs: Vec<Ipv6Addr>,
}

impl TargetSet {
    /// Builds a set from addresses, deduplicating and sorting.
    pub fn new(name: impl Into<Arc<str>>, addrs: impl IntoIterator<Item = Ipv6Addr>) -> Self {
        let mut v: Vec<u128> = addrs.into_iter().map(u128::from).collect();
        v.sort_unstable();
        v.dedup();
        TargetSet {
            name: name.into(),
            addrs: v.into_iter().map(Ipv6Addr::from).collect(),
        }
    }

    /// Number of unique targets.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        self.addrs.binary_search(&addr).is_ok()
    }

    /// The DPL CDF of this set alone (Fig 3a).
    pub fn dpl_cdf(&self) -> DplCdf {
        DplCdf::from_addrs(&self.addrs)
    }

    /// Union of several sets (used for combined DPL, Fig 3b).
    pub fn union(name: impl Into<Arc<str>>, sets: &[&TargetSet]) -> TargetSet {
        TargetSet::new(name, sets.iter().flat_map(|s| s.addrs.iter().copied()))
    }

    /// The DPL each member of `self` attains inside `combined` — the
    /// Fig 3b rightward-shift measurement.
    pub fn dpl_cdf_within(&self, combined: &TargetSet) -> DplCdf {
        let words: Vec<u128> = combined.addrs.iter().map(|&a| u128::from(a)).collect();
        let dpls = v6addr::dpl::dpl_of_sorted_words(&words);
        let mine: Vec<u8> = combined
            .addrs
            .iter()
            .zip(&dpls)
            .filter(|(a, _)| self.contains(**a))
            .map(|(_, &d)| d)
            .collect();
        DplCdf::from_dpls(&mine)
    }
}

/// Per-set characterization: one row of Table 5.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SetStats {
    /// Set name.
    pub name: Arc<str>,
    /// Unique targets.
    pub unique: u64,
    /// Targets found in no other independent set.
    pub exclusive: u64,
    /// Targets covered by the BGP table.
    pub routed: u64,
    /// Routed targets exclusive to this set.
    pub exclusive_routed: u64,
    /// Distinct routed prefixes the targets fall into.
    pub bgp_prefixes: u64,
    /// Prefixes hit only by this set.
    pub exclusive_prefixes: u64,
    /// Distinct origin ASNs.
    pub asns: u64,
    /// ASNs hit only by this set.
    pub exclusive_asns: u64,
    /// Targets inside 2002::/16.
    pub sixtofour: u64,
}

/// Characterizes `sets` against `bgp`. Exclusivity is computed only among
/// the sets whose indices appear in `independent` (the paper excludes
/// Combined/TUM from the exclusivity basis since they are supersets);
/// sets outside `independent` still get their exclusive-vs-independent
/// counts.
pub fn characterize(sets: &[&TargetSet], independent: &[usize], bgp: &BgpTable) -> Vec<SetStats> {
    // Membership maps: target -> count among independent sets,
    // prefix/asn -> count among independent sets.
    use std::collections::HashMap;
    let mut addr_count: HashMap<u128, u32> = HashMap::new();
    let mut pfx_count: HashMap<Ipv6Prefix, u32> = HashMap::new();
    let mut asn_count: HashMap<u32, u32> = HashMap::new();
    for &i in independent {
        let mut pfxs = BTreeSet::new();
        let mut asns = BTreeSet::new();
        for &a in &sets[i].addrs {
            *addr_count.entry(u128::from(a)).or_default() += 1;
            if let Some((p, asn)) = bgp.lookup(a) {
                pfxs.insert(p);
                asns.insert(asn.0);
            }
        }
        for p in pfxs {
            *pfx_count.entry(p).or_default() += 1;
        }
        for a in asns {
            *asn_count.entry(a).or_default() += 1;
        }
    }

    sets.iter()
        .enumerate()
        .map(|(i, set)| {
            let in_basis = independent.contains(&i);
            let mut stats = SetStats {
                name: set.name.clone(),
                ..Default::default()
            };
            let mut pfxs: BTreeSet<Ipv6Prefix> = BTreeSet::new();
            let mut asns: BTreeSet<u32> = BTreeSet::new();
            for &a in &set.addrs {
                stats.unique += 1;
                let w = u128::from(a);
                // Exclusive: in no *other* independent set.
                let others = addr_count.get(&w).copied().unwrap_or(0) - u32::from(in_basis);
                let excl = others == 0;
                if excl {
                    stats.exclusive += 1;
                }
                if v6addr::is_sixtofour(a) {
                    stats.sixtofour += 1;
                }
                if let Some((p, asn)) = bgp.lookup(a) {
                    stats.routed += 1;
                    if excl {
                        stats.exclusive_routed += 1;
                    }
                    pfxs.insert(p);
                    asns.insert(asn.0);
                }
            }
            stats.bgp_prefixes = pfxs.len() as u64;
            stats.asns = asns.len() as u64;
            stats.exclusive_prefixes = pfxs
                .iter()
                .filter(|p| pfx_count.get(p).copied().unwrap_or(0) == u32::from(in_basis))
                .count() as u64;
            stats.exclusive_asns = asns
                .iter()
                .filter(|a| asn_count.get(a).copied().unwrap_or(0) == u32::from(in_basis))
                .count() as u64;
            stats
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6addr::Asn;

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn bgp() -> BgpTable {
        let mut t = BgpTable::new();
        t.announce("2001:db8::/32".parse().unwrap(), Asn(1));
        t.announce("2620::/32".parse().unwrap(), Asn(2));
        t.announce("2002::/16".parse().unwrap(), Asn(3));
        t
    }

    #[test]
    fn set_dedup_and_contains() {
        let s = TargetSet::new("t", vec![a("::2"), a("::1"), a("::2")]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(a("::1")));
        assert!(!s.contains(a("::3")));
    }

    #[test]
    fn characterize_exclusives() {
        let s1 = TargetSet::new("one", vec![a("2001:db8::1"), a("2001:db8::2")]);
        let s2 = TargetSet::new("two", vec![a("2001:db8::2"), a("2620::1"), a("fd00::1")]);
        let b = bgp();
        let stats = characterize(&[&s1, &s2], &[0, 1], &b);
        assert_eq!(stats[0].unique, 2);
        assert_eq!(stats[0].exclusive, 1); // ::1 only in s1
        assert_eq!(stats[0].routed, 2);
        assert_eq!(stats[1].unique, 3);
        assert_eq!(stats[1].exclusive, 2); // 2620::1 and fd00::1
        assert_eq!(stats[1].routed, 2); // fd00:: unrouted
        assert_eq!(stats[1].exclusive_routed, 1);
        // Prefix exclusivity: 2001:db8::/32 shared; 2620::/32 only s2.
        assert_eq!(stats[0].exclusive_prefixes, 0);
        assert_eq!(stats[1].exclusive_prefixes, 1);
        assert_eq!(stats[1].exclusive_asns, 1);
    }

    #[test]
    fn superset_not_in_basis_has_no_exclusives_for_shared() {
        let s1 = TargetSet::new("ind", vec![a("2001:db8::1")]);
        let all = TargetSet::new("union", vec![a("2001:db8::1"), a("2620::9")]);
        let b = bgp();
        let stats = characterize(&[&s1, &all], &[0], &b);
        // The union's ::1 is in the basis set, so not exclusive; 2620::9
        // is in no independent set, so it counts as exclusive.
        assert_eq!(stats[1].exclusive, 1);
        assert_eq!(stats[0].exclusive, 1);
    }

    #[test]
    fn sixtofour_counted() {
        let s = TargetSet::new("t", vec![a("2002:102:304::1"), a("2001:db8::1")]);
        let b = bgp();
        let stats = characterize(&[&s], &[0], &b);
        assert_eq!(stats[0].sixtofour, 1);
    }

    #[test]
    fn dpl_within_combined_shifts_right() {
        let s = TargetSet::new("s", vec![a("2001:db8::1"), a("2001:db8:8000::1")]);
        let interleaver = TargetSet::new("i", vec![a("2001:db8:4000::1")]);
        let alone = s.dpl_cdf();
        let comb = TargetSet::union("u", &[&s, &interleaver]);
        let within = s.dpl_cdf_within(&comb);
        assert!(within.median().unwrap() >= alone.median().unwrap());
    }

    #[test]
    fn stride_sample_spans_without_repeats() {
        let items: Vec<u32> = (0..100).collect();
        for n in [1usize, 3, 37, 99, 100, 250] {
            let picked = stride_sample(&items, n);
            assert_eq!(picked.len(), n.min(100));
            // Strictly increasing — no repeats, order preserved.
            assert!(picked.windows(2).all(|w| w[0] < w[1]), "n = {n}");
            // Spans the whole range: first pick at the bottom, last at
            // the top-stride index (n-1)·len/n.
            assert_eq!(picked[0], 0);
            let m = n.min(100);
            assert_eq!(*picked.last().unwrap(), ((m - 1) * 100 / m) as u32);
        }
        assert!(stride_sample(&items[..0], 5).is_empty());
    }
}
