//! Target synthesis (§3.1 step 3): choosing the IID to probe within each
//! intermediate prefix.
//!
//! The paper evaluates `lowbyte1` (the ::1 every router might hold) and
//! `fixediid` (a fixed pseudo-random identifier almost certainly *not*
//! assigned to any host) and finds <2% difference in discovery — so all
//! campaigns use `fixediid` to avoid disturbing end hosts (§3.3, §4.3).
//! `random` and `known` round out the comparison.

use crate::TargetSet;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::net::Ipv6Addr;
use v6addr::{bits, Ipv6Prefix};

/// The paper's fixed pseudo-random IID: `1234:5678:1234:5678`.
pub const FIXED_IID: u64 = 0x1234_5678_1234_5678;

/// IID selection strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum IidStrategy {
    /// `prefix | ::1`.
    LowByte1,
    /// `prefix | 1234:5678:1234:5678`.
    FixedIid,
    /// A fresh random IID per prefix (seeded).
    Random {
        /// RNG seed for reproducibility.
        seed: u64,
    },
}

impl IidStrategy {
    /// Short name as used in table rows.
    pub fn name(&self) -> &'static str {
        match self {
            IidStrategy::LowByte1 => "lowbyte1",
            IidStrategy::FixedIid => "fixediid",
            IidStrategy::Random { .. } => "random",
        }
    }
}

/// Synthesizes one target per intermediate prefix.
///
/// Prefixes must be /64 or shorter; the IID is OR-ed into the low 64
/// bits (the paper's bitwise-OR semantics).
pub fn synthesize(
    name: impl Into<std::sync::Arc<str>>,
    prefixes: &[Ipv6Prefix],
    strategy: IidStrategy,
) -> TargetSet {
    let mut rng = match strategy {
        IidStrategy::Random { seed } => Some(SmallRng::seed_from_u64(seed)),
        _ => None,
    };
    let addrs = prefixes.iter().map(|p| {
        debug_assert!(p.len() <= 64, "synthesis requires /64-or-shorter prefixes");
        let iid = match strategy {
            IidStrategy::LowByte1 => 1,
            IidStrategy::FixedIid => FIXED_IID,
            IidStrategy::Random { .. } => rng.as_mut().unwrap().gen::<u64>(),
        };
        bits::from_u128(p.base_word() | iid as u128)
    });
    TargetSet::new(name, addrs)
}

/// The `known` strategy: probe seed addresses verbatim (used in the
/// Table 4 comparison against end-host addresses).
pub fn known(
    name: impl Into<std::sync::Arc<str>>,
    addrs: impl IntoIterator<Item = Ipv6Addr>,
) -> TargetSet {
    TargetSet::new(name, addrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6addr::iid::{classify, IidClass};

    fn pfxs() -> Vec<Ipv6Prefix> {
        vec![
            "2001:db8:0:1::/64".parse().unwrap(),
            "2001:db8:0:2::/64".parse().unwrap(),
            "2620::/48".parse().unwrap(),
        ]
    }

    #[test]
    fn lowbyte1_sets_one() {
        let set = synthesize("t", &pfxs(), IidStrategy::LowByte1);
        assert_eq!(set.len(), 3);
        for a in &set.addrs {
            assert_eq!(u128::from(*a) & 0xffff_ffff_ffff_ffff, 1);
            assert_eq!(classify(*a), IidClass::LowByte);
        }
    }

    #[test]
    fn fixediid_sets_constant() {
        let set = synthesize("t", &pfxs(), IidStrategy::FixedIid);
        for a in &set.addrs {
            assert_eq!(u128::from(*a) as u64, FIXED_IID);
        }
        // Network bits preserved.
        assert!(set.contains("2001:db8:0:1:1234:5678:1234:5678".parse().unwrap()));
    }

    #[test]
    fn random_is_seeded() {
        let a = synthesize("t", &pfxs(), IidStrategy::Random { seed: 1 });
        let b = synthesize("t", &pfxs(), IidStrategy::Random { seed: 1 });
        let c = synthesize("t", &pfxs(), IidStrategy::Random { seed: 2 });
        assert_eq!(a.addrs, b.addrs);
        assert_ne!(a.addrs, c.addrs);
    }

    #[test]
    fn duplicates_collapse() {
        let p: Ipv6Prefix = "2001:db8::/64".parse().unwrap();
        let set = synthesize("t", &[p, p], IidStrategy::FixedIid);
        assert_eq!(set.len(), 1);
    }
}
