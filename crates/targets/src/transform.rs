//! Prefix transformations (§3.1 step 2).
//!
//! `zn`: every seed prefix is brought to exactly length *n* — prefixes
//! shorter than /n are *extended* (base kept, zeros below bit n), longer
//! ones (including /128 addresses) are *aggregated* to their covering /n.
//! Duplicates collapse, so a hitlist with many addresses per /64 becomes
//! one intermediate prefix per /64 under `z64` — the deduplication that
//! makes host hitlists usable for router discovery.

use crate::TargetSet;
use seeds::SeedList;
use v6addr::Ipv6Prefix;

/// Applies the `zn` transformation to every entry of `list`.
///
/// Returns the deduplicated, sorted intermediate prefixes (all of length
/// exactly `n`).
pub fn zn(list: &SeedList, n: u8) -> Vec<Ipv6Prefix> {
    assert!(n <= 64, "topology probing aggregates at /64 or coarser");
    let mut out: Vec<Ipv6Prefix> = list
        .prefixes()
        .map(|p| Ipv6Prefix::truncating(p.base(), n))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Convenience: `zn` over an existing target set (used by trials that
/// re-aggregate).
pub fn zn_addrs(set: &TargetSet, n: u8) -> Vec<Ipv6Prefix> {
    assert!(n <= 64);
    let mut out: Vec<Ipv6Prefix> = set
        .addrs
        .iter()
        .map(|&a| Ipv6Prefix::truncating(a, n))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use seeds::SeedEntry;
    use std::net::Ipv6Addr;

    fn list(entries: Vec<SeedEntry>) -> SeedList {
        SeedList::new("t", entries)
    }

    fn addr(s: &str) -> SeedEntry {
        SeedEntry::Addr(s.parse::<Ipv6Addr>().unwrap())
    }

    fn pfx(s: &str) -> SeedEntry {
        SeedEntry::Prefix(s.parse().unwrap())
    }

    #[test]
    fn aggregates_addresses() {
        let l = list(vec![
            addr("2001:db8:0:1::aaaa"),
            addr("2001:db8:0:1::bbbb"),
            addr("2001:db8:0:2::1"),
        ]);
        let z64 = zn(&l, 64);
        assert_eq!(z64.len(), 2); // two /64s
        let z48 = zn(&l, 48);
        assert_eq!(z48.len(), 1);
        assert_eq!(z48[0], "2001:db8::/48".parse().unwrap());
    }

    #[test]
    fn extends_short_prefixes() {
        let l = list(vec![pfx("2001:db8::/32")]);
        let z48 = zn(&l, 48);
        assert_eq!(z48, vec!["2001:db8::/48".parse().unwrap()]);
    }

    #[test]
    fn mixed_lengths_normalize() {
        let l = list(vec![
            pfx("2001:db8::/32"),
            pfx("2001:db8::/56"),
            addr("2001:db8::1"),
        ]);
        let z48 = zn(&l, 48);
        // All three collapse onto the same /48.
        assert_eq!(z48.len(), 1);
        assert!(z48.iter().all(|p| p.len() == 48));
    }

    #[test]
    fn more_specific_n_yields_more_prefixes() {
        // Table 3's premise: z64 >= z56 >= z48 >= z40 in prefix count.
        let l = list(vec![
            addr("2001:db8:0:1::1"),
            addr("2001:db8:0:2::1"),
            addr("2001:db8:1:1::1"),
            addr("2001:db9::1"),
        ]);
        let mut last = 0;
        for n in [40u8, 48, 56, 64] {
            let cnt = zn(&l, n).len();
            assert!(cnt >= last, "z{n} shrank: {cnt} < {last}");
            last = cnt;
        }
    }
}
