//! Table formatting helpers for the experiment binaries: the paper
//! renders counts as `105.2k` / `12.4M`; we match that so outputs read
//! side-by-side with the tables.

/// Formats a count the way the paper's tables do.
pub fn human(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000_000 {
        format!("{:.2}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else if n >= 1_000 {
        format!("{:.2}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Prints a header row followed by a separator.
pub fn header(cols: &[(&str, usize)]) {
    let mut line = String::new();
    for (name, w) in cols {
        line.push_str(&format!("{name:>w$} ", w = w));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
}

/// Prints one row with the same widths.
pub fn row(cols: &[(String, usize)]) {
    let mut line = String::new();
    for (v, w) in cols {
        line.push_str(&format!("{v:>w$} ", w = w));
    }
    println!("{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_matches_paper_style() {
        assert_eq!(human(158), "158");
        assert_eq!(human(1_400), "1.40k");
        assert_eq!(human(105_200), "105.2k");
        assert_eq!(human(1_300_000), "1.30M");
        assert_eq!(human(45_800_000), "45.8M");
    }

    #[test]
    fn pct_rounds() {
        assert_eq!(pct(0.981), "98.1%");
        assert_eq!(pct(0.0), "0.0%");
    }
}
