//! The **seed** packet engine, vendored verbatim (modulo imports) from
//! commit `f54a62c` for benchmark baselining: SipHash path cache keyed to
//! `Arc<ResolvedPath>` clones, `wire.to_vec()` quotations, allocating
//! response builders, and a second header decode per error — everything
//! the hot-path rework removed. Benchmarks compare
//! [`simnet::Engine::inject_into`] against [`SeedEngine::inject`] so the
//! speedup is measured against real seed code, not a reconstruction.
//!
//! Not for production use: the simulator's engine is `simnet::Engine`.
//!
//! The per-probe flow hash is also the seed's (`seed_flow_hash` below):
//! the current `FlowKey::hash` was since re-budgeted, and the baseline
//! must carry the seed's full per-probe cost. Because the hash and the
//! loss-key derivation differ from the current engine, `SeedEngine`'s
//! *outputs* (ECMP choices, loss draws) are not comparable with
//! `simnet::Engine` — only its throughput is.

use simnet::engine::{Delivery, EngineStats};
use simnet::flow::{self, FlowKey};
use simnet::ratelimit::TokenBucket;
use simnet::route::{self, DestEntry, ResolvedPath};
use simnet::topology::{HostKind, RouterId, Topology, UnknownAddrPolicy};
use std::collections::HashMap;
use std::net::Ipv6Addr;
use std::sync::Arc;
use v6packet::icmp6::{DestUnreachCode, Icmp6Type};
use v6packet::{ip6, proto_num, tcp, Ipv6Header};

/// The simulation engine for one probing campaign.
pub struct SeedEngine {
    topo: Arc<Topology>,
    buckets: Vec<TokenBucket>,
    path_cache: HashMap<(u8, u128, u64), Arc<ResolvedPath>>,
    /// Per-router fragment-identification counters: one monotonic
    /// counter shared by all of a router's interfaces (the speedtrap
    /// alias signal). Seeded per router so counters are unsynchronized.
    frag_counters: Vec<u32>,
    /// Outcome counters.
    pub stats: EngineStats,
}

impl SeedEngine {
    /// A fresh engine (full token buckets, empty caches) over `topo`.
    pub fn new(topo: Arc<Topology>) -> Self {
        let buckets = topo
            .routers
            .iter()
            .map(|r| {
                TokenBucket::new(if r.aggressive_rl {
                    topo.config.aggressive_rl
                } else {
                    topo.config.default_rl
                })
            })
            .collect();
        let frag_counters = (0..topo.routers.len())
            .map(|i| flow::mix64(i as u64 ^ 0xf4a6) as u32)
            .collect();
        SeedEngine {
            topo,
            buckets,
            path_cache: HashMap::new(),
            frag_counters,
            stats: EngineStats::default(),
        }
    }

    /// The topology under test.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// Resets buckets and statistics (keeps path caches — the topology is
    /// unchanged).
    pub fn reset(&mut self) {
        for (b, r) in self.buckets.iter_mut().zip(&self.topo.routers) {
            *b = TokenBucket::new(if r.aggressive_rl {
                self.topo.config.aggressive_rl
            } else {
                self.topo.config.default_rl
            });
        }
        for (i, c) in self.frag_counters.iter_mut().enumerate() {
            *c = flow::mix64(i as u64 ^ 0xf4a6) as u32;
        }
        self.stats = EngineStats::default();
    }

    /// Resolves (with caching) the forward path a probe with this header
    /// and flow takes.
    pub fn resolve_path(
        &mut self,
        vantage_idx: u8,
        dst: std::net::Ipv6Addr,
        flow_hash: u64,
    ) -> Arc<ResolvedPath> {
        let key = (vantage_idx, u128::from(dst), flow_hash);
        if let Some(p) = self.path_cache.get(&key) {
            return p.clone();
        }
        let v = &self.topo.vantages[vantage_idx as usize];
        let p = Arc::new(route::resolve(&self.topo, v, dst, flow_hash));
        self.path_cache.insert(key, p.clone());
        p
    }

    /// Injects a probe at virtual time `now_us`; returns the response
    /// delivery, if any.
    pub fn inject(&mut self, wire: &[u8], now_us: u64) -> Option<Delivery> {
        self.stats.probes += 1;
        let Some(hdr) = Ipv6Header::decode(wire) else {
            self.stats.malformed += 1;
            return None;
        };
        let Some(vidx) = self
            .topo
            .vantages
            .iter()
            .position(|v| v.addr == hdr.src)
            .map(|i| i as u8)
        else {
            self.stats.malformed += 1;
            return None;
        };

        // Flow key from the transport header.
        let body = &wire[ip6::HEADER_LEN.min(wire.len())..];
        let (sport, dport) = match hdr.next_header {
            proto_num::TCP | proto_num::UDP if body.len() >= 4 => (
                u16::from_be_bytes([body[0], body[1]]),
                u16::from_be_bytes([body[2], body[3]]),
            ),
            proto_num::ICMP6 if body.len() >= 8 => (
                u16::from_be_bytes([body[4], body[5]]),
                u16::from_be_bytes([body[6], body[7]]),
            ),
            _ => {
                self.stats.malformed += 1;
                return None;
            }
        };
        let fk = FlowKey {
            src: hdr.src,
            dst: hdr.dst,
            flow_label: hdr.flow_label,
            proto: hdr.next_header,
            sport,
            dport,
        };
        let flow_hash = seed_flow_hash(&fk);
        let path = self.resolve_path(vidx, hdr.dst, flow_hash);
        let vaddr = self.topo.vantages[vidx as usize].addr;
        let is_icmp = hdr.next_header == proto_num::ICMP6;
        let dst_word = u128::from(hdr.dst);
        let ttl = hdr.hop_limit as usize;

        // Transit loss applies to every probe (hash-keyed, deterministic).
        let loss_key = flow::mix2(
            flow::mix2(dst_word as u64, (dst_word >> 64) as u64),
            (hdr.hop_limit as u64) << 32 | 0x1055,
        );
        if flow::draw_milli(loss_key, self.topo.config.loss_milli) {
            self.stats.lost += 1;
            return None;
        }

        // Destination-AS firewall eats UDP/TCP probes traveling past it.
        if let (Some(f), false) = (path.firewall_hop, is_icmp) {
            if ttl > f as usize + 1 {
                self.stats.fw_dropped += 1;
                // Firewalls mostly drop silently; a minority emit
                // admin-prohibited, rate limited like any other error.
                if !flow::draw_milli(flow::mix2(flow::mix128(dst_word), 0xf1a3), 250) {
                    return None;
                }
                let router = path.hops[f as usize];
                let prev = prev_hop_key(&path.hops, f as usize, vidx);
                return self.router_error(
                    router,
                    prev,
                    vaddr,
                    Icmp6Type::DestUnreachable(DestUnreachCode::AdminProhibited),
                    wire,
                    now_us,
                    f as usize + 1,
                );
            }
        }

        if ttl <= path.len() {
            // Expires in transit at hops[ttl-1].
            if self
                .topo
                .config
                .vantage_silent_hops
                .contains(&(vidx, hdr.hop_limit))
            {
                self.stats.silent_router += 1;
                return None;
            }
            let router = path.hops[ttl - 1];
            let info = &self.topo.routers[router.0 as usize];
            if !info.responsive || (info.icmp_only && !is_icmp) {
                self.stats.silent_router += 1;
                return None;
            }
            let prev = prev_hop_key(&path.hops, ttl - 1, vidx);
            return self
                .router_error(
                    router,
                    prev,
                    vaddr,
                    Icmp6Type::TimeExceeded,
                    wire,
                    now_us,
                    ttl,
                )
                .inspect(|_| self.stats.time_exceeded += 1)
                .or_else(|| {
                    self.stats.rate_limited += 1;
                    None
                });
        }

        // Reached the destination zone.
        let cfg = &self.topo.config;
        let hops = path.len();

        // Direct probes to a *router interface* (alias-resolution
        // probing): the router answers echoes itself; oversized echoes
        // force fragmentation and expose the shared identification
        // counter.
        if let Some(rid) = self.topo.router_by_iface(hdr.dst) {
            let info = &self.topo.routers[rid.0 as usize];
            if !info.responsive {
                self.stats.silent_router += 1;
                return None;
            }
            if !is_icmp {
                // Routers drop unsolicited TCP/UDP to their interfaces.
                self.stats.dest_silent += 1;
                return None;
            }
            let data = &body[8..];
            // The reply's source is the probed interface itself.
            if data.len() >= 1000 {
                let id = self.frag_counters[rid.0 as usize];
                self.frag_counters[rid.0 as usize] = id.wrapping_add(1);
                self.stats.frag_echo_replies += 1;
                let bytes =
                    seed_build_fragmented_echo_reply(hdr.dst, vaddr, sport, dport, data, 64, id);
                return Some(self.deliver(bytes, now_us, hops + 1, dst_word));
            }
            self.stats.echo_replies += 1;
            let bytes = seed_build_echo_reply(hdr.dst, vaddr, sport, dport, data, 64);
            return Some(self.deliver(bytes, now_us, hops + 1, dst_word));
        }

        match path.dest {
            DestEntry::Host(kind) => {
                let silent_milli = if kind == HostKind::Client {
                    cfg.client_silent_milli
                } else {
                    cfg.host_fw_milli
                };
                if flow::draw_milli(flow::mix2(flow::mix128(dst_word), 0xf00d), silent_milli) {
                    self.stats.dest_silent += 1;
                    return None;
                }
                match hdr.next_header {
                    proto_num::ICMP6 => {
                        self.stats.echo_replies += 1;
                        let data = &body[8..];
                        let bytes = seed_build_echo_reply(hdr.dst, vaddr, sport, dport, data, 64);
                        Some(self.deliver(bytes, now_us, hops + 1, dst_word))
                    }
                    proto_num::UDP => {
                        // No listener on the probe port: port unreachable
                        // from the host itself.
                        self.stats.du_port += 1;
                        let bytes = seed_build_error(
                            hdr.dst,
                            vaddr,
                            Icmp6Type::DestUnreachable(DestUnreachCode::PortUnreachable),
                            wire,
                            64,
                        );
                        Some(self.deliver(bytes, now_us, hops + 1, dst_word))
                    }
                    _ => {
                        self.stats.tcp_responses += 1;
                        let bytes = seed_build_response(
                            hdr.dst,
                            vaddr,
                            dport,
                            sport,
                            tcp::flags::RST | tcp::flags::ACK,
                            64,
                        );
                        Some(self.deliver(bytes, now_us, hops + 1, dst_word))
                    }
                }
            }
            DestEntry::NoHost { responder } => {
                let prev = prev_hop_key(&path.hops, path.hops.len(), vidx);
                self.dest_policy_response(
                    responder,
                    prev,
                    vaddr,
                    wire,
                    now_us,
                    hops,
                    cfg.nohost_du_milli,
                    dst_word,
                )
            }
            DestEntry::NoSubnet { responder } => {
                let prev = prev_hop_key(&path.hops, path.hops.len(), vidx);
                self.dest_policy_response(
                    responder,
                    prev,
                    vaddr,
                    wire,
                    now_us,
                    hops,
                    cfg.nosubnet_du_milli,
                    dst_word,
                )
            }
            DestEntry::Unrouted { responder } => {
                if !flow::draw_milli(
                    flow::mix2(flow::mix128(dst_word), 0x2042),
                    cfg.noroute_du_milli,
                ) {
                    self.stats.dest_silent += 1;
                    return None;
                }
                let prev = prev_hop_key(&path.hops, path.hops.len(), vidx);
                let r = self.router_error(
                    responder,
                    prev,
                    vaddr,
                    Icmp6Type::DestUnreachable(DestUnreachCode::NoRoute),
                    wire,
                    now_us,
                    hops,
                );
                if r.is_some() {
                    self.stats.du_no_route += 1;
                } else {
                    self.stats.rate_limited += 1;
                }
                r
            }
        }
    }

    /// Destination-zone policy response for unassigned space.
    #[allow(clippy::too_many_arguments)]
    fn dest_policy_response(
        &mut self,
        responder: RouterId,
        prev_key: u64,
        vaddr: std::net::Ipv6Addr,
        wire: &[u8],
        now_us: u64,
        hops: usize,
        du_milli: u32,
        dst_word: u128,
    ) -> Option<Delivery> {
        if !flow::draw_milli(flow::mix2(flow::mix128(dst_word), 0xdead), du_milli) {
            self.stats.dest_silent += 1;
            return None;
        }
        let as_idx = self.topo.routers[responder.0 as usize].as_idx;
        let code = match self.topo.ases[as_idx as usize].unknown_policy {
            UnknownAddrPolicy::AddrUnreachable => DestUnreachCode::AddrUnreachable,
            UnknownAddrPolicy::AdminProhibited => DestUnreachCode::AdminProhibited,
            UnknownAddrPolicy::RejectRoute => DestUnreachCode::RejectRoute,
            UnknownAddrPolicy::Silent => {
                self.stats.dest_silent += 1;
                return None;
            }
        };
        let r = self.router_error(
            responder,
            prev_key,
            vaddr,
            Icmp6Type::DestUnreachable(code),
            wire,
            now_us,
            hops,
        );
        if r.is_some() {
            match code {
                DestUnreachCode::AddrUnreachable => self.stats.du_addr += 1,
                DestUnreachCode::AdminProhibited => self.stats.du_admin += 1,
                DestUnreachCode::RejectRoute => self.stats.du_reject += 1,
                _ => {}
            }
        } else {
            self.stats.rate_limited += 1;
        }
        r
    }

    /// Emits an ICMPv6 error from `router` if its token bucket allows;
    /// `hop_count` scales the RTT.
    #[allow(clippy::too_many_arguments)]
    fn router_error(
        &mut self,
        router: RouterId,
        prev_key: u64,
        vaddr: std::net::Ipv6Addr,
        ty: Icmp6Type,
        wire: &[u8],
        now_us: u64,
        hop_count: usize,
    ) -> Option<Delivery> {
        let info = &self.topo.routers[router.0 as usize];
        if !info.responsive {
            self.stats.silent_router += 1;
            return None;
        }
        if !self.buckets[router.0 as usize].try_consume(now_us) {
            return None;
        }
        // Quote the packet as the router saw it: hop limit exhausted.
        let mut quoted = wire.to_vec();
        if ty == Icmp6Type::TimeExceeded {
            quoted[7] = 0;
        }
        // Interior routers of a middlebox-fronted AS saw a *rewritten*
        // destination; their quotations carry it. The prober's target
        // checksum (in the source port / ICMPv6 id) is how this
        // tampering is detected (paper §4.1).
        if self.topo.ases[info.as_idx as usize].middlebox
            && info.role != simnet::topology::RouterRole::Border
        {
            quoted[39] ^= 0x40;
            self.stats.rewritten_quotes += 1;
        }
        // The source address depends on the arrival direction: multi-
        // interface routers answer from the interface facing the probe.
        let addr = info.response_addr(router, prev_key);
        let bytes = seed_build_error(addr, vaddr, ty, &quoted, 64);
        let dst_word = u128::from(Ipv6Header::decode(wire).map(|h| h.dst).unwrap_or(addr));
        Some(self.deliver(bytes, now_us, hop_count, dst_word))
    }

    fn deliver(&self, bytes: Vec<u8>, now_us: u64, hop_count: usize, key: u128) -> Delivery {
        let lat = self.topo.config.hop_latency_us;
        let oneway = hop_count as u64 * lat + flow::jitter_us(flow::mix128(key), lat);
        Delivery {
            at_us: now_us + 2 * oneway,
            bytes,
        }
    }
}

/// Direction key for the hop at `idx` in `hops`: the previous router's
/// id, or a vantage marker for the first hop.
fn prev_hop_key(hops: &[RouterId], idx: usize, vidx: u8) -> u64 {
    if idx == 0 || hops.is_empty() {
        0xface_0000 + vidx as u64
    } else {
        let i = idx.min(hops.len()) - 1;
        hops[i].0 as u64
    }
}

// ---- seed response builders (vendored from f54a62c) ----

/// Builds a complete ICMPv6 *error* packet (IPv6 header + ICMPv6) from
/// router `src` back to `dst`, quoting `invoking_packet` (a full IPv6
/// packet as received). The quotation is truncated so the whole error
/// stays within [`v6packet::MIN_MTU`].
fn seed_build_error(
    src: Ipv6Addr,
    dst: Ipv6Addr,
    ty: Icmp6Type,
    invoking_packet: &[u8],
    hop_limit: u8,
) -> Vec<u8> {
    debug_assert!(ty.is_error());
    let max_quote = v6packet::MIN_MTU - ip6::HEADER_LEN - 8;
    let quote = &invoking_packet[..invoking_packet.len().min(max_quote)];
    let (t, c) = ty.type_code();
    let mut icmp = Vec::with_capacity(8 + quote.len());
    icmp.extend_from_slice(&[t, c, 0, 0, 0, 0, 0, 0]); // cksum + unused filled below
    icmp.extend_from_slice(quote);
    let ck = v6packet::csum::transport_checksum(src, dst, proto_num::ICMP6, &icmp);
    icmp[2..4].copy_from_slice(&ck.to_be_bytes());
    let hdr = Ipv6Header {
        traffic_class: 0,
        flow_label: 0,
        payload_len: icmp.len() as u16,
        next_header: proto_num::ICMP6,
        hop_limit,
        src,
        dst,
    };
    let mut out = Vec::with_capacity(ip6::HEADER_LEN + icmp.len());
    out.extend_from_slice(&hdr.encode());
    out.extend_from_slice(&icmp);
    out
}

/// Builds a complete Echo Reply packet answering an echo request with
/// identifier `ident`, sequence `seq` and `data` (the request's payload,
/// returned verbatim per RFC 4443 §4.2).
fn seed_build_echo_reply(
    src: Ipv6Addr,
    dst: Ipv6Addr,
    ident: u16,
    seq: u16,
    data: &[u8],
    hop_limit: u8,
) -> Vec<u8> {
    let mut icmp = Vec::with_capacity(8 + data.len());
    icmp.extend_from_slice(&[129, 0, 0, 0]);
    icmp.extend_from_slice(&ident.to_be_bytes());
    icmp.extend_from_slice(&seq.to_be_bytes());
    icmp.extend_from_slice(data);
    let ck = v6packet::csum::transport_checksum(src, dst, proto_num::ICMP6, &icmp);
    icmp[2..4].copy_from_slice(&ck.to_be_bytes());
    let hdr = Ipv6Header {
        traffic_class: 0,
        flow_label: 0,
        payload_len: icmp.len() as u16,
        next_header: proto_num::ICMP6,
        hop_limit,
        src,
        dst,
    };
    let mut out = Vec::with_capacity(ip6::HEADER_LEN + icmp.len());
    out.extend_from_slice(&hdr.encode());
    out.extend_from_slice(&icmp);
    out
}

/// Builds a complete IPv6+TCP response segment (20-byte header, no
/// options, no payload) from `src` back to `dst`.
fn seed_build_response(
    src: Ipv6Addr,
    dst: Ipv6Addr,
    sport: u16,
    dport: u16,
    flags: u8,
    hop_limit: u8,
) -> Vec<u8> {
    let mut seg = [0u8; 20];
    seg[0..2].copy_from_slice(&sport.to_be_bytes());
    seg[2..4].copy_from_slice(&dport.to_be_bytes());
    seg[12] = 5 << 4;
    seg[13] = flags;
    seg[14..16].copy_from_slice(&0u16.to_be_bytes());
    let ck = v6packet::csum::transport_checksum(src, dst, proto_num::TCP, &seg);
    seg[16..18].copy_from_slice(&ck.to_be_bytes());
    let hdr = Ipv6Header {
        traffic_class: 0,
        flow_label: 0,
        payload_len: 20,
        next_header: proto_num::TCP,
        hop_limit,
        src,
        dst,
    };
    let mut out = Vec::with_capacity(ip6::HEADER_LEN + 20);
    out.extend_from_slice(&hdr.encode());
    out.extend_from_slice(&seg);
    out
}

/// Builds a fragmented (atomic-fragment) ICMPv6 Echo Reply carrying
/// `ident`/`seq`/`data`, with fragment identification `frag_id`.
fn seed_build_fragmented_echo_reply(
    src: Ipv6Addr,
    dst: Ipv6Addr,
    ident: u16,
    seq: u16,
    data: &[u8],
    hop_limit: u8,
    frag_id: u32,
) -> Vec<u8> {
    let mut icmp = Vec::with_capacity(8 + data.len());
    icmp.extend_from_slice(&[129, 0, 0, 0]);
    icmp.extend_from_slice(&ident.to_be_bytes());
    icmp.extend_from_slice(&seq.to_be_bytes());
    icmp.extend_from_slice(data);
    let ck = v6packet::csum::transport_checksum(src, dst, proto_num::ICMP6, &icmp);
    icmp[2..4].copy_from_slice(&ck.to_be_bytes());

    let mut frag = Vec::with_capacity(v6packet::frag::FRAG_HEADER_LEN + icmp.len());
    frag.push(proto_num::ICMP6); // inner next header
    frag.push(0); // reserved
    frag.extend_from_slice(&0u16.to_be_bytes()); // offset 0, M=0
    frag.extend_from_slice(&frag_id.to_be_bytes());
    frag.extend_from_slice(&icmp);

    let hdr = Ipv6Header {
        traffic_class: 0,
        flow_label: 0,
        payload_len: frag.len() as u16,
        next_header: v6packet::frag::FRAGMENT_NH,
        hop_limit,
        src,
        dst,
    };
    let mut out = Vec::with_capacity(ip6::HEADER_LEN + frag.len());
    out.extend_from_slice(&hdr.encode());
    out.extend_from_slice(&frag);
    out
}

/// The seed's `FlowKey::hash` (f54a62c): two full `mix128` rounds and
/// two `mix2` combines per probe.
fn seed_flow_hash(fk: &FlowKey) -> u64 {
    let s = flow::mix128(u128::from(fk.src));
    let d = flow::mix128(u128::from(fk.dst));
    let ports = ((fk.proto as u64) << 32) | ((fk.sport as u64) << 16) | fk.dport as u64;
    flow::mix2(flow::mix2(s, d), ports ^ ((fk.flow_label as u64) << 40))
}
