//! Experiment harness shared by the per-table / per-figure binaries.
//!
//! Every binary builds the same [`Scenario`] — synthetic Internet, seed
//! catalog, target catalog — from `BEHOLDER_SCALE` (tiny/small/full,
//! default small) and a fixed master seed, so experiment outputs are
//! reproducible and mutually consistent.

pub mod fmt;
pub mod seed_baseline;

use seeds::sources::SeedCatalog;
use simnet::config::TopologyConfig;
use simnet::{Scale, Topology};
use std::sync::Arc;
use targets::{IidStrategy, TargetCatalog};

/// The master seed all experiments share.
pub const MASTER_SEED: u64 = 0xbe401de5;

/// Everything an experiment needs.
pub struct Scenario {
    /// The synthetic Internet.
    pub topo: Arc<Topology>,
    /// Seed lists.
    pub seeds: SeedCatalog,
    /// Target sets (fixediid synthesis, the campaign default).
    pub targets: TargetCatalog,
    /// Scale in effect.
    pub scale: Scale,
}

impl Scenario {
    /// Builds the scenario at the environment-selected scale.
    pub fn load() -> Self {
        Self::load_at(Scale::from_env())
    }

    /// Builds the scenario at an explicit scale.
    pub fn load_at(scale: Scale) -> Self {
        let cfg = TopologyConfig::at_scale(scale, MASTER_SEED);
        let topo = Arc::new(simnet::generate::generate(cfg));
        let seeds = SeedCatalog::synthesize(&topo, MASTER_SEED);
        let targets = TargetCatalog::build(&seeds, IidStrategy::FixedIid);
        Scenario {
            topo,
            seeds,
            targets,
            scale,
        }
    }

    /// The augmented ASN resolver (public view) for subnet analyses.
    pub fn resolver(&self) -> analysis::AsnResolver {
        analysis::AsnResolver::new(
            self.topo.bgp.clone(),
            self.topo.rir_extra.clone(),
            &self.topo.asn_equivalences,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scenario_builds() {
        let s = Scenario::load_at(Scale::Tiny);
        assert_eq!(s.topo.vantages.len(), 3);
        assert!(s.targets.get("caida-z64").is_some());
        assert!(!s.seeds.fdns.is_empty());
    }
}
