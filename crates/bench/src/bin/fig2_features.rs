//! Figure 2 — Features contributed by each z64 target set: targets,
//! routed targets, BGP prefixes and ASNs, with the shared-vs-exclusive
//! split (the main bars plus the "exclusive fraction" inset).

use beholder_bench::fmt::{header, human, row};
use beholder_bench::Scenario;
use targets::{characterize, TargetSet};

fn main() {
    let sc = Scenario::load();
    println!(
        "Figure 2: Features contributed by each target set (z64, scale {:?})\n",
        sc.scale
    );
    let sets: Vec<&TargetSet> = sc
        .targets
        .iter()
        .filter(|(n, _)| {
            n.ends_with("-z64")
                && !n.starts_with("combined")
                && !n.starts_with("tum")
                && !n.starts_with("random")
        })
        .map(|(_, s)| s)
        .collect();
    let independent: Vec<usize> = (0..sets.len()).collect();
    let stats = characterize(&sets, &independent, &sc.topo.bgp);

    header(&[
        ("Set", 14),
        ("Targets", 10),
        ("Routed", 10),
        ("BGPPfx", 8),
        ("ASNs", 7),
        ("ExclPfx", 8),
        ("ExclASN", 8),
        ("ExclPfx%", 9),
        ("ExclASN%", 9),
    ]);
    for s in &stats {
        row(&[
            (s.name.trim_end_matches("-z64").to_string(), 14),
            (human(s.unique), 10),
            (human(s.routed), 10),
            (human(s.bgp_prefixes), 8),
            (human(s.asns), 7),
            (human(s.exclusive_prefixes), 8),
            (human(s.exclusive_asns), 8),
            (
                format!(
                    "{:.1}%",
                    100.0 * s.exclusive_prefixes as f64 / s.bgp_prefixes.max(1) as f64
                ),
                9,
            ),
            (
                format!(
                    "{:.1}%",
                    100.0 * s.exclusive_asns as f64 / s.asns.max(1) as f64
                ),
                9,
            ),
        ]);
    }
    println!("\nExpect: set size does NOT correlate with BGP-prefix/ASN coverage —");
    println!("the vast majority of prefixes/ASNs are shared by two or more sets.");
}
