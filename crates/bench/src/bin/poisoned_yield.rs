//! Discovery yield under **adversarial poisoning**: the quarantined
//! adaptive loop on a simnet where a share of *access-network* routers
//! (distribution/aggregation middleboxes, LAN gateways, subscriber
//! CPE — the realistic adversarial population) is hostile, cycling
//! through all five [`simnet::AdversarialClass`]es, versus the
//! identical clean run. Writes `BENCH_poisoned.json` so the
//! poisoning-resistance trajectory is tracked PR over PR.
//!
//! Both arms share the topology seed, seed catalog and adaptive
//! configuration (three vantages, fill mode off for exact probe
//! accounting); the poisoned arm additionally carries an
//! [`simnet::AdversarialSchedule`] and runs with
//! `quarantine_feedback` on. Two headline claims:
//!
//! * **zero fabricated interfaces** — every address the poisoned run
//!   discovers resolves to a real router of the topology (hard assert,
//!   not a ratio);
//! * **yield survives** — the poisoned run keeps at least
//!   `BENCH_POISONED_MIN_RATIO` of the clean run's unique-interface
//!   yield despite hostile responders burning budget and the
//!   quarantine discarding their traffic.
//!
//! Env knobs:
//! * `BENCH_POISONED_TILES`  — topology tile count (default 4)
//! * `BENCH_POISONED_BUDGET` — total probe budget (default 400000)
//! * `BENCH_POISONED_ROUNDS` — adaptive round cap (default 6)
//! * `BENCH_POISONED_MILLI`  — hostile edge routers per 1000 (default
//!   200, i.e. 20% — the acceptance scenario)
//! * `BENCH_POISONED_MIN_RATIO` — fail when poisoned/clean unique-
//!   interface yield drops below this (the CI gate sets 0.8)

use beholder::adaptive::{run_adaptive_parallel, AdaptiveConfig};
use beholder_bench::fmt::human;
use seeds::feedback::FeedbackParams;
use simnet::config::TopologyConfig;
use simnet::topology::{RouterId, RouterRole};
use simnet::{AdversarialClass, AdversarialSchedule};
use std::sync::Arc;
use std::time::Instant;
use targets::{synthesize::synthesize, IidStrategy};
use yarrp6::YarrpConfig;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let tiles = env_u64("BENCH_POISONED_TILES", 4) as usize;
    let budget = env_u64("BENCH_POISONED_BUDGET", 400_000);
    let rounds = env_u64("BENCH_POISONED_ROUNDS", 6) as usize;
    let milli = env_u64("BENCH_POISONED_MILLI", 200).clamp(1, 1000);

    let yarrp = YarrpConfig {
        fill_mode: false, // exact probe accounting: cost = targets × ttl
        ..YarrpConfig::default()
    };
    let vantages: Vec<u8> = vec![0, 1, 2];
    let per_target = yarrp.max_ttl as u64 * vantages.len() as u64;
    let n_targets = (budget / per_target) as usize;

    let cfg = |quarantine_feedback: bool| AdaptiveConfig {
        yarrp,
        vantages: vantages.clone(),
        probe_budget: budget,
        round_targets: (n_targets / rounds).max(1),
        shards: 4,
        max_rounds: rounds,
        min_yield_per_kprobes: 0.0, // spend the whole budget
        feedback: FeedbackParams {
            sixgen_budget: (2 * n_targets / rounds).max(2_048),
            ..FeedbackParams::default()
        },
        quarantine_feedback,
        ..AdaptiveConfig::default()
    };

    let arm = |adversarial: AdversarialSchedule, quarantine: bool| {
        let tc = TopologyConfig {
            adversarial,
            ..TopologyConfig::tiled(7, tiles)
        };
        let topo = Arc::new(simnet::generate::generate(tc));
        let catalog = seeds::sources::SeedCatalog::synthesize(&topo, 7);
        // The Combined seed list (Table 1) reaches *host* space, so
        // probe paths actually cross the LAN-gateway/CPE edge where the
        // hostile population lives — CAIDA-style router-interface seeds
        // never would.
        let z64 = targets::zn(&catalog.combined, 64);
        let seed_set = synthesize("adaptive-r0", &z64, IidStrategy::FixedIid);
        let t0 = Instant::now();
        let res = run_adaptive_parallel(&topo, &seed_set, &cfg(quarantine));
        (res, t0.elapsed().as_secs_f64(), topo)
    };

    // --- Clean arm ---------------------------------------------------
    let (clean, clean_s, topo) = arm(AdversarialSchedule::default(), false);

    // --- Poisoned arm: every-Nth *edge* router hostile, all classes --
    //
    // The hostile population is drawn from the access network
    // (distribution/aggregation middleboxes, LAN gateways, subscriber
    // CPE): compromised customer gear and TTL-mangling access
    // middleboxes are where real adversarial responders live — backbone
    // and border routers are operator-controlled, and a "hostile
    // backbone" scenario mostly measures the black-holing of entire
    // subtrees (a zombie on a transit path absorbs every probe through
    // it, so routers behind it never respond at all), not the
    // decode/quarantine defenses this bench gates.
    let edge: Vec<usize> = topo
        .routers
        .iter()
        .enumerate()
        .filter(|(_, r)| {
            matches!(
                r.role,
                RouterRole::Distribution | RouterRole::LanGateway | RouterRole::Cpe
            )
        })
        .map(|(i, _)| i)
        .collect();
    let stride = (1000 / milli).max(1) as usize;
    let mut sched = AdversarialSchedule::default();
    let mut hostile = 0usize;
    for &r in edge.iter().step_by(stride) {
        sched = sched.with_hostile_always(
            RouterId(r as u32),
            AdversarialClass::ALL[hostile % AdversarialClass::ALL.len()],
        );
        hostile += 1;
    }
    let (poisoned, poisoned_s, ptopo) = arm(sched, true);

    let ci = clean.unique_interfaces() as u64;
    let pi = poisoned.unique_interfaces() as u64;
    let yield_ratio = pi as f64 / ci.max(1) as f64;

    // Zero fabricated interfaces: every discovery is a real router
    // interface of the (poisoned) topology — nothing invented by a
    // spoofer, garbler or liar made it through decode + quarantine.
    let mut fabricated = 0u64;
    for addr in poisoned.interfaces.iter() {
        if ptopo.router_by_iface(addr).is_none() {
            fabricated += 1;
            eprintln!("  fabricated interface: {addr}");
        }
    }

    println!(
        "poisoned_yield: tiled x{tiles}, 3 vantages, budget {} probes, {hostile} hostile edge routers ({}% of {} edge)",
        human(budget),
        milli / 10,
        edge.len(),
    );
    println!(
        "  clean    : {:>2} rounds, {:>9} probes -> {:>7} interfaces in {clean_s:.3}s ({:?})",
        clean.rounds.len(),
        human(clean.probes()),
        human(ci),
        clean.stop
    );
    println!(
        "  poisoned : {:>2} rounds, {:>9} probes -> {:>7} interfaces in {poisoned_s:.3}s ({:?})",
        poisoned.rounds.len(),
        human(poisoned.probes()),
        human(pi),
        poisoned.stop
    );
    let adv = &poisoned.stats;
    println!(
        "  hostile traffic absorbed: lying-ttl {}, spoofed {}, zombie {}, storm {}, garbage {} (total {})",
        human(adv.adv_lying_ttl),
        human(adv.adv_spoofed_source),
        human(adv.adv_zombie_echo),
        human(adv.adv_duplicate_storm),
        human(adv.adv_garbage),
        human(adv.adversarial_total()),
    );
    println!("  fabricated interfaces: {fabricated}");
    println!("  yield ratio (poisoned/clean): {yield_ratio:.3}x");

    // Sanity: the hostile schedule actually fired, and the defense's
    // core claim holds.
    assert!(
        poisoned.stats.adversarial_total() > 0,
        "no adversarial responses were generated — the schedule is dead"
    );
    assert_eq!(fabricated, 0, "fabricated interfaces reached the results");
    assert!(clean.probes() <= budget, "clean arm over budget");
    assert!(poisoned.probes() <= budget, "poisoned arm over budget");

    // Hand-rolled JSON: the workspace's serde is a no-op shim.
    let json = format!(
        "{{\n  \"bench\": \"poisoned_yield\",\n  \"scenario\": \"tiled x{tiles}, 3 vantages, {hostile} hostile edge routers ({milli}/1000 of edge, all classes), budget {budget}\",\n  \"probe_budget\": {budget},\n  \"clean\": {{ \"rounds\": {}, \"probes\": {}, \"interfaces\": {ci}, \"elapsed_s\": {clean_s:.6}, \"stop\": \"{:?}\" }},\n  \"poisoned\": {{ \"rounds\": {}, \"probes\": {}, \"interfaces\": {pi}, \"elapsed_s\": {poisoned_s:.6}, \"stop\": \"{:?}\", \"adversarial_responses\": {}, \"fabricated_interfaces\": {fabricated} }},\n  \"yield_ratio\": {yield_ratio:.3}\n}}\n",
        clean.rounds.len(),
        clean.probes(),
        clean.stop,
        poisoned.rounds.len(),
        poisoned.probes(),
        poisoned.stop,
        poisoned.stats.adversarial_total(),
    );
    let path = "BENCH_poisoned.json";
    std::fs::write(path, json).expect("write BENCH_poisoned.json");
    println!("  wrote {path}");

    if let Ok(min) = std::env::var("BENCH_POISONED_MIN_RATIO") {
        let min: f64 = min.parse().expect("BENCH_POISONED_MIN_RATIO not a number");
        if yield_ratio < min {
            eprintln!("FAIL: poisoned/clean yield {yield_ratio:.3}x below required {min:.2}x");
            std::process::exit(1);
        }
        println!("  yield gate: {yield_ratio:.3}x >= {min:.2}x OK");
    }
}
