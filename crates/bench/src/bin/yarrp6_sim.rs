//! `yarrp6_sim` — the Yarrp6 prober as a command-line tool, run against
//! the simulated Internet (the release-artifact form of the paper's
//! prober \[7\], adapted to this reproduction's substrate).
//!
//! ```text
//! yarrp6_sim [--scale tiny|small|full] [--seed N] [--vantage 0..2]
//!            [--set NAME] [--proto icmp6|udp|tcp] [--rate PPS]
//!            [--max-ttl N] [--no-fill] [--neighborhood TTL:WINDOW_US]
//!            [--out-targets FILE] [--out-csv FILE] [--out-ifaces FILE]
//! ```
//!
//! Examples:
//!
//! ```sh
//! cargo run --release -p beholder-bench --bin yarrp6_sim -- --set cdn-k32-z64
//! cargo run --release -p beholder-bench --bin yarrp6_sim -- \
//!     --scale tiny --set caida-z64 --rate 2000 --out-csv /tmp/run.csv
//! ```

use seeds::sources::SeedCatalog;
use simnet::config::TopologyConfig;
use simnet::Scale;
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use targets::{IidStrategy, TargetCatalog};
use v6packet::probe::Protocol;
use yarrp6::campaign::run_campaign;
use yarrp6::yarrp::Neighborhood;
use yarrp6::YarrpConfig;

struct Args {
    scale: Scale,
    seed: u64,
    vantage: u8,
    set: String,
    cfg: YarrpConfig,
    out_targets: Option<PathBuf>,
    out_csv: Option<PathBuf>,
    out_ifaces: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: yarrp6_sim [--scale tiny|small|full] [--seed N] [--vantage 0..2]\n\
         \x20                 [--set NAME] [--proto icmp6|udp|tcp] [--rate PPS]\n\
         \x20                 [--max-ttl N] [--no-fill] [--neighborhood TTL:WINDOW_US]\n\
         \x20                 [--out-targets FILE] [--out-csv FILE] [--out-ifaces FILE]\n\
         sets: caida|dnsdb|fiebig|fdns|cdn-k256|cdn-k32|6gen|tum|random|combined x -z48/-z64"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::from_env(),
        seed: 0xbe401de5,
        vantage: 0,
        set: "caida-z64".into(),
        cfg: YarrpConfig::default(),
        out_targets: None,
        out_csv: None,
        out_ifaces: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match a.as_str() {
            "--scale" => {
                args.scale = match val("--scale").as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => {
                        eprintln!("unknown scale {other}");
                        usage()
                    }
                }
            }
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--vantage" => args.vantage = val("--vantage").parse().unwrap_or_else(|_| usage()),
            "--set" => args.set = val("--set"),
            "--proto" => {
                args.cfg.protocol = match val("--proto").as_str() {
                    "icmp6" => Protocol::Icmp6,
                    "udp" => Protocol::Udp,
                    "tcp" => Protocol::Tcp,
                    other => {
                        eprintln!("unknown protocol {other}");
                        usage()
                    }
                }
            }
            "--rate" => args.cfg.rate_pps = val("--rate").parse().unwrap_or_else(|_| usage()),
            "--max-ttl" => args.cfg.max_ttl = val("--max-ttl").parse().unwrap_or_else(|_| usage()),
            "--no-fill" => args.cfg.fill_mode = false,
            "--neighborhood" => {
                let v = val("--neighborhood");
                let (ttl, win) = v.split_once(':').unwrap_or_else(|| usage());
                args.cfg.neighborhood = Some(Neighborhood {
                    max_ttl: ttl.parse().unwrap_or_else(|_| usage()),
                    window_us: win.parse().unwrap_or_else(|_| usage()),
                });
            }
            "--out-targets" => args.out_targets = Some(val("--out-targets").into()),
            "--out-csv" => args.out_csv = Some(val("--out-csv").into()),
            "--out-ifaces" => args.out_ifaces = Some(val("--out-ifaces").into()),
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown argument {other}");
                usage()
            }
        }
    }
    if args.vantage > 2 {
        eprintln!("vantage must be 0..2");
        usage()
    }
    args
}

fn main() {
    let args = parse_args();
    eprintln!(
        "# generating topology (scale {:?}, seed {:#x})…",
        args.scale, args.seed
    );
    let topo = Arc::new(simnet::generate::generate(TopologyConfig::at_scale(
        args.scale, args.seed,
    )));
    eprintln!(
        "# {} ASes, {} prefixes, {} routers, {} hosts",
        topo.ases.len(),
        topo.bgp.prefix_count(),
        topo.routers.len(),
        topo.host_count()
    );
    let seeds = SeedCatalog::synthesize(&topo, args.seed);
    let catalog = TargetCatalog::build(&seeds, IidStrategy::FixedIid);
    let Some(set) = catalog.get(&args.set) else {
        eprintln!("unknown target set {:?}; available:", args.set);
        for (n, s) in catalog.iter() {
            eprintln!("  {n} ({} targets)", s.len());
        }
        exit(2);
    };

    if let Some(path) = &args.out_targets {
        analysis::export::write_addrs(path, &set.name, &set.addrs).expect("write targets");
        eprintln!("# wrote {} targets to {}", set.len(), path.display());
    }

    eprintln!(
        "# probing {} ({} targets) from vantage {} at {}pps, max TTL {}…",
        set.name,
        set.len(),
        topo.vantages[args.vantage as usize].name,
        args.cfg.rate_pps,
        args.cfg.max_ttl
    );
    let res = run_campaign(&topo, args.vantage, set, &args.cfg);
    let log = &res.log;
    let ifaces = log.interface_addrs();
    println!(
        "probes={} fills={} responses={} interfaces={} reached={} duration_virtual={:.1}s",
        log.probes_sent,
        log.fills,
        log.records.len(),
        ifaces.len(),
        log.reached_targets().len(),
        log.duration_us as f64 / 1e6,
    );
    println!(
        "engine: rate_limited={} lost={} silent={} rewritten_quotes={}",
        res.engine_stats.rate_limited,
        res.engine_stats.lost,
        res.engine_stats.silent_router,
        res.engine_stats.rewritten_quotes,
    );

    if let Some(path) = &args.out_csv {
        analysis::export::write_log_csv(path, log).expect("write csv");
        eprintln!(
            "# wrote {} records to {}",
            log.records.len(),
            path.display()
        );
    }
    if let Some(path) = &args.out_ifaces {
        let v: Vec<std::net::Ipv6Addr> = ifaces.into_iter().collect();
        analysis::export::write_addrs(path, "interfaces", &v).expect("write ifaces");
        eprintln!("# wrote {} interfaces to {}", v.len(), path.display());
    }
}
