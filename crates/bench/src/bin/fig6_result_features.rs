//! Figure 6 — Selected result features of the z64 Yarrp6 campaigns:
//! traces, discovered interfaces, their BGP prefixes and ASNs, with
//! exclusive fractions (the companion of Table 7).

use beholder_bench::fmt::{header, human, row};
use beholder_bench::Scenario;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv6Addr;
use yarrp6::campaign::{try_run_campaigns_parallel, CampaignSpec};
use yarrp6::YarrpConfig;

fn main() {
    let sc = Scenario::load();
    println!(
        "Figure 6: result features of z64 campaigns, all vantages (scale {:?})\n",
        sc.scale
    );
    let cfg = YarrpConfig::default();
    let sets: Vec<_> = sc
        .targets
        .iter()
        .filter(|(n, _)| {
            n.ends_with("-z64") && !n.starts_with("combined") && !n.starts_with("random")
        })
        .map(|(_, s)| s)
        .collect();

    struct R {
        name: String,
        probes: u64,
        ifaces: BTreeSet<Ipv6Addr>,
        pfxs: BTreeSet<v6addr::Ipv6Prefix>,
        asns: BTreeSet<u32>,
    }
    let mut results: Vec<R> = Vec::new();
    for set in &sets {
        let specs: Vec<CampaignSpec> = (0..3u8)
            .map(|v| CampaignSpec {
                vantage_idx: v,
                set,
                cfg,
            })
            .collect();
        let outs: Vec<_> = try_run_campaigns_parallel(&sc.topo, &specs)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
            .collect();
        let mut r = R {
            name: set.name.trim_end_matches("-z64").to_string(),
            probes: 0,
            ifaces: BTreeSet::new(),
            pfxs: BTreeSet::new(),
            asns: BTreeSet::new(),
        };
        for out in outs {
            r.probes += out.log.probes_sent;
            for a in out.log.interface_addrs() {
                if let Some((p, asn)) = sc.topo.bgp.lookup(a) {
                    r.pfxs.insert(p);
                    r.asns.insert(asn.0);
                }
                r.ifaces.insert(a);
            }
        }
        results.push(r);
    }

    let mut iface_count: BTreeMap<Ipv6Addr, u32> = BTreeMap::new();
    let mut pfx_count: BTreeMap<v6addr::Ipv6Prefix, u32> = BTreeMap::new();
    let mut asn_count: BTreeMap<u32, u32> = BTreeMap::new();
    for r in &results {
        for &a in &r.ifaces {
            *iface_count.entry(a).or_default() += 1;
        }
        for &p in &r.pfxs {
            *pfx_count.entry(p).or_default() += 1;
        }
        for &a in &r.asns {
            *asn_count.entry(a).or_default() += 1;
        }
    }

    header(&[
        ("Set", 12),
        ("Traces", 10),
        ("IntAddrs", 10),
        ("IntPfx", 8),
        ("IntASN", 8),
        ("ExclInt", 8),
        ("ExclPfx", 8),
        ("ExclASN", 8),
    ]);
    for r in &results {
        let e_i = r.ifaces.iter().filter(|a| iface_count[a] == 1).count() as u64;
        let e_p = r.pfxs.iter().filter(|p| pfx_count[p] == 1).count() as u64;
        let e_a = r.asns.iter().filter(|a| asn_count[a] == 1).count() as u64;
        row(&[
            (r.name.clone(), 12),
            (human(r.probes), 10),
            (human(r.ifaces.len() as u64), 10),
            (human(r.pfxs.len() as u64), 8),
            (human(r.asns.len() as u64), 8),
            (human(e_i), 8),
            (human(e_p), 8),
            (human(e_a), 8),
        ]);
    }
    println!("\nExpect: prefixes/ASNs overwhelmingly shared across campaigns; cdn-k32 and tum");
    println!("carry the largest exclusive interface counts.");
}
