//! Figure 5 — Probing strategy vs. rate vs. per-hop responsiveness:
//! randomized (Yarrp6) against sequential (scamper-like) at 20 / 1000 /
//! 2000 pps from two vantages, CAIDA target set. The collapse of
//! sequential probing's near-hop responsiveness at high rates — and
//! randomization's immunity — is the paper's central §4.2 result.

use analysis::metrics::hop_responsiveness;
use beholder_bench::Scenario;
use simnet::Engine;
use yarrp6::sequential::{self, SequentialConfig};
use yarrp6::yarrp::{self, YarrpConfig};

const MAX_TTL: u8 = 16;

fn main() {
    let sc = Scenario::load();
    let set = sc.targets.get("caida-z64").expect("caida-z64");
    println!(
        "Figure 5: per-hop responsiveness, sequential vs yarrp (caida-z64, {} targets, scale {:?})\n",
        set.len(),
        sc.scale
    );

    // Paper's panels: one better-connected vantage and US-EDU-2 (long
    // on-prem chain).
    for vantage in [1u8, 2] {
        println!("Vantage: {}", sc.topo.vantages[vantage as usize].name);
        print!("{:>22}", "method/rate \\ hop");
        for h in 1..=MAX_TTL {
            print!(" {h:>5}");
        }
        println!();
        for rate in [20u64, 1_000, 2_000] {
            let seq_cfg = SequentialConfig {
                rate_pps: rate,
                max_ttl: MAX_TTL,
                gap_limit: MAX_TTL, // full tracing, as the trial requires
                ..Default::default()
            };
            let mut e = Engine::new(sc.topo.clone());
            let log = sequential::run(&mut e, vantage, &set.addrs, &seq_cfg);
            print_row(
                &format!("sequential {rate}pps"),
                &hop_responsiveness(&log, MAX_TTL),
            );

            let yar_cfg = YarrpConfig {
                rate_pps: rate,
                max_ttl: MAX_TTL,
                fill_mode: false,
                ..Default::default()
            };
            let mut e = Engine::new(sc.topo.clone());
            let log = yarrp::run(&mut e, vantage, &set.addrs, &yar_cfg);
            print_row(
                &format!("yarrp (rand) {rate}pps"),
                &hop_responsiveness(&log, MAX_TTL),
            );
        }
        println!();
    }
    println!("Expect: at 20pps both methods match; at 1k/2kpps sequential collapses at");
    println!("near hops (drained token buckets) while yarrp stays near its 20pps curve.");
}

fn print_row(name: &str, resp: &[f64]) {
    print!("{name:>22}");
    for r in resp {
        print!(" {r:>5.2}");
    }
    println!();
}
