//! §4.2 Doubletree trial — Doubletree vs Yarrp6 vs sequential at several
//! rates: probe cost, discovery, and the backward-probing pathology
//! under ICMPv6 rate limiting.

use beholder_bench::fmt::{header, human, row};
use beholder_bench::Scenario;
use simnet::Engine;
use yarrp6::doubletree::{self, DoubletreeConfig};
use yarrp6::sequential::{self, SequentialConfig};
use yarrp6::yarrp::{self, YarrpConfig};

fn main() {
    let sc = Scenario::load();
    let set = sc.targets.get("caida-z64").expect("caida-z64");
    println!(
        "Doubletree trial: caida-z64 from {} (scale {:?})\n",
        sc.topo.vantages[1].name, sc.scale
    );
    header(&[
        ("Prober", 12),
        ("Rate", 7),
        ("Probes", 9),
        ("IntAddrs", 9),
        ("Yield%", 8),
        ("RateLimited", 12),
    ]);
    for rate in [20u64, 1_000, 2_000] {
        // Doubletree.
        let dt_cfg = DoubletreeConfig {
            rate_pps: rate,
            ..Default::default()
        };
        let mut e = Engine::new(sc.topo.clone());
        let log = doubletree::run(&mut e, 1, &set.addrs, &dt_cfg);
        print_result(
            "doubletree",
            rate,
            log.probes_sent,
            log.interface_addrs().len(),
            e.stats.rate_limited,
        );

        // Sequential.
        let seq_cfg = SequentialConfig {
            rate_pps: rate,
            ..Default::default()
        };
        let mut e = Engine::new(sc.topo.clone());
        let log = sequential::run(&mut e, 1, &set.addrs, &seq_cfg);
        print_result(
            "sequential",
            rate,
            log.probes_sent,
            log.interface_addrs().len(),
            e.stats.rate_limited,
        );

        // Yarrp6.
        let y_cfg = YarrpConfig {
            rate_pps: rate,
            fill_mode: false,
            ..Default::default()
        };
        let mut e = Engine::new(sc.topo.clone());
        let log = yarrp::run(&mut e, 1, &set.addrs, &y_cfg);
        print_result(
            "yarrp6",
            rate,
            log.probes_sent,
            log.interface_addrs().len(),
            e.stats.rate_limited,
        );
    }
    println!("\nExpect: doubletree uses the fewest probes at low rate, but its probe count");
    println!("*grows* with rate (silent rate-limited hops defeat the backward stop rule)");
    println!("while yarrp6 keeps full discovery at every rate.");
}

fn print_result(name: &str, rate: u64, probes: u64, ints: usize, rate_limited: u64) {
    row(&[
        (name.to_string(), 12),
        (format!("{rate}"), 7),
        (human(probes), 9),
        (human(ints as u64), 9),
        (
            format!("{:.1}", 100.0 * ints as f64 / probes.max(1) as f64),
            8,
        ),
        (human(rate_limited), 12),
    ]);
}
