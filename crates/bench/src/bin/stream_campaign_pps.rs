//! Streaming-pipeline throughput: end-to-end campaign → trace-set
//! records/second for the streaming path (prober and incremental
//! `TraceSetBuilder` running concurrently over the bounded chunk
//! channel) against the batch path (buffer the full `ProbeLog`, then
//! `TraceSet::from_log`). Writes `BENCH_stream.json` so the
//! trajectory is tracked PR over PR.
//!
//! Alongside throughput it reports the **peak record-memory proxy** of
//! each path: the batch path must hold every `ResponseRecord` of a
//! campaign at once, while the streaming path holds at most the
//! bounded channel's chunks plus the builder's classified rows
//! (`TraceSetBuilder::ROW_BYTES` each). (A proxy, not RSS: both paths
//! also build the identical columnar output, which is excluded from
//! the comparison.)
//!
//! Env knobs:
//! * `BEHOLDER_SCALE` — topology/workload scale (`tiny` | `small` |
//!   `full`; default `small`, the experiment-binary default — CI's
//!   smoke gate sets `tiny`)
//! * `BENCH_STREAM_VANTAGES` — campaigns per measurement (default 3)
//! * `BENCH_STREAM_REPS` — best-of repetitions (default 3)
//! * `BENCH_STREAM_CHUNK` — records per streamed chunk (default 4096)
//! * `BENCH_STREAM_MIN_RATIO` — fail when streaming/batch end-to-end
//!   throughput drops below this (the CI regression gate)

use analysis::{stream_campaign, TraceSet};
use simnet::config::TopologyConfig;
use simnet::EngineStats;
use std::sync::Arc;
use std::time::Instant;
use yarrp6::campaign::run_campaign;
use yarrp6::sink::StreamConfig;
use yarrp6::{ResponseKind, ResponseRecord, YarrpConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

struct Measurement {
    elapsed_s: f64,
    per_s: f64,
}

/// Best-of-`reps` timing of `f`, rated against `units` items per call.
fn measure<T>(units: u64, reps: usize, mut f: impl FnMut() -> T) -> Measurement {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Measurement {
        elapsed_s: best,
        per_s: units as f64 / best,
    }
}

/// Records that become classified rows in the builder (the rest fold
/// into counters immediately).
fn classified_rows(records: &[ResponseRecord]) -> usize {
    records
        .iter()
        .filter(|r| {
            r.target_cksum_ok
                && r.probe_ttl.is_some()
                && match r.kind {
                    ResponseKind::TimeExceeded => true,
                    ResponseKind::DestUnreachable(c) => {
                        c != v6packet::icmp6::DestUnreachCode::PortUnreachable
                    }
                    _ => false,
                }
        })
        .count()
}

fn main() {
    let scale = simnet::Scale::from_env();
    let vantages = env_usize("BENCH_STREAM_VANTAGES", 3).clamp(1, 3) as u8;
    let reps = env_usize("BENCH_STREAM_REPS", 3).max(1);

    let topo = Arc::new(simnet::generate::generate(TopologyConfig::at_scale(
        scale, 7,
    )));
    let seeds = seeds::sources::SeedCatalog::synthesize(&topo, 7);
    let catalog = targets::TargetCatalog::build(&seeds, targets::IidStrategy::FixedIid);
    let set = catalog.get("combined-z64").expect("combined-z64");
    let cfg = YarrpConfig::default();
    let stream = StreamConfig {
        chunk_records: env_usize("BENCH_STREAM_CHUNK", 4096).max(1),
        ..Default::default()
    };

    // Workload accounting (and the memory proxy) from one batch pass.
    let batch_runs: Vec<_> = (0..vantages)
        .map(|v| run_campaign(&topo, v, set, &cfg))
        .collect();
    let n_records: u64 = batch_runs.iter().map(|r| r.log.records.len() as u64).sum();
    let n_probes: u64 = batch_runs.iter().map(|r| r.log.probes_sent).sum();
    let rec_size = std::mem::size_of::<ResponseRecord>();
    // Peak per-campaign record buffering: the batch path holds one
    // campaign's full log; the streaming path holds the channel's
    // chunks plus the builder's classified rows.
    let batch_peak_bytes = batch_runs
        .iter()
        .map(|r| r.log.records.len() * rec_size)
        .max()
        .unwrap_or(0);
    let stream_peak_bytes = stream.max_buffered_records() * rec_size
        + batch_runs
            .iter()
            .map(|r| classified_rows(&r.log.records) * analysis::TraceSetBuilder::ROW_BYTES)
            .max()
            .unwrap_or(0);
    println!(
        "stream_campaign_pps: {scale:?} combined-z64, {} targets, {vantages} vantage(s), \
         {n_probes} probes -> {n_records} records, best of {reps}",
        set.len()
    );

    // --- Batch: probe (full log) then analyze -------------------------
    let batch = measure(n_records, reps, || {
        (0..vantages)
            .map(|v| {
                let res = run_campaign(&topo, v, set, &cfg);
                let ts = TraceSet::from_log(&res.log);
                (ts.len(), res.engine_stats.probes)
            })
            .fold((0usize, 0u64), |a, b| (a.0 + b.0, a.1 + b.1))
    });
    println!(
        "  batch path : {n_records:>9} records in {:.3}s  = {:>12.0} rec/s end-to-end",
        batch.elapsed_s, batch.per_s
    );

    // --- Streaming: probe -> bounded channel -> builder, overlapped ---
    let streaming = measure(n_records, reps, || {
        (0..vantages)
            .map(|v| {
                let (ts, stats) = stream_campaign(&topo, v, set, &cfg, &stream);
                (ts.len(), stats.probes)
            })
            .fold((0usize, 0u64), |a, b| (a.0 + b.0, a.1 + b.1))
    });
    println!(
        "  streaming  : {n_records:>9} records in {:.3}s  = {:>12.0} rec/s end-to-end",
        streaming.elapsed_s, streaming.per_s
    );

    let speedup = streaming.per_s / batch.per_s;
    let mem_ratio = batch_peak_bytes as f64 / (stream_peak_bytes.max(1)) as f64;
    println!("  speedup    : {speedup:.2}x end-to-end");
    println!(
        "  peak record memory: batch {batch_peak_bytes} B vs streaming {stream_peak_bytes} B \
         ({mem_ratio:.1}x smaller)"
    );

    // Sanity on the exact benched workload: the streamed sets are
    // bit-identical to the batch sets (the golden/property tests pin
    // this; the bench re-checks what it timed), and the engines agree.
    for (v, b) in batch_runs.iter().enumerate() {
        let (ts, stats) = stream_campaign(&topo, v as u8, set, &cfg, &stream);
        assert_eq!(
            ts,
            TraceSet::from_log(&b.log),
            "streaming diverged from batch on vantage {v}"
        );
        assert_eq!(
            stats, b.engine_stats,
            "engine stats diverged on vantage {v}"
        );
    }
    let merged = EngineStats::merged(batch_runs.iter().map(|r| &r.engine_stats));
    assert_eq!(merged.probes, n_probes);

    // Hand-rolled JSON: the workspace's serde is a no-op shim.
    let json = format!(
        "{{\n  \"bench\": \"stream_campaign_pps\",\n  \"scenario\": \"{scale:?} combined-z64, {vantages} vantage(s)\",\n  \"targets\": {},\n  \"probes\": {n_probes},\n  \"records\": {n_records},\n  \"batch\": {{ \"elapsed_s\": {:.6}, \"records_per_s\": {:.0}, \"peak_record_bytes\": {batch_peak_bytes} }},\n  \"streaming\": {{ \"elapsed_s\": {:.6}, \"records_per_s\": {:.0}, \"peak_record_bytes\": {stream_peak_bytes} }},\n  \"speedup\": {:.3},\n  \"peak_memory_ratio\": {:.1}\n}}\n",
        set.len(),
        batch.elapsed_s,
        batch.per_s,
        streaming.elapsed_s,
        streaming.per_s,
        speedup,
        mem_ratio,
    );
    let path = "BENCH_stream.json";
    std::fs::write(path, json).expect("write BENCH_stream.json");
    println!("  wrote {path}");

    if let Ok(min) = std::env::var("BENCH_STREAM_MIN_RATIO") {
        let min: f64 = min.parse().expect("BENCH_STREAM_MIN_RATIO not a number");
        if speedup < min {
            eprintln!("FAIL: streaming/batch throughput {speedup:.2}x below required {min:.2}x");
            std::process::exit(1);
        }
        println!("  throughput gate: {speedup:.2}x >= {min:.2}x OK");
    }
}
