//! §7.2 follow-on — speedtrap alias resolution and the router-level
//! graph: discover interfaces with a Yarrp6 campaign, resolve aliases
//! via fragment-identification counters, validate against ground truth,
//! and report the interface-level → router-level graph reduction.

use aliasres::speedtrap::{resolve_aliases, AliasConfig};
use aliasres::RouterGraph;
use analysis::TraceSet;
use beholder_bench::fmt::human;
use beholder_bench::Scenario;
use simnet::Engine;
use std::net::Ipv6Addr;
use yarrp6::campaign::run_campaign;
use yarrp6::YarrpConfig;

fn main() {
    let sc = Scenario::load();
    println!(
        "Alias resolution + router-level graph (scale {:?})\n",
        sc.scale
    );

    // 1. Interface discovery: combined campaigns from all three
    // vantages — different approach directions reveal different
    // interfaces of the same routers, which is what gives alias
    // resolution something to merge.
    let set = sc.targets.get("combined-z64").expect("combined-z64");
    let mut iface_set = std::collections::BTreeSet::new();
    let mut logs = Vec::new();
    for v in 0..3u8 {
        let res = run_campaign(&sc.topo, v, set, &YarrpConfig::default());
        iface_set.extend(res.log.interface_addrs());
        logs.push(res.log);
    }
    let res_log = &logs[1];
    let ifaces: Vec<Ipv6Addr> = iface_set.into_iter().collect();
    println!(
        "discovered interfaces (3 vps): {}",
        human(ifaces.len() as u64)
    );

    // 2. Speedtrap over the discovered interfaces.
    let mut engine = Engine::new(sc.topo.clone());
    let sets = resolve_aliases(&mut engine, 1, &ifaces, &AliasConfig::default());
    println!("speedtrap probes:             {}", human(sets.probes));
    println!(
        "alias groups (>=2 ifaces):    {}",
        human(sets.groups.len() as u64)
    );
    println!(
        "aliased interfaces:           {}",
        human(sets.groups.iter().map(|g| g.len() as u64).sum())
    );
    println!(
        "singletons:                   {}",
        human(sets.singletons.len() as u64)
    );
    println!(
        "no fragmented reply:          {}",
        human(sets.unresponsive.len() as u64)
    );

    // 3. Validation against ground truth.
    let truth = sc.topo.ground_truth_aliases();
    let (precision, recall) = sets.score(&truth);
    println!("\nprecision (pairs): {precision:.3}   recall (probed pairs): {recall:.3}");

    // 4. Router-level graph (ITDK-style), from one vantage's traces.
    let traces = TraceSet::from_log(res_log);
    let iface_graph = RouterGraph::build(&traces, &[]);
    let router_graph = RouterGraph::build(&traces, &sets.groups);
    println!(
        "\ninterface-level graph: {} nodes, {} links",
        human(iface_graph.connected_node_count() as u64),
        human(iface_graph.links.len() as u64)
    );
    println!(
        "router-level graph:    {} nodes, {} links",
        human(router_graph.connected_node_count() as u64),
        human(router_graph.links.len() as u64)
    );
    let hist = router_graph.degree_histogram();
    let max_deg = hist.keys().next_back().copied().unwrap_or(0);
    println!("max router degree:     {max_deg}");
    println!("\nExpect: high precision (>0.95); the router-level graph has fewer nodes");
    println!("than the interface-level graph (aliases collapsed).");
}
