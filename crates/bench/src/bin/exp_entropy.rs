//! Entropy/IP-style structure analysis of the seed lists (\[24\], related
//! work the paper builds on): per-nybble entropy and the segmentation of
//! each list into constant / structured / random fields — a compact
//! fingerprint of how each source's collection bias shows up in the
//! addresses themselves.

use beholder_bench::Scenario;
use std::net::Ipv6Addr;
use v6addr::entropy::{EntropyProfile, SegmentClass};

fn main() {
    let sc = Scenario::load();
    println!("Entropy/IP profile of seed lists (scale {:?})\n", sc.scale);
    println!(
        "{:>10} {:>9} {:>11} {:>36}",
        "list", "addrs", "total bits", "segments (nybble ranges)"
    );
    for (name, list) in sc.seeds.named() {
        let addrs: Vec<Ipv6Addr> = list.addrs().collect();
        let Some(p) = EntropyProfile::of(&addrs) else {
            println!("{name:>10} {:>9} {:>11} (prefix-only list)", 0, "-");
            continue;
        };
        let segs = p.segments();
        let rendered: Vec<String> = segs
            .iter()
            .map(|s| {
                let c = match s.class {
                    SegmentClass::Constant => 'C',
                    SegmentClass::Structured => 'S',
                    SegmentClass::Random => 'R',
                };
                format!("{}..{}{}", s.start, s.end, c)
            })
            .collect();
        println!(
            "{name:>10} {:>9} {:>11.1} {:>36}",
            p.count,
            p.total_bits(),
            rendered.join(" ")
        );
    }
    println!("\nLegend: C constant (shared prefix / zero pad), S structured (allocation");
    println!("counters, low-byte IIDs), R random (privacy IIDs / generated wildcards).");
    println!("Expect: random/6gen carry a long R tail; fdns is S-heavy in the IID;");
    println!("every list is C in the leading prefix nybbles.");
}
