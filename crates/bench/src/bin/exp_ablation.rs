//! Ablation — why Yarrp6 keeps every header a load balancer can hash
//! constant per target (§4.1's checksum fudge / Paris discipline).
//!
//! The ablated prober varies the IPv6 flow label per probe; per-flow
//! ECMP then sprays one target's probes across parallel paths, and the
//! reconstructed "trace" interleaves hops of different paths. We
//! measure (a) per-(target, TTL) responder conflicts and (b) the effect
//! on path-divergence subnet inference, which relies on coherent paths.

use analysis::{discover_by_path_div, PathDivParams, TraceSet};
use beholder_bench::fmt::human;
use beholder_bench::Scenario;
use std::collections::{BTreeSet, HashMap};
use std::net::Ipv6Addr;
use yarrp6::campaign::run_campaign;
use yarrp6::{ProbeLog, ResponseKind, YarrpConfig};

/// Counts (target, ttl) pairs that heard from more than one responder
/// across two repeated campaigns.
fn conflicts(logs: &[&ProbeLog]) -> (u64, u64) {
    let mut seen: HashMap<(Ipv6Addr, u8), BTreeSet<Ipv6Addr>> = HashMap::new();
    for log in logs {
        for r in &log.records {
            if r.kind == ResponseKind::TimeExceeded {
                if let Some(ttl) = r.probe_ttl {
                    seen.entry((r.target, ttl)).or_default().insert(r.responder);
                }
            }
        }
    }
    let total = seen.len() as u64;
    let conflicted = seen.values().filter(|s| s.len() > 1).count() as u64;
    (conflicted, total)
}

fn main() {
    let sc = Scenario::load();
    println!(
        "Ablation: per-target constant headers vs per-probe flow labels (scale {:?})\n",
        sc.scale
    );
    let set = sc.targets.get("combined-z64").expect("combined-z64");
    let resolver = sc.resolver();
    let vantage_asn = sc.topo.ases[sc.topo.vantages[1].as_idx as usize].asn;

    // Fill mode resends TTLs, giving conflict detection a second sample
    // per hop.
    for (name, vary) in [("paris (fudge)", false), ("varying flow label", true)] {
        // Two campaigns with different permutation keys: probes of one
        // (target, ttl) are emitted at different times, so the ablated
        // prober stamps them with different flow labels.
        let mut logs = Vec::new();
        for seed in [1u64, 2] {
            let cfg = YarrpConfig {
                vary_flow_label: vary,
                perm_seed: seed,
                ..Default::default()
            };
            logs.push(run_campaign(&sc.topo, 1, set, &cfg).log);
        }
        let (conflicted, total) = conflicts(&[&logs[0], &logs[1]]);
        let ts = TraceSet::from_log(&logs[0]);
        let cands = discover_by_path_div(&ts, &resolver, vantage_asn, &PathDivParams::default());
        let ifaces: BTreeSet<Ipv6Addr> = logs
            .iter()
            .flat_map(|l| l.interface_addrs().into_iter())
            .collect();
        println!("{name:>20}: interfaces {:>8}  (target,ttl) conflicts {:>6}/{} ({:.2}%)  subnets inferred {:>7}",
            human(ifaces.len() as u64),
            conflicted,
            total,
            100.0 * conflicted as f64 / total.max(1) as f64,
            human(cands.len() as u64),
        );
    }
    println!("\nExpect: the ablated prober shows (target,ttl) responder conflicts that the");
    println!("Paris-safe prober does not, because its probes take different ECMP paths.");
    println!("(Discovery may even rise — it samples more paths — but traces stop being");
    println!("paths, which is what §6's divergence inference needs.)");
}
