//! Table 4 — ICMPv6 Trial Results by IID: the response type/code mix for
//! lowbyte1 vs fixediid synthesis over cdn-k256 z64 prefixes, against
//! probing *known* addresses (fiebig seeds verbatim).
//!
//! The trials use UDP probes: the paper's table distinguishes port
//! unreachable (a host-generated error UDP elicits), and its central
//! finding — known-address probing reaches end hosts (2.3% port
//! unreachable) while lowbyte1/fixediid barely do — only manifests with
//! a transport that end hosts answer with errors.

use beholder_bench::fmt::pct;
use beholder_bench::Scenario;
use std::collections::BTreeMap;
use targets::synthesize::{known, synthesize, IidStrategy};
use targets::TargetSet;
use v6packet::icmp6::DestUnreachCode;
use yarrp6::campaign::run_campaign;
use yarrp6::{Protocol, ResponseKind, YarrpConfig};

fn classify(log: &yarrp6::ProbeLog) -> BTreeMap<&'static str, u64> {
    let mut m: BTreeMap<&'static str, u64> = BTreeMap::new();
    for r in &log.records {
        let key = match r.kind {
            ResponseKind::TimeExceeded => "Time Exceeded",
            ResponseKind::DestUnreachable(DestUnreachCode::NoRoute) => "no route to destination",
            ResponseKind::DestUnreachable(DestUnreachCode::AdminProhibited) => {
                "administratively prohibited"
            }
            ResponseKind::DestUnreachable(DestUnreachCode::AddrUnreachable) => {
                "address unreachable"
            }
            ResponseKind::DestUnreachable(DestUnreachCode::PortUnreachable) => "port unreachable",
            ResponseKind::DestUnreachable(DestUnreachCode::RejectRoute) => {
                "reject route to destination"
            }
            // The paper's table covers ICMPv6 errors only.
            ResponseKind::EchoReply | ResponseKind::Tcp => continue,
        };
        *m.entry(key).or_default() += 1;
    }
    m
}

fn main() {
    let sc = Scenario::load();
    println!(
        "Table 4: ICMPv6 Trial Results by IID (cdn-k256 z64 + fiebig-known, UDP, scale {:?})\n",
        sc.scale
    );

    let prefixes = targets::transform::zn(&sc.seeds.cdn_k256, 64);
    let cfg = YarrpConfig {
        protocol: Protocol::Udp,
        ..Default::default()
    };
    let campaigns: Vec<(&str, TargetSet)> = vec![
        (
            "lowbyte1",
            synthesize("cdn-k256-z64-lowbyte1", &prefixes, IidStrategy::LowByte1),
        ),
        (
            "fixediid",
            synthesize("cdn-k256-z64-fixediid", &prefixes, IidStrategy::FixedIid),
        ),
        ("known", known("fiebig-known", sc.seeds.fiebig.addrs())),
    ];

    let rows = [
        "Time Exceeded",
        "no route to destination",
        "administratively prohibited",
        "address unreachable",
        "port unreachable",
        "reject route to destination",
    ];
    let mut dists: Vec<(String, BTreeMap<&'static str, u64>)> = Vec::new();
    for (name, set) in &campaigns {
        let res = run_campaign(&sc.topo, 0, set, &cfg);
        dists.push((name.to_string(), classify(&res.log)));
    }

    print!("{:>30}", "type/code");
    for (name, _) in &dists {
        print!(" {name:>10}");
    }
    println!();
    println!("{}", "-".repeat(30 + 11 * dists.len()));
    for key in rows {
        print!("{key:>30}");
        for (_, dist) in &dists {
            let total: u64 = dist.values().sum();
            let v = dist.get(key).copied().unwrap_or(0);
            print!(" {:>10}", pct(v as f64 / total.max(1) as f64));
        }
        println!();
    }
    println!("\nExpect: ≥95% Time Exceeded everywhere; lowbyte1 ≈ fixediid;");
    println!("'known' shows a clearly larger port-unreachable share (probes reach end hosts).");
}
