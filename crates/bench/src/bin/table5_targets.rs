//! Table 5 — Target Set Properties: unique/exclusive targets, routed
//! targets, BGP prefix and ASN coverage, and 6to4 membership for every
//! `(source, zn)` target set.

use beholder_bench::fmt::{header, human, row};
use beholder_bench::Scenario;
use targets::{characterize, TargetSet};

fn main() {
    let sc = Scenario::load();
    println!("Table 5: Target Set Properties (scale {:?})\n", sc.scale);

    let sets: Vec<&TargetSet> = sc.targets.sets.iter().collect();
    let independent = sc.targets.independent_indices();
    let stats = characterize(&sets, &independent, &sc.topo.bgp);

    header(&[
        ("Name", 16),
        ("Unique", 9),
        ("Excl", 9),
        ("Routed", 9),
        ("ExclRtd", 9),
        ("BGPPfx", 8),
        ("ExclPfx", 8),
        ("ASNs", 7),
        ("ExclASN", 8),
        ("6to4", 7),
    ]);
    for s in &stats {
        row(&[
            (s.name.to_string(), 16),
            (human(s.unique), 9),
            (human(s.exclusive), 9),
            (human(s.routed), 9),
            (human(s.exclusive_routed), 9),
            (human(s.bgp_prefixes), 8),
            (human(s.exclusive_prefixes), 8),
            (human(s.asns), 7),
            (human(s.exclusive_asns), 8),
            (human(s.sixtofour), 7),
        ]);
    }

    // Totals row over the union of everything (paper's "Total both").
    let all = TargetSet::union("total", &sets);
    let tstats = characterize(&[&all], &[], &sc.topo.bgp);
    let t = &tstats[0];
    println!();
    row(&[
        ("Total".into(), 16),
        (human(t.unique), 9),
        ("N/A".into(), 9),
        (human(t.routed), 9),
        ("N/A".into(), 9),
        (human(t.bgp_prefixes), 8),
        ("N/A".into(), 8),
        (human(t.asns), 7),
        ("N/A".into(), 8),
        (human(t.sixtofour), 7),
    ]);
    println!("\nExpect (paper shapes): fiebig has a large unrouted share; 6gen/cdn-k32 dominate");
    println!(
        "unique counts; caida covers the most BGP prefixes/ASNs per target; fdns/tum carry 6to4."
    );
}
