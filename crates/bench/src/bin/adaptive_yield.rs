//! Adaptive-vs-static discovery yield at **equal probe budget**: the
//! paper's thesis ("what you probe determines what you see") as a
//! benchmark. Writes `BENCH_adaptive.json` so the trajectory is
//! tracked PR over PR.
//!
//! Both arms start from the same sparse seed source (caida-style: two
//! addresses per routed prefix) on the same tiled topology and spend
//! the same nominal probe budget:
//!
//! * **static** — one open-loop round: the seed-derived z64 targets
//!   padded to the full budget with 6Gen expansion *of the seeds
//!   themselves* (the best a feedback-free pipeline can do);
//! * **adaptive** — the multi-round loop: each round's discoveries are
//!   aggregated (kIP), expanded (6Gen) and synthesized into the next
//!   round's targets, with a global seen-set so no interface is paid
//!   for twice.
//!
//! Fill mode is disabled in both arms so a round's probe cost is
//! exactly `targets × max_ttl` and the budgets compare exactly.
//!
//! Env knobs:
//! * `BENCH_ADAPTIVE_TILES` — topology tile count (default 4)
//! * `BENCH_ADAPTIVE_BUDGET` — total probe budget (default 400000)
//! * `BENCH_ADAPTIVE_ROUNDS` — adaptive round cap (default 6)
//! * `BENCH_ADAPTIVE_MIN_RATIO` — fail when adaptive/static unique-
//!   interface yield drops below this (the CI smoke gate sets 1.0:
//!   adaptive must discover at least as much as static)

use beholder::adaptive::{run_adaptive_parallel, AdaptiveConfig};
use beholder_bench::fmt::human;
use seeds::feedback::FeedbackParams;
use simnet::config::TopologyConfig;
use std::net::Ipv6Addr;
use std::sync::Arc;
use std::time::Instant;
use targets::{synthesize::synthesize, IidStrategy, TargetSet};
use yarrp6::YarrpConfig;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let tiles = env_u64("BENCH_ADAPTIVE_TILES", 4) as usize;
    let budget = env_u64("BENCH_ADAPTIVE_BUDGET", 400_000);
    let rounds = env_u64("BENCH_ADAPTIVE_ROUNDS", 6) as usize;

    let topo = Arc::new(simnet::generate::generate(TopologyConfig::tiled(7, tiles)));
    let catalog = seeds::sources::SeedCatalog::synthesize(&topo, 7);
    let z64 = targets::zn(&catalog.caida, 64);
    let seed_set = synthesize("adaptive-r0", &z64, IidStrategy::FixedIid);

    let yarrp = YarrpConfig {
        fill_mode: false, // exact probe accounting: cost = targets × ttl
        ..YarrpConfig::default()
    };
    let per_target = yarrp.max_ttl as u64;
    let n_targets = (budget / per_target) as usize;

    // --- Static arm: seeds + open-loop 6Gen padding, one round --------
    // Every seed target is kept; only the padding is capped, so the
    // static arm never loses seed coverage to truncation.
    let seed_addrs: Vec<Ipv6Addr> = catalog.caida.addrs().collect();
    let pad = seeds::sixgen::generate_loose(&seed_addrs, 4 * n_targets, 7);
    let pad_z64 = targets::transform::zn_addrs(&TargetSet::new("pad", pad), 64);
    let pad_set = synthesize("pad", &pad_z64, IidStrategy::FixedIid);
    let pad_room = n_targets.saturating_sub(seed_set.len());
    let static_addrs: Vec<Ipv6Addr> = seed_set
        .addrs
        .iter()
        .copied()
        .chain(
            pad_set
                .addrs
                .iter()
                .copied()
                .filter(|a| !seed_set.contains(*a))
                .take(pad_room),
        )
        .collect();
    let static_set = TargetSet::new("adaptive-r0", static_addrs);
    let n_static = static_set.len();
    // Equal budgets: both arms get exactly what the static arm can use.
    let eff_budget = n_static as u64 * per_target;

    let static_cfg = AdaptiveConfig {
        yarrp,
        probe_budget: eff_budget,
        round_targets: n_static,
        max_rounds: 1,
        min_yield_per_kprobes: 0.0,
        ..AdaptiveConfig::default()
    };
    let t0 = Instant::now();
    let static_res = run_adaptive_parallel(&topo, &static_set, &static_cfg);
    let static_s = t0.elapsed().as_secs_f64();

    // --- Adaptive arm: multi-round feedback, same budget --------------
    let adaptive_cfg = AdaptiveConfig {
        yarrp,
        probe_budget: eff_budget,
        round_targets: (n_static / rounds).max(1),
        shards: 4,
        max_rounds: rounds,
        min_yield_per_kprobes: 0.0, // spend the whole budget: pure yield comparison
        feedback: FeedbackParams {
            // Enough generative mass per round to keep the pool ahead
            // of the round size.
            sixgen_budget: (2 * n_static / rounds).max(2_048),
            ..FeedbackParams::default()
        },
        ..AdaptiveConfig::default()
    };
    let t0 = Instant::now();
    let adaptive_res = run_adaptive_parallel(&topo, &seed_set, &adaptive_cfg);
    let adaptive_s = t0.elapsed().as_secs_f64();

    let si = static_res.unique_interfaces() as u64;
    let ai = adaptive_res.unique_interfaces() as u64;
    let yield_ratio = ai as f64 / si.max(1) as f64;

    println!(
        "adaptive_yield: tiled x{tiles}, caida seeds ({} z64 targets), budget {} probes",
        seed_set.len(),
        human(eff_budget)
    );
    println!(
        "  static   : {:>7} targets, {:>9} probes -> {:>7} interfaces in {static_s:.3}s",
        human(n_static as u64),
        human(static_res.probes()),
        human(si)
    );
    println!(
        "  adaptive : {:>2} rounds, {:>9} probes -> {:>7} interfaces in {adaptive_s:.3}s ({:?})",
        adaptive_res.rounds.len(),
        human(adaptive_res.probes()),
        human(ai),
        adaptive_res.stop
    );
    for r in &adaptive_res.rounds {
        println!(
            "    round {}: {:>6} targets, {:>8} probes, {:>6} new ifaces, {:>5} new subnets, \
             {:.2}/kprobe ({} rate-limited: {} default, {} aggressive)",
            r.round,
            human(r.targets),
            human(r.probes),
            human(r.new_interfaces),
            human(r.new_subnets),
            r.yield_per_kprobe,
            human(r.rate_limited),
            human(r.rl_dropped_default),
            human(r.rl_dropped_aggressive),
        );
    }
    println!("  yield ratio (adaptive/static): {yield_ratio:.3}x");

    // Equal-budget sanity: neither arm may exceed the budget.
    assert!(static_res.probes() <= eff_budget, "static arm over budget");
    assert!(
        adaptive_res.probes() <= eff_budget,
        "adaptive arm over budget"
    );

    // Hand-rolled JSON: the workspace's serde is a no-op shim.
    let json = format!(
        "{{\n  \"bench\": \"adaptive_yield\",\n  \"scenario\": \"tiled x{tiles}, caida seeds, 1 vantage, budget {eff_budget}\",\n  \"probe_budget\": {eff_budget},\n  \"static\": {{ \"targets\": {n_static}, \"probes\": {}, \"interfaces\": {si}, \"elapsed_s\": {static_s:.6}, \"rate_limited\": {} }},\n  \"adaptive\": {{ \"rounds\": {}, \"probes\": {}, \"interfaces\": {ai}, \"elapsed_s\": {adaptive_s:.6}, \"rate_limited\": {}, \"stop\": \"{:?}\" }},\n  \"yield_ratio\": {yield_ratio:.3}\n}}\n",
        static_res.probes(),
        static_res.stats.rate_limited,
        adaptive_res.rounds.len(),
        adaptive_res.probes(),
        adaptive_res.stats.rate_limited,
        adaptive_res.stop,
    );
    let path = "BENCH_adaptive.json";
    std::fs::write(path, json).expect("write BENCH_adaptive.json");
    println!("  wrote {path}");

    if let Ok(min) = std::env::var("BENCH_ADAPTIVE_MIN_RATIO") {
        let min: f64 = min.parse().expect("BENCH_ADAPTIVE_MIN_RATIO not a number");
        if yield_ratio < min {
            eprintln!("FAIL: adaptive/static yield {yield_ratio:.3}x below required {min:.2}x");
            std::process::exit(1);
        }
        println!("  yield gate: {yield_ratio:.3}x >= {min:.2}x OK");
    }
}
