//! §4.2 "Protocol" trial — ICMPv6 vs UDP vs TCP probing of the CAIDA
//! target set at 20pps from two vantages: interface discovery and
//! non-Time-Exceeded response counts per protocol.

use beholder_bench::fmt::{header, human, row};
use beholder_bench::Scenario;
use yarrp6::campaign::run_campaign;
use yarrp6::{Protocol, YarrpConfig};

fn main() {
    let sc = Scenario::load();
    // The trial probes the CAIDA seed addresses directly (::1 + random
    // per prefix), as the production systems do — not the fixediid
    // re-synthesis used by the Table 7 campaigns.
    let set = targets::synthesize::known("caida-seed", sc.seeds.caida.addrs());
    println!(
        "Protocol trial: caida seed (::1 + random per prefix) at 20pps (scale {:?})\n",
        sc.scale
    );
    header(&[
        ("Vantage", 10),
        ("Protocol", 9),
        ("IntAddrs", 9),
        ("NonTE", 8),
        ("DestResp", 9),
    ]);
    let mut icmp_ifaces = 0u64;
    let mut other_ifaces = Vec::new();
    for vantage in [1u8, 2] {
        for proto in [Protocol::Icmp6, Protocol::Udp, Protocol::Tcp] {
            let cfg = YarrpConfig {
                protocol: proto,
                rate_pps: 20,
                fill_mode: false,
                ..Default::default()
            };
            let res = run_campaign(&sc.topo, vantage, &set, &cfg);
            let ints = res.log.interface_addrs().len() as u64;
            if proto == Protocol::Icmp6 {
                icmp_ifaces += ints;
            } else {
                other_ifaces.push(ints);
            }
            row(&[
                (sc.topo.vantages[vantage as usize].name.to_string(), 10),
                (proto.to_string(), 9),
                (human(ints), 9),
                (human(res.log.other_responses()), 8),
                (human(res.log.reached_targets().len() as u64), 9),
            ]);
        }
    }
    let avg_other = other_ifaces.iter().sum::<u64>() as f64 / other_ifaces.len().max(1) as f64;
    println!(
        "\nICMPv6 vs UDP/TCP average interface delta: {:+.1}%",
        100.0 * (icmp_ifaces as f64 / 2.0 - avg_other) / avg_other.max(1.0)
    );
    println!("Expect: ICMPv6 discovers a few percent more interfaces (paper: +2.1–2.2%)");
    println!("and markedly more non-TE responses — it penetrates firewalled edges.");
}
