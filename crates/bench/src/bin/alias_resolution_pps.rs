//! Alias-resolution throughput and fidelity: speedtrap probing rate,
//! precision/recall against the simulator's ground-truth alias groups,
//! and the router-collapse ratio the adaptive loop's alias stage earns
//! end to end. Writes `BENCH_alias.json` so the trajectory is tracked
//! PR over PR.
//!
//! Two phases:
//!
//! * **standalone** — speedtrap over the interfaces of ground-truth
//!   multi-interface routers (the resolver never sees the truth; it is
//!   the probe list and the scoring reference). Measures wall-clock
//!   probe throughput and precision/recall.
//! * **adaptive** — the full loop with
//!   [`AdaptiveConfig::alias_resolution`] on: candidates derive from
//!   each round's own discoveries, alias probes burn the shared
//!   budget, and the incremental router graph accumulates. Measures
//!   precision over the inferred graph's multi-member nodes, and the
//!   resolved-router vs observed-interface collapse.
//!
//! Asserts (always on): the adaptive arm resolves strictly fewer
//! routers than it observed interfaces — alias resolution must
//! actually collapse the interface-level view.
//!
//! Env knobs:
//! * `BENCH_ALIAS_TILES` — topology tile count (default 4)
//! * `BENCH_ALIAS_ROUTERS` — standalone-phase router count (default 64)
//! * `BENCH_ALIAS_BUDGET` — adaptive-phase probe budget (default 300000)
//! * `BENCH_ALIAS_ROUNDS` — adaptive-phase round cap (default 4)
//! * `BENCH_ALIAS_MIN_PRECISION` — fail when either phase's precision
//!   drops below this (the CI smoke gate sets 0.9)

use aliasres::{resolve_aliases, AliasConfig, AliasSets};
use beholder::adaptive::{run_adaptive_parallel, AdaptiveConfig};
use beholder_bench::fmt::human;
use simnet::config::TopologyConfig;
use simnet::Engine;
use std::net::Ipv6Addr;
use std::sync::Arc;
use std::time::Instant;
use targets::{synthesize::synthesize, IidStrategy};
use yarrp6::YarrpConfig;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let tiles = env_u64("BENCH_ALIAS_TILES", 4) as usize;
    let routers = env_u64("BENCH_ALIAS_ROUTERS", 64) as usize;
    let budget = env_u64("BENCH_ALIAS_BUDGET", 300_000);
    let rounds = env_u64("BENCH_ALIAS_ROUNDS", 4) as usize;

    let topo = Arc::new(simnet::generate::generate(TopologyConfig::tiled(7, tiles)));

    // --- Standalone phase: speedtrap over known-aliased routers -------
    let truth: Vec<Vec<Ipv6Addr>> = topo
        .ground_truth_aliases()
        .into_iter()
        .take(routers)
        .collect();
    let ifaces: Vec<Ipv6Addr> = truth.iter().flatten().copied().collect();
    let mut engine = Engine::new(topo.clone());
    let t0 = Instant::now();
    let sets = resolve_aliases(&mut engine, 0, &ifaces, &AliasConfig::default());
    let standalone_s = t0.elapsed().as_secs_f64();
    let pps = sets.probes as f64 / standalone_s.max(1e-9);
    let (prec_a, rec_a) = sets.score(&truth);

    println!(
        "alias_resolution_pps: tiled x{tiles}, {} routers / {} interfaces offered",
        truth.len(),
        ifaces.len()
    );
    println!(
        "  standalone: {:>8} probes in {standalone_s:.3}s ({:>9}/s) -> {} groups, \
         precision {prec_a:.3}, recall {rec_a:.3}",
        human(sets.probes),
        human(pps as u64),
        sets.groups.len()
    );

    // --- Adaptive phase: the loop's alias stage end to end ------------
    let catalog = seeds::sources::SeedCatalog::synthesize(&topo, 7);
    let z64 = targets::zn(&catalog.caida, 64);
    let seed_set = synthesize("adaptive-r0", &z64, IidStrategy::FixedIid);
    let cfg = AdaptiveConfig {
        yarrp: YarrpConfig {
            fill_mode: false,
            ..YarrpConfig::default()
        },
        probe_budget: budget,
        round_targets: 1_024,
        shards: 4,
        max_rounds: rounds,
        min_yield_per_kprobes: 0.0,
        alias_resolution: true,
        ..AdaptiveConfig::default()
    };
    let t0 = Instant::now();
    let res = run_adaptive_parallel(&topo, &seed_set, &cfg);
    let adaptive_s = t0.elapsed().as_secs_f64();
    let rl = res
        .router_level
        .as_ref()
        .expect("alias_resolution on must yield a router-level result");

    // Precision of the inferred graph's alias verdicts against global
    // ground truth, over the same pair surface `AliasSets::score` uses.
    let mut inferred = AliasSets::default();
    for node in &rl.graph.nodes {
        if node.len() >= 2 {
            inferred.groups.push(node.clone());
        } else {
            inferred.singletons.push(node[0]);
        }
    }
    let global_truth = topo.ground_truth_aliases();
    let (prec_b, rec_b) = inferred.score(&global_truth);
    let interfaces = rl.interfaces;
    let resolved = rl.routers() as u64;

    println!(
        "  adaptive  : {} rounds, {:>8} probes ({:>7} alias) in {adaptive_s:.3}s ({:?})",
        res.rounds.len(),
        human(res.probes()),
        human(rl.alias_probes),
        res.stop
    );
    for r in &res.rounds {
        println!(
            "    round {}: {:>7} probes ({:>6} alias), {:>5} new ifaces, \
             {:>4} routers, pairs +{} -{}",
            r.round,
            human(r.probes),
            human(r.alias_probes),
            human(r.new_interfaces),
            r.routers,
            r.alias_pairs_confirmed,
            r.alias_pairs_rejected,
        );
    }
    println!(
        "  router-level: {resolved} routers / {interfaces} observed interfaces \
         (collapse {:.3}), precision {prec_b:.3}, recall {rec_b:.3}, pairs +{} -{}",
        rl.collapse_ratio(),
        rl.pairs_confirmed,
        rl.pairs_rejected,
    );

    assert!(res.probes() <= budget, "adaptive arm over budget");
    assert!(
        resolved < interfaces,
        "alias stage must collapse the interface view: {resolved} routers \
         vs {interfaces} interfaces"
    );

    // Hand-rolled JSON: the workspace's serde is a no-op shim. Both
    // phases emit a "precision" key, so the tracked headline is the
    // worse of the two.
    let json = format!(
        "{{\n  \"bench\": \"alias_resolution_pps\",\n  \"scenario\": \"tiled x{tiles}, {routers} routers standalone, budget {budget} adaptive\",\n  \"standalone\": {{ \"probes\": {}, \"pps\": {pps:.0}, \"groups\": {}, \"precision\": {prec_a:.4}, \"recall\": {rec_a:.4} }},\n  \"adaptive\": {{ \"rounds\": {}, \"probes\": {}, \"alias_probes\": {}, \"interfaces\": {interfaces}, \"routers\": {resolved}, \"collapse_ratio\": {:.4}, \"precision\": {prec_b:.4}, \"recall\": {rec_b:.4}, \"pairs_confirmed\": {}, \"pairs_rejected\": {}, \"elapsed_s\": {adaptive_s:.6} }}\n}}\n",
        sets.probes,
        sets.groups.len(),
        res.rounds.len(),
        res.probes(),
        rl.alias_probes,
        rl.collapse_ratio(),
        rl.pairs_confirmed,
        rl.pairs_rejected,
    );
    let path = "BENCH_alias.json";
    std::fs::write(path, json).expect("write BENCH_alias.json");
    println!("  wrote {path}");

    if let Ok(min) = std::env::var("BENCH_ALIAS_MIN_PRECISION") {
        let min: f64 = min.parse().expect("BENCH_ALIAS_MIN_PRECISION not a number");
        let worst = prec_a.min(prec_b);
        if worst < min {
            eprintln!("FAIL: alias precision {worst:.3} below required {min:.2}");
            std::process::exit(1);
        }
        println!("  precision gate: {worst:.3} >= {min:.2} OK");
    }
}
