//! Vantage-diversity yield: the union of the three vantages against
//! the best single vantage at **equal per-vantage budget** — the
//! paper's central multi-vantage table as a benchmark. Writes
//! `BENCH_vantage.json` so the ratio is tracked PR over PR.
//!
//! All three vantages probe the *same* combined-z64 target set with
//! the same prober configuration (fill mode off, so every vantage
//! spends exactly `targets × max_ttl` probes) through the streaming
//! multi-vantage driver; the union is the deterministic cross-vantage
//! [`analysis::TraceSet`] merge. Everything runs in virtual time, so the
//! headline ratio is exactly reproducible — the CI gate is a hard
//! floor, not a noisy threshold.
//!
//! The probe depth defaults to `max_ttl = 12`, a mid-path budget: the
//! tiny simulated Internet is shallow enough that probing to TTL 16
//! lets *every* vantage exhaust the shared core, an artifact of sim
//! scale that buries the near-/mid-path diversity the paper's vantage
//! tables measure.
//!
//! Env knobs:
//! * `BENCH_VANTAGE_TILES` — topology tile count (default 4)
//! * `BENCH_VANTAGE_TARGETS` — target cap, stride-sampled (default 20000)
//! * `BENCH_VANTAGE_TTL` — per-target probe depth (default 12)
//! * `BENCH_VANTAGE_MIN_RATIO` — fail when union/best-single drops
//!   below this (the CI smoke gate sets 1.2: vantage diversity must
//!   keep paying)

use analysis::{
    stream_multi_vantage_parallel, vantage_contributions, vantage_jaccard, vantage_union_count,
};
use beholder_bench::fmt::human;
use simnet::config::TopologyConfig;
use std::sync::Arc;
use std::time::Instant;
use targets::{stride_sample, IidStrategy, TargetCatalog, TargetSet};
use yarrp6::sink::StreamConfig;
use yarrp6::YarrpConfig;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let tiles = env_u64("BENCH_VANTAGE_TILES", 4) as usize;
    let cap = env_u64("BENCH_VANTAGE_TARGETS", 20_000) as usize;
    let ttl = env_u64("BENCH_VANTAGE_TTL", 12) as u8;

    let topo = Arc::new(simnet::generate::generate(TopologyConfig::tiled(42, tiles)));
    let seed_catalog = seeds::sources::SeedCatalog::synthesize(&topo, 42);
    let catalog = TargetCatalog::build(&seed_catalog, IidStrategy::FixedIid);
    let full = catalog.get("combined-z64").expect("combined-z64 set");
    // Stride-sample the cap so the set spans the whole address space.
    let set = TargetSet::new("combined-z64", stride_sample(&full.addrs, cap));

    let yarrp = YarrpConfig {
        fill_mode: false, // equal budgets exactly: cost = targets × ttl
        max_ttl: ttl,
        ..YarrpConfig::default()
    };
    let vantages = [0u8, 1, 2];
    let per_vantage_budget = set.len() as u64 * yarrp.max_ttl as u64;

    let t0 = Instant::now();
    let sweep =
        stream_multi_vantage_parallel(&topo, &vantages, &set, &yarrp, &StreamConfig::default());
    let elapsed = t0.elapsed().as_secs_f64();

    let per = || sweep.per_vantage.iter().map(|(ts, _)| ts);
    let rows = vantage_contributions(per());
    let jac = vantage_jaccard(per());
    let union = vantage_union_count(per());
    let best = rows.iter().map(|r| r.interfaces).max().unwrap_or(0);
    let yield_ratio = union as f64 / best.max(1) as f64;

    println!(
        "vantage_yield: tiled x{tiles}, {} combined-z64 targets, {} probes/vantage, {elapsed:.3}s",
        human(set.len() as u64),
        human(per_vantage_budget)
    );
    for (r, (_, es)) in rows.iter().zip(&sweep.per_vantage) {
        println!(
            "  {:<9}: {:>7} interfaces ({:>5} exclusive, {:>5.1}% of union), {:>9} probes",
            r.vantage,
            human(r.interfaces),
            human(r.exclusive),
            100.0 * r.union_share,
            human(es.probes),
        );
    }
    for i in 0..rows.len() {
        for j in (i + 1)..rows.len() {
            println!(
                "  jaccard({}, {}) = {:.3}",
                rows[i].vantage, rows[j].vantage, jac[i][j]
            );
        }
    }
    println!(
        "  union: {} interfaces; best single: {}; union/best = {yield_ratio:.3}x",
        human(union),
        human(best)
    );

    // Hand-rolled JSON: the workspace's serde is a no-op shim.
    let mut per_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        per_json.push_str(&format!(
            "    {{ \"vantage\": \"{}\", \"interfaces\": {}, \"exclusive\": {}, \"union_share\": {:.4} }}{}\n",
            r.vantage,
            r.interfaces,
            r.exclusive,
            r.union_share,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"vantage_yield\",\n  \"scenario\": \"tiled x{tiles}, combined-z64, 3 vantages, {} targets, ttl {ttl}\",\n  \"per_vantage_probe_budget\": {per_vantage_budget},\n  \"per_vantage\": [\n{per_json}  ],\n  \"union_interfaces\": {union},\n  \"best_single_interfaces\": {best},\n  \"elapsed_s\": {elapsed:.6},\n  \"yield_ratio\": {yield_ratio:.3}\n}}\n",
        set.len(),
    );
    let path = "BENCH_vantage.json";
    std::fs::write(path, json).expect("write BENCH_vantage.json");
    println!("  wrote {path}");

    if let Ok(min) = std::env::var("BENCH_VANTAGE_MIN_RATIO") {
        let min: f64 = min.parse().expect("BENCH_VANTAGE_MIN_RATIO not a number");
        if yield_ratio < min {
            eprintln!("FAIL: union/best yield {yield_ratio:.3}x below required {min:.2}x");
            std::process::exit(1);
        }
        println!("  yield gate: {yield_ratio:.3}x >= {min:.2}x OK");
    }
}
