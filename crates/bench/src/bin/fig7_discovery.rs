//! Figure 7 — Address discovery power: unique interface addresses vs.
//! probes emitted (log-log) for each z64 target set from the EU-NET
//! vantage. This is the experiment behind the paper's headline: BGP-
//! guided breadth (caida) flattens early; random/6gen flatten after ~1M
//! probes; cdn-k32 and tum keep discovering linearly.

use beholder_bench::fmt::human;
use beholder_bench::Scenario;
use yarrp6::campaign::run_campaign;
use yarrp6::YarrpConfig;

fn main() {
    let sc = Scenario::load();
    println!(
        "Figure 7: discovery vs probes, EU-NET vantage, z64 sets (scale {:?})\n",
        sc.scale
    );
    let cfg = YarrpConfig::default();

    // Log-spaced sample points in probe count.
    let sets: Vec<_> = sc
        .targets
        .iter()
        .filter(|(n, _)| n.ends_with("-z64") && !n.starts_with("combined"))
        .map(|(_, s)| s)
        .collect();
    let max_probes = sets
        .iter()
        .map(|s| s.len() as u64 * cfg.max_ttl as u64)
        .max()
        .unwrap_or(0);
    let mut points = Vec::new();
    let mut p = 1_000u64;
    while p < max_probes * 2 {
        points.push(p);
        p = p * 10 / 4; // ~2.5x steps on the log axis
    }

    print!("{:>12}", "set \\ probes");
    for p in &points {
        print!(" {:>8}", human(*p));
    }
    println!();
    for set in sets {
        let res = run_campaign(&sc.topo, 0, set, &cfg);
        let curve = analysis::discovery_curve(&res.log);
        print!("{:>12}", set.name.trim_end_matches("-z64"));
        for &pt in &points {
            // Last curve value at or before pt probes.
            let v = curve
                .iter()
                .take_while(|(probes, _)| *probes <= pt)
                .map(|&(_, u)| u)
                .last()
                .unwrap_or(0);
            if pt > res.log.probes_sent && v == 0 {
                print!(" {:>8}", "-");
            } else {
                print!(" {:>8}", human(v));
            }
        }
        println!(
            "   (total {} probes, {} ifaces)",
            human(res.log.probes_sent),
            human(res.log.interface_addrs().len() as u64)
        );
    }
    println!("\nExpect: caida strong early, flattens hard; random/6gen flatten after their");
    println!("cluster mass is spent; cdn-k32 and tum keep rising to the largest totals.");
}
