//! Table 6 — Fill Mode Trial Results: probes, fills, interface addresses
//! and yield for maximum TTL ∈ {4, 8, 16, 32} against the CAIDA target
//! set (fill cap 32).

use beholder_bench::fmt::{header, human, row};
use beholder_bench::Scenario;
use yarrp6::campaign::run_campaign;
use yarrp6::YarrpConfig;

fn main() {
    let sc = Scenario::load();
    let set = sc.targets.get("caida-z64").expect("caida-z64");
    println!(
        "Table 6: Fill Mode Trial Results (caida-z64, {} targets, scale {:?})\n",
        set.len(),
        sc.scale
    );
    header(&[
        ("MaxTTL", 6),
        ("Probes", 10),
        ("Fills", 10),
        ("IntAddrs", 10),
        ("Yield%", 8),
    ]);
    let mut best = (0u8, 0.0f64);
    for max_ttl in [4u8, 8, 16, 32] {
        let cfg = YarrpConfig {
            max_ttl,
            fill_mode: true,
            fill_max_ttl: 32,
            ..Default::default()
        };
        let res = run_campaign(&sc.topo, 0, set, &cfg);
        let ints = res.log.interface_addrs().len() as u64;
        let yield_pct = 100.0 * ints as f64 / res.log.probes_sent.max(1) as f64;
        if yield_pct > best.1 {
            best = (max_ttl, yield_pct);
        }
        row(&[
            (max_ttl.to_string(), 6),
            (human(res.log.probes_sent), 10),
            (human(res.log.fills), 10),
            (human(ints), 10),
            (format!("{yield_pct:.1}"), 8),
        ]);
    }
    println!(
        "\nHighest yield at MaxTTL {} — the paper likewise selects 16 for its campaigns.",
        best.0
    );
}
