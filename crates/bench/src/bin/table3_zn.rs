//! Table 3 — ICMPv6 Trial Results by Transformation: probing the fdns
//! seed list under z40/z48/z56/z64 (fixediid synthesis). Reports probe
//! volume, non-Time-Exceeded ("Other ICMPv6") responses, unique
//! interface addresses, and addresses discovered *exclusively* at each
//! transformation level.

use beholder_bench::fmt::{header, human, row};
use beholder_bench::Scenario;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv6Addr;
use targets::synthesize::{synthesize, IidStrategy};
use yarrp6::campaign::run_campaign;
use yarrp6::YarrpConfig;

fn main() {
    let sc = Scenario::load();
    println!(
        "Table 3: ICMPv6 Trial Results by Transformation (fdns, scale {:?})\n",
        sc.scale
    );

    let levels = [40u8, 48, 56, 64];
    let mut per_level: BTreeMap<u8, (u64, u64, BTreeSet<Ipv6Addr>)> = BTreeMap::new();
    for &n in &levels {
        let prefixes = targets::transform::zn(&sc.seeds.fdns, n);
        let set = synthesize(format!("fdns-z{n}"), &prefixes, IidStrategy::FixedIid);
        let res = run_campaign(&sc.topo, 0, &set, &YarrpConfig::default());
        let addrs = res.log.interface_addrs();
        per_level.insert(n, (res.log.probes_sent, res.log.other_responses(), addrs));
    }

    header(&[
        ("zn", 5),
        ("Probes", 10),
        ("OtherICMPv6", 12),
        ("Addrs", 10),
        ("ExclAddrs", 10),
        ("Other/Probe", 12),
    ]);
    for &n in &levels {
        let (probes, other, addrs) = &per_level[&n];
        let exclusive = addrs
            .iter()
            .filter(|a| {
                per_level
                    .iter()
                    .all(|(&m, (_, _, other_addrs))| m == n || !other_addrs.contains(*a))
            })
            .count();
        row(&[
            (format!("/{n}"), 5),
            (human(*probes), 10),
            (human(*other), 12),
            (human(addrs.len() as u64), 10),
            (human(exclusive as u64), 10),
            (format!("{:.4}", *other as f64 / *probes.max(&1) as f64), 12),
        ]);
    }
    println!("\nExpect: probes and discovered addresses grow monotonically with n;");
    println!("z64 contributes a meaningful exclusive tail; other-ICMPv6 per probe rises with n");
    println!("(finer targets reach deeper into networks) — paper: 0.012 → 0.041.");
}
