//! Table 2 — TUM Seed Subsets: sizes of the collection's component sets
//! and the unique union (our synthetic analogues of rapid7-dnsany,
//! caida-dnsnames/traceroute/openipmap, and ct/alexa).

use beholder_bench::fmt::{header, human, row};
use beholder_bench::Scenario;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let sc = Scenario::load();
    println!("Table 2: TUM Seed Subsets (scale {:?})\n", sc.scale);
    // Rebuild the parts with the catalog's own derivation chain: the
    // catalog synthesizes fdns first, then tum from it; reusing the
    // catalog's fdns keeps the subsets consistent with `seeds.tum`.
    let mut rng = SmallRng::seed_from_u64(beholder_bench::MASTER_SEED ^ 0x70_75_6d);
    let parts = seeds::sources::tum_parts(&sc.topo, &sc.seeds.fdns, &mut rng);
    header(&[("Subset", 18), ("#Entries", 10)]);
    let mut total = 0u64;
    for p in &parts {
        row(&[(p.name.clone(), 18), (human(p.len() as u64), 10)]);
        total += p.len() as u64;
    }
    println!();
    row(&[("Total".into(), 18), (human(total), 10)]);
    row(&[
        ("Total Unique".into(), 18),
        (human(sc.seeds.tum.len() as u64), 10),
    ]);
    println!("\nExpect: heavy overlap between subsets — unique union well below the sum");
    println!("(paper: 80.1M summed, 5.6M unique).");
}
