//! Receive-side analysis throughput: records/second through trace
//! reconstruction and subnet inference, columnar pipeline vs the kept
//! map-based reference. Writes `BENCH_analysis.json` so the performance
//! trajectory is tracked PR over PR; set `BENCH_ANALYSIS_MIN_SPEEDUP`
//! (e.g. in CI) to fail the run when either speedup drops below the
//! threshold, and `BENCH_ANALYSIS_TILES` to shrink/grow the workload.
//!
//! Workload: real `combined-z64` campaigns (synthesized /64 targets —
//! like the paper's, almost all responses are router Time-Exceededs)
//! from all three vantages, tiled with target-shifted replicas to
//! production scale and shuffled into the unordered arrival a stateless
//! prober actually sees. Inference runs on the real per-vantage traces.

use analysis::{discover_by_path_div, ia_hack, reference, AsnResolver, PathDivParams, TraceSet};
use simnet::config::TopologyConfig;
use std::net::Ipv6Addr;
use std::sync::Arc;
use std::time::Instant;
use v6addr::Asn;
use yarrp6::campaign::run_campaign;
use yarrp6::{ProbeLog, YarrpConfig};

struct Measurement {
    elapsed_s: f64,
    per_s: f64,
}

/// Best-of-`reps` timing of `f`, rated against `units` items per call.
fn measure<T>(units: u64, reps: usize, mut f: impl FnMut() -> T) -> Measurement {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Measurement {
        elapsed_s: best,
        per_s: units as f64 / best,
    }
}

#[inline]
fn splitmix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn main() {
    let tiles: u128 = std::env::var("BENCH_ANALYSIS_TILES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let topo = Arc::new(simnet::generate::generate(TopologyConfig::tiny(7)));
    let seeds = seeds::sources::SeedCatalog::synthesize(&topo, 7);
    let catalog = targets::TargetCatalog::build(&seeds, targets::IidStrategy::FixedIid);
    let set = catalog.get("combined-z64").expect("combined-z64");
    let cfg = YarrpConfig::default();

    // One campaign per vantage. Inference is measured on these real
    // logs; reconstruction on the tiled + shuffled merge.
    let logs: Vec<ProbeLog> = (0..3u8)
        .map(|v| run_campaign(&topo, v, set, &cfg).log)
        .collect();
    let mut merged = ProbeLog {
        vantage: "ALL".into(),
        target_set: set.name.clone(),
        ..Default::default()
    };
    for log in &logs {
        for k in 0..tiles {
            merged.records.extend(log.records.iter().map(|r| {
                let mut r = *r;
                // Distinct destinations per tile; shared router
                // interfaces, as on a real backbone.
                r.target = Ipv6Addr::from(u128::from(r.target) ^ (k << 64));
                r
            }));
        }
    }
    // Fisher–Yates with a fixed seed: stateless responses arrive in no
    // useful order.
    let mut rng = 0x1badb002u64;
    for i in (1..merged.records.len()).rev() {
        let j = (splitmix(&mut rng) % (i as u64 + 1)) as usize;
        merged.records.swap(i, j);
    }
    let n_records = merged.records.len() as u64;
    let reps = 5;
    println!(
        "trace_analysis_pps: combined-z64 x{tiles} tiles, {} base targets, {n_records} records, best of {reps}",
        set.len()
    );

    // --- Trace reconstruction -----------------------------------------
    let recon_new = measure(n_records, reps, || TraceSet::from_log(&merged));
    let recon_ref = measure(n_records, reps, || reference::TraceSet::from_log(&merged));
    let recon_speedup = recon_new.per_s / recon_ref.per_s;
    println!(
        "  reconstruction: columnar {:>12.0} rec/s | reference {:>12.0} rec/s | {recon_speedup:.2}x",
        recon_new.per_s, recon_ref.per_s
    );

    // --- Subnet inference (path divergence + IA hack) ------------------
    let resolver = AsnResolver::new(
        topo.bgp.clone(),
        topo.rir_extra.clone(),
        &topo.asn_equivalences,
    );
    let params = PathDivParams::default();
    let vasns: Vec<Asn> = (0..3)
        .map(|v| topo.ases[topo.vantages[v].as_idx as usize].asn)
        .collect();
    let col_sets: Vec<TraceSet> = logs.iter().map(TraceSet::from_log).collect();
    let ref_sets: Vec<reference::TraceSet> =
        logs.iter().map(reference::TraceSet::from_log).collect();
    let infer_units: u64 = logs.iter().map(|l| l.records.len() as u64).sum();

    let infer_new = measure(infer_units, reps, || {
        col_sets
            .iter()
            .zip(&vasns)
            .map(|(ts, &vasn)| {
                discover_by_path_div(ts, &resolver, vasn, &params).len() + ia_hack(ts).len()
            })
            .sum::<usize>()
    });
    let infer_ref = measure(infer_units, reps, || {
        ref_sets
            .iter()
            .zip(&vasns)
            .map(|(ts, &vasn)| {
                reference::discover_by_path_div(ts, &resolver, vasn, &params).len()
                    + reference::ia_hack(ts).len()
            })
            .sum::<usize>()
    });
    let infer_speedup = infer_new.per_s / infer_ref.per_s;
    println!(
        "  subnet infer  : columnar {:>12.0} rec/s | reference {:>12.0} rec/s | {infer_speedup:.2}x",
        infer_new.per_s, infer_ref.per_s
    );

    // Sanity: the two pipelines agree (the golden tests pin this; the
    // bench double-checks the exact workload it timed).
    for ((ts, rs), &vasn) in col_sets.iter().zip(&ref_sets).zip(&vasns) {
        assert_eq!(
            discover_by_path_div(ts, &resolver, vasn, &params),
            reference::discover_by_path_div(rs, &resolver, vasn, &params),
            "pipelines diverged on the benched workload"
        );
    }

    // Hand-rolled JSON: the workspace's serde is a no-op shim.
    let json = format!(
        "{{\n  \"bench\": \"trace_analysis_pps\",\n  \"scenario\": \"tiny combined-z64 x{tiles}\",\n  \"targets\": {},\n  \"records\": {},\n  \"reconstruction\": {{\n    \"columnar\": {{ \"elapsed_s\": {:.6}, \"records_per_s\": {:.0} }},\n    \"reference\": {{ \"elapsed_s\": {:.6}, \"records_per_s\": {:.0} }},\n    \"speedup\": {:.3}\n  }},\n  \"subnet_inference\": {{\n    \"columnar\": {{ \"elapsed_s\": {:.6}, \"records_per_s\": {:.0} }},\n    \"reference\": {{ \"elapsed_s\": {:.6}, \"records_per_s\": {:.0} }},\n    \"speedup\": {:.3}\n  }}\n}}\n",
        set.len() as u128 * tiles,
        n_records,
        recon_new.elapsed_s,
        recon_new.per_s,
        recon_ref.elapsed_s,
        recon_ref.per_s,
        recon_speedup,
        infer_new.elapsed_s,
        infer_new.per_s,
        infer_ref.elapsed_s,
        infer_ref.per_s,
        infer_speedup,
    );
    let path = "BENCH_analysis.json";
    std::fs::write(path, json).expect("write BENCH_analysis.json");
    println!("  wrote {path}");

    if let Ok(min) = std::env::var("BENCH_ANALYSIS_MIN_SPEEDUP") {
        let min: f64 = min
            .parse()
            .expect("BENCH_ANALYSIS_MIN_SPEEDUP not a number");
        let worst = recon_speedup.min(infer_speedup);
        if worst < min {
            eprintln!("FAIL: speedup {worst:.2}x below required {min:.2}x");
            std::process::exit(1);
        }
        println!("  speedup gate: {worst:.2}x >= {min:.2}x OK");
    }
}
