//! Sharded-store throughput and the delta-sweep economics: times the
//! flat [`TraceSet::merge_all`] against the sharded, work-queue
//! parallel [`ShardedTraceSet::merge_all`] on a multi-tile topology's
//! multi-vantage campaign sets, then the persistent snapshot's
//! write/read round trip — asserting byte-determinism and exactness on
//! the benched workload — and finally (gated) the delta-seeding
//! contract: a sweep against an unchanged snapshot must probe strictly
//! fewer targets than the fresh sweep at the same discovered-interface
//! count. Writes `BENCH_snapshot.json` so the trajectory is tracked PR
//! over PR.
//!
//! Env knobs:
//! * `BENCH_SNAPSHOT_TILES` — topology tile count (default 6; CI's
//!   smoke gate sets 4 — the speedup floor assumes at least 4)
//! * `BENCH_SNAPSHOT_SHARDS` — shard count (default 8)
//! * `BENCH_SNAPSHOT_SETS` — campaign sets to merge (default 12)
//! * `BENCH_SNAPSHOT_REPS` — best-of repetitions (default 3)
//! * `BENCH_SNAPSHOT_MIN_SPEEDUP` — fail when sharded/flat `merge_all`
//!   throughput falls below this (the CI regression gate)
//! * `BENCH_SNAPSHOT_DELTA_GATE` — when set (any value), run the
//!   delta-seeding contract check and fail on violation

use analysis::{read_sharded_snapshot, write_sharded_snapshot, ShardedTraceSet, TraceSet};
use beholder::adaptive::{
    run_adaptive_delta, run_adaptive_parallel, AdaptiveConfig, DeltaSeedConfig,
};
use simnet::config::TopologyConfig;
use std::sync::Arc;
use std::time::Instant;
use yarrp6::campaign::{try_run_campaigns_parallel, CampaignSpec};
use yarrp6::YarrpConfig;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

struct Measurement {
    elapsed_s: f64,
    per_s: f64,
}

/// Best-of-`reps` timing of `f`, rated against `units` items per call.
fn measure<T>(units: u64, reps: usize, mut f: impl FnMut() -> T) -> Measurement {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Measurement {
        elapsed_s: best,
        per_s: units as f64 / best,
    }
}

fn main() {
    let tiles = env_usize("BENCH_SNAPSHOT_TILES", 6).max(1);
    let shards = env_usize("BENCH_SNAPSHOT_SHARDS", 8).max(1);
    let n_sets = env_usize("BENCH_SNAPSHOT_SETS", 12).max(2);
    let reps = env_usize("BENCH_SNAPSHOT_REPS", 3).max(1);

    let topo = Arc::new(simnet::generate::generate(TopologyConfig::tiled(42, tiles)));
    let seeds = seeds::sources::SeedCatalog::synthesize(&topo, 42);
    let catalog = targets::TargetCatalog::build(&seeds, targets::IidStrategy::FixedIid);
    let set = catalog.get("combined-z64").expect("combined-z64");
    let cfg = YarrpConfig::default();

    // The merge workload: the same set probed from every vantage,
    // several times over (longitudinal accumulation — the sharded
    // store's reason to exist).
    let specs: Vec<CampaignSpec<'_>> = (0..n_sets)
        .map(|i| CampaignSpec {
            vantage_idx: (i % 3) as u8,
            set,
            cfg,
        })
        .collect();
    let flats: Vec<TraceSet> = try_run_campaigns_parallel(&topo, &specs)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .map(|run| TraceSet::from_log(&run.log))
        .collect();
    let shardeds: Vec<ShardedTraceSet> = flats
        .iter()
        .map(|f| ShardedTraceSet::from_set(f, shards))
        .collect();
    let n_traces: u64 = flats.iter().map(|f| f.len() as u64).sum();
    println!(
        "shard_snapshot_pps: tiled({tiles}) combined-z64, {} targets x {n_sets} campaigns \
         = {n_traces} traces, {shards} shards, best of {reps}",
        set.len()
    );

    // --- Flat merge_all (single-threaded reference) -------------------
    let flat = measure(n_traces, reps, || TraceSet::merge_all(&flats));
    println!(
        "  flat merge_all    : {n_traces:>8} traces in {:.3}s = {:>12.0} traces/s",
        flat.elapsed_s, flat.per_s
    );

    // --- Sharded merge_all (per-shard fan-out) ------------------------
    let sharded = measure(n_traces, reps, || ShardedTraceSet::merge_all(&shardeds));
    println!(
        "  sharded merge_all : {n_traces:>8} traces in {:.3}s = {:>12.0} traces/s",
        sharded.elapsed_s, sharded.per_s
    );
    let speedup = sharded.per_s / flat.per_s;
    println!("  speedup           : {speedup:.2}x");

    // Exactness on the benched workload: the shard fan-out merge folds
    // back to the flat merge, bit for bit, under canonical ids.
    let merged = ShardedTraceSet::merge_all(&shardeds);
    assert!(
        merged.to_trace_set().canonical() == TraceSet::merge_all(&flats).canonical(),
        "sharded merge_all diverged from the flat reference"
    );

    // --- Snapshot write / read round trip -----------------------------
    let dir = std::env::temp_dir().join(format!("beholder-bench-snap-{}", std::process::id()));
    let bytes_on_disk = {
        let manifest = write_sharded_snapshot(&dir, &merged).expect("snapshot write");
        manifest.segments.iter().map(|s| s.len).sum::<u64>()
    };
    let write = measure(bytes_on_disk, reps, || {
        write_sharded_snapshot(&dir, &merged).expect("snapshot write")
    });
    let read = measure(bytes_on_disk, reps, || {
        read_sharded_snapshot(&dir).expect("snapshot read")
    });
    println!(
        "  snapshot write    : {bytes_on_disk:>8} B in {:.4}s = {:>12.0} B/s",
        write.elapsed_s, write.per_s
    );
    println!(
        "  snapshot read     : {bytes_on_disk:>8} B in {:.4}s = {:>12.0} B/s",
        read.elapsed_s, read.per_s
    );
    // Byte-determinism: a second directory is file-for-file identical.
    let dir2 = std::env::temp_dir().join(format!("beholder-bench-snap2-{}", std::process::id()));
    write_sharded_snapshot(&dir2, &merged).expect("snapshot write");
    for entry in std::fs::read_dir(&dir).expect("read_dir") {
        let name = entry.expect("entry").file_name();
        assert_eq!(
            std::fs::read(dir.join(&name)).unwrap(),
            std::fs::read(dir2.join(&name)).unwrap(),
            "snapshot write of {name:?} is not byte-deterministic"
        );
    }
    let back = read_sharded_snapshot(&dir).expect("snapshot read");
    assert!(back == merged, "snapshot round trip diverged");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);

    // --- Delta-seeding contract (gated: it runs two adaptive sweeps) --
    let delta_gate = std::env::var("BENCH_SNAPSHOT_DELTA_GATE").is_ok();
    let (mut delta_fresh_targets, mut delta_targets) = (0u64, 0u64);
    if delta_gate {
        let z64 = targets::zn(&seeds.caida, 64);
        let initial =
            targets::synthesize::synthesize("bench-r0", &z64, targets::IidStrategy::FixedIid);
        let acfg = AdaptiveConfig {
            vantages: vec![0, 2],
            probe_budget: 2_000_000,
            round_targets: 4_096,
            shards: 2,
            max_rounds: 3,
            min_yield_per_kprobes: 0.5,
            patience: 1,
            delta_seeding: Some(DeltaSeedConfig { canary_targets: 64 }),
            ..AdaptiveConfig::default()
        };
        let fresh = run_adaptive_parallel(&topo, &initial, &acfg);
        let prior = ShardedTraceSet::from_set(&fresh.merged_traces(), shards);
        let delta = run_adaptive_delta(&topo, &initial, &acfg, &prior, true);
        delta_fresh_targets = fresh.rounds.iter().map(|r| r.targets).sum();
        delta_targets = delta.rounds.iter().map(|r| r.targets).sum();
        println!(
            "  delta gate        : fresh {} targets / {} ifaces vs delta {} targets / {} ifaces",
            delta_fresh_targets,
            fresh.unique_interfaces(),
            delta_targets,
            delta.unique_interfaces()
        );
        if delta_targets >= delta_fresh_targets {
            eprintln!(
                "FAIL: delta sweep against an unchanged snapshot probed {delta_targets} \
                 targets, not fewer than the fresh sweep's {delta_fresh_targets}"
            );
            std::process::exit(1);
        }
        if delta.unique_interfaces() != fresh.unique_interfaces() {
            eprintln!(
                "FAIL: delta sweep found {} unique interfaces, fresh found {}",
                delta.unique_interfaces(),
                fresh.unique_interfaces()
            );
            std::process::exit(1);
        }
        println!("  delta gate        : OK (strictly fewer targets, equal discovery)");
    }

    // Hand-rolled JSON: the workspace's serde is a no-op shim.
    let json = format!(
        "{{\n  \"bench\": \"shard_snapshot_pps\",\n  \"scenario\": \"tiled({tiles}) combined-z64, {n_sets} campaigns, {shards} shards\",\n  \"traces\": {n_traces},\n  \"flat\": {{ \"elapsed_s\": {:.6}, \"traces_per_s\": {:.0} }},\n  \"sharded\": {{ \"elapsed_s\": {:.6}, \"traces_per_s\": {:.0} }},\n  \"speedup\": {:.3},\n  \"snapshot_bytes\": {bytes_on_disk},\n  \"snapshot_write_s\": {:.6},\n  \"snapshot_read_s\": {:.6},\n  \"delta_fresh_targets\": {delta_fresh_targets},\n  \"delta_targets\": {delta_targets}\n}}\n",
        flat.elapsed_s,
        flat.per_s,
        sharded.elapsed_s,
        sharded.per_s,
        speedup,
        write.elapsed_s,
        read.elapsed_s,
    );
    let path = "BENCH_snapshot.json";
    std::fs::write(path, json).expect("write BENCH_snapshot.json");
    println!("  wrote {path}");

    if let Ok(min) = std::env::var("BENCH_SNAPSHOT_MIN_SPEEDUP") {
        let min: f64 = min
            .parse()
            .expect("BENCH_SNAPSHOT_MIN_SPEEDUP not a number");
        if speedup < min {
            eprintln!("FAIL: sharded/flat merge_all {speedup:.2}x below required {min:.2}x");
            std::process::exit(1);
        }
        println!("  speedup gate      : {speedup:.2}x >= {min:.2}x OK");
    }
}
