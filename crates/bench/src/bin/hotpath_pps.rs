//! End-to-end hot-path throughput: probes/second through the full
//! probe → engine → decode → record pipeline on the `tiny` scenario,
//! for both the template/buffer-reuse hot path and the naive
//! build-per-probe reference. Writes `BENCH_hotpath.json` so the
//! performance trajectory is tracked PR over PR.

use simnet::config::TopologyConfig;
use simnet::{Engine, Topology};
use std::net::Ipv6Addr;
use std::sync::Arc;
use std::time::Instant;
use yarrp6::yarrp::{self, YarrpConfig};

struct Measurement {
    probes: u64,
    elapsed_s: f64,
    pps: f64,
}

fn measure<F: FnMut(&mut Engine) -> u64>(
    topo: &Arc<Topology>,
    reps: usize,
    mut f: F,
) -> Measurement {
    let mut best_pps = 0.0f64;
    let mut probes = 0u64;
    let mut best_elapsed = f64::INFINITY;
    for _ in 0..reps {
        let mut engine = Engine::new(topo.clone());
        let t0 = Instant::now();
        let n = f(&mut engine);
        let dt = t0.elapsed().as_secs_f64();
        let pps = n as f64 / dt;
        if pps > best_pps {
            best_pps = pps;
            best_elapsed = dt;
            probes = n;
        }
    }
    Measurement {
        probes,
        elapsed_s: best_elapsed,
        pps: best_pps,
    }
}

fn main() {
    let topo = Arc::new(simnet::generate::generate(TopologyConfig::tiny(7)));
    let targets: Vec<Ipv6Addr> = topo.hosts().map(|(a, _)| a).collect();
    let cfg = YarrpConfig::default();
    let reps = 5;
    println!(
        "hotpath_pps: tiny scenario, {} targets x {} TTLs, best of {reps} runs",
        targets.len(),
        cfg.max_ttl
    );

    let hot = measure(&topo, reps, |e| {
        yarrp::run(e, 0, &targets, &cfg).probes_sent
    });
    println!(
        "  hot path   : {:>9} probes in {:.3}s  = {:>12.0} pps",
        hot.probes, hot.elapsed_s, hot.pps
    );

    let naive = measure(&topo, reps, |e| {
        yarrp::run_reference(e, 0, &targets, &cfg).probes_sent
    });
    println!(
        "  naive path : {:>9} probes in {:.3}s  = {:>12.0} pps",
        naive.probes, naive.elapsed_s, naive.pps
    );

    let speedup = hot.pps / naive.pps;
    println!("  speedup    : {speedup:.2}x");

    // Hand-rolled JSON: the workspace's serde is a no-op shim.
    let json = format!(
        "{{\n  \"bench\": \"hotpath_pps\",\n  \"scenario\": \"tiny\",\n  \"targets\": {},\n  \"max_ttl\": {},\n  \"probes\": {},\n  \"hot\": {{ \"elapsed_s\": {:.6}, \"pps\": {:.0} }},\n  \"naive\": {{ \"elapsed_s\": {:.6}, \"pps\": {:.0} }},\n  \"speedup\": {:.3}\n}}\n",
        targets.len(),
        cfg.max_ttl,
        hot.probes,
        hot.elapsed_s,
        hot.pps,
        naive.elapsed_s,
        naive.pps,
        speedup
    );
    let path = "BENCH_hotpath.json";
    std::fs::write(path, json).expect("write BENCH_hotpath.json");
    println!("  wrote {path}");
}
