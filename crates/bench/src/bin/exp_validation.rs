//! §5.3 Validation — production-system emulation: an Ark/Atlas-style
//! strategy (sequential ICMP-Paris to ::1 + random per BGP prefix, low
//! rate) versus this work's strategy (Yarrp6 over the synthesized target
//! sets). The paper's headline: an order of magnitude more interfaces
//! from a single vantage in a day, with only ~2x the traces.

use beholder_bench::fmt::{header, human, row};
use beholder_bench::Scenario;
use simnet::Engine;
use std::collections::BTreeSet;
use std::net::Ipv6Addr;
use targets::TargetSet;
use yarrp6::campaign::run_campaign;
use yarrp6::sequential::{self, SequentialConfig};
use yarrp6::YarrpConfig;

fn main() {
    let sc = Scenario::load();
    println!(
        "Validation vs production-style mapping (scale {:?})\n",
        sc.scale
    );
    header(&[
        ("System", 22),
        ("Targets", 9),
        ("Probes", 9),
        ("IntAddrs", 9),
        ("Ints/Probe", 11),
    ]);

    // Ark-style: sequential ICMP-Paris to the caida set from all three
    // vantages (production platforms are many weak vantages; three is
    // what we have — the per-vantage discovery overlaps heavily).
    let caida = sc.targets.get("caida-z64").expect("caida-z64");
    let mut ark_ifaces: BTreeSet<Ipv6Addr> = BTreeSet::new();
    let mut ark_probes = 0u64;
    for v in 0..3u8 {
        let cfg = SequentialConfig {
            rate_pps: 100,
            ..Default::default()
        };
        let mut e = Engine::new(sc.topo.clone());
        let log = sequential::run(&mut e, v, &caida.addrs, &cfg);
        ark_probes += log.probes_sent;
        ark_ifaces.extend(log.interface_addrs());
    }
    row(&[
        ("ark-style (3 vps)".into(), 22),
        (human(3 * caida.len() as u64), 9),
        (human(ark_probes), 9),
        (human(ark_ifaces.len() as u64), 9),
        (
            format!("{:.4}", ark_ifaces.len() as f64 / ark_probes.max(1) as f64),
            11,
        ),
    ]);

    // This work: Yarrp6 over the two most powerful sets from ONE vantage.
    let mut our_ifaces: BTreeSet<Ipv6Addr> = BTreeSet::new();
    let mut our_probes = 0u64;
    let mut our_targets = 0u64;
    for name in ["cdn-k32-z64", "tum-z64"] {
        let set: &TargetSet = sc.targets.get(name).unwrap();
        let res = run_campaign(&sc.topo, 0, set, &YarrpConfig::default());
        our_probes += res.log.probes_sent;
        our_targets += set.len() as u64;
        our_ifaces.extend(res.log.interface_addrs());
    }
    row(&[
        ("yarrp6 (1 vp, 2 sets)".into(), 22),
        (human(our_targets), 9),
        (human(our_probes), 9),
        (human(our_ifaces.len() as u64), 9),
        (
            format!("{:.4}", our_ifaces.len() as f64 / our_probes.max(1) as f64),
            11,
        ),
    ]);

    let factor = our_ifaces.len() as f64 / ark_ifaces.len().max(1) as f64;
    println!(
        "\nyarrp6-from-one-vantage discovered {factor:.1}x the interfaces of the ark-style system."
    );
    println!("Expect: a large multiple (paper: ~10x with ~2x the traces).");
}
