//! Table 1 — Seed List Properties: size and addr6 IID classification of
//! every seed list.

use beholder_bench::fmt::{human, pct};
use beholder_bench::Scenario;
use v6addr::IidClass;

fn main() {
    let sc = Scenario::load();
    println!("Table 1: Seed List Properties (scale: {:?})\n", sc.scale);
    beholder_bench::fmt::header(&[
        ("Name", 10),
        ("#Entries", 10),
        ("#Addrs", 10),
        ("Random", 8),
        ("LowByte", 8),
        ("EUI-64", 8),
    ]);
    let mut lists = sc.seeds.named();
    lists.push(("combined", &sc.seeds.combined));
    for (name, list) in lists {
        let census = list.iid_census();
        let frac = |c| {
            if census.total == 0 {
                "N/A".to_string() // CDN aggregates: prefixes only
            } else {
                pct(census.fraction(c))
            }
        };
        beholder_bench::fmt::row(&[
            (name.to_string(), 10),
            (human(list.len() as u64), 10),
            (human(census.total), 10),
            (frac(IidClass::Random), 8),
            (frac(IidClass::LowByte), 8),
            (frac(IidClass::Eui64), 8),
        ]);
    }
    println!(
        "\n(CDN rows are kIP prefix aggregates; per the paper their IIDs are 'All random' / N/A.)"
    );
}
