//! Table 7 — Results of aggregate Yarrp6 campaigns from three vantages,
//! 18 target sets each (9 sources × z48/z64), reverse-sorted by
//! interface yield. Also prints the ALL / per-vantage summary rows.

use analysis::metrics::CampaignMetrics;
use beholder_bench::fmt::{header, human, pct, row};
use beholder_bench::Scenario;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv6Addr;
use targets::TargetSet;
use yarrp6::campaign::{run_campaign, CampaignSpec};
use yarrp6::{ProbeLog, YarrpConfig};

struct SetResult {
    name: String,
    probes: u64,
    targets: u64,
    metrics: CampaignMetrics,
    ifaces: BTreeSet<Ipv6Addr>,
    pfxs: BTreeSet<v6addr::Ipv6Prefix>,
    asns: BTreeSet<u32>,
}

fn reduce(name: &str, logs: Vec<ProbeLog>, targets: u64, bgp: &v6addr::BgpTable) -> SetResult {
    // Merge the three vantage logs into one aggregate campaign log.
    let mut merged = ProbeLog {
        vantage: "ALL".into(),
        target_set: name.into(),
        ..Default::default()
    };
    for log in logs {
        merged.probes_sent += log.probes_sent;
        merged.traces += log.traces;
        merged.fills += log.fills;
        merged.duration_us = merged.duration_us.max(log.duration_us);
        merged.records.extend(log.records);
    }
    let metrics = CampaignMetrics::compute(&merged, bgp);
    let ifaces = merged.interface_addrs();
    let mut pfxs = BTreeSet::new();
    let mut asns = BTreeSet::new();
    for &a in &ifaces {
        if let Some((p, asn)) = bgp.lookup(a) {
            pfxs.insert(p);
            asns.insert(asn.0);
        }
    }
    SetResult {
        name: name.to_string(),
        probes: merged.probes_sent,
        targets,
        metrics,
        ifaces,
        pfxs,
        asns,
    }
}

fn main() {
    let sc = Scenario::load();
    println!(
        "Table 7: Aggregate Yarrp6 campaign results, 3 vantages x 18 target sets (scale {:?})\n",
        sc.scale
    );
    let cfg = YarrpConfig::default();
    let sets: Vec<&TargetSet> = sc
        .targets
        .iter()
        .filter(|(n, _)| !n.starts_with("combined"))
        .map(|(_, s)| s)
        .collect();

    // Per-vantage cumulative interface sets for the summary rows.
    type VantageRow = (std::sync::Arc<str>, u64, BTreeSet<Ipv6Addr>, Vec<f64>);
    let mut per_vantage: Vec<VantageRow> = sc
        .topo
        .vantages
        .iter()
        .map(|v| (v.name.clone(), 0u64, BTreeSet::new(), Vec::new()))
        .collect();

    let mut results: Vec<SetResult> = Vec::new();
    for set in &sets {
        // The three vantages of one set run in parallel.
        let specs: Vec<CampaignSpec> = (0..3u8)
            .map(|v| CampaignSpec {
                vantage_idx: v,
                set,
                cfg,
            })
            .collect();
        let outs: Vec<_> = yarrp6::campaign::try_run_campaigns_parallel(&sc.topo, &specs)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
            .collect();
        let mut logs = Vec::new();
        for (v, out) in outs.into_iter().enumerate() {
            per_vantage[v].1 += out.log.probes_sent;
            per_vantage[v].2.extend(out.log.interface_addrs());
            let m = CampaignMetrics::compute(&out.log, &sc.topo.bgp);
            per_vantage[v].3.push(m.reach_frac);
            logs.push(out.log);
        }
        results.push(reduce(&set.name, logs, set.len() as u64, &sc.topo.bgp));
        let _ = run_campaign; // (kept for doc discoverability)
    }

    // Exclusive features across per-set unions.
    let mut iface_count: BTreeMap<Ipv6Addr, u32> = BTreeMap::new();
    let mut pfx_count: BTreeMap<v6addr::Ipv6Prefix, u32> = BTreeMap::new();
    let mut asn_count: BTreeMap<u32, u32> = BTreeMap::new();
    for r in &results {
        for &a in &r.ifaces {
            *iface_count.entry(a).or_default() += 1;
        }
        for &p in &r.pfxs {
            *pfx_count.entry(p).or_default() += 1;
        }
        for &a in &r.asns {
            *asn_count.entry(a).or_default() += 1;
        }
    }

    // Summary rows.
    header(&[
        ("Campaign", 16),
        ("Probes", 9),
        ("Targets", 9),
        ("IntAddrs", 9),
        ("ExclInt", 8),
        ("IntPfx", 7),
        ("ExclPfx", 8),
        ("IntASN", 7),
        ("ExclASN", 8),
        ("Reach%", 7),
        ("PathLen", 9),
        ("EUI64", 7),
        ("EUI%", 6),
        ("Offset", 9),
    ]);
    let all_ifaces: BTreeSet<Ipv6Addr> = results
        .iter()
        .flat_map(|r| r.ifaces.iter().copied())
        .collect();
    let all_probes: u64 = results.iter().map(|r| r.probes).sum();
    row(&[
        ("ALL".into(), 16),
        (human(all_probes), 9),
        ("".into(), 9),
        (human(all_ifaces.len() as u64), 9),
        ("".into(), 8),
        ("".into(), 7),
        ("".into(), 8),
        ("".into(), 7),
        ("".into(), 8),
        ("".into(), 7),
        ("".into(), 9),
        ("".into(), 7),
        ("".into(), 6),
        ("".into(), 9),
    ]);
    for (name, probes, ifaces, reach) in &per_vantage {
        let mean_reach = reach.iter().sum::<f64>() / reach.len().max(1) as f64;
        row(&[
            (name.to_string(), 16),
            (human(*probes), 9),
            ("".into(), 9),
            (human(ifaces.len() as u64), 9),
            ("".into(), 8),
            ("".into(), 7),
            ("".into(), 8),
            ("".into(), 7),
            ("".into(), 8),
            (pct(mean_reach), 7),
            ("".into(), 9),
            ("".into(), 7),
            ("".into(), 6),
            ("".into(), 9),
        ]);
    }
    println!();

    // Per-set rows, reverse sorted by interface yield.
    results.sort_by_key(|r| std::cmp::Reverse(r.ifaces.len()));
    for r in &results {
        let excl_i = r.ifaces.iter().filter(|a| iface_count[a] == 1).count();
        let excl_p = r.pfxs.iter().filter(|p| pfx_count[p] == 1).count();
        let excl_a = r.asns.iter().filter(|a| asn_count[a] == 1).count();
        let m = &r.metrics;
        row(&[
            (r.name.clone(), 16),
            (human(r.probes), 9),
            (human(r.targets), 9),
            (human(r.ifaces.len() as u64), 9),
            (human(excl_i as u64), 8),
            (human(r.pfxs.len() as u64), 7),
            (human(excl_p as u64), 8),
            (human(r.asns.len() as u64), 7),
            (human(excl_a as u64), 8),
            (pct(m.reach_frac), 7),
            (format!("{} ({})", m.path_len_p95, m.path_len_median), 9),
            (human(m.eui64_addrs), 7),
            (pct(m.eui64_frac), 6),
            (
                format!("{} ({})", m.eui64_offset_p5, m.eui64_offset_median),
                9,
            ),
        ]);
    }
    println!("\nExpect (paper shapes): cdn-k32-z64 and tum-z64 lead in interfaces and exclusives;");
    println!("their EUI-64 shares are large with offsets at/near the last hop (CPE clouds);");
    println!("caida/fiebig trail despite caida's breadth; z64 beats z48 per source.");
}
