//! Figure 8 — Subnets inferred by path divergence: (a) CDF of inferred
//! minimum prefix lengths per z64 target set, (b) counts by length,
//! including the /64 "IA hack" discoveries.

use analysis::{discover_by_path_div, ia_hack, PathDivParams, TraceSet};
use beholder_bench::fmt::human;
use beholder_bench::Scenario;
use yarrp6::campaign::{try_run_campaigns_parallel, CampaignSpec};
use yarrp6::YarrpConfig;

const POINTS: [u8; 11] = [24, 28, 32, 36, 40, 44, 48, 52, 56, 60, 64];

fn main() {
    let sc = Scenario::load();
    println!(
        "Figure 8: subnets inferred by path divergence (scale {:?})\n",
        sc.scale
    );
    let cfg = YarrpConfig::default();
    let resolver = sc.resolver();
    let params = PathDivParams::default();

    let sets: Vec<_> = sc
        .targets
        .iter()
        .filter(|(n, _)| n.ends_with("-z64") && !n.starts_with("random"))
        .map(|(_, s)| s)
        .collect();

    println!("(a) CDF of inferred minimum prefix lengths; (b) counts and IA-hack /64s\n");
    print!("{:>12}", "set \\ len<=");
    for p in POINTS {
        print!(" {p:>5}");
    }
    println!(" {:>8} {:>8}", "total", "IA/64s");

    let mut grand_total = 0u64;
    let mut grand_ia = 0u64;
    for set in sets {
        // All three vantages contribute traces (the paper pools 45.8M).
        let specs: Vec<CampaignSpec> = (0..3u8)
            .map(|v| CampaignSpec {
                vantage_idx: v,
                set,
                cfg,
            })
            .collect();
        let outs: Vec<_> = try_run_campaigns_parallel(&sc.topo, &specs)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
            .collect();
        // Traces are analyzed per vantage (paths from different vantages
        // must not be mixed into one trace); candidate sets are unioned.
        let mut cands: Vec<analysis::CandidateSubnet> = Vec::new();
        let mut ia: Vec<analysis::CandidateSubnet> = Vec::new();
        for (v, out) in outs.into_iter().enumerate() {
            let ts = TraceSet::from_log(&out.log);
            let vantage_asn = sc.topo.ases[sc.topo.vantages[v].as_idx as usize].asn;
            cands.extend(discover_by_path_div(&ts, &resolver, vantage_asn, &params));
            ia.extend(ia_hack(&ts));
        }
        cands.sort_by_key(|c| (c.prefix.base_word(), c.prefix.len()));
        cands.dedup();
        ia.sort_by_key(|c| c.prefix.base_word());
        ia.dedup();

        // CDF over divergence-inferred lengths.
        let mut lens: Vec<u8> = cands.iter().map(|c| c.prefix.len()).collect();
        lens.sort_unstable();
        print!("{:>12}", set.name.trim_end_matches("-z64"));
        for p in POINTS {
            let frac = if lens.is_empty() {
                0.0
            } else {
                lens.partition_point(|&l| l <= p) as f64 / lens.len() as f64
            };
            print!(" {frac:>5.2}");
        }
        println!(
            " {:>8} {:>8}",
            human(lens.len() as u64),
            human(ia.len() as u64)
        );
        grand_total += lens.len() as u64;
        grand_ia += ia.len() as u64;
    }
    println!(
        "\nCombined candidates: {}; combined IA-hack /64 discoveries: {}",
        human(grand_total),
        human(grand_ia)
    );
    println!("Expect: per-set CDFs track the target sets' DPL distributions (Fig 3a);");
    println!("cdn sets cap out at the kIP aggregate lengths; DNS-based sets reach /64.");
}
