//! Discovery yield under **vantage churn**: the adaptive loop on a
//! fault-injected simnet (one of three vantages permanently lost
//! mid-run, plus a flapping transit link) versus the identical
//! fault-free run. Writes `BENCH_churn.json` so the robustness
//! trajectory is tracked PR over PR.
//!
//! Both arms share the topology seed, the seed catalog and the
//! adaptive configuration (three vantages, vantage budgeting on, fill
//! mode off for exact probe accounting); the faulty arm additionally
//! carries a [`simnet::FaultSchedule`]. The supervisor retries
//! blacked-out campaigns with virtual-time backoff, declares the
//! unreachable vantage dead, and the budgeter reallocates its share —
//! the bench's headline is how much of the fault-free union interface
//! yield survives all that.
//!
//! Env knobs:
//! * `BENCH_CHURN_TILES`   — topology tile count (default 4)
//! * `BENCH_CHURN_BUDGET`  — total probe budget (default 400000)
//! * `BENCH_CHURN_ROUNDS`  — adaptive round cap (default 6)
//! * `BENCH_CHURN_KILL_US` — virtual µs at which vantage 1 goes dark
//!   for good (default 2000000: mid round 0)
//! * `BENCH_CHURN_MIN_RATIO` — fail when faulty/fault-free unique-
//!   interface yield drops below this (the CI gate sets 0.8, the
//!   acceptance bar for losing one vantage of three)

use beholder::adaptive::{run_adaptive_parallel, AdaptiveConfig};
use beholder_bench::fmt::human;
use seeds::feedback::FeedbackParams;
use simnet::config::TopologyConfig;
use simnet::topology::RouterId;
use simnet::FaultSchedule;
use std::sync::Arc;
use std::time::Instant;
use targets::{synthesize::synthesize, IidStrategy};
use yarrp6::campaign::RetryPolicy;
use yarrp6::YarrpConfig;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let tiles = env_u64("BENCH_CHURN_TILES", 4) as usize;
    let budget = env_u64("BENCH_CHURN_BUDGET", 400_000);
    let rounds = env_u64("BENCH_CHURN_ROUNDS", 6) as usize;
    let kill_us = env_u64("BENCH_CHURN_KILL_US", 2_000_000);

    let yarrp = YarrpConfig {
        fill_mode: false, // exact probe accounting: cost = targets × ttl
        ..YarrpConfig::default()
    };
    let vantages: Vec<u8> = vec![0, 1, 2];
    let per_target = yarrp.max_ttl as u64 * vantages.len() as u64;
    let n_targets = (budget / per_target) as usize;

    let cfg = AdaptiveConfig {
        yarrp,
        vantages,
        vantage_budgeting: true,
        vantage_floor_share: 0.05,
        probe_budget: budget,
        round_targets: (n_targets / rounds).max(1),
        shards: 4,
        max_rounds: rounds,
        min_yield_per_kprobes: 0.0, // spend the whole budget
        feedback: FeedbackParams {
            sixgen_budget: (2 * n_targets / rounds).max(2_048),
            ..FeedbackParams::default()
        },
        retry: RetryPolicy {
            max_retries: 1,
            base_backoff_us: 250_000,
            retry_blackout: true,
        },
        ..AdaptiveConfig::default()
    };

    let arm = |faults: FaultSchedule| {
        let tc = TopologyConfig {
            faults,
            ..TopologyConfig::tiled(7, tiles)
        };
        let topo = Arc::new(simnet::generate::generate(tc));
        let catalog = seeds::sources::SeedCatalog::synthesize(&topo, 7);
        let z64 = targets::zn(&catalog.caida, 64);
        let seed_set = synthesize("adaptive-r0", &z64, IidStrategy::FixedIid);
        let t0 = Instant::now();
        let res = run_adaptive_parallel(&topo, &seed_set, &cfg);
        (res, t0.elapsed().as_secs_f64(), topo)
    };

    // --- Fault-free arm ----------------------------------------------
    let (clean, clean_s, topo) = arm(FaultSchedule::default());

    // --- Churn arm: kill vantage 1 mid-run + flap a transit link -----
    let flapped = RouterId(topo.routers.len() as u32 / 2);
    let schedule = FaultSchedule::default()
        .with_vantage_outage(1, kill_us, u64::MAX)
        .with_link_flap(flapped, kill_us, u64::MAX, 100_000);
    let (churn, churn_s, _) = arm(schedule);

    let ci = clean.unique_interfaces() as u64;
    let fi = churn.unique_interfaces() as u64;
    let yield_ratio = fi as f64 / ci.max(1) as f64;
    let degraded_rounds = churn
        .rounds
        .iter()
        .filter(|r| !r.degraded_vantages().is_empty())
        .count();
    let max_attempts = churn
        .rounds
        .iter()
        .flat_map(|r| r.per_vantage.iter().map(|p| p.attempts))
        .max()
        .unwrap_or(0);

    println!(
        "churn_yield: tiled x{tiles}, 3 vantages, budget {} probes, kill v1 at {}us + flap r{}",
        human(budget),
        human(kill_us),
        flapped.0
    );
    println!(
        "  fault-free : {:>2} rounds, {:>9} probes -> {:>7} interfaces in {clean_s:.3}s ({:?})",
        clean.rounds.len(),
        human(clean.probes()),
        human(ci),
        clean.stop
    );
    println!(
        "  churn      : {:>2} rounds, {:>9} probes -> {:>7} interfaces in {churn_s:.3}s ({:?})",
        churn.rounds.len(),
        human(churn.probes()),
        human(fi),
        churn.stop
    );
    for r in &churn.rounds {
        let degraded = r.degraded_vantages();
        println!(
            "    round {}: {:>6} targets, {:>8} probes, {:>6} new ifaces, \
             fault-dropped {:>7}, degraded {:?}",
            r.round,
            human(r.targets),
            human(r.probes),
            human(r.new_interfaces),
            human(r.per_vantage.iter().map(|p| p.fault_dropped).sum::<u64>()),
            degraded,
        );
    }
    println!("  yield ratio (churn/fault-free): {yield_ratio:.3}x");

    // Sanity: the supervisor reported the injected faults.
    assert!(
        churn.stats.fault_vantage_outage > 0,
        "outage must be visible in the stats"
    );
    assert!(
        churn
            .rounds
            .iter()
            .any(|r| r.degraded_vantages().contains(&1)),
        "vantage 1 must be reported degraded"
    );
    assert!(clean.probes() <= budget, "fault-free arm over budget");
    assert!(churn.probes() <= budget, "churn arm over budget");

    // Hand-rolled JSON: the workspace's serde is a no-op shim.
    let json = format!(
        "{{\n  \"bench\": \"churn_yield\",\n  \"scenario\": \"tiled x{tiles}, 3 vantages, kill v1 at {kill_us}us + link flap, budget {budget}\",\n  \"probe_budget\": {budget},\n  \"fault_free\": {{ \"rounds\": {}, \"probes\": {}, \"interfaces\": {ci}, \"elapsed_s\": {clean_s:.6}, \"stop\": \"{:?}\" }},\n  \"churn\": {{ \"rounds\": {}, \"probes\": {}, \"interfaces\": {fi}, \"elapsed_s\": {churn_s:.6}, \"stop\": \"{:?}\", \"degraded_rounds\": {degraded_rounds}, \"max_attempts\": {max_attempts}, \"fault_dropped\": {} }},\n  \"yield_ratio\": {yield_ratio:.3}\n}}\n",
        clean.rounds.len(),
        clean.probes(),
        clean.stop,
        churn.rounds.len(),
        churn.probes(),
        churn.stop,
        churn.stats.fault_dropped_total(),
    );
    let path = "BENCH_churn.json";
    std::fs::write(path, json).expect("write BENCH_churn.json");
    println!("  wrote {path}");

    if let Ok(min) = std::env::var("BENCH_CHURN_MIN_RATIO") {
        let min: f64 = min.parse().expect("BENCH_CHURN_MIN_RATIO not a number");
        if yield_ratio < min {
            eprintln!("FAIL: churn/fault-free yield {yield_ratio:.3}x below required {min:.2}x");
            std::process::exit(1);
        }
        println!("  yield gate: {yield_ratio:.3}x >= {min:.2}x OK");
    }
}
