//! §6 Subnet Validation — candidates vs ground truth: exact matches,
//! more-specific discoveries inside truth prefixes, and the stratified-
//! sampling re-run that bounds discovery at truth granularity.

use analysis::validate::{stratified_sample, validate};
use analysis::{discover_by_path_div, PathDivParams, TraceSet};
use beholder_bench::fmt::human;
use beholder_bench::Scenario;
use targets::TargetSet;
use yarrp6::campaign::run_campaign;
use yarrp6::YarrpConfig;

fn main() {
    let sc = Scenario::load();
    println!(
        "Subnet validation against ground-truth distribution subnets (scale {:?})\n",
        sc.scale
    );
    let resolver = sc.resolver();
    let params = PathDivParams::default();
    let vantage_asn = sc.topo.ases[sc.topo.vantages[0].as_idx as usize].asn;
    let truth: Vec<v6addr::Ipv6Prefix> = sc
        .topo
        .ground_truth_distribution_subnets()
        .into_iter()
        .map(|(p, _, _)| p)
        .collect();
    println!(
        "Ground truth: {} interior (distribution) subnets",
        human(truth.len() as u64)
    );

    // Full campaign over the combined z64 set from one vantage.
    let set = sc.targets.get("combined-z64").expect("combined-z64");
    let res = run_campaign(&sc.topo, 0, set, &YarrpConfig::default());
    let ts = TraceSet::from_log(&res.log);
    let cands = discover_by_path_div(&ts, &resolver, vantage_asn, &params);
    let report = validate(&cands, &truth, &set.addrs);
    println!("\nFull traces ({} targets):", human(set.len() as u64));
    println!(
        "  truth subnets traced into:     {}",
        human(report.truth_considered)
    );
    println!(
        "  candidates discovered:         {}",
        human(cands.len() as u64)
    );
    println!("  exact matches:                 {}", human(report.exact));
    println!(
        "  truth w/ more-specific cands:  {}",
        human(report.truth_with_more_specific)
    );

    // Stratified sampling: one target per truth subnet.
    let sample = stratified_sample(&set.addrs, &truth);
    let sample_set = TargetSet::new("stratified", sample.iter().copied());
    let res2 = run_campaign(&sc.topo, 0, &sample_set, &YarrpConfig::default());
    let ts2 = TraceSet::from_log(&res2.log);
    let cands2 = discover_by_path_div(&ts2, &resolver, vantage_asn, &params);
    let report2 = validate(&cands2, &truth, &sample_set.addrs);
    println!(
        "\nStratified sampling ({} targets, one per truth subnet):",
        human(sample_set.len() as u64)
    );
    println!(
        "  candidates discovered:         {}",
        human(cands2.len() as u64)
    );
    println!("  exact matches:                 {}", human(report2.exact));
    println!(
        "  short by one bit:              {}",
        human(report2.short_by_one)
    );
    println!(
        "  short by two bits:             {}",
        human(report2.short_by_two)
    );
    println!(
        "  unmatched:                     {}",
        human(report2.unmatched)
    );
    println!("\nExpect: full traces find mostly more-specific subnets (truth is interior);");
    println!("stratified sampling trades volume for exactness (paper: 43% exact, 52% one short).");
}
