//! Figure 3 — Discriminating Prefix Length distributions for the z64
//! target sets: (a) each set alone, (b) each set's addresses inside the
//! combination of all sets. A rightward shift from (a) to (b) means other
//! sets interleave with — and add discriminating power to — this one.

use beholder_bench::Scenario;
use targets::TargetSet;

const POINTS: [u8; 11] = [24, 28, 32, 36, 40, 44, 48, 52, 56, 60, 64];

fn main() {
    let sc = Scenario::load();
    println!(
        "Figure 3: DPL distributions, CDF at sampled lengths (scale {:?})\n",
        sc.scale
    );

    let sets: Vec<&TargetSet> = sc
        .targets
        .iter()
        .filter(|(n, _)| {
            n.ends_with("-z64") && !n.starts_with("combined") && !n.starts_with("random")
        })
        .map(|(_, s)| s)
        .collect();
    let combined = TargetSet::union("combined", &sets);

    println!("(a) Each set alone:");
    print_header();
    for set in &sets {
        let cdf = set.dpl_cdf();
        print_row(set.name.trim_end_matches("-z64"), |l| cdf.fraction_at(l));
    }

    println!("\n(b) Each set within the combination:");
    print_header();
    for set in &sets {
        let cdf = set.dpl_cdf_within(&combined);
        print_row(set.name.trim_end_matches("-z64"), |l| cdf.fraction_at(l));
    }
    println!("\nExpect: fiebig far right (dense) both alone and combined; caida far left alone");
    println!("but shifted right in combination; large sets (cdn-k32, 6gen, tum) barely shift.");
}

fn print_header() {
    print!("{:>12}", "set \\ DPL<=");
    for p in POINTS {
        print!(" {p:>5}");
    }
    println!();
}

fn print_row(name: &str, f: impl Fn(u8) -> f64) {
    print!("{name:>12}");
    for p in POINTS {
        print!(" {:>5.2}", f(p));
    }
    println!();
}
