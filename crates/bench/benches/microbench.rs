//! Criterion microbenchmarks for the performance-critical primitives:
//! the permutation, the probe codec, trie lookup, DPL, kIP aggregation
//! and end-to-end engine injection. These are the pieces that determine
//! whether a prober can sustain 100kpps-class rates (the original Yarrp
//! ran at 100kpps).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use simnet::config::TopologyConfig;
use simnet::Engine;
use std::net::Ipv6Addr;
use std::sync::Arc;
use v6packet::probe::{decode_quotation, ProbeSpec, ProbeTemplate, Protocol};
use yarrp6::perm::Permutation;

fn bench_permutation(c: &mut Criterion) {
    let mut g = c.benchmark_group("permutation");
    for n in [1_000u64, 1_000_000] {
        let p = Permutation::new(n, 42);
        g.throughput(Throughput::Elements(1));
        g.bench_function(format!("apply_n{n}"), |b| {
            let mut i = 0;
            b.iter(|| {
                let v = p.apply(i % n);
                i += 1;
                black_box(v)
            })
        });
    }
    g.finish();
}

fn bench_probe_codec(c: &mut Criterion) {
    let spec = ProbeSpec {
        src: "2001:db8:f00::1".parse().unwrap(),
        target: "2001:db8:1:2::abcd".parse().unwrap(),
        protocol: Protocol::Icmp6,
        ttl: 9,
        instance: 7,
        elapsed_us: 123_456,
    };
    let mut g = c.benchmark_group("probe_codec");
    g.throughput(Throughput::Elements(1));
    g.bench_function("build", |b| b.iter(|| black_box(spec.build())));
    g.bench_function("build_into", |b| {
        let mut buf = [0u8; v6packet::probe::MAX_PROBE_LEN];
        b.iter(|| black_box(spec.build_into(&mut buf)))
    });
    g.bench_function("template_render", |b| {
        let mut tmpl = ProbeTemplate::new(spec.src, spec.target, spec.protocol, spec.instance);
        let mut ttl = 1u8;
        let mut elapsed = 0u32;
        b.iter(|| {
            ttl = ttl % 32 + 1;
            elapsed = elapsed.wrapping_add(1000);
            black_box(tmpl.render(ttl, elapsed).len())
        })
    });
    let wire = spec.build();
    g.bench_function("decode_quotation", |b| {
        b.iter(|| black_box(decode_quotation(&wire).unwrap()))
    });
    g.finish();
}

fn bench_trie(c: &mut Criterion) {
    let topo = simnet::generate::generate(TopologyConfig::tiny(7));
    let addrs: Vec<Ipv6Addr> = topo.hosts().map(|(a, _)| a).take(1000).collect();
    let mut g = c.benchmark_group("bgp_lpm");
    g.throughput(Throughput::Elements(1));
    g.bench_function("longest_match", |b| {
        let mut i = 0;
        b.iter(|| {
            let a = addrs[i % addrs.len()];
            i += 1;
            black_box(topo.bgp.lookup(a))
        })
    });
    g.finish();
}

fn bench_dpl(c: &mut Criterion) {
    let topo = simnet::generate::generate(TopologyConfig::tiny(7));
    let addrs: Vec<Ipv6Addr> = topo.hosts().map(|(a, _)| a).collect();
    let mut g = c.benchmark_group("dpl");
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function(format!("set_of_{}", addrs.len()), |b| {
        b.iter(|| black_box(v6addr::dpl::dpl_of_set(&addrs)))
    });
    g.finish();
}

fn bench_kip(c: &mut Criterion) {
    let topo = simnet::generate::generate(TopologyConfig::tiny(7));
    let clients = topo.active_client_64s();
    let mut g = c.benchmark_group("kip");
    g.throughput(Throughput::Elements(clients.len() as u64));
    g.bench_function(format!("aggregate_{}_k32", clients.len()), |b| {
        b.iter(|| black_box(seeds::kip::kip_aggregate(&clients, 32)))
    });
    g.finish();
}

fn bench_engine_inject(c: &mut Criterion) {
    let topo = Arc::new(simnet::generate::generate(TopologyConfig::tiny(7)));
    let targets: Vec<Ipv6Addr> = topo.hosts().map(|(a, _)| a).take(256).collect();
    let src = topo.vantages[0].addr;
    let wires: Vec<Vec<u8>> = targets
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            ProbeSpec {
                src,
                target: t,
                protocol: Protocol::Icmp6,
                ttl: (i % 16) as u8 + 1,
                instance: 1,
                elapsed_us: 0,
            }
            .build()
        })
        .collect();
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(1));
    g.bench_function("inject_seed", |b| {
        // The seed engine vendored from commit f54a62c: SipHash cache,
        // Arc clones, allocating builders. The baseline the rework is
        // measured against.
        let mut e = beholder_bench::seed_baseline::SeedEngine::new(topo.clone());
        let mut i = 0u64;
        b.iter(|| {
            let w = &wires[(i as usize) % wires.len()];
            let d = e.inject(w, i * 100);
            i += 1;
            black_box(d)
        })
    });
    g.bench_function("inject", |b| {
        let mut e = Engine::new(topo.clone());
        let mut i = 0u64;
        b.iter(|| {
            let w = &wires[(i as usize) % wires.len()];
            let d = e.inject(w, i * 100);
            i += 1;
            black_box(d)
        })
    });
    g.bench_function("inject_cached", |b| {
        // The zero-allocation hot path: warm path cache, reused Delivery.
        let mut e = Engine::new(topo.clone());
        let mut out = simnet::Delivery::default();
        for (i, w) in wires.iter().enumerate() {
            e.inject_into(w, i as u64 * 100, &mut out);
        }
        let mut i = 0u64;
        b.iter(|| {
            let w = &wires[(i as usize) % wires.len()];
            let hit = e.inject_into(w, i * 100, &mut out);
            i += 1;
            black_box(hit)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_permutation,
    bench_probe_codec,
    bench_trie,
    bench_dpl,
    bench_kip,
    bench_engine_inject
);
criterion_main!(benches);
