//! RFC 1071 Internet checksum arithmetic and the IPv6 pseudo-header.
//!
//! Checksums here serve two roles: the usual transport validity check, and
//! two Yarrp6-specific uses (paper §4.1):
//!
//! 1. a 16-bit checksum over the *target address* rides in the TCP/UDP
//!    source port or ICMPv6 identifier, letting the prober detect
//!    middleboxes that rewrote the destination;
//! 2. the *fudge* computation forces the transport checksum to a
//!    per-target constant while the TTL/timestamp bytes vary.

use std::net::Ipv6Addr;

/// Accumulates 16-bit words in ones'-complement arithmetic.
///
/// Words are big-endian pairs of bytes; a trailing odd byte is padded with
/// zero, per RFC 1071.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summer {
    acc: u64,
}

impl Summer {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a byte slice.
    pub fn add_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        let mut chunks = bytes.chunks_exact(2);
        for c in &mut chunks {
            self.acc += u16::from_be_bytes([c[0], c[1]]) as u64;
        }
        if let [last] = chunks.remainder() {
            self.acc += u16::from_be_bytes([*last, 0]) as u64;
        }
        self
    }

    /// Adds a single 16-bit word.
    pub fn add_u16(&mut self, w: u16) -> &mut Self {
        self.acc += w as u64;
        self
    }

    /// Adds a 32-bit value as two words.
    pub fn add_u32(&mut self, w: u32) -> &mut Self {
        self.add_u16((w >> 16) as u16).add_u16(w as u16)
    }

    /// The folded ones'-complement sum (not inverted).
    pub fn fold(&self) -> u16 {
        let mut s = self.acc;
        while s > 0xffff {
            s = (s & 0xffff) + (s >> 16);
        }
        s as u16
    }

    /// The checksum: ones' complement of the folded sum.
    pub fn checksum(&self) -> u16 {
        !self.fold()
    }
}

/// Adds the IPv6 pseudo-header (RFC 8200 §8.1) for an upper-layer packet of
/// `len` bytes carried by `next_header`.
pub fn pseudo_header(summer: &mut Summer, src: Ipv6Addr, dst: Ipv6Addr, len: u32, next_header: u8) {
    summer
        .add_bytes(&src.octets())
        .add_bytes(&dst.octets())
        .add_u32(len)
        .add_u16(next_header as u16);
}

/// Full transport checksum over pseudo-header + payload (the payload must
/// already contain a zeroed — or final — checksum field).
pub fn transport_checksum(src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, payload: &[u8]) -> u16 {
    let mut s = Summer::new();
    pseudo_header(&mut s, src, dst, payload.len() as u32, next_header);
    s.add_bytes(payload);
    s.checksum()
}

/// Verifies a transport checksum: the sum over pseudo-header and payload
/// (including the checksum field) must fold to `0xffff`.
pub fn verify_transport(src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, payload: &[u8]) -> bool {
    let mut s = Summer::new();
    pseudo_header(&mut s, src, dst, payload.len() as u32, next_header);
    s.add_bytes(payload);
    s.fold() == 0xffff
}

/// The 16-bit Internet checksum of an IPv6 address — Yarrp6's target
/// fingerprint, carried in the source port / ICMPv6 identifier.
pub fn addr_checksum(addr: Ipv6Addr) -> u16 {
    Summer::new().add_bytes(&addr.octets()).checksum()
}

/// Ones'-complement difference `a ⊖ b`: the value `x` such that
/// `fold(b + x) == fold(a)`. Used to compute the Yarrp6 fudge.
pub fn ones_complement_sub(a: u16, b: u16) -> u16 {
    // Work modulo 0xffff; both 0x0000 and 0xffff are representations of
    // zero, so normalize to the [0, 0xfffe] range.
    let a = if a == 0xffff { 0 } else { a as u32 };
    let b = if b == 0xffff { 0 } else { b as u32 };
    ((a + 0xffff - b) % 0xffff) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2, cksum 0x220d.
        let mut s = Summer::new();
        s.add_bytes(&[0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7]);
        assert_eq!(s.fold(), 0xddf2);
        assert_eq!(s.checksum(), 0x220d);
    }

    #[test]
    fn odd_length_padding() {
        let mut a = Summer::new();
        a.add_bytes(&[0xab]);
        let mut b = Summer::new();
        b.add_bytes(&[0xab, 0x00]);
        assert_eq!(a.fold(), b.fold());
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = [1u8, 2, 3, 4, 5, 6];
        let mut a = Summer::new();
        a.add_bytes(&data[..3]).add_bytes(&data[3..]);
        // Note: incremental split at odd offset changes word alignment, so
        // only even splits are equivalent; 3-byte split is intentionally
        // NOT tested for equality. Even split:
        let mut b = Summer::new();
        b.add_bytes(&data[..2]).add_bytes(&data[2..]);
        let mut whole = Summer::new();
        whole.add_bytes(&data);
        assert_eq!(b.fold(), whole.fold());
        let _ = a;
    }

    #[test]
    fn transport_roundtrip() {
        let src: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let dst: Ipv6Addr = "2001:db8::2".parse().unwrap();
        let mut payload = vec![0x80, 0x00, 0x00, 0x00, 0x12, 0x34, 0x00, 0x50];
        let ck = transport_checksum(src, dst, 58, &payload);
        payload[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(verify_transport(src, dst, 58, &payload));
        payload[4] ^= 0xff;
        assert!(!verify_transport(src, dst, 58, &payload));
    }

    #[test]
    fn ones_complement_sub_props() {
        for (a, b) in [(0x1234u16, 0x0567u16), (0, 0x8000), (0xfffe, 1), (5, 5)] {
            let x = ones_complement_sub(a, b);
            let mut s = Summer::new();
            s.add_u16(b).add_u16(x);
            let folded = s.fold();
            let want = if a == 0xffff { 0 } else { a };
            let got = if folded == 0xffff { 0 } else { folded };
            assert_eq!(got, want, "a={a:#x} b={b:#x} x={x:#x}");
        }
    }

    #[test]
    fn addr_checksum_distinguishes() {
        let a = addr_checksum("2001:db8::1".parse().unwrap());
        let b = addr_checksum("2001:db8::2".parse().unwrap());
        assert_ne!(a, b);
    }
}
