//! The IPv6 Fragment extension header (RFC 8200 §4.5) — the channel
//! speedtrap-style alias resolution reads.
//!
//! IPv6 has no per-packet identifier in its fixed header; one appears
//! only when a source fragments, in the Fragment header's 32-bit
//! Identification field. Most router implementations draw that field
//! from a single monotonic counter shared by *all* interfaces — so two
//! interface addresses whose fragment identifiers interleave along one
//! counter belong to one router. Speedtrap (Luckie et al. \[42\]) elicits
//! fragmented Echo Replies with oversized Echo Requests and exploits
//! exactly this.
//!
//! We model the "atomic fragment" response: a single fragment carrying
//! the whole reply (offset 0, M=0) — enough to expose the identifier
//! without reassembly machinery.

use crate::csum;
use crate::ip6::{self, Ipv6Header};
use crate::proto_num;
use std::net::Ipv6Addr;

/// Next Header value of the Fragment extension header.
pub const FRAGMENT_NH: u8 = 44;

/// Length of the Fragment header.
pub const FRAG_HEADER_LEN: usize = 8;

/// Builds a fragmented (atomic-fragment) ICMPv6 Echo Reply carrying
/// `ident`/`seq`/`data`, with fragment identification `frag_id`.
pub fn build_fragmented_echo_reply(
    src: Ipv6Addr,
    dst: Ipv6Addr,
    ident: u16,
    seq: u16,
    data: &[u8],
    hop_limit: u8,
    frag_id: u32,
) -> Vec<u8> {
    let mut out = Vec::new();
    build_fragmented_echo_reply_into(&mut out, src, dst, ident, seq, data, hop_limit, frag_id);
    out
}

/// [`build_fragmented_echo_reply`] into a reusable buffer (cleared
/// first).
#[allow(clippy::too_many_arguments)]
pub fn build_fragmented_echo_reply_into(
    out: &mut Vec<u8>,
    src: Ipv6Addr,
    dst: Ipv6Addr,
    ident: u16,
    seq: u16,
    data: &[u8],
    hop_limit: u8,
    frag_id: u32,
) {
    let icmp_len = 8 + data.len();
    let hdr = Ipv6Header {
        traffic_class: 0,
        flow_label: 0,
        payload_len: (FRAG_HEADER_LEN + icmp_len) as u16,
        next_header: FRAGMENT_NH,
        hop_limit,
        src,
        dst,
    };
    out.clear();
    out.extend_from_slice(&hdr.encode());
    out.push(proto_num::ICMP6); // inner next header
    out.push(0); // reserved
    out.extend_from_slice(&0u16.to_be_bytes()); // offset 0, M=0
    out.extend_from_slice(&frag_id.to_be_bytes());
    out.extend_from_slice(&[129, 0, 0, 0]);
    out.extend_from_slice(&ident.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(data);
    let icmp_off = ip6::HEADER_LEN + FRAG_HEADER_LEN;
    let ck = csum::transport_checksum(src, dst, proto_num::ICMP6, &out[icmp_off..]);
    out[icmp_off + 2..icmp_off + 4].copy_from_slice(&ck.to_be_bytes());
}

/// A parsed fragmented echo reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragmentedEchoReply {
    /// Outer header.
    pub header: Ipv6Header,
    /// Fragment identification — the alias-resolution signal.
    pub frag_id: u32,
    /// Echo identifier.
    pub ident: u16,
    /// Echo sequence.
    pub seq: u16,
    /// Echo data.
    pub data: Vec<u8>,
}

/// Parses a fragmented echo reply; checksum-verified; `None` on any
/// malformation or if the packet is not `IPv6 / Fragment / ICMPv6 echo
/// reply`.
pub fn parse_fragmented_echo_reply(packet: &[u8]) -> Option<FragmentedEchoReply> {
    let hdr = Ipv6Header::decode(packet)?;
    if hdr.next_header != FRAGMENT_NH {
        return None;
    }
    let frag = packet.get(ip6::HEADER_LEN..)?;
    if frag.len() < FRAG_HEADER_LEN || frag.len() != hdr.payload_len as usize {
        return None;
    }
    if frag[0] != proto_num::ICMP6 {
        return None;
    }
    let offset_flags = u16::from_be_bytes([frag[2], frag[3]]);
    if offset_flags != 0 {
        return None; // only atomic fragments are modeled
    }
    let frag_id = u32::from_be_bytes([frag[4], frag[5], frag[6], frag[7]]);
    let icmp = &frag[FRAG_HEADER_LEN..];
    if icmp.len() < 8 || icmp[0] != 129 || icmp[1] != 0 {
        return None;
    }
    if !csum::verify_transport(hdr.src, hdr.dst, proto_num::ICMP6, icmp) {
        return None;
    }
    Some(FragmentedEchoReply {
        header: hdr,
        frag_id,
        ident: u16::from_be_bytes([icmp[4], icmp[5]]),
        seq: u16::from_be_bytes([icmp[6], icmp[7]]),
        data: icmp[8..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn roundtrip() {
        let pkt = build_fragmented_echo_reply(
            a("2001:db8::1"),
            a("2001:db8::2"),
            0xbeef,
            7,
            b"speedtrap",
            64,
            0x01020304,
        );
        let r = parse_fragmented_echo_reply(&pkt).unwrap();
        assert_eq!(r.frag_id, 0x01020304);
        assert_eq!(r.ident, 0xbeef);
        assert_eq!(r.seq, 7);
        assert_eq!(r.data, b"speedtrap");
        assert_eq!(r.header.src, a("2001:db8::1"));
    }

    #[test]
    fn rejects_non_fragment_and_corruption() {
        let plain = crate::icmp6::build_echo_reply(a("::1"), a("::2"), 1, 2, b"x", 64);
        assert!(parse_fragmented_echo_reply(&plain).is_none());
        let mut pkt = build_fragmented_echo_reply(a("::1"), a("::2"), 1, 2, b"x", 64, 9);
        let n = pkt.len() - 1;
        pkt[n] ^= 0xff;
        assert!(parse_fragmented_echo_reply(&pkt).is_none());
    }

    #[test]
    fn rejects_nonzero_offset() {
        let mut pkt = build_fragmented_echo_reply(a("::1"), a("::2"), 1, 2, b"x", 64, 9);
        pkt[ip6::HEADER_LEN + 2] = 0x01; // offset != 0
        assert!(parse_fragmented_echo_reply(&pkt).is_none());
    }
}
