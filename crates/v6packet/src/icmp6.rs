//! ICMPv6 messages (RFC 4443): echo, Time Exceeded, Destination
//! Unreachable — the response vocabulary of topology probing.
//!
//! Error messages carry a *quotation*: as much of the invoking packet as
//! fits within the minimum MTU. For Yarrp6 this quotation is the state
//! store — Tables 3 and 4 of the paper tabulate exactly these types/codes.

use crate::ip6::{self, Ipv6Header};
use crate::{csum, proto_num, MIN_MTU};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv6Addr;

/// ICMPv6 message type numbers used in this workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Icmp6Type {
    /// Type 1 — Destination Unreachable, with code.
    DestUnreachable(DestUnreachCode),
    /// Type 3, code 0 — Hop limit exceeded in transit.
    TimeExceeded,
    /// Type 128 — Echo Request.
    EchoRequest,
    /// Type 129 — Echo Reply.
    EchoReply,
}

/// Destination Unreachable codes (RFC 4443 §3.1) observed in Table 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DestUnreachCode {
    /// Code 0 — no route to destination.
    NoRoute,
    /// Code 1 — communication administratively prohibited.
    AdminProhibited,
    /// Code 3 — address unreachable.
    AddrUnreachable,
    /// Code 4 — port unreachable.
    PortUnreachable,
    /// Code 6 — reject route to destination.
    RejectRoute,
}

impl DestUnreachCode {
    /// Wire code value.
    pub fn code(self) -> u8 {
        match self {
            DestUnreachCode::NoRoute => 0,
            DestUnreachCode::AdminProhibited => 1,
            DestUnreachCode::AddrUnreachable => 3,
            DestUnreachCode::PortUnreachable => 4,
            DestUnreachCode::RejectRoute => 6,
        }
    }

    /// Parses a wire code value.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => DestUnreachCode::NoRoute,
            1 => DestUnreachCode::AdminProhibited,
            3 => DestUnreachCode::AddrUnreachable,
            4 => DestUnreachCode::PortUnreachable,
            6 => DestUnreachCode::RejectRoute,
            _ => return None,
        })
    }
}

impl fmt::Display for DestUnreachCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DestUnreachCode::NoRoute => "no route to destination",
            DestUnreachCode::AdminProhibited => "administratively prohibited",
            DestUnreachCode::AddrUnreachable => "address unreachable",
            DestUnreachCode::PortUnreachable => "port unreachable",
            DestUnreachCode::RejectRoute => "reject route to destination",
        };
        f.write_str(s)
    }
}

impl Icmp6Type {
    /// `(type, code)` wire values.
    pub fn type_code(self) -> (u8, u8) {
        match self {
            Icmp6Type::DestUnreachable(c) => (1, c.code()),
            Icmp6Type::TimeExceeded => (3, 0),
            Icmp6Type::EchoRequest => (128, 0),
            Icmp6Type::EchoReply => (129, 0),
        }
    }

    /// Parses `(type, code)` wire values.
    pub fn from_type_code(ty: u8, code: u8) -> Option<Self> {
        Some(match (ty, code) {
            (1, c) => Icmp6Type::DestUnreachable(DestUnreachCode::from_code(c)?),
            (3, 0) => Icmp6Type::TimeExceeded,
            (128, 0) => Icmp6Type::EchoRequest,
            (129, 0) => Icmp6Type::EchoReply,
            _ => return None,
        })
    }

    /// Error messages carry a quotation; informational ones do not.
    pub fn is_error(self) -> bool {
        matches!(
            self,
            Icmp6Type::DestUnreachable(_) | Icmp6Type::TimeExceeded
        )
    }
}

/// A parsed ICMPv6 message, with its (possibly truncated) quotation or
/// echo body.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Icmp6Message {
    /// Message type and code.
    pub ty: Icmp6Type,
    /// For echoes: the identifier; unused (zero) for errors.
    pub ident: u16,
    /// For echoes: the sequence number; unused (zero) for errors.
    pub seq: u16,
    /// Error quotation (the invoking IPv6 packet) or echo data.
    pub body: Vec<u8>,
}

/// Builds a complete ICMPv6 *error* packet (IPv6 header + ICMPv6) from
/// router `src` back to `dst`, quoting `invoking_packet` (a full IPv6
/// packet as received). The quotation is truncated so the whole error
/// stays within [`MIN_MTU`].
pub fn build_error(
    src: Ipv6Addr,
    dst: Ipv6Addr,
    ty: Icmp6Type,
    invoking_packet: &[u8],
    hop_limit: u8,
) -> Vec<u8> {
    let mut out = Vec::new();
    build_error_into(&mut out, src, dst, ty, invoking_packet, hop_limit);
    out
}

/// [`build_error`] into a reusable buffer (cleared first): the hot-path
/// variant — no allocation once `out` has grown to [`MIN_MTU`].
pub fn build_error_into(
    out: &mut Vec<u8>,
    src: Ipv6Addr,
    dst: Ipv6Addr,
    ty: Icmp6Type,
    invoking_packet: &[u8],
    hop_limit: u8,
) {
    build_error_quoted_into(out, src, dst, ty, invoking_packet, hop_limit, |_| {});
}

/// [`build_error_into`] with a `patch_quote` hook applied to the copied
/// quotation *before* the checksum is computed. Routers quote the packet
/// as they saw it (hop limit exhausted, middlebox-rewritten destination),
/// and patching the single copy in place avoids an intermediate
/// mutate-then-copy buffer on the engine's hot path.
pub fn build_error_quoted_into(
    out: &mut Vec<u8>,
    src: Ipv6Addr,
    dst: Ipv6Addr,
    ty: Icmp6Type,
    invoking_packet: &[u8],
    hop_limit: u8,
    patch_quote: impl FnOnce(&mut [u8]),
) {
    debug_assert!(ty.is_error());
    let max_quote = MIN_MTU - ip6::HEADER_LEN - 8;
    let quote = &invoking_packet[..invoking_packet.len().min(max_quote)];
    let (t, c) = ty.type_code();
    let hdr = Ipv6Header {
        traffic_class: 0,
        flow_label: 0,
        payload_len: (8 + quote.len()) as u16,
        next_header: proto_num::ICMP6,
        hop_limit,
        src,
        dst,
    };
    out.clear();
    out.extend_from_slice(&hdr.encode());
    out.extend_from_slice(&[t, c, 0, 0, 0, 0, 0, 0]); // cksum filled below
    out.extend_from_slice(quote);
    let quote_off = ip6::HEADER_LEN + 8;
    patch_quote(&mut out[quote_off..]);
    let ck = csum::transport_checksum(src, dst, proto_num::ICMP6, &out[ip6::HEADER_LEN..]);
    out[ip6::HEADER_LEN + 2..ip6::HEADER_LEN + 4].copy_from_slice(&ck.to_be_bytes());
}

/// Builds a complete Echo Reply packet answering an echo request with
/// identifier `ident`, sequence `seq` and `data` (the request's payload,
/// returned verbatim per RFC 4443 §4.2).
pub fn build_echo_reply(
    src: Ipv6Addr,
    dst: Ipv6Addr,
    ident: u16,
    seq: u16,
    data: &[u8],
    hop_limit: u8,
) -> Vec<u8> {
    let mut out = Vec::new();
    build_echo_reply_into(&mut out, src, dst, ident, seq, data, hop_limit);
    out
}

/// [`build_echo_reply`] into a reusable buffer (cleared first).
#[allow(clippy::too_many_arguments)]
pub fn build_echo_reply_into(
    out: &mut Vec<u8>,
    src: Ipv6Addr,
    dst: Ipv6Addr,
    ident: u16,
    seq: u16,
    data: &[u8],
    hop_limit: u8,
) {
    let hdr = Ipv6Header {
        traffic_class: 0,
        flow_label: 0,
        payload_len: (8 + data.len()) as u16,
        next_header: proto_num::ICMP6,
        hop_limit,
        src,
        dst,
    };
    out.clear();
    out.extend_from_slice(&hdr.encode());
    out.extend_from_slice(&[129, 0, 0, 0]);
    out.extend_from_slice(&ident.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(data);
    let ck = csum::transport_checksum(src, dst, proto_num::ICMP6, &out[ip6::HEADER_LEN..]);
    out[ip6::HEADER_LEN + 2..ip6::HEADER_LEN + 4].copy_from_slice(&ck.to_be_bytes());
}

/// Parses a full IPv6+ICMPv6 packet. Returns the outer header and the
/// message. Checksum is verified; `None` on any malformation.
pub fn parse(packet: &[u8]) -> Option<(Ipv6Header, Icmp6Message)> {
    let hdr = Ipv6Header::decode(packet)?;
    if hdr.next_header != proto_num::ICMP6 {
        return None;
    }
    let icmp = packet.get(ip6::HEADER_LEN..)?;
    if icmp.len() < 8 || icmp.len() != hdr.payload_len as usize {
        return None;
    }
    if !csum::verify_transport(hdr.src, hdr.dst, proto_num::ICMP6, icmp) {
        return None;
    }
    let ty = Icmp6Type::from_type_code(icmp[0], icmp[1])?;
    let (ident, seq, body) = if ty.is_error() {
        (0, 0, icmp[8..].to_vec())
    } else {
        (
            u16::from_be_bytes([icmp[4], icmp[5]]),
            u16::from_be_bytes([icmp[6], icmp[7]]),
            icmp[8..].to_vec(),
        )
    };
    Some((
        hdr,
        Icmp6Message {
            ty,
            ident,
            seq,
            body,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn error_roundtrip() {
        let invoking = vec![0xabu8; 100];
        let pkt = build_error(
            addr("2001:db8::a"),
            addr("2001:db8::b"),
            Icmp6Type::TimeExceeded,
            &invoking,
            64,
        );
        let (hdr, msg) = parse(&pkt).unwrap();
        assert_eq!(hdr.src, addr("2001:db8::a"));
        assert_eq!(hdr.dst, addr("2001:db8::b"));
        assert_eq!(msg.ty, Icmp6Type::TimeExceeded);
        assert_eq!(msg.body, invoking);
    }

    #[test]
    fn error_quotation_truncated_to_min_mtu() {
        let invoking = vec![0u8; 4000];
        let pkt = build_error(
            addr("::1"),
            addr("::2"),
            Icmp6Type::DestUnreachable(DestUnreachCode::NoRoute),
            &invoking,
            64,
        );
        assert!(pkt.len() <= MIN_MTU);
        let (_, msg) = parse(&pkt).unwrap();
        assert_eq!(msg.body.len(), MIN_MTU - ip6::HEADER_LEN - 8);
    }

    #[test]
    fn echo_reply_roundtrip() {
        let data = b"yarrp6 payload".to_vec();
        let pkt = build_echo_reply(addr("::1"), addr("::2"), 0x1234, 80, &data, 55);
        let (hdr, msg) = parse(&pkt).unwrap();
        assert_eq!(hdr.hop_limit, 55);
        assert_eq!(msg.ty, Icmp6Type::EchoReply);
        assert_eq!(msg.ident, 0x1234);
        assert_eq!(msg.seq, 80);
        assert_eq!(msg.body, data);
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let mut pkt = build_echo_reply(addr("::1"), addr("::2"), 1, 2, b"x", 64);
        let n = pkt.len() - 1;
        pkt[n] ^= 0x55;
        assert!(parse(&pkt).is_none());
    }

    #[test]
    fn all_codes_roundtrip() {
        for code in [
            DestUnreachCode::NoRoute,
            DestUnreachCode::AdminProhibited,
            DestUnreachCode::AddrUnreachable,
            DestUnreachCode::PortUnreachable,
            DestUnreachCode::RejectRoute,
        ] {
            let ty = Icmp6Type::DestUnreachable(code);
            let (t, c) = ty.type_code();
            assert_eq!(Icmp6Type::from_type_code(t, c), Some(ty));
        }
        assert_eq!(Icmp6Type::from_type_code(1, 2), None);
        assert_eq!(Icmp6Type::from_type_code(200, 0), None);
    }
}
