//! The fixed 40-byte IPv6 header (RFC 8200 §3).

use serde::{Deserialize, Serialize};
use std::net::Ipv6Addr;

/// Length of the fixed IPv6 header.
pub const HEADER_LEN: usize = 40;

/// A parsed (or to-be-serialized) IPv6 header.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv6Header {
    /// Traffic class (the paper's probes use 0).
    pub traffic_class: u8,
    /// 20-bit flow label; kept constant per target for Paris behaviour.
    pub flow_label: u32,
    /// Payload length in bytes (everything after this header).
    pub payload_len: u16,
    /// Next header protocol number (see [`crate::proto_num`]).
    pub next_header: u8,
    /// Hop limit — the "TTL" that topology probing manipulates.
    pub hop_limit: u8,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
}

impl Ipv6Header {
    /// Serializes into the 40-byte wire format.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut b = [0u8; HEADER_LEN];
        let vtf: u32 =
            (6u32 << 28) | ((self.traffic_class as u32) << 20) | (self.flow_label & 0xf_ffff);
        b[0..4].copy_from_slice(&vtf.to_be_bytes());
        b[4..6].copy_from_slice(&self.payload_len.to_be_bytes());
        b[6] = self.next_header;
        b[7] = self.hop_limit;
        b[8..24].copy_from_slice(&self.src.octets());
        b[24..40].copy_from_slice(&self.dst.octets());
        b
    }

    /// Parses a header from the front of `bytes`. Returns `None` when the
    /// slice is short or the version nibble is not 6.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < HEADER_LEN {
            return None;
        }
        let vtf = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        if vtf >> 28 != 6 {
            return None;
        }
        let mut src = [0u8; 16];
        src.copy_from_slice(&bytes[8..24]);
        let mut dst = [0u8; 16];
        dst.copy_from_slice(&bytes[24..40]);
        Some(Ipv6Header {
            traffic_class: ((vtf >> 20) & 0xff) as u8,
            flow_label: vtf & 0xf_ffff,
            payload_len: u16::from_be_bytes([bytes[4], bytes[5]]),
            next_header: bytes[6],
            hop_limit: bytes[7],
            src: Ipv6Addr::from(src),
            dst: Ipv6Addr::from(dst),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr() -> Ipv6Header {
        Ipv6Header {
            traffic_class: 0xa5,
            flow_label: 0xbeef,
            payload_len: 20,
            next_header: 58,
            hop_limit: 7,
            src: "2001:db8::1".parse().unwrap(),
            dst: "2001:db8::2".parse().unwrap(),
        }
    }

    #[test]
    fn roundtrip() {
        let h = hdr();
        let bytes = h.encode();
        assert_eq!(Ipv6Header::decode(&bytes), Some(h));
    }

    #[test]
    fn version_nibble() {
        let bytes = hdr().encode();
        assert_eq!(bytes[0] >> 4, 6);
    }

    #[test]
    fn rejects_short_and_wrong_version() {
        assert_eq!(Ipv6Header::decode(&[0u8; 39]), None);
        let mut bytes = hdr().encode();
        bytes[0] = 0x45; // IPv4-style version nibble
        assert_eq!(Ipv6Header::decode(&bytes), None);
    }

    #[test]
    fn flow_label_masked_to_20_bits() {
        let mut h = hdr();
        h.flow_label = 0xfff_ffff; // over-wide
        let decoded = Ipv6Header::decode(&h.encode()).unwrap();
        assert_eq!(decoded.flow_label, 0xf_ffff);
    }
}
