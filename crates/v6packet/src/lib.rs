//! Wire formats for IPv6 active topology probing.
//!
//! This crate implements, at the byte level, everything that crosses the
//! (simulated) wire:
//!
//! * [`ip6`] — the 40-byte IPv6 header;
//! * [`csum`] — the RFC 1071 Internet checksum and the IPv6 pseudo-header;
//! * [`icmp6`] — ICMPv6 messages: Echo Request/Reply, Time Exceeded and
//!   Destination Unreachable errors carrying full packet quotations
//!   (RFC 4443 §2.4 requires as much of the invoking packet as fits);
//! * [`probe`] — the Yarrp6 probe: a TCP/UDP/ICMPv6 transport followed by a
//!   12-byte payload encoding `(magic, instance, TTL, timestamp, fudge)` so
//!   the prober can be completely stateless (paper §4.1, Figure 4). The
//!   *fudge* field keeps the transport checksum constant per target so that
//!   per-flow load balancers (which hash the ICMPv6 checksum) see a single
//!   flow per target — Paris-traceroute behaviour for free.
//!
//! Everything is length-checked; malformed input yields [`probe::DecodeError`]
//! rather than panics, since real responses traverse middleboxes that
//! rewrite and truncate.

pub mod csum;
pub mod frag;
pub mod icmp6;
pub mod ip6;
pub mod probe;
pub mod tcp;

pub use icmp6::{Icmp6Message, Icmp6Type};
pub use ip6::Ipv6Header;
pub use probe::{DecodeError, DecodedProbe, ProbeSpec, Protocol, YARRP6_MAGIC};

/// Protocol numbers for the IPv6 Next Header field.
pub mod proto_num {
    /// TCP (RFC 9293).
    pub const TCP: u8 = 6;
    /// UDP (RFC 768).
    pub const UDP: u8 = 17;
    /// ICMPv6 (RFC 4443).
    pub const ICMP6: u8 = 58;
}

/// Minimum IPv6 MTU; an ICMPv6 error message must not exceed it
/// (RFC 4443 §2.4(c)).
pub const MIN_MTU: usize = 1280;
