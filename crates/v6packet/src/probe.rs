//! The Yarrp6 probe codec (paper §4.1, Figure 4).
//!
//! A probe is an IPv6 packet whose transport (TCP, UDP or ICMPv6 echo) is
//! followed by a 12-byte Yarrp6 payload:
//!
//! ```text
//!  0        4         5      6         10       12
//!  | magic  | instance| ttl  | elapsed  | fudge  |
//! ```
//!
//! * **magic** + **instance** authenticate responses as answers to *this*
//!   prober instance;
//! * **ttl** is the originating hop limit (the IPv6 header's own hop limit
//!   has been decremented en route, so it cannot be recovered from the
//!   quotation);
//! * **elapsed** is the send timestamp in µs since campaign start, enabling
//!   stateless RTT computation;
//! * **fudge** is chosen so the transport checksum is a **per-target
//!   constant**: since ICMPv6 checksums participate in per-flow load
//!   balancing, a varying checksum would send probes of the same target
//!   down different ECMP paths. With the fudge, all headers a load balancer
//!   can hash are constant per target (Paris behaviour).
//!
//! A 16-bit checksum **of the target address** is carried in the TCP/UDP
//! source port or ICMPv6 identifier; on decode a mismatch against the
//! quoted destination reveals middlebox rewriting. The destination port /
//! echo sequence is the fixed value 80.

use crate::csum::{self, Summer};
use crate::ip6::{self, Ipv6Header};
use crate::proto_num;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv6Addr;

/// `"yp6\0"`-style magic tag marking Yarrp6 payloads.
pub const YARRP6_MAGIC: u32 = 0x7972_7036; // "yrp6"

/// Fixed destination port / echo sequence number.
pub const DST_PORT: u16 = 80;

/// Length of the Yarrp6 payload.
pub const PAYLOAD_LEN: usize = 12;

/// Probe transport protocol (paper §4.2 "Protocol" trials).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// ICMPv6 Echo Request — the paper's choice for production campaigns.
    Icmp6,
    /// UDP to port 80.
    Udp,
    /// TCP SYN to port 80.
    Tcp,
}

impl Protocol {
    /// IPv6 Next Header value.
    pub fn next_header(self) -> u8 {
        match self {
            Protocol::Icmp6 => proto_num::ICMP6,
            Protocol::Udp => proto_num::UDP,
            Protocol::Tcp => proto_num::TCP,
        }
    }

    /// Transport header length preceding the Yarrp6 payload.
    pub fn transport_len(self) -> usize {
        match self {
            Protocol::Icmp6 => 8,
            Protocol::Udp => 8,
            Protocol::Tcp => 20,
        }
    }

    /// Total probe length on the wire.
    pub fn probe_len(self) -> usize {
        ip6::HEADER_LEN + self.transport_len() + PAYLOAD_LEN
    }

    /// Parses from a Next Header value.
    pub fn from_next_header(nh: u8) -> Option<Self> {
        Some(match nh {
            proto_num::ICMP6 => Protocol::Icmp6,
            proto_num::UDP => Protocol::Udp,
            proto_num::TCP => Protocol::Tcp,
            _ => return None,
        })
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Protocol::Icmp6 => "icmp6",
            Protocol::Udp => "udp",
            Protocol::Tcp => "tcp",
        };
        f.write_str(s)
    }
}

/// Everything needed to emit one probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeSpec {
    /// Source (vantage) address.
    pub src: Ipv6Addr,
    /// Target address.
    pub target: Ipv6Addr,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Originating hop limit.
    pub ttl: u8,
    /// Prober instance identifier.
    pub instance: u8,
    /// Microseconds since campaign start at send time.
    pub elapsed_us: u32,
}

/// State recovered, statelessly, from a quoted probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodedProbe {
    /// The probed target (the quoted packet's destination).
    pub target: Ipv6Addr,
    /// Transport protocol of the probe.
    pub protocol: Protocol,
    /// Originating hop limit recovered from the payload.
    pub ttl: u8,
    /// Prober instance.
    pub instance: u8,
    /// Send timestamp (µs since campaign start).
    pub elapsed_us: u32,
    /// Whether the target checksum in the source port / ICMPv6 identifier
    /// matches the quoted destination — `false` flags middlebox rewriting.
    pub target_cksum_ok: bool,
    /// Hop limit remaining in the quoted header (usually 0 or 1 at the
    /// expiring router).
    pub quoted_hop_limit: u8,
}

/// Why a (quoted) packet failed to decode as a Yarrp6 probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Quotation shorter than the fixed probe layout.
    Truncated,
    /// Outer bytes were not an IPv6 header.
    NotIpv6,
    /// Next Header was not TCP/UDP/ICMPv6.
    UnknownProtocol(u8),
    /// Payload magic did not match [`YARRP6_MAGIC`].
    BadMagic(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "quotation truncated"),
            DecodeError::NotIpv6 => write!(f, "quotation is not IPv6"),
            DecodeError::UnknownProtocol(p) => write!(f, "unknown protocol {p}"),
            DecodeError::BadMagic(m) => write!(f, "bad yarrp6 magic {m:#010x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Longest probe on the wire (TCP transport).
pub const MAX_PROBE_LEN: usize = ip6::HEADER_LEN + 20 + PAYLOAD_LEN;

/// Offset of the transport checksum field within the transport header.
fn checksum_offset(protocol: Protocol) -> usize {
    match protocol {
        Protocol::Icmp6 => 2,
        Protocol::Udp => 6,
        Protocol::Tcp => 16,
    }
}

/// The fudge restoring the canonical per-target sum for given variable
/// fields.
///
/// The canonical pass sums the instance as a *low*-byte word (see
/// [`ProbeSpec::canonical_sum`]) while the wire carries `(instance,
/// ttl)` with the instance in the high byte, so the fudge cancels both
/// the variable fields and that representation difference:
/// `fudge = instance ⊖ ((instance << 8 | ttl) ⊕ elapsed)`.
#[inline]
fn fudge_for(instance: u8, ttl: u8, elapsed_us: u32) -> u16 {
    let mut d = Summer::new();
    d.add_u16(((instance as u16) << 8) | ttl as u16)
        .add_u32(elapsed_us);
    csum::ones_complement_sub(instance as u16, d.fold())
}

impl ProbeSpec {
    /// Serializes the probe to wire bytes, computing the fudge so the
    /// transport checksum is the per-target constant described in the
    /// module docs.
    ///
    /// This is the *naive* allocating path, kept as the reference the
    /// hot paths ([`build_into`](Self::build_into), [`ProbeTemplate`])
    /// are tested bit-identical against.
    pub fn build(&self) -> Vec<u8> {
        let tlen = self.protocol.transport_len();
        let payload_len = tlen + PAYLOAD_LEN;
        let target_ck = csum::addr_checksum(self.target);

        // Transport + Yarrp6 payload, checksum and fudge zeroed.
        let mut body = vec![0u8; payload_len];
        match self.protocol {
            Protocol::Icmp6 => {
                body[0] = 128; // Echo Request
                body[4..6].copy_from_slice(&target_ck.to_be_bytes());
                body[6..8].copy_from_slice(&DST_PORT.to_be_bytes());
            }
            Protocol::Udp => {
                body[0..2].copy_from_slice(&target_ck.to_be_bytes());
                body[2..4].copy_from_slice(&DST_PORT.to_be_bytes());
                body[4..6].copy_from_slice(&(payload_len as u16).to_be_bytes());
            }
            Protocol::Tcp => {
                body[0..2].copy_from_slice(&target_ck.to_be_bytes());
                body[2..4].copy_from_slice(&DST_PORT.to_be_bytes());
                body[12] = 5 << 4; // data offset: 5 words
                body[13] = 0x02; // SYN
                body[14..16].copy_from_slice(&0xffffu16.to_be_bytes());
            }
        }
        let p = tlen;
        body[p..p + 4].copy_from_slice(&YARRP6_MAGIC.to_be_bytes());
        body[p + 4] = self.instance;
        body[p + 5] = self.ttl;
        body[p + 6..p + 10].copy_from_slice(&self.elapsed_us.to_be_bytes());
        // fudge at p+10..p+12 currently zero.

        // Canonical sum: same packet with ttl = 0 and elapsed = 0.
        let nh = self.protocol.next_header();
        let mut canon = Summer::new();
        csum::pseudo_header(&mut canon, self.src, self.target, payload_len as u32, nh);
        canon.add_bytes(&body[..p + 4]); // through magic
        canon.add_u16(self.instance as u16); // (instance, ttl=0) word
        canon.add_u32(0); // elapsed = 0
        canon.add_u16(0); // fudge = 0
        let canon_sum = canon.fold();

        // Actual sum with real ttl/elapsed, fudge still zero.
        let mut actual = Summer::new();
        csum::pseudo_header(&mut actual, self.src, self.target, payload_len as u32, nh);
        actual.add_bytes(&body);
        let actual_sum = actual.fold();

        // fudge makes the folded sum equal the canonical sum again.
        let fudge = csum::ones_complement_sub(canon_sum, actual_sum);
        body[p + 10..p + 12].copy_from_slice(&fudge.to_be_bytes());

        // The checksum over a packet summing to canon must be !canon.
        let cksum = !canon_sum;
        let ck_off = match self.protocol {
            Protocol::Icmp6 => 2,
            Protocol::Udp => 6,
            Protocol::Tcp => 16,
        };
        body[ck_off..ck_off + 2].copy_from_slice(&cksum.to_be_bytes());

        let hdr = Ipv6Header {
            traffic_class: 0,
            flow_label: 0,
            payload_len: payload_len as u16,
            next_header: nh,
            hop_limit: self.ttl,
            src: self.src,
            dst: self.target,
        };
        let mut out = Vec::with_capacity(ip6::HEADER_LEN + payload_len);
        out.extend_from_slice(&hdr.encode());
        out.extend_from_slice(&body);
        out
    }

    /// The canonical (ttl = 0, elapsed = 0, fudge = 0, checksum = 0)
    /// ones'-complement sum over pseudo-header and body — the per-target
    /// constant every probe's transport sum is fudged back to. Computed
    /// directly from the handful of nonzero words; no packet is built.
    pub fn canonical_sum(&self) -> u16 {
        let tlen = self.protocol.transport_len();
        let payload_len = tlen + PAYLOAD_LEN;
        let target_ck = csum::addr_checksum(self.target);
        let mut s = Summer::new();
        csum::pseudo_header(
            &mut s,
            self.src,
            self.target,
            payload_len as u32,
            self.protocol.next_header(),
        );
        // Nonzero constant body words (checksum field zeroed).
        match self.protocol {
            Protocol::Icmp6 => {
                s.add_u16(128 << 8); // type = Echo Request, code 0
                s.add_u16(target_ck); // identifier
                s.add_u16(DST_PORT); // sequence
            }
            Protocol::Udp => {
                s.add_u16(target_ck); // source port
                s.add_u16(DST_PORT);
                s.add_u16(payload_len as u16);
            }
            Protocol::Tcp => {
                s.add_u16(target_ck); // source port
                s.add_u16(DST_PORT);
                s.add_u16(((5u16 << 4) << 8) | 0x02); // data offset + SYN
                s.add_u16(0xffff); // window
            }
        }
        s.add_u32(YARRP6_MAGIC);
        // Historical quirk kept for wire compatibility: the canonical
        // pass sums the instance as a low-byte word even though the
        // packet carries it in the high byte of the (instance, ttl)
        // word; `fudge_for` compensates, so probes stay checksum-valid
        // and per-target constant either way.
        s.add_u16(self.instance as u16);
        s.fold()
    }

    /// Serializes the probe into `out`, returning the wire length. One
    /// checksum pass over the constants (via [`Self::canonical_sum`]);
    /// the variable fields are cancelled incrementally by the fudge.
    /// Byte-identical to [`Self::build`].
    pub fn build_into(&self, out: &mut [u8]) -> usize {
        let tlen = self.protocol.transport_len();
        let payload_len = tlen + PAYLOAD_LEN;
        let total = ip6::HEADER_LEN + payload_len;
        assert!(out.len() >= total, "build_into: buffer too small");
        let target_ck = csum::addr_checksum(self.target);

        let hdr = Ipv6Header {
            traffic_class: 0,
            flow_label: 0,
            payload_len: payload_len as u16,
            next_header: self.protocol.next_header(),
            hop_limit: self.ttl,
            src: self.src,
            dst: self.target,
        };
        out[..ip6::HEADER_LEN].copy_from_slice(&hdr.encode());

        let body = &mut out[ip6::HEADER_LEN..total];
        body.fill(0);
        match self.protocol {
            Protocol::Icmp6 => {
                body[0] = 128; // Echo Request
                body[4..6].copy_from_slice(&target_ck.to_be_bytes());
                body[6..8].copy_from_slice(&DST_PORT.to_be_bytes());
            }
            Protocol::Udp => {
                body[0..2].copy_from_slice(&target_ck.to_be_bytes());
                body[2..4].copy_from_slice(&DST_PORT.to_be_bytes());
                body[4..6].copy_from_slice(&(payload_len as u16).to_be_bytes());
            }
            Protocol::Tcp => {
                body[0..2].copy_from_slice(&target_ck.to_be_bytes());
                body[2..4].copy_from_slice(&DST_PORT.to_be_bytes());
                body[12] = 5 << 4; // data offset: 5 words
                body[13] = 0x02; // SYN
                body[14..16].copy_from_slice(&0xffffu16.to_be_bytes());
            }
        }
        let p = tlen;
        body[p..p + 4].copy_from_slice(&YARRP6_MAGIC.to_be_bytes());
        body[p + 4] = self.instance;
        body[p + 5] = self.ttl;
        body[p + 6..p + 10].copy_from_slice(&self.elapsed_us.to_be_bytes());
        body[p + 10..p + 12]
            .copy_from_slice(&fudge_for(self.instance, self.ttl, self.elapsed_us).to_be_bytes());

        let canon_sum = self.canonical_sum();
        let ck_off = checksum_offset(self.protocol);
        body[ck_off..ck_off + 2].copy_from_slice(&(!canon_sum).to_be_bytes());
        total
    }

    /// The constant transport checksum all probes to `target` carry — what
    /// a per-flow load balancer hashes. Exposed for tests and for the
    /// simulator's ECMP flow keys. Derived from the canonical sum; no
    /// packet is built.
    pub fn flow_checksum(&self) -> u16 {
        !self.canonical_sum()
    }
}

/// A cached per-target wire image for the zero-allocation hot path.
///
/// By the Paris-checksum design (paper §4.1) everything except the hop
/// limit, the payload's `ttl`/`elapsed` fields, and the cancelling
/// `fudge` is constant per `(src, target, protocol, instance)`. The
/// template holds the fully built packet and [`render`](Self::render)
/// patches those fields in place — an incremental ones'-complement
/// update instead of a fresh checksum pass, and zero heap traffic.
#[derive(Clone, Debug)]
pub struct ProbeTemplate {
    wire: [u8; MAX_PROBE_LEN],
    len: u16,
    payload_off: u16,
}

impl ProbeTemplate {
    /// Builds the per-target template.
    pub fn new(src: Ipv6Addr, target: Ipv6Addr, protocol: Protocol, instance: u8) -> Self {
        let spec = ProbeSpec {
            src,
            target,
            protocol,
            ttl: 0,
            instance,
            elapsed_us: 0,
        };
        let mut wire = [0u8; MAX_PROBE_LEN];
        let len = spec.build_into(&mut wire);
        ProbeTemplate {
            wire,
            len: len as u16,
            payload_off: (ip6::HEADER_LEN + protocol.transport_len()) as u16,
        }
    }

    /// Wire length of the rendered probe.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Patches the hop limit, payload ttl/elapsed, and fudge, returning
    /// the ready-to-send wire bytes. Byte-identical to
    /// [`ProbeSpec::build`] with the same fields.
    ///
    /// The returned slice is mutable so callers can apply checksum-
    /// neutral edits (e.g. the `vary_flow_label` ablation); any such
    /// edit is overwritten or preserved verbatim by the next `render`.
    #[inline]
    pub fn render(&mut self, ttl: u8, elapsed_us: u32) -> &mut [u8] {
        let p = self.payload_off as usize;
        let wire = &mut self.wire[..self.len as usize];
        let instance = wire[p + 4];
        wire[7] = ttl; // IPv6 hop limit
        wire[p + 5] = ttl;
        wire[p + 6..p + 10].copy_from_slice(&elapsed_us.to_be_bytes());
        wire[p + 10..p + 12].copy_from_slice(&fudge_for(instance, ttl, elapsed_us).to_be_bytes());
        wire
    }
}

/// Decodes Yarrp6 state from a quoted probe packet (the body of an ICMPv6
/// error). Works on exactly the bytes the prober emitted, however they
/// were truncated — the fixed layout fits well within any quotation.
pub fn decode_quotation(quote: &[u8]) -> Result<DecodedProbe, DecodeError> {
    let hdr = Ipv6Header::decode(quote).ok_or(DecodeError::NotIpv6)?;
    let protocol = Protocol::from_next_header(hdr.next_header)
        .ok_or(DecodeError::UnknownProtocol(hdr.next_header))?;
    let tlen = protocol.transport_len();
    let need = ip6::HEADER_LEN + tlen + PAYLOAD_LEN;
    if quote.len() < need {
        return Err(DecodeError::Truncated);
    }
    let body = &quote[ip6::HEADER_LEN..];
    let sport_off = match protocol {
        Protocol::Icmp6 => 4,
        Protocol::Udp | Protocol::Tcp => 0,
    };
    let carried_ck = u16::from_be_bytes([body[sport_off], body[sport_off + 1]]);
    let p = tlen;
    let magic = u32::from_be_bytes([body[p], body[p + 1], body[p + 2], body[p + 3]]);
    if magic != YARRP6_MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    Ok(DecodedProbe {
        target: hdr.dst,
        protocol,
        ttl: body[p + 5],
        instance: body[p + 4],
        elapsed_us: u32::from_be_bytes([body[p + 6], body[p + 7], body[p + 8], body[p + 9]]),
        target_cksum_ok: carried_ck == csum::addr_checksum(hdr.dst),
        quoted_hop_limit: hdr.hop_limit,
    })
}

/// Decodes the Yarrp6 payload from an Echo Reply *body* (the request data
/// a destination returned verbatim, RFC 4443 §4.2). Returns
/// `(instance, ttl, elapsed_us)`.
pub fn decode_echo_body(body: &[u8]) -> Result<(u8, u8, u32), DecodeError> {
    if body.len() < PAYLOAD_LEN {
        return Err(DecodeError::Truncated);
    }
    let magic = u32::from_be_bytes([body[0], body[1], body[2], body[3]]);
    if magic != YARRP6_MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    Ok((
        body[4],
        body[5],
        u32::from_be_bytes([body[6], body[7], body[8], body[9]]),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csum::verify_transport;

    fn spec(proto: Protocol, ttl: u8, elapsed: u32) -> ProbeSpec {
        ProbeSpec {
            src: "2001:db8:f00::1".parse().unwrap(),
            target: "2001:db8:1:2::abcd".parse().unwrap(),
            protocol: proto,
            ttl,
            instance: 7,
            elapsed_us: elapsed,
        }
    }

    #[test]
    fn probe_is_checksum_valid() {
        for proto in [Protocol::Icmp6, Protocol::Udp, Protocol::Tcp] {
            let s = spec(proto, 9, 123_456);
            let pkt = s.build();
            assert_eq!(pkt.len(), proto.probe_len());
            let hdr = Ipv6Header::decode(&pkt).unwrap();
            assert_eq!(hdr.hop_limit, 9);
            assert!(
                verify_transport(
                    hdr.src,
                    hdr.dst,
                    proto.next_header(),
                    &pkt[ip6::HEADER_LEN..]
                ),
                "{proto} checksum invalid"
            );
        }
    }

    #[test]
    fn checksum_constant_across_ttl_and_time() {
        for proto in [Protocol::Icmp6, Protocol::Udp, Protocol::Tcp] {
            let base = spec(proto, 1, 0).flow_checksum();
            for ttl in [1u8, 2, 16, 32, 255] {
                for elapsed in [0u32, 1, 999_999, u32::MAX] {
                    assert_eq!(
                        spec(proto, ttl, elapsed).flow_checksum(),
                        base,
                        "{proto} ttl={ttl} elapsed={elapsed}"
                    );
                }
            }
        }
    }

    #[test]
    fn build_into_and_template_match_naive_build() {
        for proto in [Protocol::Icmp6, Protocol::Udp, Protocol::Tcp] {
            let mut tmpl = ProbeTemplate::new(
                "2001:db8:f00::1".parse().unwrap(),
                "2001:db8:1:2::abcd".parse().unwrap(),
                proto,
                7,
            );
            for ttl in [1u8, 2, 9, 16, 64, 255] {
                for elapsed in [0u32, 1, 123_456, 0xffff, 0x1_0000, u32::MAX] {
                    let s = spec(proto, ttl, elapsed);
                    let naive = s.build();
                    let mut buf = [0u8; MAX_PROBE_LEN];
                    let n = s.build_into(&mut buf);
                    assert_eq!(&buf[..n], &naive[..], "{proto} build_into ttl={ttl}");
                    assert_eq!(
                        tmpl.render(ttl, elapsed),
                        &naive[..],
                        "{proto} template ttl={ttl} elapsed={elapsed}"
                    );
                }
            }
        }
    }

    #[test]
    fn flow_checksum_matches_wire_checksum_field() {
        for proto in [Protocol::Icmp6, Protocol::Udp, Protocol::Tcp] {
            let s = spec(proto, 9, 123_456);
            let pkt = s.build();
            let off = ip6::HEADER_LEN + super::checksum_offset(proto);
            assert_eq!(
                s.flow_checksum(),
                u16::from_be_bytes([pkt[off], pkt[off + 1]]),
                "{proto}"
            );
        }
    }

    #[test]
    fn decode_roundtrip() {
        for proto in [Protocol::Icmp6, Protocol::Udp, Protocol::Tcp] {
            let s = spec(proto, 13, 77_000);
            let d = decode_quotation(&s.build()).unwrap();
            assert_eq!(d.target, s.target);
            assert_eq!(d.protocol, proto);
            assert_eq!(d.ttl, 13);
            assert_eq!(d.instance, 7);
            assert_eq!(d.elapsed_us, 77_000);
            assert!(d.target_cksum_ok);
        }
    }

    #[test]
    fn middlebox_rewrite_detected() {
        let s = spec(Protocol::Udp, 5, 1);
        let mut pkt = s.build();
        // Rewrite the destination address in the IPv6 header.
        pkt[39] ^= 0x01;
        let d = decode_quotation(&pkt).unwrap();
        assert!(!d.target_cksum_ok);
    }

    #[test]
    fn decode_errors() {
        assert_eq!(decode_quotation(&[0u8; 10]), Err(DecodeError::NotIpv6));
        let s = spec(Protocol::Icmp6, 5, 1);
        let pkt = s.build();
        assert_eq!(decode_quotation(&pkt[..50]), Err(DecodeError::Truncated));
        let mut bad_magic = pkt.clone();
        bad_magic[ip6::HEADER_LEN + 8] = 0; // clobber magic
        assert!(matches!(
            decode_quotation(&bad_magic),
            Err(DecodeError::BadMagic(_))
        ));
        let mut bad_proto = pkt;
        bad_proto[6] = 99;
        assert_eq!(
            decode_quotation(&bad_proto),
            Err(DecodeError::UnknownProtocol(99))
        );
    }

    #[test]
    fn flow_identity_comes_from_source_port() {
        // The target checksum in the source port cancels the target's
        // pseudo-header contribution, so the transport *checksum field* is
        // a global constant; per-target flow diversity comes from the
        // source port / ICMPv6 identifier itself.
        let a = spec(Protocol::Icmp6, 1, 0);
        let mut b = a;
        b.target = "2001:db8:1:3::abcd".parse().unwrap();
        assert_eq!(a.flow_checksum(), b.flow_checksum());
        let pa = a.build();
        let pb = b.build();
        // ICMPv6 identifier at transport offset 4.
        assert_ne!(
            &pa[ip6::HEADER_LEN + 4..ip6::HEADER_LEN + 6],
            &pb[ip6::HEADER_LEN + 4..ip6::HEADER_LEN + 6]
        );
    }

    #[test]
    fn quoted_through_icmp_error_roundtrip() {
        use crate::icmp6;
        let s = spec(Protocol::Icmp6, 4, 42);
        let probe = s.build();
        // A router at hop 4 quotes the probe with hop limit exhausted.
        let mut expired = probe.clone();
        expired[7] = 0;
        let err = icmp6::build_error(
            "2001:db8:beef::1".parse().unwrap(),
            s.src,
            Icmp6TypeAlias::TimeExceeded,
            &expired,
            63,
        );
        let (outer, msg) = icmp6::parse(&err).unwrap();
        assert_eq!(outer.dst, s.src);
        let d = decode_quotation(&msg.body).unwrap();
        assert_eq!(d.ttl, 4);
        assert_eq!(d.elapsed_us, 42);
        assert_eq!(d.quoted_hop_limit, 0);
        assert_eq!(d.target, s.target);
    }

    use crate::icmp6::Icmp6Type as Icmp6TypeAlias;

    #[test]
    fn echo_body_roundtrip() {
        let s = spec(Protocol::Icmp6, 11, 5_000);
        let pkt = s.build();
        // The echo data is everything after the 8-byte ICMPv6 header.
        let body = &pkt[ip6::HEADER_LEN + 8..];
        let (inst, ttl, elapsed) = decode_echo_body(body).unwrap();
        assert_eq!((inst, ttl, elapsed), (7, 11, 5_000));
        assert_eq!(decode_echo_body(&body[..8]), Err(DecodeError::Truncated));
        let mut bad = body.to_vec();
        bad[0] = 0;
        assert!(matches!(
            decode_echo_body(&bad),
            Err(DecodeError::BadMagic(_))
        ));
    }
}
