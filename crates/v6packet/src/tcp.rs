//! Minimal TCP segments: what a reached destination sends back to a TCP
//! SYN probe (RST or SYN-ACK), and its parser.
//!
//! Unlike ICMPv6 errors, destination TCP responses carry **no quotation**,
//! so the prober cannot recover the originating TTL or timestamp from
//! them — a real limitation of TCP probing the paper's protocol trials
//! surface (§4.2): TCP yields the fewest responses and the least
//! recoverable state.

use crate::csum;
use crate::ip6::{self, Ipv6Header};
use crate::proto_num;
use std::net::Ipv6Addr;

/// TCP flag bits used here.
pub mod flags {
    /// Connection reset.
    pub const RST: u8 = 0x04;
    /// Synchronize.
    pub const SYN: u8 = 0x02;
    /// Acknowledge.
    pub const ACK: u8 = 0x10;
}

/// A parsed (header-only) TCP segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// Flag bits.
    pub flags: u8,
}

/// Builds a complete IPv6+TCP response segment (20-byte header, no
/// options, no payload) from `src` back to `dst`.
pub fn build_response(
    src: Ipv6Addr,
    dst: Ipv6Addr,
    sport: u16,
    dport: u16,
    flags: u8,
    hop_limit: u8,
) -> Vec<u8> {
    let mut out = Vec::new();
    build_response_into(&mut out, src, dst, sport, dport, flags, hop_limit);
    out
}

/// [`build_response`] into a reusable buffer (cleared first).
#[allow(clippy::too_many_arguments)]
pub fn build_response_into(
    out: &mut Vec<u8>,
    src: Ipv6Addr,
    dst: Ipv6Addr,
    sport: u16,
    dport: u16,
    flags: u8,
    hop_limit: u8,
) {
    let mut seg = [0u8; 20];
    seg[0..2].copy_from_slice(&sport.to_be_bytes());
    seg[2..4].copy_from_slice(&dport.to_be_bytes());
    seg[12] = 5 << 4;
    seg[13] = flags;
    seg[14..16].copy_from_slice(&0u16.to_be_bytes());
    let ck = csum::transport_checksum(src, dst, proto_num::TCP, &seg);
    seg[16..18].copy_from_slice(&ck.to_be_bytes());
    let hdr = Ipv6Header {
        traffic_class: 0,
        flow_label: 0,
        payload_len: 20,
        next_header: proto_num::TCP,
        hop_limit,
        src,
        dst,
    };
    out.clear();
    out.extend_from_slice(&hdr.encode());
    out.extend_from_slice(&seg);
}

/// Parses an IPv6+TCP packet (header only); checksum-verified.
pub fn parse(packet: &[u8]) -> Option<(Ipv6Header, TcpSegment)> {
    let hdr = Ipv6Header::decode(packet)?;
    if hdr.next_header != proto_num::TCP {
        return None;
    }
    let seg = packet.get(ip6::HEADER_LEN..)?;
    if seg.len() < 20 || seg.len() != hdr.payload_len as usize {
        return None;
    }
    if !csum::verify_transport(hdr.src, hdr.dst, proto_num::TCP, seg) {
        return None;
    }
    Some((
        hdr,
        TcpSegment {
            sport: u16::from_be_bytes([seg[0], seg[1]]),
            dport: u16::from_be_bytes([seg[2], seg[3]]),
            flags: seg[13],
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rst_roundtrip() {
        let pkt = build_response(
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            80,
            0x1234,
            flags::RST | flags::ACK,
            60,
        );
        let (hdr, seg) = parse(&pkt).unwrap();
        assert_eq!(hdr.hop_limit, 60);
        assert_eq!(seg.sport, 80);
        assert_eq!(seg.dport, 0x1234);
        assert_eq!(seg.flags, flags::RST | flags::ACK);
    }

    #[test]
    fn rejects_corruption_and_non_tcp() {
        let mut pkt = build_response(
            "::1".parse().unwrap(),
            "::2".parse().unwrap(),
            80,
            1,
            flags::RST,
            64,
        );
        assert!(parse(&pkt[..30]).is_none());
        pkt[45] ^= 1;
        assert!(parse(&pkt).is_none());
    }
}
