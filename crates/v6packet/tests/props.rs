//! Property tests: every randomly-parameterized probe is checksum-valid,
//! flow-constant, and decodes back to its spec — including after being
//! quoted inside an ICMPv6 error.

use proptest::prelude::*;
use std::net::Ipv6Addr;
use v6packet::csum::verify_transport;
use v6packet::icmp6::{self, DestUnreachCode, Icmp6Type};
use v6packet::probe::{decode_quotation, ProbeSpec, Protocol};
use v6packet::{ip6, Ipv6Header};

fn protocols() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::Icmp6),
        Just(Protocol::Udp),
        Just(Protocol::Tcp)
    ]
}

prop_compose! {
    fn specs()(
        src: u128,
        target: u128,
        protocol in protocols(),
        ttl in 1u8..=255,
        instance: u8,
        elapsed_us: u32,
    ) -> ProbeSpec {
        ProbeSpec {
            src: Ipv6Addr::from(src),
            target: Ipv6Addr::from(target),
            protocol,
            ttl,
            instance,
            elapsed_us,
        }
    }
}

proptest! {
    #[test]
    fn probes_always_checksum_valid(spec in specs()) {
        let pkt = spec.build();
        let hdr = Ipv6Header::decode(&pkt).unwrap();
        prop_assert!(verify_transport(
            hdr.src, hdr.dst, spec.protocol.next_header(), &pkt[ip6::HEADER_LEN..]
        ));
    }

    #[test]
    fn flow_checksum_independent_of_ttl_time(
        spec in specs(), ttl2 in 1u8..=255, elapsed2: u32,
    ) {
        let mut other = spec;
        other.ttl = ttl2;
        other.elapsed_us = elapsed2;
        prop_assert_eq!(spec.flow_checksum(), other.flow_checksum());
    }

    #[test]
    fn decode_inverts_build(spec in specs()) {
        let d = decode_quotation(&spec.build()).unwrap();
        prop_assert_eq!(d.target, spec.target);
        prop_assert_eq!(d.protocol, spec.protocol);
        prop_assert_eq!(d.ttl, spec.ttl);
        prop_assert_eq!(d.instance, spec.instance);
        prop_assert_eq!(d.elapsed_us, spec.elapsed_us);
        prop_assert!(d.target_cksum_ok);
    }

    #[test]
    fn decode_survives_error_quotation(
        spec in specs(),
        router: u128,
        code in 0usize..6,
    ) {
        let probe = spec.build();
        let ty = match code {
            0 => Icmp6Type::TimeExceeded,
            1 => Icmp6Type::DestUnreachable(DestUnreachCode::NoRoute),
            2 => Icmp6Type::DestUnreachable(DestUnreachCode::AdminProhibited),
            3 => Icmp6Type::DestUnreachable(DestUnreachCode::AddrUnreachable),
            4 => Icmp6Type::DestUnreachable(DestUnreachCode::PortUnreachable),
            _ => Icmp6Type::DestUnreachable(DestUnreachCode::RejectRoute),
        };
        let err = icmp6::build_error(Ipv6Addr::from(router), spec.src, ty, &probe, 64);
        let (outer, msg) = icmp6::parse(&err).unwrap();
        prop_assert_eq!(outer.src, Ipv6Addr::from(router));
        prop_assert_eq!(msg.ty, ty);
        let d = decode_quotation(&msg.body).unwrap();
        prop_assert_eq!(d.target, spec.target);
        prop_assert_eq!(d.ttl, spec.ttl);
        prop_assert_eq!(d.elapsed_us, spec.elapsed_us);
    }

    /// Flipping any single byte of the transport/payload breaks checksum
    /// verification (ensuring the simulator can't accept corrupt packets).
    #[test]
    fn corruption_detected(spec in specs(), at in 0usize..20, val: u8) {
        let pkt = spec.build();
        let off = ip6::HEADER_LEN + at % (pkt.len() - ip6::HEADER_LEN);
        let mut bad = pkt.clone();
        if bad[off] == val { return Ok(()); }
        bad[off] = val;
        let hdr = Ipv6Header::decode(&bad).unwrap();
        prop_assert!(!verify_transport(
            hdr.src, hdr.dst, spec.protocol.next_header(), &bad[ip6::HEADER_LEN..]
        ));
    }
}
