//! The generated Internet: ASes, routers, subnet plans, hosts, vantages.
//!
//! All entities live in flat arenas indexed by small integer ids, keeping
//! the structure compact and the generation deterministic. Ground truth —
//! the exact subnet plan and host population — is queryable for the §6
//! validation experiments, but the probing engine only ever reveals it
//! through packets.

use crate::config::TopologyConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv6Addr;
use std::sync::Arc;
use v6addr::{Asn, BgpTable, Ipv6Prefix, PrefixTrie};

/// Index into [`Topology::ases`].
pub type AsIdx = u32;

/// Index into [`Topology::routers`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RouterId(pub u32);

/// Index into [`Topology::subnets`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubnetId(pub u32);

/// One of the three probing vantage points.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VantageId(pub u8);

/// AS role in the transit hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AsTier {
    /// Default-free clique member.
    Tier1,
    /// Regional transit.
    Tier2,
    /// The high-centrality peering hub (Hurricane Electric analogue).
    Hub,
    /// Edge/stub enterprise network.
    Stub,
    /// Residential ISP with CPE subscribers; payload is the index into
    /// `TopologyConfig::cpe_isps`.
    CpeIsp(u8),
}

/// How a stub answers probes to covered-but-unassigned addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnknownAddrPolicy {
    /// ICMPv6 address unreachable (code 3).
    AddrUnreachable,
    /// ICMPv6 administratively prohibited (code 1).
    AdminProhibited,
    /// ICMPv6 reject route (code 6).
    RejectRoute,
    /// Silent drop.
    Silent,
}

/// One autonomous system.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsInfo {
    /// The (primary) AS number.
    pub asn: Asn,
    /// Role in the hierarchy.
    pub tier: AsTier,
    /// Prefixes announced into BGP.
    pub prefixes: Vec<Ipv6Prefix>,
    /// Router-infrastructure prefix. May be *unannounced* (see
    /// [`AsInfo::infra_announced`]) — the §6 record-keeping complication.
    pub infra_prefix: Ipv6Prefix,
    /// Whether the infra prefix is visible in BGP.
    pub infra_announced: bool,
    /// A sibling ASN used to originate customer prefixes, if any — the
    /// §6 "equivalent ASN" complication.
    pub sibling_asn: Option<Asn>,
    /// Entry (border) router.
    pub border: RouterId,
    /// Second border for ECMP entry, if the AS load-balances.
    pub border2: Option<RouterId>,
    /// Backbone routers crossed when transiting this AS.
    pub core: Vec<RouterId>,
    /// Adjacent ASes (undirected graph).
    pub neighbors: Vec<AsIdx>,
    /// Root of this AS's subnet plan, if it hosts subnets.
    pub subnet_root: Option<SubnetId>,
    /// Border firewall drops UDP/TCP probes toward end hosts.
    pub fw_blocks_udp_tcp: bool,
    /// Response policy for covered-but-unassigned addresses.
    pub unknown_policy: UnknownAddrPolicy,
    /// An NPTv6-style middlebox rewrites inbound destinations (flips a
    /// low IID bit) before packets traverse this AS's interior.
    pub middlebox: bool,
}

/// Router role (determines its response-address style).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterRole {
    /// AS backbone.
    Core,
    /// AS border.
    Border,
    /// Intermediate distribution/aggregation router.
    Distribution,
    /// /64 LAN gateway (responds from `prefix::1` — IA-hack visible).
    LanGateway,
    /// Subscriber CPE (responds from an EUI-64 address).
    Cpe,
}

/// One router we may hear from. A physical router owns one or more
/// interface addresses; which one sources an ICMPv6 error depends on the
/// direction the probe arrived from — the reason *alias resolution*
/// (grouping interfaces back into routers) is its own research problem,
/// and the per-router fragment-identification counter is the signal
/// speedtrap-style resolution exploits.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RouterInfo {
    /// Primary interface address (always present).
    pub addr: Ipv6Addr,
    /// Additional interface addresses (aliases of this router).
    pub alt_addrs: Vec<Ipv6Addr>,
    /// Owning AS.
    pub as_idx: AsIdx,
    /// Role.
    pub role: RouterRole,
    /// Uses the aggressive rate-limit class.
    pub aggressive_rl: bool,
    /// Never originates ICMPv6 errors (silent hop).
    pub responsive: bool,
    /// Responds only to ICMPv6 probes (the §4.2 stateful-security hop).
    pub icmp_only: bool,
}

impl RouterInfo {
    /// The interface address used when answering a probe that arrived
    /// from `prev` (a stable per-direction choice).
    pub fn response_addr(&self, router_id: RouterId, prev: u64) -> Ipv6Addr {
        if self.alt_addrs.is_empty() {
            return self.addr;
        }
        let n = self.alt_addrs.len() + 1;
        let pick = crate::flow::mix2(router_id.0 as u64, prev) as usize % n;
        if pick == 0 {
            self.addr
        } else {
            self.alt_addrs[pick - 1]
        }
    }

    /// All interface addresses of this router.
    pub fn all_addrs(&self) -> impl Iterator<Item = Ipv6Addr> + '_ {
        std::iter::once(self.addr).chain(self.alt_addrs.iter().copied())
    }
}

/// Subnet-plan node kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubnetKind {
    /// Interior distribution subnet with a city-level location — the §6
    /// ground truth granularity.
    Distribution {
        /// Synthetic city identifier.
        city: u16,
    },
    /// Active /64 LAN with hosts.
    Lan,
    /// Residential subscriber delegation (IA), /56 or /64.
    CpeDelegation {
        /// Has an active WWW client (visible to the CDN seed).
        active_client: bool,
    },
}

/// One node in an AS's subnet plan.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SubnetNode {
    /// Covered prefix.
    pub prefix: Ipv6Prefix,
    /// Gateway / distribution router for this node — the hop a trace
    /// crosses when descending into the subnet.
    pub router: RouterId,
    /// Parent node (None at the AS's plan root).
    pub parent: Option<SubnetId>,
    /// Owning AS.
    pub as_idx: AsIdx,
    /// Node kind.
    pub kind: SubnetKind,
}

/// Host address classes (drives IID synthesis and seed visibility).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostKind {
    /// Manually numbered server (low-byte IID); likely in forward DNS.
    Server,
    /// SLAAC with EUI-64 IID.
    Slaac,
    /// SLAAC privacy (random IID).
    Privacy,
    /// Residential WWW client (random IID, inside a CPE delegation);
    /// visible only to the CDN.
    Client,
}

/// A probing vantage point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Vantage {
    /// Identifier (index).
    pub id: VantageId,
    /// Display name (EU-NET, US-EDU-1, US-EDU-2) — shared so probers
    /// carry it into logs without copying.
    pub name: Arc<str>,
    /// Probe source address.
    pub addr: Ipv6Addr,
    /// Hosting AS.
    pub as_idx: AsIdx,
    /// On-premises router chain crossed before the AS border.
    pub onprem: Vec<RouterId>,
}

/// A fully generated synthetic Internet.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Generation parameters.
    pub config: TopologyConfig,
    /// All ASes.
    pub ases: Vec<AsInfo>,
    /// The global routing table (announced prefixes only).
    pub bgp: BgpTable,
    /// All router interfaces.
    pub routers: Vec<RouterInfo>,
    /// All subnet-plan nodes.
    pub subnets: Vec<SubnetNode>,
    /// Most-specific active subnet per address.
    pub subnet_trie: PrefixTrie<SubnetId>,
    /// Sorted host address words (for existence checks).
    pub host_words: Vec<u128>,
    /// Parallel to `host_words`: the host's class.
    pub host_kinds: Vec<HostKind>,
    /// The three vantages.
    pub vantages: Vec<Vantage>,
    /// BFS parent array per vantage over the AS graph
    /// (`as_parents[v][a]` = previous AS on the path from vantage `v`'s AS
    /// to AS `a`, or `u32::MAX` if unreachable/self).
    pub(crate) as_parents: Vec<Vec<AsIdx>>,
    /// Registry-only (unannounced) infra prefixes: the §6 augmentation.
    pub rir_extra: Vec<(Ipv6Prefix, Asn)>,
    /// Declared sibling-ASN pairs: the §6 equivalence augmentation.
    pub asn_equivalences: Vec<(Asn, Asn)>,
    /// ASN (including siblings) → owning AS index.
    pub(crate) asn_index: std::collections::HashMap<u32, AsIdx>,
    /// Interface address → owning router (for direct-probing lookups).
    pub(crate) iface_index: std::collections::HashMap<u128, RouterId>,
}

impl Topology {
    /// Does a host exist at `addr`?
    pub fn host_exists(&self, addr: Ipv6Addr) -> bool {
        self.host_words.binary_search(&u128::from(addr)).is_ok()
    }

    /// The host's class, if one exists at `addr`.
    pub fn host_kind(&self, addr: Ipv6Addr) -> Option<HostKind> {
        self.host_words
            .binary_search(&u128::from(addr))
            .ok()
            .map(|i| self.host_kinds[i])
    }

    /// Iterates `(address, kind)` over the full host population.
    pub fn hosts(&self) -> impl Iterator<Item = (Ipv6Addr, HostKind)> + '_ {
        self.host_words
            .iter()
            .zip(&self.host_kinds)
            .map(|(&w, &k)| (Ipv6Addr::from(w), k))
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.host_words.len()
    }

    /// All router response addresses (every interface of every router) —
    /// the discovery *ceiling* any campaign can reach.
    pub fn router_addrs(&self) -> impl Iterator<Item = Ipv6Addr> + '_ {
        self.routers.iter().flat_map(|r| r.all_addrs())
    }

    /// The router owning interface address `addr`, if any.
    pub fn router_by_iface(&self, addr: Ipv6Addr) -> Option<RouterId> {
        self.iface_index.get(&u128::from(addr)).copied()
    }

    /// Ground-truth alias groups: for each router with more than one
    /// interface, its full address set (the speedtrap validation target).
    pub fn ground_truth_aliases(&self) -> Vec<Vec<Ipv6Addr>> {
        self.routers
            .iter()
            .filter(|r| !r.alt_addrs.is_empty())
            .map(|r| r.all_addrs().collect())
            .collect()
    }

    /// Ground-truth alias groups restricted to `ifaces`: for each
    /// router owning at least two of the given interfaces, the owned
    /// subset. The scoring reference for alias resolution over a
    /// *discovered* interface set — interfaces discovery never saw
    /// can't be expected from the resolver.
    pub fn ground_truth_aliases_among(&self, ifaces: &[Ipv6Addr]) -> Vec<Vec<Ipv6Addr>> {
        let mut by_router: BTreeMap<RouterId, Vec<Ipv6Addr>> = BTreeMap::new();
        for &a in ifaces {
            if let Some(rid) = self.router_by_iface(a) {
                by_router.entry(rid).or_default().push(a);
            }
        }
        let mut groups: Vec<Vec<Ipv6Addr>> = by_router
            .into_values()
            .filter(|g| g.len() >= 2)
            .map(|mut g| {
                g.sort_unstable();
                g.dedup();
                g
            })
            .filter(|g| g.len() >= 2)
            .collect();
        groups.sort();
        groups
    }

    /// Ground-truth router count behind `ifaces`: how many distinct
    /// routers own the given interface addresses (non-router addresses
    /// count for nothing). The target a perfect alias resolver would
    /// collapse the set to.
    pub fn ground_truth_router_count(&self, ifaces: &[Ipv6Addr]) -> usize {
        let routers: std::collections::BTreeSet<RouterId> = ifaces
            .iter()
            .filter_map(|&a| self.router_by_iface(a))
            .collect();
        routers.len()
    }

    /// Ground-truth interior ("distribution") subnets with city labels,
    /// for §6 validation.
    pub fn ground_truth_distribution_subnets(&self) -> Vec<(Ipv6Prefix, u16, Asn)> {
        self.subnets
            .iter()
            .filter_map(|s| match s.kind {
                SubnetKind::Distribution { city } => {
                    Some((s.prefix, city, self.ases[s.as_idx as usize].asn))
                }
                _ => None,
            })
            .collect()
    }

    /// Ground-truth active client /64s (for the CDN seed and kIP), as the
    /// covering /64 of each active subscriber delegation.
    pub fn active_client_64s(&self) -> Vec<Ipv6Prefix> {
        self.hosts()
            .filter(|(_, k)| *k == HostKind::Client)
            .map(|(a, _)| Ipv6Prefix::truncating(a, 64))
            .collect()
    }

    /// Resolves the vantage whose source address is `addr`.
    pub fn vantage_by_addr(&self, addr: Ipv6Addr) -> Option<&Vantage> {
        self.vantages.iter().find(|v| v.addr == addr)
    }

    /// The AS that owns `asn` (primary or sibling).
    pub fn as_by_asn(&self, asn: Asn) -> Option<AsIdx> {
        self.asn_index.get(&asn.0).copied()
    }

    /// The AS hosting `router`.
    pub fn router_as(&self, router: RouterId) -> &AsInfo {
        &self.ases[self.routers[router.0 as usize].as_idx as usize]
    }

    /// Origin ASN of an address under the *augmented* view: BGP plus
    /// registry-only infra prefixes. Mirrors what the paper's analysis
    /// does when a hop address is not covered by BGP.
    pub fn origin_augmented(&self, addr: Ipv6Addr) -> Option<Asn> {
        if let Some(asn) = self.bgp.origin(addr) {
            return Some(asn);
        }
        self.rir_extra
            .iter()
            .find(|(p, _)| p.contains_addr(addr))
            .map(|&(_, a)| a)
    }

    /// The subnet chain (root → … → most-specific) covering `addr` inside
    /// its AS's plan, if any.
    pub fn subnet_chain(&self, addr: Ipv6Addr) -> Vec<SubnetId> {
        let Some((_, &leaf)) = self.subnet_trie.longest_match(addr) else {
            return Vec::new();
        };
        let mut chain = vec![leaf];
        let mut cur = leaf;
        while let Some(parent) = self.subnets[cur.0 as usize].parent {
            chain.push(parent);
            cur = parent;
        }
        chain.reverse();
        chain
    }
}
