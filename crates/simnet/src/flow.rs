//! Deterministic hashing for flow keys and "random-looking" per-entity
//! decisions (loss, jitter, policy draws).
//!
//! The simulator must be reproducible, so anything that looks random is a
//! hash of stable identifiers. `splitmix64` is used as the mixing
//! function — tiny, fast, and statistically solid for this purpose.

use std::net::Ipv6Addr;

/// SplitMix64 finalizer: a bijective 64-bit mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Combines two words into one mixed word.
#[inline]
pub fn mix2(a: u64, b: u64) -> u64 {
    mix64(a ^ mix64(b))
}

/// Hashes a 128-bit word.
#[inline]
pub fn mix128(x: u128) -> u64 {
    mix2(x as u64, (x >> 64) as u64)
}

/// The 5-tuple a per-flow load balancer hashes. For Yarrp6 probes every
/// field is constant per target (paper §4.1), so ECMP path choice is
/// stable per target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
    /// IPv6 flow label (RFC 6438 recommends hashing it for ECMP).
    pub flow_label: u32,
    /// Transport protocol number.
    pub proto: u8,
    /// Source port / ICMPv6 identifier.
    pub sport: u16,
    /// Destination port / ICMPv6 sequence.
    pub dport: u16,
}

impl FlowKey {
    /// The 64-bit flow hash used by ECMP decisions.
    ///
    /// Two splitmix finalizer rounds over xor-folded addresses: the
    /// fields land in distinct bit positions before the first avalanche,
    /// which is plenty for ECMP bit draws and cache bucketing — and this
    /// sits on the per-probe hot path, so rounds are budgeted.
    #[inline]
    pub fn hash(&self) -> u64 {
        let src = u128::from(self.src);
        let dst = u128::from(self.dst);
        let s = (src as u64) ^ ((src >> 64) as u64).rotate_left(32);
        let d = (dst as u64) ^ ((dst >> 64) as u64).rotate_left(32);
        let ports = ((self.proto as u64) << 32) | ((self.sport as u64) << 16) | self.dport as u64;
        mix2(s, d ^ ports ^ ((self.flow_label as u64) << 40))
    }
}

/// A deterministic Bernoulli draw: true with probability `milli`/1000,
/// keyed by `key`.
#[inline]
pub fn draw_milli(key: u64, milli: u32) -> bool {
    (mix64(key) % 1000) < milli as u64
}

/// A deterministic Bernoulli draw with an f64 probability, keyed by `key`.
#[inline]
pub fn draw_frac(key: u64, frac: f64) -> bool {
    let threshold = (frac.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
    mix64(key) <= threshold
}

/// Deterministic jitter in `[0, span_us)`, keyed by `key`.
#[inline]
pub fn jitter_us(key: u64, span_us: u64) -> u64 {
    if span_us == 0 {
        0
    } else {
        mix64(key) % span_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
        // Low bits of consecutive inputs should differ (avalanche sanity).
        let a = mix64(1) & 0xff;
        let b = mix64(2) & 0xff;
        let c = mix64(3) & 0xff;
        assert!(!(a == b && b == c));
    }

    #[test]
    fn flowkey_stable_and_sensitive() {
        let k = FlowKey {
            src: "2001:db8::1".parse().unwrap(),
            dst: "2001:db8::2".parse().unwrap(),
            flow_label: 0,
            proto: 58,
            sport: 0x1234,
            dport: 80,
        };
        assert_eq!(k.hash(), k.hash());
        let mut k2 = k;
        k2.sport = 0x1235;
        assert_ne!(k.hash(), k2.hash());
        let mut k3 = k;
        k3.dst = "2001:db8::3".parse().unwrap();
        assert_ne!(k.hash(), k3.hash());
        let mut k4 = k;
        k4.flow_label = 0xabcde;
        assert_ne!(k.hash(), k4.hash());
    }

    #[test]
    fn draws_respect_probability_roughly() {
        let n = 10_000u64;
        let hits = (0..n).filter(|&i| draw_milli(i, 100)).count();
        // 10% ± 2% over 10k draws.
        assert!((800..=1200).contains(&hits), "hits={hits}");
        let all = (0..n).filter(|&i| draw_frac(i, 1.0)).count();
        assert_eq!(all as u64, n);
        let none = (0..n).filter(|&i| draw_milli(i, 0)).count();
        assert_eq!(none, 0);
    }

    #[test]
    fn jitter_bounded() {
        for i in 0..1000 {
            assert!(jitter_us(i, 500) < 500);
        }
        assert_eq!(jitter_us(7, 0), 0);
    }
}
