//! Topology generation parameters and scale presets.

use crate::adversarial::AdversarialSchedule;
use crate::fault::FaultSchedule;
use serde::{Deserialize, Serialize};

/// Named scale presets. The paper's Internet had ~56k routed prefixes and
/// ~14k v6 ASes; `Full` approaches that shape, `Small` is the default for
/// experiment binaries, `Tiny` keeps unit tests fast.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// A few dozen ASes — for unit/integration tests.
    Tiny,
    /// Hundreds of ASes, ~10^5 host addresses — default for benches.
    Small,
    /// Thousands of ASes, ~10^6 host addresses — closest to the paper.
    Full,
}

impl Scale {
    /// Parses `BEHOLDER_SCALE` environment values.
    pub fn from_env() -> Scale {
        match std::env::var("BEHOLDER_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("full") => Scale::Full,
            _ => Scale::Small,
        }
    }
}

/// Rate-limit class of a router's ICMPv6 error token bucket.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RateLimitClass {
    /// Sustained error-generation rate (tokens per second).
    pub rate_pps: u32,
    /// Bucket depth (burst tolerance).
    pub burst: u32,
}

/// Configuration for one residential/CPE ISP (the Table 7 EUI-64 clouds).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CpeIspConfig {
    /// Number of subscriber delegations to materialize.
    pub subscribers: usize,
    /// IEEE OUI of the (single) CPE manufacturer deployed by this ISP.
    pub oui: u32,
    /// Prefix length delegated to each subscriber (56 or 64).
    pub delegation_len: u8,
    /// Fraction of subscribers with an active WWW client (feeds the CDN
    /// seed synthesis).
    pub active_client_frac: f64,
}

/// All knobs of the synthetic Internet.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Master RNG seed; two configs with equal fields generate identical
    /// topologies.
    pub seed: u64,
    /// Number of tier-1 (clique) transit ASes.
    pub n_tier1: usize,
    /// Number of tier-2 regional transit ASes.
    pub n_tier2: usize,
    /// Number of stub/edge ASes.
    pub n_stub: usize,
    /// Fraction of stubs that additionally peer with the hub AS (the
    /// Hurricane-Electric analogue), raising its path centrality.
    pub hub_peering_frac: f64,
    /// Active /64 LANs materialized per stub AS (with hosts).
    pub lans_per_stub: usize,
    /// Hosts per active LAN.
    pub hosts_per_lan: usize,
    /// Residential ISPs with homogeneous CPE deployments.
    pub cpe_isps: Vec<CpeIspConfig>,
    /// Default router ICMPv6 error rate limit.
    pub default_rl: RateLimitClass,
    /// Aggressive limiter applied to a fraction of routers (§4.2 observes
    /// hops with markedly stronger limiting).
    pub aggressive_rl: RateLimitClass,
    /// Fraction of routers using the aggressive limiter.
    pub aggressive_frac: f64,
    /// Fraction of routers that never send ICMPv6 errors.
    pub unresponsive_frac: f64,
    /// Per-hop probe loss, in thousandths.
    pub loss_milli: u32,
    /// Fraction of stub ASes whose border firewalls drop UDP/TCP probes
    /// toward end hosts (ICMPv6 passes) — drives the §4.2 protocol deltas.
    pub fw_blocks_udp_tcp_frac: f64,
    /// Fraction of stub ASes answering unknown addresses with
    /// administratively-prohibited instead of address-unreachable.
    pub admin_prohibited_frac: f64,
    /// Per-hop one-way latency in microseconds (base; jitter is added).
    pub hop_latency_us: u64,
    /// On-premises (intra-campus) hop chain length for each vantage.
    /// The paper's US-EDU-2 had a notably longer on-prem path.
    pub vantage_onprem_hops: Vec<usize>,
    /// Probability (per mille) that a gateway answers a probe to a
    /// nonexistent IID in an active /64 with address-unreachable — low,
    /// because neighbor-discovery queues throttle these hard.
    pub nohost_du_milli: u32,
    /// Probability (per mille) that the deepest router answers probes to
    /// routed-but-unassigned space with its policy code.
    pub nosubnet_du_milli: u32,
    /// Probability (per mille) of a no-route answer for unrouted targets.
    pub noroute_du_milli: u32,
    /// Probability (per mille) that a residential client host's CPE
    /// firewall silently eats probes that reached the host.
    pub client_silent_milli: u32,
    /// Probability (per mille) that a non-client host is firewalled
    /// silent.
    pub host_fw_milli: u32,
    /// `(vantage index, TTL)` pairs whose hop never answers probes from
    /// that vantage — mirrors the unresponsive hop 5 near the paper's
    /// vantage that shaped its Table 6 fill-mode results. One entry per
    /// vantage that has such a hop; a vantage may appear more than once
    /// (several silent TTLs).
    pub vantage_silent_hops: Vec<(u8, u8)>,
    /// Fraction (per mille) of stub ASes fronted by a middlebox that
    /// rewrites probe destination addresses (NPTv6-style). The quoted
    /// packet inside ICMPv6 errors then carries the *rewritten*
    /// destination — exactly the tampering Yarrp6's target checksum (in
    /// the source port / ICMPv6 identifier) exists to detect.
    pub middlebox_milli: u32,
    /// Scheduled faults on the virtual clock: vantage outage windows,
    /// link blackhole/flap events and mid-campaign responder
    /// disappearances (see [`crate::fault`]). Empty by default — the
    /// engine's hot path then skips fault evaluation entirely, keeping
    /// fault-free campaigns bit-identical to earlier releases.
    pub faults: FaultSchedule,
    /// Scheduled hostile responders on the virtual clock: lying quotes,
    /// spoofed sources, zombie middleboxes, duplicate storms and
    /// garbage emitters (see [`crate::adversarial`]). Empty by default
    /// — the engine's hot path then skips adversarial evaluation
    /// entirely, keeping benign campaigns bit-identical to earlier
    /// releases.
    pub adversarial: AdversarialSchedule,
}

impl TopologyConfig {
    /// Preset for `Scale::Tiny`.
    pub fn tiny(seed: u64) -> Self {
        TopologyConfig {
            seed,
            n_tier1: 3,
            n_tier2: 8,
            n_stub: 40,
            hub_peering_frac: 0.3,
            lans_per_stub: 6,
            hosts_per_lan: 4,
            cpe_isps: vec![
                CpeIspConfig {
                    subscribers: 400,
                    oui: 0x001122,
                    delegation_len: 64,
                    active_client_frac: 0.5,
                },
                CpeIspConfig {
                    subscribers: 300,
                    oui: 0xa0b1c2,
                    delegation_len: 56,
                    active_client_frac: 0.4,
                },
            ],
            default_rl: RateLimitClass {
                rate_pps: 150,
                burst: 60,
            },
            aggressive_rl: RateLimitClass {
                rate_pps: 30,
                burst: 10,
            },
            aggressive_frac: 0.08,
            unresponsive_frac: 0.05,
            loss_milli: 10,
            fw_blocks_udp_tcp_frac: 0.25,
            admin_prohibited_frac: 0.3,
            hop_latency_us: 2_000,
            vantage_onprem_hops: vec![2, 3, 5],
            nohost_du_milli: 150,
            nosubnet_du_milli: 10,
            noroute_du_milli: 500,
            client_silent_milli: 900,
            host_fw_milli: 150,
            vantage_silent_hops: vec![(0, 5)],
            middlebox_milli: 20,
            faults: FaultSchedule::default(),
            adversarial: AdversarialSchedule::default(),
        }
    }

    /// Preset for `Scale::Small` (default experiment scale).
    pub fn small(seed: u64) -> Self {
        TopologyConfig {
            n_tier1: 6,
            n_tier2: 40,
            n_stub: 600,
            lans_per_stub: 12,
            hosts_per_lan: 6,
            cpe_isps: vec![
                CpeIspConfig {
                    subscribers: 60_000,
                    oui: 0x001122,
                    delegation_len: 64,
                    active_client_frac: 0.5,
                },
                CpeIspConfig {
                    subscribers: 45_000,
                    oui: 0xa0b1c2,
                    delegation_len: 56,
                    active_client_frac: 0.4,
                },
            ],
            ..Self::tiny(seed)
        }
    }

    /// Preset for `Scale::Full`.
    pub fn full(seed: u64) -> Self {
        TopologyConfig {
            n_tier1: 10,
            n_tier2: 120,
            n_stub: 4_000,
            lans_per_stub: 16,
            hosts_per_lan: 8,
            cpe_isps: vec![
                CpeIspConfig {
                    subscribers: 150_000,
                    oui: 0x001122,
                    delegation_len: 64,
                    active_client_frac: 0.5,
                },
                CpeIspConfig {
                    subscribers: 120_000,
                    oui: 0xa0b1c2,
                    delegation_len: 56,
                    active_client_frac: 0.4,
                },
            ],
            ..Self::tiny(seed)
        }
    }

    /// A *tiled* discovery topology: `tiles` tranches of stub ASes with
    /// dense sequential LAN plans layered onto the tiny skeleton.
    ///
    /// Each tile adds another tranche of enterprise stubs (with their
    /// distribution hierarchies, LAN gateways and alias interfaces), so
    /// the address space holds far more discoverable structure than any
    /// single seed source covers — the workload multi-round adaptive
    /// discovery needs: round 1's seeds reveal a fraction of each tile,
    /// and the feedback loop has real, findable neighbors left to earn.
    /// Transit capacity (tier-2 count) grows with the tile count so
    /// paths stay diverse instead of funneling through one bottleneck.
    pub fn tiled(seed: u64, tiles: usize) -> Self {
        let tiles = tiles.max(1);
        TopologyConfig {
            n_tier2: 8 + 2 * tiles,
            n_stub: 40 * tiles,
            // Denser, mostly-sequential LAN plans per stub: more /64s
            // adjacent to whatever a first round discovers.
            lans_per_stub: 10,
            hosts_per_lan: 3,
            ..Self::tiny(seed)
        }
    }

    /// Preset lookup by [`Scale`].
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        match scale {
            Scale::Tiny => Self::tiny(seed),
            Scale::Small => Self::small(seed),
            Scale::Full => Self::full(seed),
        }
    }

    /// Total AS count this config will generate (tier1 + tier2 + hub +
    /// stubs + CPE ISPs).
    pub fn total_ases(&self) -> usize {
        self.n_tier1 + self.n_tier2 + 1 + self.n_stub + self.cpe_isps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_monotonically() {
        let t = TopologyConfig::tiny(1);
        let s = TopologyConfig::small(1);
        let f = TopologyConfig::full(1);
        assert!(t.total_ases() < s.total_ases());
        assert!(s.total_ases() < f.total_ases());
        assert!(t.cpe_isps[0].subscribers < s.cpe_isps[0].subscribers);
        assert!(s.cpe_isps[0].subscribers < f.cpe_isps[0].subscribers);
    }

    #[test]
    fn tiled_grows_with_tile_count() {
        let t1 = TopologyConfig::tiled(1, 1);
        let t4 = TopologyConfig::tiled(1, 4);
        assert_eq!(t4.n_stub, 4 * t1.n_stub);
        assert!(t4.total_ases() > t1.total_ases());
        assert!(t1.total_ases() >= TopologyConfig::tiny(1).total_ases());
        // Zero clamps to one tile instead of generating a degenerate net.
        assert_eq!(TopologyConfig::tiled(1, 0).n_stub, 40);
    }

    #[test]
    fn env_scale_defaults_small() {
        std::env::remove_var("BEHOLDER_SCALE");
        assert_eq!(Scale::from_env(), Scale::Small);
    }

    #[test]
    fn three_vantages_configured() {
        assert_eq!(TopologyConfig::tiny(0).vantage_onprem_hops.len(), 3);
        // US-EDU-2 analogue has the longest on-prem chain.
        let hops = TopologyConfig::tiny(0).vantage_onprem_hops;
        assert!(hops[2] > hops[0]);
    }
}
