//! Virtual-time adversarial injection: hostile responders layered over
//! the deterministic topology.
//!
//! Where [`crate::fault`] models parts of the network *failing*, this
//! module models parts of it *lying*. An [`AdversarialSchedule`]
//! designates routers as hostile for a window of the virtual clock, in
//! one of five classes drawn from the pathologies a real IPv6 campaign
//! meets (bogus quotes, spoofed sources, broken middleboxes):
//!
//! * [`AdversarialClass::LyingTtl`] — the router answers normally but
//!   rewrites the quoted probe's TTL field to a per-(router, target)
//!   pseudo-random lie, teleporting the record to a wrong hop distance;
//! * [`AdversarialClass::SpoofedSource`] — the router's Time Exceeded
//!   errors carry a fabricated source address outside the topology's
//!   address space. An off-path spoofer cannot know the quoted packet's
//!   residual hop limit, so its quotes keep the original value instead
//!   of the exhausted `0` — the inconsistency a hardened decoder
//!   rejects;
//! * [`AdversarialClass::ZombieEcho`] — an in-path middlebox that
//!   intercepts every probe passing beyond it and answers Time Exceeded
//!   with its own address, whatever the probe's TTL — the "answers for
//!   every TTL" zombie, which plants its address at many TTLs of the
//!   same trace;
//! * [`AdversarialClass::DuplicateStorm`] — a stale buffer bug: the
//!   router also answers probes addressed a few TTLs past it
//!   ([`STORM_SPREAD`]), smearing duplicates of its Time Exceeded over
//!   neighboring rows and suppressing the true hops there;
//! * [`AdversarialClass::GarbageBytes`] — the router's responses leave
//!   corrupted: deterministically truncated or bit-flipped, exercising
//!   every branch of a total decoder.
//!
//! The schedule rides on
//! [`TopologyConfig::adversarial`](crate::config::TopologyConfig::adversarial)
//! and is evaluated by [`Engine`](crate::engine::Engine) per probe on
//! the same shifted virtual clock as the fault schedule, charging one
//! of the `adv_*` counters of [`EngineStats`](crate::engine::EngineStats)
//! per hostile action. Everything is pure arithmetic — no wall time, no
//! RNG — so a poisoned campaign replays bit-for-bit, and the default
//! (empty) schedule is a guaranteed no-op on the hot path.

use crate::topology::RouterId;
use serde::{Deserialize, Serialize};

/// How many TTLs past its own depth a [`AdversarialClass::DuplicateStorm`]
/// responder keeps answering for, spraying stale duplicates over the
/// neighboring rows of the trace.
pub const STORM_SPREAD: usize = 2;

/// The hostile behavior a scheduled responder exhibits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdversarialClass {
    /// Rewrites the quoted probe TTL to a per-(router, target) lie.
    LyingTtl,
    /// Time Exceeded errors carry a fabricated off-topology source and
    /// an un-exhausted (non-zero) quoted hop limit.
    SpoofedSource,
    /// Intercepts every probe passing beyond it and answers Time
    /// Exceeded with its own address, at any TTL.
    ZombieEcho,
    /// Also answers probes addressed up to [`STORM_SPREAD`] TTLs past
    /// it, shadowing the true hops there with stale duplicates.
    DuplicateStorm,
    /// Emits truncated or bit-flipped response bytes.
    GarbageBytes,
}

impl AdversarialClass {
    /// Bit for the engine's per-router class mask.
    pub(crate) fn bit(self) -> u8 {
        match self {
            AdversarialClass::LyingTtl => 1 << 0,
            AdversarialClass::SpoofedSource => 1 << 1,
            AdversarialClass::ZombieEcho => 1 << 2,
            AdversarialClass::DuplicateStorm => 1 << 3,
            AdversarialClass::GarbageBytes => 1 << 4,
        }
    }

    /// Every class, in declaration order (bench/test fan-out helper).
    pub const ALL: [AdversarialClass; 5] = [
        AdversarialClass::LyingTtl,
        AdversarialClass::SpoofedSource,
        AdversarialClass::ZombieEcho,
        AdversarialClass::DuplicateStorm,
        AdversarialClass::GarbageBytes,
    ];
}

/// One router's hostile window: `router` exhibits `class` for probes
/// whose shifted virtual send time falls in `[from_us, until_us)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostileWindow {
    /// The router that misbehaves.
    pub router: RouterId,
    /// What it does while hostile.
    pub class: AdversarialClass,
    /// Window start (inclusive), µs on the virtual clock.
    pub from_us: u64,
    /// Window end (exclusive). `u64::MAX` never ends.
    pub until_us: u64,
}

/// A deterministic, virtual-time schedule of hostile responders.
///
/// Attach one to
/// [`TopologyConfig::adversarial`](crate::config::TopologyConfig::adversarial);
/// the engine evaluates it per probe. The default (empty) schedule is a
/// guaranteed no-op: the hot path pays one cached branch when nothing is
/// scheduled, so clean campaigns stay bit-identical to builds without
/// this module. One router may carry several classes at once — the
/// behaviors compose (a lying zombie both intercepts and mis-quotes).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdversarialSchedule {
    /// Scheduled hostile windows, evaluated independently.
    pub hostiles: Vec<HostileWindow>,
}

impl AdversarialSchedule {
    /// No hostile responders at all — the engine skips evaluation.
    pub fn is_empty(&self) -> bool {
        self.hostiles.is_empty()
    }

    /// Adds a hostile window (builder style).
    pub fn with_hostile(
        mut self,
        router: RouterId,
        class: AdversarialClass,
        from_us: u64,
        until_us: u64,
    ) -> Self {
        self.hostiles.push(HostileWindow {
            router,
            class,
            from_us,
            until_us,
        });
        self
    }

    /// Adds a permanently hostile router (builder style): the window is
    /// `[0, u64::MAX)`.
    pub fn with_hostile_always(self, router: RouterId, class: AdversarialClass) -> Self {
        self.with_hostile(router, class, 0, u64::MAX)
    }

    /// Is `router` exhibiting `class` at `now_us`?
    pub fn active(&self, router: RouterId, class: AdversarialClass, now_us: u64) -> bool {
        self.hostiles.iter().any(|h| {
            h.router == router && h.class == class && h.from_us <= now_us && now_us < h.until_us
        })
    }

    /// Union of the class bits `router` ever exhibits, over all windows
    /// — the engine's precomputed fast filter (a zero mask skips the
    /// per-window scan entirely).
    pub(crate) fn class_mask(&self, router: RouterId) -> u8 {
        self.hostiles
            .iter()
            .filter(|h| h.router == router && h.from_us < h.until_us)
            .fold(0u8, |m, h| m | h.class.bit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_a_no_op() {
        let s = AdversarialSchedule::default();
        assert!(s.is_empty());
        for c in AdversarialClass::ALL {
            assert!(!s.active(RouterId(0), c, 0));
        }
        assert_eq!(s.class_mask(RouterId(0)), 0);
    }

    #[test]
    fn windows_are_half_open_and_per_class() {
        let r = RouterId(5);
        let s =
            AdversarialSchedule::default().with_hostile(r, AdversarialClass::LyingTtl, 100, 200);
        assert!(!s.is_empty());
        assert!(!s.active(r, AdversarialClass::LyingTtl, 99));
        assert!(s.active(r, AdversarialClass::LyingTtl, 100));
        assert!(s.active(r, AdversarialClass::LyingTtl, 199));
        assert!(!s.active(r, AdversarialClass::LyingTtl, 200));
        assert!(
            !s.active(r, AdversarialClass::ZombieEcho, 150),
            "other classes unaffected"
        );
        assert!(
            !s.active(RouterId(6), AdversarialClass::LyingTtl, 150),
            "other routers unaffected"
        );
    }

    #[test]
    fn class_mask_unions_all_windows() {
        let r = RouterId(9);
        let s = AdversarialSchedule::default()
            .with_hostile(r, AdversarialClass::LyingTtl, 0, 100)
            .with_hostile(r, AdversarialClass::GarbageBytes, 500, 600)
            .with_hostile(RouterId(10), AdversarialClass::ZombieEcho, 0, u64::MAX);
        assert_eq!(
            s.class_mask(r),
            AdversarialClass::LyingTtl.bit() | AdversarialClass::GarbageBytes.bit()
        );
        assert_eq!(
            s.class_mask(RouterId(10)),
            AdversarialClass::ZombieEcho.bit()
        );
        // A degenerate (empty) window contributes nothing.
        let s = AdversarialSchedule::default().with_hostile(r, AdversarialClass::LyingTtl, 50, 50);
        assert_eq!(s.class_mask(r), 0);
        assert!(!s.active(r, AdversarialClass::LyingTtl, 50));
    }

    #[test]
    fn always_hostile_never_expires() {
        let r = RouterId(1);
        let s =
            AdversarialSchedule::default().with_hostile_always(r, AdversarialClass::DuplicateStorm);
        assert!(s.active(r, AdversarialClass::DuplicateStorm, 0));
        assert!(s.active(r, AdversarialClass::DuplicateStorm, u64::MAX - 1));
    }

    #[test]
    fn class_bits_are_distinct() {
        let mut seen = 0u8;
        for c in AdversarialClass::ALL {
            assert_eq!(seen & c.bit(), 0, "duplicate bit for {c:?}");
            seen |= c.bit();
        }
        assert_eq!(seen.count_ones(), 5);
    }
}
