//! A deterministic synthetic IPv6 Internet for active-measurement research.
//!
//! The paper measures the real IPv6 Internet from three vantage points;
//! this crate substitutes a packet-level simulator that reproduces the
//! *structural* phenomena the paper's experiments depend on:
//!
//! * a transit hierarchy of ASes announcing BGP prefixes, with a
//!   Hurricane-Electric-like hub present on a large share of paths;
//! * per-AS address plans: infrastructure prefixes for router interfaces,
//!   hierarchical "distribution" subnets (the §6 ground truth) descending
//!   to /64 LANs with SLAAC, privacy and low-byte hosts;
//! * two large residential ISPs whose subscriber CPE routers respond from
//!   EUI-64 addresses — the Table 7 "EUI-64 clouds";
//! * mandated ICMPv6 rate limiting: every error message consumes a token
//!   from the originating router's bucket (RFC 4443 §2.4(f)), with
//!   heterogeneous, sometimes aggressive, per-router rates (§4.2);
//! * per-flow ECMP load balancing keyed on the probe's constant headers,
//!   so Paris-style probes see stable paths;
//! * middlebox/firewall policies that treat ICMPv6, UDP and TCP probes
//!   differently (§4.2 protocol trials).
//!
//! Everything is driven by a **virtual clock** (microseconds since campaign
//! start) and a seeded RNG, so runs are bit-for-bit reproducible.
//!
//! The simulator speaks *wire bytes*: the [`engine::Engine`] accepts a
//! serialized probe packet and returns the serialized response (if any),
//! exactly as a raw socket would — the prober on top stays honest.

pub mod adversarial;
pub mod config;
pub mod engine;
pub mod fault;
pub mod flow;
pub mod generate;
pub mod pathcache;
pub mod ratelimit;
pub mod route;
pub mod topology;

pub use adversarial::{AdversarialClass, AdversarialSchedule, HostileWindow, STORM_SPREAD};
pub use config::{Scale, TopologyConfig};
pub use engine::{Delivery, Engine, EngineStats};
pub use fault::{FaultSchedule, LinkFault, LinkFaultKind, ResponderDown, VantageOutage};
pub use topology::{RouterId, Topology, VantageId};
